"""Shared fixtures and system builders for the test suite."""

from __future__ import annotations

import pytest

from repro.hardware import Access, Compute, Halt, ReadTime, Syscall, presets
from repro.kernel import Kernel, TimeProtectionConfig


@pytest.fixture
def tiny_machine():
    return presets.tiny_machine()


@pytest.fixture
def tiny_machine_2core():
    return presets.tiny_machine(n_cores=2)


def secret_striding_trojan(ctx):
    """A Hi program whose memory pattern depends on ctx.params['secret']."""
    secret = ctx.params.get("secret", 0)
    for i in range(60):
        yield Access(
            ctx.data_base + ((i * (secret + 1) * ctx.line_size) % ctx.data_size),
            write=True,
            value=i,
        )
        if i % 8 == 0:
            yield Syscall("nop")
    while True:
        yield Compute(10)


def timing_observer(ctx):
    """A Lo program that observes timestamps and its own access latencies."""
    iterations = ctx.params.get("iterations", 120)
    for i in range(iterations):
        yield ReadTime()
        yield Access(ctx.data_base + (i * ctx.line_size) % ctx.data_size)
        if i % 16 == 0:
            yield Syscall("nop")
    yield Halt()


def build_two_domain_system(
    secret,
    tp: TimeProtectionConfig,
    max_cycles: int = 400_000,
    machine_factory=presets.tiny_machine,
    capture_footprints: bool = False,
    observer_iterations: int = 120,
):
    """The standard Hi/Lo system used across proof and NI tests."""
    machine = machine_factory()
    kernel = Kernel(machine, tp)
    kernel.capture_footprints = capture_footprints
    hi = kernel.create_domain("Hi", n_colours=2, slice_cycles=3000)
    lo = kernel.create_domain("Lo", n_colours=2, slice_cycles=3000)
    kernel.create_thread(hi, secret_striding_trojan, params={"secret": secret})
    kernel.create_thread(
        lo, timing_observer, params={"iterations": observer_iterations}
    )
    kernel.set_schedule(0, [(hi, None), (lo, None)])
    kernel.run(max_cycles=max_cycles)
    return kernel


@pytest.fixture
def tp_full():
    return TimeProtectionConfig.full()


@pytest.fixture
def tp_none():
    return TimeProtectionConfig.none()

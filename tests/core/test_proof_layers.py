"""Tests for unwinding, case split, time-function witnesses and the
assembled proof."""

import pytest

from repro.core import (
    TimeProtectionProof,
    audit,
    check_confinement,
    check_unwinding,
    dependency_profile,
    format_report,
    prove_time_protection,
    witnesses_from_kernel,
)
from repro.hardware import presets
from repro.kernel import TimeProtectionConfig

from tests.conftest import build_two_domain_system


def build(secret, tp=None, **kwargs):
    return build_two_domain_system(
        secret, tp or TimeProtectionConfig.full(), capture_footprints=True, **kwargs
    )


class TestUnwinding:
    def test_passes_with_full_protection(self):
        kernel = build(3)
        check = check_unwinding(kernel, "Lo")
        assert check.passed, str(check)
        assert check.switches_into_observer > 0

    def test_fails_without_padding(self):
        kernel = build(3, TimeProtectionConfig.full().without(pad_switch=False))
        check = check_unwinding(kernel, "Lo")
        assert not check.passed
        assert any("unpadded" in f for f in check.failures)

    def test_fails_without_flush(self):
        kernel = build(3, TimeProtectionConfig.full().without(flush_on_switch=False))
        check = check_unwinding(kernel, "Lo")
        assert not check.passed

    def test_unknown_observer_raises(self):
        kernel = build(3)
        with pytest.raises(KeyError):
            check_unwinding(kernel, "Nobody")


class TestTimeFunctionWitnesses:
    def test_witnesses_captured(self):
        kernel = build(3)
        witnesses = witnesses_from_kernel(kernel)
        assert witnesses
        cases = {w.case for w in witnesses}
        assert {"1", "2a", "2b"} <= cases

    def test_confinement_holds_with_protection(self):
        kernel = build(3)
        report = check_confinement(kernel)
        assert report.confined, report.violations[:3]
        assert report.confined_steps == report.total_steps

    def test_confinement_fails_without_clone(self):
        kernel = build(3, TimeProtectionConfig.full().without(kernel_clone=False))
        report = check_confinement(kernel)
        # Syscall handlers fetch the shared master image, whose frames sit
        # in the kernel colour -- still entitled for case 2a.  But user
        # flush+reload style touches would violate; at minimum the report
        # runs and counts all steps.
        assert report.total_steps > 0

    def test_dependency_profile_shapes(self):
        kernel = build(3)
        profile = dependency_profile(witnesses_from_kernel(kernel))
        assert "1" in profile
        # User steps read the I-cache (fetch) and TLB at least.
        assert any("l1i" in element for element in profile["1"])


class TestCaseSplit:
    def test_audit_passes_with_protection(self):
        kernel = build(3)
        result = audit(kernel)
        assert result.passed, str(result)
        assert result.result_for("1").steps > 0
        assert result.result_for("2a").steps > 0
        assert result.result_for("2b").steps > 0

    def test_audit_requires_footprints(self):
        kernel = build_two_domain_system(3, TimeProtectionConfig.full())
        with pytest.raises(ValueError):
            audit(kernel)

    def test_case_2b_fails_without_padding(self):
        kernel = build(3, TimeProtectionConfig.full().without(pad_switch=False))
        result = audit(kernel)
        assert not result.result_for("2b").passed

    def test_observer_restriction(self):
        kernel = build(3)
        result = audit(kernel, observer="Lo")
        full = audit(kernel)
        assert result.result_for("1").steps <= full.result_for("1").steps


class TestAssembledProof:
    def test_theorem_holds_on_protected_system(self):
        report = prove_time_protection(build, secrets=[1, 7, 13], observer="Lo")
        assert report.holds
        assert not report.failed_obligations()
        text = format_report(report)
        assert "THEOREM HOLDS" in text

    def test_theorem_fails_without_protection(self):
        report = prove_time_protection(
            lambda s: build(s, TimeProtectionConfig.none()),
            secrets=[1, 7],
            observer="Lo",
        )
        assert not report.holds
        assert report.failed_obligations()
        assert report.counterexamples()
        assert "THEOREM FAILS" in format_report(report, verbose=True)

    def test_single_mechanism_ablation_breaks_proof(self):
        for flag in (
            "cache_colouring",
            "kernel_clone",
            "flush_on_switch",
            "pad_switch",
        ):
            tp = TimeProtectionConfig.full().without(**{flag: False})
            report = prove_time_protection(
                lambda s, tp=tp: build(s, tp), secrets=[1, 7], observer="Lo"
            )
            assert not report.holds, f"ablating {flag} should break the proof"

    def test_proof_requires_two_secrets(self):
        with pytest.raises(ValueError):
            TimeProtectionProof(build, secrets=[1], observer="Lo")

    def test_report_names_assumptions(self):
        report = prove_time_protection(build, secrets=[1, 7], observer="Lo")
        assert any("interconnect" in a for a in report.assumptions)
        assert any("padding" in a.lower() for a in report.assumptions)

    def test_nonconforming_hardware_noted(self):
        report = prove_time_protection(
            lambda s: build(s, machine_factory=presets.tiny_unflushable_machine),
            secrets=[1, 7],
            observer="Lo",
        )
        assert not report.holds
        assert any("aISA" in note or "contract" in note for note in report.notes)

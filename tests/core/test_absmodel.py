"""Unit tests for the abstract hardware model extraction."""

from repro.core.absmodel import AbstractHardwareModel
from repro.hardware import StateCategory, presets


class TestExtraction:
    def test_conforming_machine_has_no_unmanaged_state(self):
        model = AbstractHardwareModel.from_machine(presets.tiny_machine())
        assert model.conforms_to_aisa()
        assert model.unmanaged() == []

    def test_llc_is_partitionable(self):
        model = AbstractHardwareModel.from_machine(presets.tiny_machine())
        assert "llc" in [e.name for e in model.partitionable()]

    def test_core_private_state_is_flushable(self):
        model = AbstractHardwareModel.from_machine(presets.tiny_machine())
        flushable = {e.name for e in model.flushable()}
        for suffix in ("l1i", "l1d", "l2", "tlb", "branch", "prefetcher"):
            assert f"core0.{suffix}" in flushable

    def test_smt_degrades_private_state_to_unmanaged(self):
        model = AbstractHardwareModel.from_machine(presets.tiny_smt_machine())
        unmanaged = {e.name for e in model.unmanaged()}
        assert "core0.l1d" in unmanaged
        assert not model.conforms_to_aisa()

    def test_unflushable_prefetcher_unmanaged(self):
        model = AbstractHardwareModel.from_machine(presets.tiny_unflushable_machine())
        assert {e.name for e in model.unmanaged()} == {"core0.prefetcher"}

    def test_single_colour_llc_unmanaged(self):
        model = AbstractHardwareModel.from_machine(presets.tiny_nocolour_machine())
        assert "llc" in {e.name for e in model.unmanaged()}

    def test_declared_category_preserved(self):
        model = AbstractHardwareModel.from_machine(presets.tiny_smt_machine())
        element = model.element("core0.l1d")
        assert element.declared_category is StateCategory.FLUSHABLE
        assert element.effective_category is StateCategory.UNMANAGED

    def test_unknown_element_raises(self):
        model = AbstractHardwareModel.from_machine(presets.tiny_machine())
        try:
            model.element("nonsense")
        except KeyError:
            pass
        else:
            raise AssertionError("expected KeyError")

    def test_summary_lists_exclusions(self):
        model = AbstractHardwareModel.from_machine(presets.tiny_machine())
        summary = model.summary()
        assert any("interconnect" in item for item in summary["exclusions"])

    def test_partition_counts_reported(self):
        model = AbstractHardwareModel.from_machine(presets.tiny_machine())
        assert model.element("llc").n_partitions == 8

"""Tests for the proof-obligation engine: each obligation must pass on a
fully protected system and detect its own specific violation."""

import pytest

from repro.core import check_all
from repro.core.absmodel import AbstractHardwareModel
from repro.core.obligations import (
    po1_complete_management,
    po2_partitioning,
    po3_flush_on_switch,
    po4_constant_time_switch,
    po5_padding_sufficient,
    po6_interrupt_partitioning,
    po7_kernel_shared_determinism,
)
from repro.hardware import presets
from repro.kernel import TimeProtectionConfig

from tests.conftest import build_two_domain_system


@pytest.fixture(scope="module")
def protected_kernel():
    return build_two_domain_system(secret=3, tp=TimeProtectionConfig.full())


class TestAllPassOnProtectedSystem:
    def test_every_obligation_passes(self, protected_kernel):
        results = check_all(protected_kernel)
        failed = [r for r in results if not r.passed]
        assert not failed, "\n".join(str(r) for r in failed)

    def test_obligation_ids_complete(self, protected_kernel):
        results = check_all(protected_kernel)
        assert [r.obligation_id for r in results] == [
            f"PO-{i}" for i in range(1, 8)
        ]


class TestPo1:
    def test_fails_on_smt(self):
        model = AbstractHardwareModel.from_machine(presets.tiny_smt_machine())
        result = po1_complete_management(model)
        assert not result.passed
        assert any("l1d" in v for v in result.violations)

    def test_fails_on_unflushable(self):
        model = AbstractHardwareModel.from_machine(
            presets.tiny_unflushable_machine()
        )
        result = po1_complete_management(model)
        assert not result.passed
        assert any("prefetcher" in v for v in result.violations)


class TestPo2:
    def test_fails_without_colouring(self):
        kernel = build_two_domain_system(
            secret=3, tp=TimeProtectionConfig.full().without(cache_colouring=False)
        )
        result = po2_partitioning(kernel)
        assert not result.passed

    def test_fails_without_clone(self):
        kernel = build_two_domain_system(
            secret=3, tp=TimeProtectionConfig.full().without(kernel_clone=False)
        )
        result = po2_partitioning(kernel)
        assert not result.passed
        assert any("kernel-image" in v for v in result.violations)


class TestPo3:
    def test_fails_without_flush(self):
        kernel = build_two_domain_system(
            secret=3, tp=TimeProtectionConfig.full().without(flush_on_switch=False)
        )
        result = po3_flush_on_switch(kernel)
        assert not result.passed

    def test_fails_with_broken_flush_hardware(self):
        kernel = build_two_domain_system(
            secret=3,
            tp=TimeProtectionConfig.full(),
            machine_factory=presets.tiny_broken_flush_machine,
        )
        result = po3_flush_on_switch(kernel)
        assert not result.passed
        assert any("did not reach reset state" in v for v in result.violations)


class TestPo4Po5:
    def test_po4_fails_without_padding(self):
        kernel = build_two_domain_system(
            secret=3, tp=TimeProtectionConfig.full().without(pad_switch=False)
        )
        result = po4_constant_time_switch(kernel)
        assert not result.passed

    def test_po5_fails_with_tiny_pad(self):
        kernel = build_two_domain_system(
            secret=3, tp=TimeProtectionConfig.full(pad_cycles=5)
        )
        result = po5_padding_sufficient(kernel)
        assert not result.passed
        assert any("overrun" in v.lower() or ">" in v for v in result.violations)

    def test_po4_reports_deviating_latency_with_tiny_pad(self):
        kernel = build_two_domain_system(
            secret=3, tp=TimeProtectionConfig.full(pad_cycles=5)
        )
        result = po4_constant_time_switch(kernel)
        assert not result.passed


class TestPo6:
    def test_fails_when_partitioning_disabled_and_irqs_fire(self):
        from repro.hardware import Compute, Halt, ReadTime, Syscall

        def trojan(ctx):
            yield Syscall("io_submit", (3, 4000, 0))
            while True:
                yield Compute(50)

        def observer(ctx):
            for _ in range(200):
                yield ReadTime()
            yield Halt()

        from repro.kernel import Kernel

        machine = presets.tiny_machine()
        kernel = Kernel(machine, TimeProtectionConfig.none())
        hi = kernel.create_domain("Hi", slice_cycles=3000, irq_lines=())
        lo = kernel.create_domain("Lo", slice_cycles=3000)
        kernel.irq_policy.enabled = True  # assign ownership for the audit
        kernel.irq_policy.assign(3, hi)
        kernel.irq_policy.enabled = False
        kernel.create_thread(hi, trojan)
        kernel.create_thread(lo, observer)
        kernel.set_schedule(0, [(hi, None), (lo, None)])
        kernel.run(max_cycles=300_000)
        result = po6_interrupt_partitioning(kernel)
        assert not result.passed


class TestPo7:
    def test_fails_without_clone_under_colouring(self):
        # Without cloning, domain syscall activity leaves master-image
        # lines in the kernel's shared colour: the post-switch state of
        # that colour then depends on history.
        kernel = build_two_domain_system(
            secret=3, tp=TimeProtectionConfig.full().without(kernel_clone=False)
        )
        result = po7_kernel_shared_determinism(kernel)
        assert not result.passed

"""Tests for the two-run noninterference harness."""

import pytest

from repro.core.noninterference import (
    Divergence,
    secret_swap_experiment,
    sweep_secrets,
    trace_divergence,
)
from repro.kernel import TimeProtectionConfig

from tests.conftest import build_two_domain_system


class TestTraceDivergence:
    def test_equal_traces(self):
        trace = [("t", 1, 2), ("t", 3, 4)]
        assert trace_divergence(trace, list(trace)) is None

    def test_first_difference_located(self):
        a = [("t", 1, 2), ("t", 3, 4)]
        b = [("t", 1, 2), ("t", 3, 5)]
        divergence = trace_divergence(a, b)
        assert divergence.index == 1
        assert divergence.observation_a == ("t", 3, 4)

    def test_length_mismatch_is_divergence(self):
        a = [("t", 1, 2)]
        b = [("t", 1, 2), ("t", 3, 4)]
        divergence = trace_divergence(a, b)
        assert divergence is not None
        assert divergence.index == 1


class TestSecretSwap:
    def test_holds_with_full_protection(self):
        result = secret_swap_experiment(
            lambda secret: build_two_domain_system(secret, TimeProtectionConfig.full()),
            secret_a=1,
            secret_b=9,
            observer_domain="Lo",
        )
        assert result.holds, str(result)
        assert result.trace_length_a == result.trace_length_b > 0

    def test_violated_without_protection(self):
        result = secret_swap_experiment(
            lambda secret: build_two_domain_system(secret, TimeProtectionConfig.none()),
            secret_a=1,
            secret_b=9,
            observer_domain="Lo",
        )
        assert not result.holds
        assert result.divergence is not None

    def test_violated_without_flush_alone(self):
        tp = TimeProtectionConfig.full().without(flush_on_switch=False)
        result = secret_swap_experiment(
            lambda secret: build_two_domain_system(secret, tp),
            secret_a=1,
            secret_b=9,
            observer_domain="Lo",
        )
        assert not result.holds

    def test_hi_observations_do_differ(self):
        # Sanity: the secrets actually change Hi's own behaviour; the
        # point is that Lo cannot tell.
        kernel_a = build_two_domain_system(1, TimeProtectionConfig.full())
        kernel_b = build_two_domain_system(9, TimeProtectionConfig.full())
        assert kernel_a.observation_trace("Hi") != kernel_b.observation_trace("Hi")

    def test_sweep_requires_two_secrets(self):
        with pytest.raises(ValueError):
            sweep_secrets(lambda s: None, [1], "Lo")

    def test_sweep_over_many_secrets(self):
        results = sweep_secrets(
            lambda secret: build_two_domain_system(secret, TimeProtectionConfig.full()),
            secrets=[0, 3, 11],
            observer_domain="Lo",
        )
        assert len(results) == 2
        assert all(r.holds for r in results)

    def test_result_string_is_informative(self):
        result = secret_swap_experiment(
            lambda secret: build_two_domain_system(secret, TimeProtectionConfig.none()),
            secret_a=1,
            secret_b=9,
            observer_domain="Lo",
        )
        text = str(result)
        assert "VIOLATED" in text
        assert "divergence" in text

"""Tests for channel matrices, capacity, binning and bandwidth."""

import math

import numpy as np
import pytest

from repro.analysis import (
    min_leakage,
    bin_observations,
    bin_vectors,
    blahut_arimoto,
    bsc_capacity,
    capacity_bits,
    decode_accuracy,
    effective_bit_rate,
    estimator_bias_bits,
    from_samples,
    mutual_information,
    zero_leakage,
)
from repro.analysis.bandwidth import BandwidthEstimate


class TestChannelMatrix:
    def test_rows_are_stochastic(self):
        samples = [(0, "a"), (0, "b"), (1, "a"), (1, "a")]
        matrix = from_samples(samples)
        assert np.allclose(matrix.matrix.sum(axis=1), 1.0)

    def test_counts_preserved(self):
        samples = [(0, "a")] * 3 + [(1, "b")] * 2
        matrix = from_samples(samples)
        assert matrix.total_samples() == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            from_samples([])

    def test_degenerate_detection(self):
        identical = [(0, "x"), (1, "x"), (2, "x")]
        assert from_samples(identical).is_degenerate()
        distinct = [(0, "x"), (1, "y")]
        assert not from_samples(distinct).is_degenerate()


class TestCapacity:
    def test_perfect_binary_channel(self):
        samples = [(0, "lo")] * 10 + [(1, "hi")] * 10
        matrix = from_samples(samples)
        assert capacity_bits(matrix) == pytest.approx(1.0, abs=1e-5)
        assert mutual_information(matrix) == pytest.approx(1.0, abs=1e-6)

    def test_useless_channel(self):
        samples = [(0, "x")] * 10 + [(1, "x")] * 10
        matrix = from_samples(samples)
        assert capacity_bits(matrix) == pytest.approx(0.0, abs=1e-6)
        assert zero_leakage(matrix)

    def test_perfect_quaternary_channel(self):
        samples = [(s, f"o{s}") for s in range(4) for _ in range(5)]
        matrix = from_samples(samples)
        assert capacity_bits(matrix) == pytest.approx(2.0, abs=1e-4)

    def test_noisy_channel_below_perfect(self):
        samples = (
            [(0, "lo")] * 8 + [(0, "hi")] * 2 + [(1, "hi")] * 8 + [(1, "lo")] * 2
        )
        matrix = from_samples(samples)
        capacity = capacity_bits(matrix)
        assert 0.0 < capacity < 1.0
        # For a symmetric channel the optimum is the uniform input.
        _cap, dist = blahut_arimoto(matrix)
        assert dist == pytest.approx([0.5, 0.5], abs=1e-3)

    def test_mutual_information_custom_prior(self):
        samples = [(0, "lo")] * 10 + [(1, "hi")] * 10
        matrix = from_samples(samples)
        skewed = mutual_information(matrix, input_dist=[0.9, 0.1])
        assert skewed == pytest.approx(
            -(0.9 * math.log2(0.9) + 0.1 * math.log2(0.1)), abs=1e-6
        )

    def test_mutual_information_validates_prior(self):
        matrix = from_samples([(0, "a"), (1, "b")])
        with pytest.raises(ValueError):
            mutual_information(matrix, input_dist=[0.5, 0.4])

    def test_estimator_bias_decreases_with_samples(self):
        assert estimator_bias_bits(10, 8) > estimator_bias_bits(1000, 8)


class TestMinLeakage:
    def test_perfect_channel_leaks_everything(self):
        matrix = from_samples([(s, f"o{s}") for s in range(4) for _ in range(3)])
        assert min_leakage(matrix) == pytest.approx(2.0, abs=1e-9)

    def test_dead_channel_leaks_nothing(self):
        matrix = from_samples([(s, "same") for s in range(4)])
        assert min_leakage(matrix) == pytest.approx(0.0, abs=1e-9)

    def test_bounded_by_input_entropy(self):
        samples = (
            [(0, "lo")] * 8 + [(0, "hi")] * 2 + [(1, "hi")] * 8 + [(1, "lo")] * 2
        )
        matrix = from_samples(samples)
        assert 0.0 < min_leakage(matrix) <= 1.0

    def test_can_exceed_shannon_capacity_view(self):
        # A channel that mostly says nothing but occasionally identifies
        # the secret exactly: min-leakage highlights the one-guess risk.
        samples = (
            [(0, "quiet")] * 9 + [(0, "zero!")] * 1
            + [(1, "quiet")] * 9 + [(1, "one!")] * 1
        )
        matrix = from_samples(samples)
        assert min_leakage(matrix) > 0.0


class TestDecodeAccuracy:
    def test_perfect_channel_decodes(self):
        samples = [(s, f"o{s}") for s in range(4) for _ in range(6)]
        assert decode_accuracy(samples) == 1.0

    def test_useless_channel_at_chance(self):
        samples = [(s, "same") for s in range(4) for _ in range(6)]
        assert decode_accuracy(samples) == pytest.approx(0.25, abs=0.01)

    def test_unseen_observation_falls_back(self):
        samples = [(0, "a"), (0, "a"), (1, "b"), (1, "c")]
        accuracy = decode_accuracy(samples, train_fraction=0.5)
        assert 0.0 <= accuracy <= 1.0


class TestBinning:
    def test_scalar_binning_bounds(self):
        samples = [(0, float(v)) for v in range(100)]
        binned = bin_observations(samples, n_bins=4)
        bins = {b for _s, b in binned}
        assert bins == {0, 1, 2, 3}

    def test_constant_values_single_bin(self):
        samples = [(0, 5.0), (1, 5.0)]
        binned = bin_observations(samples, n_bins=8)
        assert {b for _s, b in binned} == {0}

    def test_vector_feature_argmax(self):
        samples = [(0, [1.0, 9.0, 1.0]), (1, [7.0, 1.0, 1.0])]
        reduced = bin_vectors(samples)
        assert reduced[0][1][0] == 1
        assert reduced[1][1][0] == 0

    def test_empty_vector_handled(self):
        assert bin_vectors([(0, [])])[0][1] == (0, 0)

    def test_bad_bins_rejected(self):
        with pytest.raises(ValueError):
            bin_observations([(0, 1.0)], n_bins=0)


class TestBandwidth:
    def test_bits_per_second(self):
        estimate = BandwidthEstimate(
            bits_per_symbol=2.0, symbol_period_cycles=1000, clock_hz=1e9
        )
        assert estimate.symbols_per_second == pytest.approx(1e6)
        assert estimate.bits_per_second == pytest.approx(2e6)

    def test_zero_period(self):
        estimate = BandwidthEstimate(1.0, 0, 1e9)
        assert estimate.bits_per_second == 0.0

    def test_bsc_capacity_extremes(self):
        assert bsc_capacity(0.0) == 1.0
        assert bsc_capacity(0.5) == pytest.approx(0.0, abs=1e-9)
        assert bsc_capacity(1.0) == 1.0  # inverted but perfect

    def test_effective_rate(self):
        assert effective_bit_rate(100.0, 0.0) == 100.0
        assert effective_bit_rate(100.0, 0.5) == pytest.approx(0.0, abs=1e-6)

"""ChannelGuessEnv: gym protocol, determinism, shared estimator."""

import pytest

from repro.analysis import estimator_bias_bits, mutual_information_from_samples
from repro.synth import ChannelGuessEnv
from repro.synth.env import fitness_from_stats
from repro.synth.runner import PRIME_PROBE_GENOME


def small_env(**overrides):
    kwargs = dict(
        machine="tiny",
        tp="none",
        victim="set_hammer",
        rounds_per_run=4,
        sweep_rounds=1,
        seed=7,
    )
    kwargs.update(overrides)
    return ChannelGuessEnv(**kwargs)


class TestGymProtocol:
    def test_episode_run_then_guess(self):
        env = small_env()
        assert env.reset() is None
        observation, reward, done, info = env.step(
            ("run", PRIME_PROBE_GENOME)
        )
        assert isinstance(observation, tuple) and observation
        assert reward == 0.0 and not done
        # A perfect spy decodes the secret from the observation; here we
        # just guess symbol 0 and check the protocol plumbing.
        _obs, reward, done, info = env.step(("guess", env.symbols[0]))
        assert done
        assert info["observed"] is True
        assert info["secret"] in env.symbols
        assert reward in (0.0, 1.0)

    def test_step_before_reset_raises(self):
        env = small_env()
        with pytest.raises(RuntimeError):
            env.step(("guess", 0))

    def test_unknown_names_rejected(self):
        with pytest.raises(KeyError):
            small_env(machine="nonesuch")
        with pytest.raises(KeyError):
            small_env(tp="nonesuch")
        with pytest.raises(KeyError):
            small_env(victim="nonesuch")


class TestDeterminism:
    def test_same_seed_same_secret_sequence(self):
        draws_a = []
        draws_b = []
        for draws in (draws_a, draws_b):
            env = small_env(seed=123)
            for _ in range(8):
                env.reset()
                _o, _r, _d, info = env.step(("guess", -1))
                draws.append(info["secret"])
        assert draws_a == draws_b

    def test_same_seed_bit_identical_traces_and_fitness(self):
        # The whole episode pipeline -- machine build, kernel run, decode,
        # MI estimate -- is deterministic: two envs with the same seed
        # produce byte-equal observations and fitness for the same genome.
        runs = []
        for _ in range(2):
            env = small_env(seed=5)
            env.reset()
            observation, _r, _d, _i = env.step(("run", PRIME_PROBE_GENOME))
            evaluation = env.evaluate(PRIME_PROBE_GENOME)
            runs.append((observation, evaluation.fitness,
                         evaluation.mutual_information_bits,
                         tuple(evaluation.result.samples)))
        assert runs[0] == runs[1]


class TestSharedEstimator:
    def test_env_fitness_uses_the_analysis_estimator(self):
        env = small_env(rounds_per_run=6, sweep_rounds=2)
        evaluation = env.evaluate(PRIME_PROBE_GENOME)
        assert evaluation.mutual_information_bits == pytest.approx(
            mutual_information_from_samples(evaluation.result.samples)
        )
        # And the harness reports the same number for the same samples.
        assert evaluation.result.mutual_information_bits() == pytest.approx(
            evaluation.mutual_information_bits
        )

    def test_fitness_from_stats_matches_evaluate(self):
        env = small_env(rounds_per_run=6, sweep_rounds=2)
        evaluation = env.evaluate(PRIME_PROBE_GENOME)
        stats = evaluation.result.stats()
        assert fitness_from_stats(
            stats, len(PRIME_PROBE_GENOME.ops)
        ) == pytest.approx(evaluation.fitness)

    def test_empty_stats_scores_zero(self):
        assert fitness_from_stats(None, 5) == 0.0
        assert fitness_from_stats({}, 5) == 0.0

    def test_noise_floor_is_miller_madow(self):
        env = small_env(rounds_per_run=6, sweep_rounds=2)
        assert env.noise_floor_bits() == pytest.approx(
            estimator_bias_bits(10, len(env.symbols))
        )


class TestSpec:
    def test_spec_is_plain_data(self):
        import json

        env = small_env(runner_kwargs={"data_pages": 6})
        spec = env.spec()
        assert json.loads(json.dumps(spec)) == spec
        assert spec["runner_kwargs"] == {"data_pages": 6}

"""The subsystem's acceptance tests, straight from the issue:

1. From a random initial population on ``tiny`` with TP off, the search
   evolves a genome whose guess accuracy and mutual information match or
   exceed the hand-written prime+probe attack (``e2``).
2. At least one evolved genome exercises the stride-prefetcher state
   element -- a channel no ``repro.attacks`` program carries: disabling
   the prefetcher collapses the genome's capacity below the open-channel
   threshold while leaving every hand-written attack's measurement
   *bit-identical* -- with ``CountingInstrumentation`` per-element
   counters as the attribution evidence.
3. Under full TP, every discovered genome's capacity falls below the
   estimator noise floor.
"""

import pytest

from repro.campaign.registry import ATTACKS, MACHINES, TP_CONFIGS
from repro.synth import ChannelGuessEnv, EvolutionSearch, SearchConfig
from repro.synth.novelty import (
    ablate_prefetcher,
    genome_counter_profiles,
    sensitive_elements,
    touched_elements,
)
from repro.synth.runner import (
    PREFETCH_RESIDUE_GENOME,
    PREFETCH_RESIDUE_VICTIM_PARAMS,
    PRIME_PROBE_GENOME,
    experiment,
)

#: Capacity above this is an open channel (matches benchmarks/_common.py).
OPEN_BITS = 0.3

RESIDUE_KWARGS = dict(
    victim="stream_strider",
    rounds_per_run=8,
    sweep_rounds=3,
    data_pages=6,
    hi_data_pages=8,
    victim_params=PREFETCH_RESIDUE_VICTIM_PARAMS,
)


def e2_reference_stats():
    return ATTACKS["e2"].run(TP_CONFIGS["none"](), MACHINES["tiny"]).stats()


@pytest.fixture(scope="module")
def search_report():
    """One seeded search from a random population on tiny/no-TP."""
    env = ChannelGuessEnv(
        machine="tiny", tp="none", victim="set_hammer",
        rounds_per_run=6, sweep_rounds=2,
    )
    config = SearchConfig(
        generations=6, population=16, elite=2, min_ops=2, max_ops=6,
        target_bits=2.0,
    )
    return EvolutionSearch(env, config, seed=0).run()


@pytest.mark.slow
class TestRediscovery:
    def test_search_matches_hand_written_primeprobe(self, search_report):
        reference = e2_reference_stats()
        champion = search_report.champion.evaluation
        assert champion.mutual_information_bits >= (
            reference["mutual_information_bits"] - 1e-9
        )
        assert champion.accuracy >= reference["decode_accuracy"] - 1e-9
        assert search_report.found_channel()

    def test_champion_capacity_closes_under_full_tp(self, search_report):
        closed_env = ChannelGuessEnv(
            machine="tiny", tp="full", victim="set_hammer",
            rounds_per_run=6, sweep_rounds=2,
        )
        evaluation = closed_env.evaluate(search_report.champion.genome)
        assert evaluation.mutual_information_bits < closed_env.noise_floor_bits()


class TestCanonicalGenomes:
    """The checked-in witnesses re-measure to their recorded strength."""

    def test_prime_probe_genome_beats_e2(self):
        stats = experiment(
            TP_CONFIGS["none"](), MACHINES["tiny"], PRIME_PROBE_GENOME,
            victim="set_hammer", rounds_per_run=6, sweep_rounds=2,
        ).stats()
        reference = e2_reference_stats()
        assert stats["mutual_information_bits"] >= (
            reference["mutual_information_bits"] - 1e-9
        )
        assert stats["decode_accuracy"] >= reference["decode_accuracy"] - 1e-9

    @pytest.mark.parametrize("genome", [
        PRIME_PROBE_GENOME, PREFETCH_RESIDUE_GENOME,
    ], ids=["prime-probe", "prefetch-residue"])
    def test_full_tp_closes_canonical_genomes(self, genome):
        kwargs = (
            RESIDUE_KWARGS if genome is PREFETCH_RESIDUE_GENOME
            else dict(victim="set_hammer", rounds_per_run=6, sweep_rounds=2)
        )
        stats = experiment(
            TP_CONFIGS["full"](), MACHINES["tiny"], genome, **kwargs
        ).stats()
        assert stats["capacity_bits"] < OPEN_BITS
        assert stats["mutual_information_bits"] < 0.11  # noise floor


@pytest.mark.slow
class TestNovelPrefetcherChannel:
    """The prefetcher-residue channel: open, attributable, and novel."""

    def test_residue_channel_is_open_without_tp(self):
        stats = experiment(
            TP_CONFIGS["none"](), MACHINES["tiny"],
            PREFETCH_RESIDUE_GENOME, **RESIDUE_KWARGS
        ).stats()
        assert stats["capacity_bits"] > OPEN_BITS
        assert stats["decode_accuracy"] > stats["chance_accuracy"]

    def test_channel_survives_unflushable_hardware(self):
        # The motivating case: hardware with no architected prefetcher
        # flush (E9) carries the same residue channel.
        stats = experiment(
            TP_CONFIGS["none"](), MACHINES["unflushable"],
            PREFETCH_RESIDUE_GENOME, **RESIDUE_KWARGS
        ).stats()
        assert stats["capacity_bits"] > OPEN_BITS

    def test_ablating_prefetcher_collapses_the_channel(self):
        ablated = ablate_prefetcher(MACHINES["tiny"])
        stats = experiment(
            TP_CONFIGS["none"](), ablated,
            PREFETCH_RESIDUE_GENOME, **RESIDUE_KWARGS
        ).stats()
        assert stats["capacity_bits"] < OPEN_BITS

    @pytest.mark.parametrize("attack", ["e2", "e4", "e5"])
    def test_no_hand_written_attack_uses_the_prefetcher(self, attack):
        # Every hand-written single-core cache attack measures a channel
        # that is *bit-identical* with the prefetcher disabled: their
        # prefetcher-attributable capacity is exactly zero, so the
        # residue genome's channel is one no repro.attacks program
        # exercises above (or at all near) the capacity threshold.
        tp = TP_CONFIGS["none"]()
        normal = ATTACKS[attack].run(tp, MACHINES["tiny"])
        ablated = ATTACKS[attack].run(tp, ablate_prefetcher(MACHINES["tiny"]))
        assert normal.samples == ablated.samples
        assert normal.stats() == ablated.stats()

    def test_counter_evidence_attributes_the_channel(self):
        # CountingInstrumentation: the spy drives the prefetcher element
        # every round, and its secret-sensitive spy-side counters are the
        # caches the prefetch fills land in -- state modulated by the
        # victim's secret through the prefetcher's (last_addr, stride).
        profiles = genome_counter_profiles(
            TP_CONFIGS["none"](), MACHINES["tiny"],
            PREFETCH_RESIDUE_GENOME,
            victim="stream_strider", symbols=(0, 1, 2, 3),
            rounds_per_run=8,
            data_pages=6, hi_data_pages=8,
            victim_params=PREFETCH_RESIDUE_VICTIM_PARAMS,
        )
        assert "core0.prefetcher" in touched_elements(profiles, domain="Lo")
        sensitive = sensitive_elements(profiles, domain="Lo")
        assert "core0.l2" in sensitive, sensitive

"""Campaign bridge: pool evaluation, fitness cache, registry promotion."""

import json

import pytest

from repro.campaign.registry import ATTACKS, unregister_attack
from repro.campaign.store import ResultStore
from repro.synth import (
    CampaignEvaluator,
    ChannelGuessEnv,
    load_genomes,
    register_discovered,
    register_saved,
    save_genomes,
)
from repro.synth.genome import Genome, TimedSweep, TouchSweep, YieldToVictim
from repro.synth.runner import PRIME_PROBE_GENOME

SIMPLE = Genome(
    ops=(YieldToVictim(cycles=10000), TimedSweep(count=16)),
    decoder="bins",
    bin_width=8,
)
DULL = Genome(ops=(TouchSweep(count=4),), decoder="argmax", bin_width=16)


def make_env():
    return ChannelGuessEnv(
        machine="tiny", tp="none", victim="set_hammer",
        rounds_per_run=4, sweep_rounds=1,
    )


class TestCampaignEvaluator:
    def test_pool_matches_serial_evaluation(self, tmp_path):
        env = make_env()
        genomes = [SIMPLE, DULL, PRIME_PROBE_GENOME]
        serial = [env.evaluate(genome) for genome in genomes]
        evaluator = CampaignEvaluator(
            env, str(tmp_path / "fitness.jsonl"), n_workers=2
        )
        pooled = evaluator(genomes)
        assert len(pooled) == len(serial)
        for ours, theirs in zip(pooled, serial):
            assert ours.fitness == pytest.approx(theirs.fitness)
            assert ours.mutual_information_bits == pytest.approx(
                theirs.mutual_information_bits
            )

    def test_duplicate_genomes_collapse_to_one_trial(self, tmp_path):
        env = make_env()
        store = ResultStore(str(tmp_path / "fitness.jsonl"))
        evaluator = CampaignEvaluator(env, store, n_workers=2)
        evaluations = evaluator([SIMPLE, SIMPLE, SIMPLE])
        assert len(evaluations) == 3
        assert len({e.fitness for e in evaluations}) == 1
        assert len(store.completed_keys()) == 1

    def test_store_is_a_fitness_cache_across_calls(self, tmp_path):
        env = make_env()
        store = ResultStore(str(tmp_path / "fitness.jsonl"))
        evaluator = CampaignEvaluator(env, store, n_workers=1)
        first = evaluator([SIMPLE])
        n_records = len(list(store.iter_records()))
        second = evaluator([SIMPLE])  # resume answers from disk
        assert len(list(store.iter_records())) == n_records
        assert second[0].fitness == pytest.approx(first[0].fitness)


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        path = str(tmp_path / "genomes.json")
        env = make_env()
        save_genomes(path, [SIMPLE, DULL], env=env, metadata={"note": "t"})
        records = load_genomes(path)
        assert len(records) == 2
        assert Genome.from_dict(records[0]["genome"]) == SIMPLE
        assert records[0]["env"]["victim"] == "set_hammer"
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["metadata"] == {"note": "t"}

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "genomes": []}))
        with pytest.raises(ValueError):
            load_genomes(str(path))


class TestRegistryPromotion:
    def test_register_discovered_runs_like_an_attack(self):
        name = "synth-test-pp"
        try:
            register_discovered(name, PRIME_PROBE_GENOME, victim="set_hammer")
            assert name in ATTACKS
            from repro.campaign.registry import MACHINES, TP_CONFIGS

            result = ATTACKS[name].run(
                TP_CONFIGS["none"](), MACHINES["tiny"]
            )
            assert result.stats()["mutual_information_bits"] > 0.5
        finally:
            unregister_attack(name)

    def test_register_saved_names_and_defaults(self, tmp_path):
        path = str(tmp_path / "genomes.json")
        env = make_env()
        save_genomes(path, [SIMPLE, DULL], env=env)
        names = register_saved(path, prefix="synth-test")
        try:
            assert names == ["synth-test-0", "synth-test-1"]
            entry = ATTACKS["synth-test-0"]
            assert entry.defaults["victim"] == "set_hammer"
            assert Genome.from_dict(entry.defaults["genome"]) == SIMPLE
        finally:
            for name in names:
                unregister_attack(name)

    def test_generic_synth_attack_is_registered(self):
        assert "synth" in ATTACKS

"""Property tests for the genome DSL: the search's type-safety contract.

The evolutionary search assumes it can serialize, mutate and cross any
well-typed genome without ever producing an ill-typed one -- a single
``GenomeError`` mid-generation would abort a whole search.  Hypothesis
pins that contract: round-trip identity, closure of mutate/crossover
over well-typed genomes, and total compilation on any plausible layout.
"""

import random
from dataclasses import fields

from hypothesis import given, settings, strategies as st

from repro.hardware.isa import ProgramContext
from repro.synth.genome import (
    DECODERS,
    FAMILIES,
    FIELD_BOUNDS,
    GENE_TYPES,
    MAX_OPS,
    MAX_PLAN_OPS,
    Genome,
    classify,
    compile_plan,
    crossover,
    decode_feature,
    genome_step,
    mutate,
    random_genome,
    validate_genome,
)


def _gene_strategy(gene_cls):
    values = {}
    for f in fields(gene_cls):
        if f.name == "write":
            values[f.name] = st.booleans()
        else:
            low, high = FIELD_BOUNDS[f.name]
            values[f.name] = st.integers(min_value=low, max_value=high)
    return st.builds(gene_cls, **values)


genes = st.one_of([_gene_strategy(cls) for cls in GENE_TYPES])
genomes = st.builds(
    Genome,
    ops=st.lists(genes, min_size=1, max_size=MAX_OPS).map(tuple),
    decoder=st.sampled_from(DECODERS),
    bin_width=st.integers(*FIELD_BOUNDS["bin_width"]),
)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def tiny_ctx(params=None):
    return ProgramContext(
        data_base=0x0100_0000,
        data_size=6 * 256,
        code_base=0x0040_0000,
        page_size=256,
        line_size=32,
        shared_text_base=0x00F0_0000,
        shared_text_size=40 * 32,
        params=params if params is not None else {},
    )


class TestRoundTrip:
    @given(genomes)
    @settings(max_examples=120, deadline=None)
    def test_serialize_deserialize_is_identity(self, genome):
        assert Genome.from_dict(genome.to_dict()) == genome

    @given(genomes)
    @settings(max_examples=60, deadline=None)
    def test_dict_form_is_json_plain(self, genome):
        import json

        assert Genome.from_dict(
            json.loads(json.dumps(genome.to_dict()))
        ) == genome


class TestClosure:
    @given(genomes, seeds, st.sampled_from((None,) + FAMILIES))
    @settings(max_examples=120, deadline=None)
    def test_mutate_always_well_typed(self, genome, seed, family):
        child, touched = mutate(genome, random.Random(seed), family)
        validate_genome(child)  # raises on violation
        assert touched in FAMILIES

    @given(genomes, genomes, seeds)
    @settings(max_examples=120, deadline=None)
    def test_crossover_always_well_typed(self, a, b, seed):
        child = crossover(a, b, random.Random(seed))
        validate_genome(child)
        assert 1 <= len(child.ops) <= MAX_OPS

    @given(seeds)
    @settings(max_examples=60, deadline=None)
    def test_random_genome_well_typed(self, seed):
        genome = random_genome(random.Random(seed))
        validate_genome(genome)

    @given(genomes, seeds)
    @settings(max_examples=60, deadline=None)
    def test_mutation_chains_stay_well_typed(self, genome, seed):
        rng = random.Random(seed)
        for _ in range(8):
            genome, _family = mutate(genome, rng)
        validate_genome(genome)


class TestCompile:
    @given(genomes)
    @settings(max_examples=120, deadline=None)
    def test_any_genome_compiles_and_is_bounded(self, genome):
        plan = compile_plan(genome.to_dict(), tiny_ctx())
        assert len(plan) <= MAX_PLAN_OPS
        ctx = tiny_ctx()
        for op in plan:
            if op[0] == "acc" or op[0] == "fl":
                addr = op[1]
                in_data = (
                    ctx.data_base <= addr < ctx.data_base + ctx.data_size
                )
                in_text = (
                    ctx.shared_text_base
                    <= addr
                    < ctx.shared_text_base + ctx.shared_text_size
                )
                assert in_data or in_text, hex(addr)

    @given(genomes)
    @settings(max_examples=40, deadline=None)
    def test_step_function_is_pure_in_ctx_params(self, genome):
        # Two independent runs of the interpreter over the same genome
        # must request identical instruction streams (no hidden state
        # outside ctx.params -- the snapshot/replay contract).
        streams = []
        for _ in range(2):
            params = {"genome": genome.to_dict(), "results": [], "rounds": 2}
            ctx = tiny_ctx(params)
            stream = []

            class _Obs:
                value = 0
                latency = 0

            for index in range(64):
                instruction = genome_step(ctx, index, _Obs())
                if instruction is None:
                    break
                stream.append(repr(instruction))
            streams.append(stream)
        assert streams[0] == streams[1]


class TestDecoders:
    def test_argmax_argmin_bins(self):
        vec = [10, 40, 20]
        assert decode_feature("argmax", 16, vec) == 1
        assert decode_feature("argmin", 16, vec) == 0
        assert decode_feature("bins", 16, vec) == (0, 2, 1)

    def test_empty_vector_decodes_to_constant(self):
        assert decode_feature("bins", 16, []) == 0


class TestClassify:
    @given(genomes)
    @settings(max_examples=60, deadline=None)
    def test_labels_are_structural(self, genome):
        labels = classify(genome)
        kinds = {gene.kind for gene in genome.ops}
        assert ("prime+probe" in labels) == (
            "timed" in kinds and "touch" in kinds
        )
        assert ("flush+reload" in labels) == (
            "flush" in kinds and "text" in kinds
        )

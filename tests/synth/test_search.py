"""EvolutionSearch: seeded determinism, bandit behaviour, early stop.

These tests run against a *stub* evaluator (a fitness function over
genome structure), so they exercise the whole search loop in
milliseconds without building machines.  Real-channel searches live in
``test_rediscovery.py``.
"""

import random

import pytest

from repro.synth import (
    ChannelGuessEnv,
    EvolutionSearch,
    FamilyBandit,
    SearchConfig,
)
from repro.synth.env import EpisodeEvaluation
from repro.synth.genome import Genome, TimedSweep, YieldToVictim


def stub_evaluator(score_fn):
    """BatchEvaluator scoring genomes with a pure structural function."""

    def evaluate(genomes):
        out = []
        for genome in genomes:
            genome = genome if isinstance(genome, Genome) else Genome.from_dict(genome)
            fitness = score_fn(genome)
            out.append(
                EpisodeEvaluation(
                    result=None,
                    fitness=fitness,
                    mutual_information_bits=max(0.0, fitness),
                    capacity_bits=max(0.0, fitness),
                    accuracy=0.0,
                )
            )
        return out

    return evaluate


def prefers_timed(genome):
    """Toy landscape: timed probes good, clutter bad."""
    families = genome.families()
    return (
        1.0 * families.count("timed")
        + 0.25 * families.count("wait")
        - 0.05 * len(families)
    )


def make_env(**overrides):
    kwargs = dict(machine="tiny", tp="none", victim="set_hammer",
                  rounds_per_run=4, sweep_rounds=1)
    kwargs.update(overrides)
    return ChannelGuessEnv(**kwargs)


class TestDeterminism:
    def test_same_seed_identical_trajectory(self):
        reports = []
        for _ in range(2):
            search = EvolutionSearch(
                make_env(),
                SearchConfig(generations=5, population=10, elite=2),
                seed=42,
                evaluator=stub_evaluator(prefers_timed),
            )
            reports.append(search.run())
        a, b = reports
        assert a.champion.genome == b.champion.genome
        assert a.history == b.history
        assert a.bandit == b.bandit
        assert [s.genome for s in a.discovered] == [
            s.genome for s in b.discovered
        ]

    def test_different_seeds_diverge(self):
        champions = set()
        for seed in range(4):
            search = EvolutionSearch(
                make_env(),
                SearchConfig(generations=3, population=8),
                seed=seed,
                evaluator=stub_evaluator(prefers_timed),
            )
            champions.add(repr(search.run().champion.genome.to_dict()))
        assert len(champions) > 1


class TestSelectionPressure:
    def test_fitness_climbs_on_toy_landscape(self):
        search = EvolutionSearch(
            make_env(),
            SearchConfig(generations=10, population=12, elite=2),
            seed=0,
            evaluator=stub_evaluator(prefers_timed),
        )
        report = search.run()
        assert report.history[-1]["best_fitness"] > report.history[0]["best_fitness"]
        assert "timed" in report.champion.genome.families()

    def test_bandit_concentrates_on_paying_family(self):
        search = EvolutionSearch(
            make_env(),
            SearchConfig(generations=12, population=12, bandit_epsilon=0.1),
            seed=3,
            evaluator=stub_evaluator(prefers_timed),
        )
        report = search.run()
        pulls = {f: v["pulls"] for f, v in report.bandit.items()}
        # The paying family must be pulled at least as often as the
        # median family once means have converged.
        assert pulls["timed"] >= sorted(pulls.values())[len(pulls) // 2]

    def test_seed_genomes_survive_elitism(self):
        seeded = Genome(
            ops=(YieldToVictim(), TimedSweep(count=8)), decoder="bins",
            bin_width=8,
        )
        search = EvolutionSearch(
            make_env(),
            SearchConfig(
                generations=3, population=8, elite=2, seed_genomes=(seeded,)
            ),
            seed=1,
            evaluator=stub_evaluator(prefers_timed),
        )
        report = search.run()
        assert report.champion.fitness >= prefers_timed(seeded)


class TestEarlyStop:
    def test_target_bits_stops_search(self):
        calls = []

        def counting(genomes):
            calls.append(len(genomes))
            return stub_evaluator(prefers_timed)(genomes)

        search = EvolutionSearch(
            make_env(),
            SearchConfig(generations=50, population=8, target_bits=0.5),
            seed=0,
            evaluator=counting,
        )
        report = search.run()
        assert report.found_channel(0.5)
        assert len(calls) < 51  # stopped long before 50 generations


class TestBandit:
    def test_update_tracks_running_mean(self):
        bandit = FamilyBandit(random.Random(0), epsilon=0.0)
        bandit.update("timed", 1.0)
        bandit.update("timed", 0.0)
        assert bandit.means["timed"] == pytest.approx(0.5)
        assert bandit.pulls["timed"] == 2

    def test_greedy_pick_prefers_best_mean(self):
        bandit = FamilyBandit(random.Random(0), epsilon=0.0)
        bandit.update("flush", 2.0)
        picks = {bandit.pick() for _ in range(10)}
        assert picks == {"flush"}


class TestConfigValidation:
    def test_bad_population_rejected(self):
        with pytest.raises(ValueError):
            SearchConfig(population=1)
        with pytest.raises(ValueError):
            SearchConfig(population=4, elite=4)

"""Sect. 4.3: padding by scheduling an interim process, not busy-looping.

"In practice, this is very wastive if padding is done by busy looping.
To make it practical, another Hi process should be scheduled for padding.
Obviously, that interim process must be preempted early enough to allow
the kernel to switch domains without exceeding the pad time (as this
might introduce new channels)."

In this kernel the property is architectural: when a caller suspends
until its padded delivery point, the intra-domain scheduler runs any
other ready thread of the same domain, and the forced switch still fires
at the pre-determined time regardless of what the interim thread was
doing (the switch path's own padding absorbs the preemption overshoot).
These tests pin down all three aspects: utilisation is reclaimed, the
delivery time is unchanged, and the interim thread cannot leak.
"""

from repro.hardware import Compute, Halt, ReadTime, Syscall, presets
from repro.kernel import Kernel, TimeProtectionConfig

MIN_EXEC = 15_000
HI_SLICE = 20_000
LO_SLICE = 6_000


def caller(ctx):
    yield Compute(500)
    yield Syscall("call", (ctx.params["ep"], 42))
    yield Halt()


def interim_worker(ctx):
    counter = ctx.params["counter"]
    grain = ctx.params.get("grain", 50)
    while True:
        yield Compute(grain)
        counter[0] += 1


def receiver(ctx):
    out = ctx.params["out"]
    message = yield Syscall("recv", (ctx.params["ep"],))
    stamp = yield ReadTime()
    out.append((message.value, stamp.value))
    yield Halt()


def build_and_run(with_interim, interim_grain=50, max_cycles=150_000):
    machine = presets.tiny_machine()
    kernel = Kernel(machine, TimeProtectionConfig.full(padded_ipc=True))
    hi = kernel.create_domain("Hi", n_colours=2, slice_cycles=HI_SLICE)
    lo = kernel.create_domain("Lo", n_colours=2, slice_cycles=LO_SLICE)
    endpoint = kernel.create_endpoint(
        "out", min_exec_cycles=MIN_EXEC, receiver_domain=lo
    )
    counter = [0]
    kernel.create_thread(hi, caller, params={"ep": endpoint.endpoint_id})
    if with_interim:
        kernel.create_thread(
            hi,
            interim_worker,
            params={"counter": counter, "grain": interim_grain},
        )
    out = []
    kernel.create_thread(
        lo, receiver, params={"ep": endpoint.endpoint_id, "out": out}
    )
    kernel.set_schedule(0, [(hi, None), (lo, None)])
    kernel.run(max_cycles=max_cycles)
    return kernel, out, counter[0]


class TestInterimPadding:
    def test_interim_thread_reclaims_pad_time(self):
        _k, _out, busy_work = build_and_run(with_interim=False)
        _k, _out, interim_work = build_and_run(with_interim=True)
        assert busy_work == 0
        assert interim_work > 100  # substantial reclaimed utilisation

    def test_delivery_time_unchanged_by_interim_thread(self):
        _k, without, _w = build_and_run(with_interim=False)
        _k, with_interim, _w = build_and_run(with_interim=True)
        assert without == with_interim  # same value, same timestamp

    def test_interim_workload_cannot_shift_delivery(self):
        # The interim thread's instruction granularity determines how
        # late it can overrun the preemption point; the switch padding
        # must absorb all of it.
        arrivals = set()
        for grain in (10, 200, 900):
            _k, out, _w = build_and_run(with_interim=True, interim_grain=grain)
            arrivals.add(tuple(out))
        assert len(arrivals) == 1

    def test_switch_at_delivery_is_still_constant_time(self):
        kernel, _out, _w = build_and_run(with_interim=True)
        forced = [
            record
            for record in kernel.switch_records
            if record.from_domain == "Hi" and record.to_domain == "Lo"
        ]
        assert forced
        for record in forced:
            assert record.pad_target is not None
            assert record.released_at == record.pad_target
            assert not record.overrun

    def test_noninterference_with_interim_thread(self):
        # An interim thread whose *workload* depends on the secret must
        # still be invisible to Lo.
        def build(secret):
            machine = presets.tiny_machine()
            kernel = Kernel(machine, TimeProtectionConfig.full(padded_ipc=True))
            hi = kernel.create_domain("Hi", n_colours=2, slice_cycles=HI_SLICE)
            lo = kernel.create_domain("Lo", n_colours=2, slice_cycles=LO_SLICE)
            endpoint = kernel.create_endpoint(
                "out", min_exec_cycles=MIN_EXEC, receiver_domain=lo
            )
            counter = [0]
            kernel.create_thread(hi, caller, params={"ep": endpoint.endpoint_id})
            kernel.create_thread(
                hi,
                interim_worker,
                params={"counter": counter, "grain": 20 + secret * 13},
            )
            out = []
            kernel.create_thread(
                lo, receiver, params={"ep": endpoint.endpoint_id, "out": out}
            )
            kernel.set_schedule(0, [(hi, None), (lo, None)])
            kernel.run(max_cycles=150_000)
            return kernel

        from repro.core import secret_swap_experiment

        result = secret_swap_experiment(build, 1, 9, observer_domain="Lo")
        assert result.holds, str(result)

"""Differential harness: the batch engine vs. the scalar golden traces.

The batch engine's correctness contract is *bit-identical observable
behaviour* to the scalar engine.  This suite re-runs every golden case
(``tests/golden/*.json`` -- captured from the scalar engine) with the
batch engine selected via ``engine_override("batch")``, so each
experiment's kernels route ``run()`` through ``run_lockstep`` as a batch
of one.  Every observation value, every latency, every final cycle
count, every step and switch count must match the committed scalar
evidence exactly.

A second group runs *heterogeneous batches*: all golden kernels of one
machine preset stepped as one multi-lane batch, checked against the same
scalar goldens -- exercising cross-lane independence (lanes with
different TP configs, attacks and horizons in one wave loop).
"""

from __future__ import annotations

import json

import pytest

from repro.hardware.machine import engine_override

from tests.integration.test_golden_traces import (
    CASES,
    case_id,
    capture_case,
    golden_path,
)


def _load_golden(machine: str, attack: str, tp: str) -> dict:
    path = golden_path(machine, attack, tp)
    if not path.exists():
        pytest.fail(
            f"missing golden file {path.name}; generate with REGEN_GOLDEN=1"
        )
    return json.loads(path.read_text())


@pytest.mark.parametrize(
    "machine,attack,tp", CASES, ids=[case_id(*case) for case in CASES]
)
def test_batch_of_one_matches_scalar_golden(machine, attack, tp):
    golden = _load_golden(machine, attack, tp)
    with engine_override("batch"):
        fresh = capture_case(machine, attack, tp)
    assert len(fresh["runs"]) == len(golden["runs"])
    for index, (golden_run, fresh_run) in enumerate(
        zip(golden["runs"], fresh["runs"])
    ):
        for key in ("final_cycles", "total_steps", "n_switches", "trace"):
            assert fresh_run[key] == golden_run[key], (
                f"{case_id(machine, attack, tp)}: run {index} diverges "
                f"from the scalar engine in {key!r}"
            )
    assert fresh["samples"] == golden["samples"]
    assert fresh == golden


def _primeprobe_system(tp, secret, rounds):
    """One e2-style prime+probe system on tiny, built but not run."""
    from repro.attacks.primeprobe import l1_spy, l1_trojan
    from repro.hardware import presets
    from repro.kernel.kernel import Kernel

    machine = presets.tiny_machine()
    kernel = Kernel(machine, tp)
    geometry = machine.config.l1d_geometry
    lo_slice = max(12000, geometry.sets * geometry.ways * 80)
    hi = kernel.create_domain("Hi", n_colours=2, slice_cycles=4000)
    lo = kernel.create_domain("Lo", n_colours=2, slice_cycles=lo_slice)
    kernel.create_thread(
        hi, l1_trojan, params={"symbol": secret}, data_pages=geometry.ways
    )
    kernel.create_thread(
        lo, l1_spy,
        params={
            "l1_sets": geometry.sets,
            "prime_pages": geometry.ways,
            "results": [],
            "rounds": rounds,
            "sleep_cycles": lo_slice + 2000,
        },
        data_pages=geometry.ways,
    )
    kernel.set_schedule(0, [(hi, None), (lo, None)])
    return kernel, rounds * 60 * lo_slice


def _synth_system(tp, symbol):
    """One synth-runner system (ReplayableProgram lanes), built not run."""
    from repro.hardware import presets
    from repro.synth.runner import (
        PRIME_PROBE_GENOME,
        _build_system,
        _HI_SLICE,
        _LO_SLICE,
    )
    from repro.synth.victims import VICTIMS

    kernel, _results = _build_system(
        tp, presets.tiny_machine, PRIME_PROBE_GENOME.to_dict(),
        VICTIMS["set_hammer"], symbol, 4, _HI_SLICE, _LO_SLICE,
        None, None, None,
    )
    return kernel, 7 * (_HI_SLICE + _LO_SLICE) * 2


def test_heterogeneous_batch_matches_scalar():
    """Mixed TP configs, attacks and horizons in one lockstep batch.

    Five tiny lanes -- prime+probe under tp full and none with different
    secrets and round counts, plus two synth-genome lanes -- stepped as
    one batch must each reproduce their own scalar run exactly: every
    domain's observation trace, final cycle counts, step and switch
    counts.
    """
    from repro.hardware.batch import run_lockstep
    from repro.kernel.timeprotect import TimeProtectionConfig

    def build_all():
        systems = [
            _primeprobe_system(TimeProtectionConfig.full(), 2, 2),
            _primeprobe_system(TimeProtectionConfig.none(), 2, 2),
            _primeprobe_system(TimeProtectionConfig.full(), 5, 3),
            _synth_system(TimeProtectionConfig.none(), 1),
            _synth_system(TimeProtectionConfig.full(), 3),
        ]
        return [k for k, _h in systems], [h for _k, h in systems]

    scalar_kernels, horizons = build_all()
    for kernel, horizon in zip(scalar_kernels, horizons):
        kernel.run(max_cycles=horizon)

    batch_kernels, _ = build_all()
    run_lockstep(batch_kernels, horizons)

    for index, (scalar, batch) in enumerate(zip(scalar_kernels, batch_kernels)):
        for domain in ("Hi", "Lo"):
            assert batch.observation_trace(domain) == (
                scalar.observation_trace(domain)
            ), f"lane {index}: {domain} trace diverges"
        assert batch.total_steps == scalar.total_steps, f"lane {index}"
        assert [core.clock.now for core in batch.machine.cores] == (
            [core.clock.now for core in scalar.machine.cores]
        ), f"lane {index}: final cycles diverge"
        assert len(batch.switch_records) == len(scalar.switch_records)
        for srec, brec in zip(scalar.switch_records, batch.switch_records):
            assert (brec.released_at, brec.from_domain, brec.to_domain) == (
                (srec.released_at, srec.from_domain, srec.to_domain)
            ), f"lane {index}: switch records diverge"

"""Tests for the command-line interface."""

import json
import shutil
from pathlib import Path

import pytest

from repro.cli import MACHINES, TP_CONFIGS, build_parser, main

REPO = Path(__file__).resolve().parents[2]


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["prove"])
        assert args.machine == "tiny"
        assert args.tp == "full"

    def test_known_machines_and_configs(self):
        assert "tiny" in MACHINES and "smt" in MACHINES
        assert "full" in TP_CONFIGS and "none" in TP_CONFIGS
        # Every registered factory actually builds.
        for factory in MACHINES.values():
            factory()
        for config in TP_CONFIGS.values():
            config()


class TestInspect:
    def test_conforming_machine_exits_zero(self, capsys):
        assert main(["inspect", "--machine", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "conforms to the aISA contract" in out

    def test_violating_machine_exits_nonzero(self, capsys):
        assert main(["inspect", "--machine", "smt"]) == 1
        out = capsys.readouterr().out
        assert "VIOLATES" in out
        assert "unmanaged" in out


class TestProve:
    def test_protected_system_proves(self, capsys):
        code = main(
            ["prove", "--machine", "tiny", "--tp", "full",
             "--secrets", "1,9", "--max-cycles", "250000"]
        )
        assert code == 0
        assert "THEOREM HOLDS" in capsys.readouterr().out

    def test_unprotected_system_fails(self, capsys):
        code = main(
            ["prove", "--machine", "tiny", "--tp", "none",
             "--secrets", "1,9", "--max-cycles", "250000"]
        )
        assert code == 1
        assert "THEOREM FAILS" in capsys.readouterr().out

    def test_json_format_is_a_full_stable_report(self, capsys):
        code = main(
            ["prove", "--machine", "tiny", "--tp", "full",
             "--secrets", "1,9", "--max-cycles", "250000",
             "--format", "json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["holds"] is True
        assert {o["obligation_id"] for o in payload["obligations"]} >= {
            "PO-2", "PO-3", "PO-4"
        }
        assert all(o["passed"] for o in payload["obligations"])
        assert payload["case_split"]["passed"] is True
        assert payload["unwinding"]["observer_domain"] == "Lo"
        assert [r["holds"] for r in payload["noninterference"]] == [True]
        assert payload["assumptions"]
        assert payload["counterexamples"] == []


class TestMc:
    def test_full_protection_checks_clean_and_exhaustively(self, capsys):
        code = main(["mc", "--machine", "micro", "--tp", "full",
                     "--secrets", "0,1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "verdict: PASS" in out
        assert "exhaustive over the reachable state space" in out

    def test_no_pad_is_refuted_with_a_counterexample(self, capsys):
        code = main(["mc", "--machine", "micro", "--tp", "no-pad"])
        assert code == 1
        out = capsys.readouterr().out
        assert "verdict: FAIL" in out
        assert "counterexample" in out
        assert "path:" in out

    def test_json_format_round_trips(self, capsys):
        code = main(["mc", "--machine", "micro", "--tp", "no-pad",
                     "--secrets", "0,2", "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["machine"] == "micro"
        assert payload["tp"] == "no-pad"
        assert payload["passed"] is False
        assert payload["counterexamples"]
        cex = payload["counterexamples"][0]
        assert cex["depth"] == len(cex["path"])
        assert cex["violations"]

    def test_bad_secret_domain_exits_two(self, capsys):
        assert main(["mc", "--secrets", "0"]) == 2
        assert "two distinct secrets" in capsys.readouterr().err

    def test_unknown_machine_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mc", "--machine", "bogus"])


class TestChannels:
    def test_survey_reports_closed_channels(self, capsys):
        code = main(["channels", "--machine", "tiny", "--tp", "full",
                     "--only", "e5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "all surveyed channels closed" in out

    @pytest.mark.slow
    def test_survey_reports_leaks_without_protection(self, capsys):
        # E5 specifically needs flushing on (its channel is the flush
        # latency); the occupancy channel leaks under a fully bare kernel.
        code = main(["channels", "--machine", "tiny", "--tp", "none",
                     "--only", "occupancy"])
        assert code == 0
        assert "LEAKY" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["channels", "--only", "bogus"]) == 2


class TestLint:
    """Exit-code contract: 0 clean, 1 findings, 2 internal error."""

    def test_shipped_tree_exits_zero(self, capsys):
        code = main([
            "lint", str(REPO / "src" / "repro"),
            "--baseline", str(REPO / "statcheck.baseline.json"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "STATIC CONFORMANCE REPORT" in out
        assert "SC-1 [PASS]" in out
        assert "SC-2 [PASS]" in out
        assert "SC-3 [PASS]" in out

    def test_deleted_touch_exits_one_with_location(self, tmp_path, capsys):
        hardware = tmp_path / "hardware"
        shutil.copytree(REPO / "src" / "repro" / "hardware", hardware)
        cache_py = hardware / "cache.py"
        source = cache_py.read_text()
        needle = (
            "                self.instr.touch(self.name, set_index, "
            "TouchKind.EVICT)\n"
        )
        assert needle in source
        cache_py.write_text(source.replace(needle, "", 1))
        assert main(["lint", str(hardware)]) == 1
        out = capsys.readouterr().out
        assert "SC-1 [FAIL]" in out
        assert "cache.py:" in out  # file:line counterexample

    def test_inserted_wall_clock_exits_one_with_location(
        self, tmp_path, capsys
    ):
        kernel = tmp_path / "kernel"
        shutil.copytree(REPO / "src" / "repro" / "kernel", kernel)
        switch_py = kernel / "switch.py"
        needle = "        entered_at = core.clock.now\n"
        source = switch_py.read_text()
        assert needle in source
        switch_py.write_text(source.replace(
            needle, needle + "        import time; _t = time.time()\n"
        ))
        assert main(["lint", str(kernel)]) == 1
        out = capsys.readouterr().out
        assert "SC-2 [FAIL]" in out
        assert "switch.py:" in out

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "/no/such/tree"]) == 2
        assert "lint error" in capsys.readouterr().err

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        assert main(["lint", str(bad)]) == 2
        assert "lint error" in capsys.readouterr().err

    def test_unjustified_suppression_exits_two(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "suppressions": [{"key": "SC-2:x:*:wall-clock"}]
        }))
        code = main([
            "lint", str(REPO / "src" / "repro"),
            "--baseline", str(baseline),
        ])
        assert code == 2
        assert "justification" in capsys.readouterr().err

    def test_json_format(self, capsys):
        code = main([
            "lint", str(REPO / "src" / "repro"), "--format", "json",
            "--baseline", str(REPO / "statcheck.baseline.json"),
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["findings"] == []
        assert len(payload["suppressed"]) == 8
        assert payload["summary"] == {
            "SC-1": 0, "SC-2": 0, "SC-3": 0, "SC-4": 0,
        }

    def test_parallel_jobs_flag_clean(self, capsys):
        code = main([
            "lint", str(REPO / "src" / "repro"), "--jobs", "4",
            "--baseline", str(REPO / "statcheck.baseline.json"),
        ])
        assert code == 0
        assert "SC-4 [PASS]" in capsys.readouterr().out

    @staticmethod
    def _baseline_with_stale_entry(tmp_path):
        committed = json.loads(
            (REPO / "statcheck.baseline.json").read_text()
        )
        payload = dict(committed)
        payload["suppressions"] = list(committed["suppressions"]) + [
            {"key": "SC-2:no.such.module:*:wall-clock",
             "justification": "module was removed"},
        ]
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(payload))
        return baseline

    def test_stale_suppression_warns_by_default(self, tmp_path, capsys):
        baseline = self._baseline_with_stale_entry(tmp_path)
        code = main([
            "lint", str(REPO / "src" / "repro"),
            "--baseline", str(baseline),
        ])
        assert code == 0
        assert "stale suppression" in capsys.readouterr().out

    def test_stale_suppression_fails_under_strict(self, tmp_path, capsys):
        baseline = self._baseline_with_stale_entry(tmp_path)
        code = main([
            "lint", str(REPO / "src" / "repro"),
            "--baseline", str(baseline), "--strict",
        ])
        assert code == 2
        assert "stale" in capsys.readouterr().err

    def test_prune_baseline_rewrites_file(self, tmp_path, capsys):
        committed = json.loads(
            (REPO / "statcheck.baseline.json").read_text()
        )
        baseline = self._baseline_with_stale_entry(tmp_path)
        code = main([
            "lint", str(REPO / "src" / "repro"),
            "--baseline", str(baseline), "--prune-baseline",
        ])
        assert code == 0
        assert "pruned 1 stale" in capsys.readouterr().err
        after = json.loads(baseline.read_text())
        assert (
            [e["key"] for e in after["suppressions"]]
            == [e["key"] for e in committed["suppressions"]]
        )

    def test_committed_baseline_is_tight_under_strict(self, capsys):
        # What CI enforces: --prune-baseline would not change the
        # committed baseline, i.e. --strict passes.
        code = main([
            "lint", str(REPO / "src" / "repro"), "--strict",
            "--baseline", str(REPO / "statcheck.baseline.json"),
        ])
        assert code == 0


#: Minimal search budget: initial population plus one generation is
#: enough for a random population to find the open tiny/no-TP channel
#: (seed pinned), and finishes in seconds.
SYNTH_FAST = [
    "--generations", "1", "--population", "4",
    "--rounds", "4", "--sweep-rounds", "1", "--seed", "7",
]


class TestSynth:
    """Exit-code contract: 0 = no channel found (TP held against the
    search), 1 = channel discovered, 2 = bad environment."""

    def test_defaults(self):
        args = build_parser().parse_args(["synth"])
        assert args.machine == "tiny"
        assert args.tp == "full"
        assert args.victim == "set_hammer"
        assert args.jobs == 1

    def test_open_machine_finds_channel_and_exits_one(self, tmp_path, capsys):
        code = main([
            "synth", "--machine", "tiny", "--tp", "none", *SYNTH_FAST,
            "--store", str(tmp_path / "fit.jsonl"), "--quiet",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "CHANNEL FOUND above" in out
        assert "champion (gen " in out

    def test_full_tp_holds_and_exits_zero(self, tmp_path, capsys):
        code = main([
            "synth", "--machine", "tiny", "--tp", "full", *SYNTH_FAST,
            "--store", str(tmp_path / "fit.jsonl"), "--quiet",
        ])
        assert code == 0
        assert "no channel above" in capsys.readouterr().out

    def test_json_format_round_trips(self, tmp_path, capsys):
        code = main([
            "synth", "--machine", "tiny", "--tp", "none", *SYNTH_FAST,
            "--store", str(tmp_path / "fit.jsonl"), "--format", "json",
        ])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["found_channel"] is True
        assert payload["env"]["machine"] == "tiny"
        assert payload["env"]["tp"] == "none"
        champion = payload["report"]["champion"]
        assert champion["mutual_information_bits"] > payload["threshold_bits"]
        assert champion["genome"]["ops"]
        assert payload["report"]["history"]

    def test_save_writes_loadable_genomes(self, tmp_path, capsys):
        from repro.synth import load_genomes

        path = tmp_path / "genomes.json"
        code = main([
            "synth", "--machine", "tiny", "--tp", "none", *SYNTH_FAST,
            "--store", str(tmp_path / "fit.jsonl"),
            "--save", str(path), "--quiet",
        ])
        assert code == 1
        records = load_genomes(path)
        assert records
        assert records[0]["genome"]["ops"]
        assert records[0]["env"]["machine"] == "tiny"
        assert records[0]["env"]["tp"] == "none"

    def test_campaign_sweeps_saved_genomes(self, tmp_path, capsys):
        from repro.campaign.registry import ATTACKS, unregister_attack
        from repro.synth import PRIME_PROBE_GENOME, save_genomes
        from repro.synth.env import ChannelGuessEnv

        path = tmp_path / "genomes.json"
        env = ChannelGuessEnv(machine="tiny", tp="none", victim="set_hammer",
                              rounds_per_run=4, sweep_rounds=1)
        save_genomes(path, [PRIME_PROBE_GENOME], env=env)
        try:
            code = main([
                "campaign", "--genomes", str(path),
                "--machines", "tiny", "--tps", "none", "--attacks", "",
                "--seeds", "0", "--workers", "1", "--quiet",
                "--store", str(tmp_path / "campaign.jsonl"),
            ])
            assert code == 0
            out = capsys.readouterr().out
            assert "1 trial(s)" in out and "1 ok" in out
            store_lines = (tmp_path / "campaign.jsonl").read_text().splitlines()
            records = [json.loads(line) for line in store_lines]
            assert any(
                r["attack"] == "synth-0" and r["status"] == "ok"
                for r in records
            )
        finally:
            if "synth-0" in ATTACKS:
                unregister_attack("synth-0")

    def test_bad_genome_file_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"version\": 99, \"genomes\": []}")
        code = main(["campaign", "--genomes", str(bad)])
        assert code == 2
        assert "cannot load genomes" in capsys.readouterr().err

    def test_bad_victim_exits_two(self, capsys):
        code = main(["synth", "--victim", "bogus", *SYNTH_FAST])
        assert code == 2
        assert "invalid synth environment" in capsys.readouterr().err

"""Tests for the command-line interface."""

import pytest

from repro.cli import MACHINES, TP_CONFIGS, build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["prove"])
        assert args.machine == "tiny"
        assert args.tp == "full"

    def test_known_machines_and_configs(self):
        assert "tiny" in MACHINES and "smt" in MACHINES
        assert "full" in TP_CONFIGS and "none" in TP_CONFIGS
        # Every registered factory actually builds.
        for factory in MACHINES.values():
            factory()
        for config in TP_CONFIGS.values():
            config()


class TestInspect:
    def test_conforming_machine_exits_zero(self, capsys):
        assert main(["inspect", "--machine", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "conforms to the aISA contract" in out

    def test_violating_machine_exits_nonzero(self, capsys):
        assert main(["inspect", "--machine", "smt"]) == 1
        out = capsys.readouterr().out
        assert "VIOLATES" in out
        assert "unmanaged" in out


class TestProve:
    def test_protected_system_proves(self, capsys):
        code = main(
            ["prove", "--machine", "tiny", "--tp", "full",
             "--secrets", "1,9", "--max-cycles", "250000"]
        )
        assert code == 0
        assert "THEOREM HOLDS" in capsys.readouterr().out

    def test_unprotected_system_fails(self, capsys):
        code = main(
            ["prove", "--machine", "tiny", "--tp", "none",
             "--secrets", "1,9", "--max-cycles", "250000"]
        )
        assert code == 1
        assert "THEOREM FAILS" in capsys.readouterr().out


class TestChannels:
    def test_survey_reports_closed_channels(self, capsys):
        code = main(["channels", "--machine", "tiny", "--tp", "full",
                     "--only", "e5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "all surveyed channels closed" in out

    @pytest.mark.slow
    def test_survey_reports_leaks_without_protection(self, capsys):
        # E5 specifically needs flushing on (its channel is the flush
        # latency); the occupancy channel leaks under a fully bare kernel.
        code = main(["channels", "--machine", "tiny", "--tp", "none",
                     "--only", "occupancy"])
        assert code == 0
        assert "LEAKY" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["channels", "--only", "bogus"]) == 2

"""CAT-style way partitioning as an alternative to page colouring.

Sect. 4.1 requires only that concurrently-shared state be *partitioned*;
page colouring is the software-only mechanism, but hardware way
allocation (Intel CAT) satisfies the same obligation.  These tests show
the way-partitioned kernel (a) enforces its quotas, (b) closes the
concurrent LLC channel that colouring closes, (c) passes the full proof,
and (d) rescues the single-colour-LLC machine that colouring cannot
protect.
"""

import pytest

from repro.attacks import primeprobe
from repro.core import check_all, prove_time_protection, secret_swap_experiment
from repro.hardware import presets
from repro.hardware.cache import Cache, LatencyParams
from repro.hardware.geometry import CacheGeometry
from repro.hardware.state import Scope, StateCategory
from repro.kernel import Kernel, TimeProtectionConfig

from tests.conftest import build_two_domain_system

WAY_TP = TimeProtectionConfig.full_with_way_partitioning()


class TestCacheQuotaMechanism:
    def _partitioned_cache(self):
        cache = Cache(
            name="llc",
            geometry=CacheGeometry(sets=8, ways=8, line_size=32),
            category=StateCategory.PARTITIONABLE,
            scope=Scope.SHARED,
            latency=LatencyParams(hit_cycles=40),
            page_size=256,
        )
        cache.set_way_quotas({"A": 3, "B": 3, "@kernel": 2})
        return cache

    def _fill_as(self, cache, owner, addresses):
        cache.instr.set_context(owner, 0, 0)
        for address in addresses:
            cache.access(address)

    def test_quota_caps_occupancy(self):
        cache = self._partitioned_cache()
        stride = 8 * 32  # same set
        self._fill_as(cache, "A", [i * stride for i in range(6)])
        assert cache.occupancy_by_owner(0)["A"] == 3
        assert cache.quotas_respected()

    def test_partitions_do_not_evict_each_other(self):
        cache = self._partitioned_cache()
        stride = 8 * 32
        self._fill_as(cache, "A", [i * stride for i in range(3)])
        self._fill_as(cache, "B", [(100 + i) * stride for i in range(20)])
        # All of A's lines survived B's thrashing.
        cache.instr.set_context("A", 0, 0)
        for i in range(3):
            assert cache.access(i * stride).hit is True

    def test_over_commit_rejected(self):
        cache = self._partitioned_cache()
        with pytest.raises(ValueError):
            cache.set_way_quotas({"A": 5, "B": 5})

    def test_no_violations_under_disjoint_quotas(self):
        cache = self._partitioned_cache()
        stride = 8 * 32
        for owner in ("A", "B", "@kernel"):
            self._fill_as(cache, owner, [(hash(owner) % 7 + i) * stride
                                         for i in range(10)])
        assert cache.quota_violations == []

    def test_flush_clears_owners(self):
        cache = self._partitioned_cache()
        self._fill_as(cache, "A", [0, 32, 64])
        cache.flush()
        assert cache.fingerprint() == cache.reset_fingerprint()


class TestWayPartitionedKernel:
    def test_domain_creation_installs_quotas(self):
        kernel = Kernel(presets.tiny_machine(), WAY_TP)
        kernel.create_domain("A", llc_ways=2)
        kernel.create_domain("B", llc_ways=2)
        quotas = kernel.machine.llc.way_quota
        assert quotas["@kernel"] >= 1
        assert quotas["A"] == 2 and quotas["B"] == 2

    def test_over_allocation_rejected(self):
        kernel = Kernel(presets.tiny_machine(), WAY_TP)
        kernel.create_domain("A", llc_ways=4)
        with pytest.raises(ValueError):
            kernel.create_domain("B", llc_ways=99)

    def test_noninterference_holds(self):
        result = secret_swap_experiment(
            lambda secret: build_two_domain_system(secret, WAY_TP),
            1,
            9,
            observer_domain="Lo",
        )
        assert result.holds, str(result)

    def test_all_obligations_pass(self):
        kernel = build_two_domain_system(5, WAY_TP)
        failed = [r for r in check_all(kernel) if not r.passed]
        assert not failed, "\n".join(str(r) for r in failed)

    def test_full_proof_holds(self):
        report = prove_time_protection(
            lambda s: build_two_domain_system(s, WAY_TP),
            secrets=[1, 9],
            observer="Lo",
        )
        assert report.holds


class TestWayPartitioningClosesLlcChannel:
    def test_concurrent_llc_channel_closed(self):
        result = primeprobe.llc_experiment(
            WAY_TP,
            lambda: presets.tiny_machine(n_cores=2),
            symbols=[1, 6],
            rounds_per_run=5,
        )
        assert result.capacity_bits() < 1e-3

    def test_rescues_single_colour_llc_machine(self):
        # Colouring is impossible on a one-colour LLC (E9); CAT-style
        # ways still partition it, and the proof goes through again.
        report = prove_time_protection(
            lambda s: build_two_domain_system(
                s,
                WAY_TP,
                machine_factory=lambda: presets.tiny_nocolour_machine(n_cores=1),
            ),
            secrets=[1, 9],
            observer="Lo",
        )
        assert report.holds, "\n".join(
            str(o) for o in report.failed_obligations()
        )

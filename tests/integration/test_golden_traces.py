"""Golden-trace equivalence: the engine must reproduce recorded traces.

The fast-path engine's correctness claim is *bit-identical observable
behaviour*: every value and every timestamp Lo observes must match what
the original engine produced.  These tests pin that claim to committed
evidence: ``tests/golden/*.json`` holds Lo's full observation trace
(thread, value, latency triples), final per-core cycle counts, step
counts, and the pooled channel samples for each (machine x attack x tp)
case, captured from the pre-optimisation engine.  Any engine change that
shifts a single latency by a single cycle fails these tests.

Regenerate (only when an *intentional* behaviour change is reviewed)::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/integration/test_golden_traces.py

The mutation test proves the harness can fail: a one-cycle change to one
latency constant must break the recorded traces.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path

import pytest

from repro.attacks import flushreload, primeprobe, switch_latency
from repro.hardware import presets
from repro.hardware.machine import Machine
from repro.kernel.timeprotect import TimeProtectionConfig

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "golden"
REGEN = bool(os.environ.get("REGEN_GOLDEN"))

_MACHINES = {
    "tiny": presets.tiny_machine,
    # Single-core desktop: these are all time-shared (same-core) channels.
    "desktop": lambda: presets.desktop_machine(n_cores=1),
    # Targeted presets (see _EXTRA_CASES): the model checker's machine
    # and the contract-violating prefetcher-without-flush part.
    "micro": presets.micro_machine,
    "tiny_unflushable": presets.tiny_unflushable_machine,
}

# Machines swept against the full attack product; the targeted presets
# above only appear in _EXTRA_CASES to keep the suite's runtime sane.
_PRODUCT_MACHINES = ("desktop", "tiny")

_TPS = {
    "none": TimeProtectionConfig.none,
    "full": TimeProtectionConfig.full,
}


def _run_primeprobe_l1(tp, machine_factory, on_kernel):
    return primeprobe.l1_experiment(
        tp, machine_factory, symbols=(2, 4), rounds_per_run=4,
        on_kernel=on_kernel,
    )


def _run_flushreload(tp, machine_factory, on_kernel):
    return flushreload.experiment(
        tp, machine_factory, rounds_per_run=4, sweep_rounds=1,
        on_kernel=on_kernel,
    )


def _run_switch_latency(tp, machine_factory, on_kernel):
    return switch_latency.experiment(
        tp, machine_factory, symbols=(1, 6), rounds_per_run=5,
        on_kernel=on_kernel,
    )


def _run_prefetch_residue(tp, machine_factory, on_kernel):
    # The one attack in the suite that reads *prefetcher* state: the
    # evolved residue genome against the stream_strider victim (see
    # repro.synth.runner).  Golden-pinning it keeps the StridePrefetcher
    # model and its batch-engine counterpart honest cycle-for-cycle.
    from repro.synth.runner import (
        PREFETCH_RESIDUE_GENOME,
        PREFETCH_RESIDUE_VICTIM_PARAMS,
        experiment,
    )

    return experiment(
        tp, machine_factory, PREFETCH_RESIDUE_GENOME,
        victim="stream_strider", symbols=(1, 3), rounds_per_run=4,
        data_pages=6, hi_data_pages=8,
        victim_params=PREFETCH_RESIDUE_VICTIM_PARAMS,
        on_kernel=on_kernel,
    )


_ATTACKS = {
    "primeprobe_l1": _run_primeprobe_l1,
    "flushreload": _run_flushreload,
    "switch_latency": _run_switch_latency,
    "prefetch_residue": _run_prefetch_residue,
}

# Targeted cases outside the full product: micro exercises the 4-set
# direct-mapped/bimodal geometry (tp none only -- its 128 B pages leave
# the colouring allocator no headroom for the attacks' working sets
# under tp full), tiny_unflushable the un-clearable prefetcher (where
# the residue channel survives tp full -- the paper's Sect. 4.1
# violation made golden evidence).
_EXTRA_CASES = [
    ("micro", "flushreload", "none"),
    ("micro", "primeprobe_l1", "none"),
    ("micro", "switch_latency", "none"),
    ("tiny_unflushable", "switch_latency", "none"),
    ("tiny_unflushable", "switch_latency", "full"),
    ("tiny_unflushable", "prefetch_residue", "none"),
    ("tiny_unflushable", "prefetch_residue", "full"),
]

CASES = [
    (machine, attack, tp)
    for machine in _PRODUCT_MACHINES
    for attack in sorted(attack for attack in _ATTACKS
                         if attack != "prefetch_residue")
    for tp in sorted(_TPS)
] + _EXTRA_CASES


def case_id(machine: str, attack: str, tp: str) -> str:
    return f"{machine}__{attack}__tp-{tp}"


def capture_case(machine: str, attack: str, tp: str, machine_factory=None) -> dict:
    """Run one golden case and serialise everything Lo can observe.

    ``machine_factory`` overrides the preset (the mutation test injects a
    perturbed machine this way).
    """
    factory = machine_factory or _MACHINES[machine]
    runs = []

    def on_kernel(kernel):
        runs.append({
            "trace": [list(entry) for entry in kernel.observation_trace("Lo")],
            "final_cycles": [core.clock.now for core in kernel.machine.cores],
            "total_steps": kernel.total_steps,
            "n_switches": len(kernel.switch_records),
        })

    result = _ATTACKS[attack](_TPS[tp](), factory, on_kernel)
    payload = {
        "case": case_id(machine, attack, tp),
        "machine": machine,
        "attack": attack,
        "tp": tp,
        "runs": runs,
        "samples": [list(sample) for sample in result.samples],
    }
    # JSON round-trip normalises tuples/ints so captured payloads compare
    # equal to loaded golden files.
    return json.loads(json.dumps(payload))


def golden_path(machine: str, attack: str, tp: str) -> Path:
    return GOLDEN_DIR / f"{case_id(machine, attack, tp)}.json"


@pytest.mark.parametrize("machine,attack,tp", CASES,
                         ids=[case_id(*case) for case in CASES])
def test_engine_reproduces_golden_trace(machine, attack, tp):
    path = golden_path(machine, attack, tp)
    if REGEN:
        payload = capture_case(machine, attack, tp)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {path.name}")
    if not path.exists():
        pytest.fail(
            f"missing golden file {path.name}; generate with REGEN_GOLDEN=1"
        )
    golden = json.loads(path.read_text())
    fresh = capture_case(machine, attack, tp)
    # Compare piecewise first so a mismatch names the diverging part
    # instead of dumping two multi-thousand-line payloads.
    for index, (golden_run, fresh_run) in enumerate(
        zip(golden["runs"], fresh["runs"])
    ):
        for key in ("final_cycles", "total_steps", "n_switches", "trace"):
            assert fresh_run[key] == golden_run[key], (
                f"{path.name}: run {index} diverges in {key!r}"
            )
    assert fresh["samples"] == golden["samples"], f"{path.name}: samples diverge"
    assert fresh == golden


class TestHarnessCanFail:
    """Perturbing one latency constant must break the golden traces.

    If a one-cycle DRAM latency change slipped through these tests, the
    golden files would be decorative.  This is the mutation check that
    proves they are load-bearing.
    """

    @staticmethod
    def _perturbed_tiny() -> Machine:
        config = presets.tiny_config()
        config.latency = dataclasses.replace(
            config.latency, dram_cycles=config.latency.dram_cycles + 1
        )
        return Machine(config)

    @pytest.mark.skipif(REGEN, reason="regenerating goldens")
    def test_one_cycle_latency_perturbation_detected(self):
        machine, attack, tp = "tiny", "switch_latency", "none"
        path = golden_path(machine, attack, tp)
        if not path.exists():
            pytest.fail(f"missing golden file {path.name}")
        golden = json.loads(path.read_text())
        mutated = capture_case(
            machine, attack, tp, machine_factory=self._perturbed_tiny
        )
        assert mutated != golden, (
            "a +1 cycle DRAM latency perturbation left every golden "
            "observation unchanged: the traces do not constrain timing"
        )

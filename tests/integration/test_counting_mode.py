"""Differential tests for the counting-instrumentation fast path.

Counting mode sheds per-index touch evidence for sweep throughput; it
must not change anything a channel measurement can observe.  The tests
here run the same (machine x tp x attack x seed) trial under both
instrumentation modes and require bit-identical derived statistics,
then check the guard rails: the proof layer refuses counting-mode
machines, and the config/spec layers validate the mode string.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.campaign.registry import ATTACKS, MACHINES, TP_CONFIGS
from repro.campaign.spec import CampaignSpec, TrialSpec
from repro.campaign.worker import run_trial
from repro.core import AbstractHardwareModel
from repro.hardware.state import InstrumentationMode
from repro.kernel import Kernel, TimeProtectionConfig


def _run_attack(attack: str, instrumentation: str, seed: int = 7):
    tp = replace(TP_CONFIGS["full"](), instrumentation=instrumentation)
    random.seed(seed)
    return ATTACKS[attack].run(
        tp, MACHINES["tiny"], {"symbols": (1, 6), "rounds_per_run": 3}
    )


class TestFullVsCountingDifferential:
    @pytest.mark.parametrize("attack", ["e5", "occupancy"])
    def test_stats_are_bit_identical(self, attack):
        full = _run_attack(attack, "full")
        counting = _run_attack(attack, "counting")
        assert counting.stats() == full.stats()
        assert counting.samples == full.samples

    def test_worker_trials_agree_across_modes(self, tmp_path):
        records = {}
        for mode in ("full", "counting"):
            trial = TrialSpec(
                machine="tiny",
                tp="none",
                attack="e5",
                seed=3,
                params={"symbols": (1, 8), "rounds_per_run": 3},
                instrumentation=mode,
            )
            records[mode] = run_trial(trial.to_payload())
        assert records["full"]["status"] == "ok"
        assert records["counting"]["status"] == "ok"
        assert (
            records["counting"]["result"]["stats"]
            == records["full"]["result"]["stats"]
        )
        # Distinct result-store keys: counting runs never shadow full runs.
        assert records["full"]["key"] != records["counting"]["key"]
        assert records["counting"]["key"].endswith("/instr=counting")


class TestCountingGuardRails:
    def test_proof_layer_refuses_counting_machines(self):
        machine = MACHINES["tiny"]()
        machine.use_counting_instrumentation()
        assert machine.instrumentation.mode is InstrumentationMode.COUNTING
        with pytest.raises(ValueError, match="counting"):
            AbstractHardwareModel.from_machine(machine)

    def test_full_mode_machine_still_extractable(self):
        machine = MACHINES["tiny"]()
        model = AbstractHardwareModel.from_machine(machine)
        assert model.elements

    def test_kernel_applies_counting_from_config(self):
        machine = MACHINES["tiny"]()
        tp = replace(TimeProtectionConfig.none(), instrumentation="counting")
        Kernel(machine, tp)
        assert machine.instrumentation.mode is InstrumentationMode.COUNTING

    def test_config_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="instrumentation"):
            replace(TimeProtectionConfig.none(), instrumentation="sampled")

    def test_trial_spec_validates_mode(self):
        trial = TrialSpec(
            machine="tiny", tp="none", attack="e5", instrumentation="bogus"
        )
        with pytest.raises(KeyError, match="instrumentation"):
            trial.validate()

    def test_full_mode_key_is_unchanged(self):
        """Pre-existing result stores must keep resolving their keys."""
        trial = TrialSpec(machine="tiny", tp="full", attack="e5", seed=2)
        assert "instr" not in trial.key()

    def test_campaign_spec_round_trips_instrumentation(self):
        spec = CampaignSpec(
            machines=("tiny",),
            tps=("none",),
            attacks=("e5",),
            seeds=(0, 1),
            instrumentation="counting",
        )
        rebuilt = CampaignSpec.from_dict(spec.to_dict())
        assert rebuilt.instrumentation == "counting"
        trials = rebuilt.trials()
        assert trials
        assert all(t.instrumentation == "counting" for t in trials)

    def test_counting_machine_still_counts_touches(self):
        machine = MACHINES["tiny"]()
        counting = machine.use_counting_instrumentation()
        machine.cores[0].l1d.access(0x100, write=True)
        assert sum(counting.touch_counts().values()) > 0

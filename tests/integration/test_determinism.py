"""Whole-system determinism: identical builds produce identical worlds.

Determinism is load-bearing for everything in this reproduction -- the
noninterference results are only meaningful if the *sole* source of
difference between two runs is the secret.
"""

from repro.kernel import TimeProtectionConfig

from tests.conftest import build_two_domain_system


def full_world(kernel):
    return (
        kernel.observation_trace("Hi"),
        kernel.observation_trace("Lo"),
        [
            (r.from_domain, r.to_domain, r.scheduled_at, r.released_at)
            for r in kernel.switch_records
        ],
        kernel.machine.fingerprint_all(),
        [c.clock.now for c in kernel.machine.cores],
    )


class TestDeterminism:
    def test_identical_builds_identical_worlds_tp_on(self):
        a = build_two_domain_system(5, TimeProtectionConfig.full())
        b = build_two_domain_system(5, TimeProtectionConfig.full())
        assert full_world(a) == full_world(b)

    def test_identical_builds_identical_worlds_tp_off(self):
        a = build_two_domain_system(5, TimeProtectionConfig.none())
        b = build_two_domain_system(5, TimeProtectionConfig.none())
        assert full_world(a) == full_world(b)

    def test_different_secrets_change_hi_world(self):
        a = build_two_domain_system(5, TimeProtectionConfig.full())
        b = build_two_domain_system(6, TimeProtectionConfig.full())
        assert a.observation_trace("Hi") != b.observation_trace("Hi")

    def test_switch_releases_are_schedule_aligned_under_padding(self):
        kernel = build_two_domain_system(5, TimeProtectionConfig.full())
        for record in kernel.switch_records:
            assert record.released_at == record.scheduled_at + (
                kernel.domains[record.from_domain].pad_cycles
            )

    def test_footprint_capture_does_not_change_timing(self):
        plain = build_two_domain_system(5, TimeProtectionConfig.full())
        audited = build_two_domain_system(
            5, TimeProtectionConfig.full(), capture_footprints=True
        )
        assert plain.observation_trace("Lo") == audited.observation_trace("Lo")
        assert [c.clock.now for c in plain.machine.cores] == [
            c.clock.now for c in audited.machine.cores
        ]

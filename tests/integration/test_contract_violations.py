"""E9 integration: on contract-violating hardware the proof fails for the
right reason AND a channel demonstrably remains despite full TP.

This is the paper's central conditional made testable: "for hardware
that honours this contract, we will be able to achieve our aim of proving
time protection" -- and, contrapositively, hardware that does not honour
it defeats both the proof and the protection.
"""

import pytest

from repro.core import check_all, prove_time_protection
from repro.core.absmodel import AbstractHardwareModel
from repro.hardware import Access, Compute, Halt, ReadTime, presets
from repro.kernel import Kernel, TimeProtectionConfig

from tests.conftest import build_two_domain_system


class TestUnflushablePrefetcher:
    def test_proof_fails_naming_the_prefetcher(self):
        report = prove_time_protection(
            lambda s: build_two_domain_system(
                s,
                TimeProtectionConfig.full(),
                machine_factory=presets.tiny_unflushable_machine,
            ),
            secrets=[1, 9],
            observer="Lo",
        )
        assert not report.holds
        po1 = report.obligations[0]
        assert not po1.passed
        assert any("prefetcher" in v for v in po1.violations)

    def test_prefetcher_state_survives_switches(self):
        kernel = build_two_domain_system(
            5,
            TimeProtectionConfig.full(),
            machine_factory=presets.tiny_unflushable_machine,
        )
        prefetcher = kernel.machine.cores[0].prefetcher
        assert prefetcher.fingerprint() != prefetcher.reset_fingerprint()


class TestBrokenFlush:
    def test_po3_catches_broken_hardware(self):
        kernel = build_two_domain_system(
            5,
            TimeProtectionConfig.full(),
            machine_factory=presets.tiny_broken_flush_machine,
        )
        results = {r.obligation_id: r for r in check_all(kernel)}
        assert not results["PO-3"].passed

    def test_noninterference_violated_despite_full_tp(self):
        # Residue in the "flushed" L1D carries the secret across the
        # switch: the spy's traversal time differs between secrets.
        report = prove_time_protection(
            lambda s: build_two_domain_system(
                s,
                TimeProtectionConfig.full(),
                machine_factory=presets.tiny_broken_flush_machine,
            ),
            secrets=[1, 9],
            observer="Lo",
        )
        assert not report.holds


class TestSmtMachine:
    def test_model_refuses_smt(self):
        model = AbstractHardwareModel.from_machine(presets.tiny_smt_machine())
        assert not model.conforms_to_aisa()

    def test_concurrent_l1_channel_despite_flushing(self):
        """Hyperthread trojan perturbs its sibling's L1 while both run --
        flushing at domain switches cannot help concurrent sharing."""

        def run(secret):
            machine = presets.tiny_smt_machine()
            kernel = Kernel(machine, TimeProtectionConfig.full())
            hi = kernel.create_domain("Hi", n_colours=2, slice_cycles=50_000)
            lo = kernel.create_domain("Lo", n_colours=2, slice_cycles=50_000)

            def trojan(ctx):
                while True:
                    for i in range(secret):
                        yield Access(
                            ctx.data_base + (i * ctx.line_size) % ctx.data_size,
                            write=True,
                            value=i,
                        )
                    yield Compute(40)

            def spy(ctx):
                latencies = ctx.params["latencies"]
                for round_index in range(60):
                    t0 = yield ReadTime()
                    for i in range(8):
                        yield Access(ctx.data_base + i * ctx.line_size)
                    t1 = yield ReadTime()
                    latencies.append(t1.value - t0.value)
                yield Halt()

            latencies = []
            kernel.create_thread(hi, trojan, core_id=1)
            kernel.create_thread(lo, spy, core_id=0, params={"latencies": latencies})
            kernel.set_schedule(0, [(lo, None)])
            kernel.set_schedule(1, [(hi, None)])
            kernel.run(max_cycles=400_000)
            return latencies

        quiet = run(secret=1)
        noisy = run(secret=12)
        assert sum(noisy) > sum(quiet)


class TestNoColourLlc:
    def test_proof_fails_and_names_llc(self):
        report = prove_time_protection(
            lambda s: build_two_domain_system(
                s,
                TimeProtectionConfig.full(),
                machine_factory=lambda: presets.tiny_nocolour_machine(n_cores=1),
            ),
            secrets=[1, 9],
            observer="Lo",
        )
        assert not report.holds
        po1 = report.obligations[0]
        assert any("llc" in v for v in po1.violations)

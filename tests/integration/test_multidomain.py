"""Three-domain systems: pairwise noninterference and resource carving.

The paper's policy model is not hierarchical (Sect. 2: "there may be
other secrets for which the roles of the domains are reversed"), so time
protection must hold *pairwise* between arbitrary domains.  These tests
run a three-domain system -- two secret holders and an observer -- and
check every direction: the observer learns nothing from either secret
domain, and each secret domain learns nothing from the other.
"""

import pytest

from repro.core import check_all, secret_swap_experiment
from repro.hardware import Access, Compute, Halt, ReadTime, Syscall, presets
from repro.kernel import Kernel, TimeProtectionConfig


def secret_program(ctx):
    secret = ctx.params["secret"]
    for i in range(50):
        yield Access(
            ctx.data_base + (i * (secret + 1) * ctx.line_size) % ctx.data_size,
            write=True,
            value=i,
        )
        if i % 7 == 0:
            yield Syscall("nop")
    # Keep running (and keep observing own timing) forever.
    while True:
        yield ReadTime()
        yield Compute(25)


def observer_program(ctx):
    for i in range(100):
        yield ReadTime()
        yield Access(ctx.data_base + (i * ctx.line_size) % ctx.data_size)
    yield Halt()


def build_three_domain(secret_a, secret_b, tp=None, max_cycles=450_000):
    machine = presets.tiny_machine()
    kernel = Kernel(machine, tp or TimeProtectionConfig.full())
    domain_a = kernel.create_domain("A", n_colours=2, slice_cycles=3000)
    domain_b = kernel.create_domain("B", n_colours=2, slice_cycles=2500)
    observer = kernel.create_domain("Obs", n_colours=2, slice_cycles=3500)
    kernel.create_thread(domain_a, secret_program, params={"secret": secret_a})
    kernel.create_thread(domain_b, secret_program, params={"secret": secret_b})
    kernel.create_thread(observer, observer_program)
    kernel.set_schedule(
        0, [(domain_a, None), (observer, None), (domain_b, None)]
    )
    kernel.run(max_cycles=max_cycles)
    return kernel


class TestThreeDomains:
    def test_colours_carved_three_ways(self):
        kernel = build_three_domain(1, 2)
        assignments = kernel.allocator.assignments()
        domains = [assignments["A"], assignments["B"], assignments["Obs"]]
        for i in range(3):
            for j in range(i + 1, 3):
                assert not (domains[i] & domains[j])

    def test_obligations_pass(self):
        kernel = build_three_domain(3, 4)
        failed = [r for r in check_all(kernel) if not r.passed]
        assert not failed, "\n".join(str(r) for r in failed)

    def test_observer_blind_to_first_secret(self):
        result = secret_swap_experiment(
            lambda s: build_three_domain(s, 5), 1, 9, observer_domain="Obs"
        )
        assert result.holds, str(result)

    def test_observer_blind_to_second_secret(self):
        result = secret_swap_experiment(
            lambda s: build_three_domain(5, s), 1, 9, observer_domain="Obs"
        )
        assert result.holds, str(result)

    def test_secret_domains_blind_to_each_other(self):
        # A's own observations must not depend on B's secret, and vice
        # versa -- the "roles reversed" requirement.
        result_a = secret_swap_experiment(
            lambda s: build_three_domain(5, s), 1, 9, observer_domain="A"
        )
        assert result_a.holds, str(result_a)
        result_b = secret_swap_experiment(
            lambda s: build_three_domain(s, 5), 1, 9, observer_domain="B"
        )
        assert result_b.holds, str(result_b)

    def test_everyone_leaks_without_protection(self):
        result = secret_swap_experiment(
            lambda s: build_three_domain(s, 5, tp=TimeProtectionConfig.none()),
            1,
            9,
            observer_domain="Obs",
        )
        assert not result.holds

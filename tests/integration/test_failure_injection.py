"""Failure injection: the obligations catch buggy kernels, not just
disabled mechanisms.

A proof checker is only worth its name if it cannot be satisfied
vacuously.  Each test here plants one specific *implementation bug* in an
otherwise fully-configured kernel -- a forgotten flush, an early release,
a mis-coloured frame, a leaked IRQ unmask -- and requires the matching
obligation to fail and name it.
"""

import pytest

from repro.core import check_all
from repro.core.obligations import (
    po2_partitioning,
    po3_flush_on_switch,
    po4_constant_time_switch,
    po6_interrupt_partitioning,
)
from repro.hardware import presets
from repro.kernel import Kernel, TimeProtectionConfig

from tests.conftest import (
    build_two_domain_system,
    secret_striding_trojan,
    timing_observer,
)


def build_with(patch, machine_factory=presets.tiny_machine, run_cycles=300_000):
    """Standard system with a bug-planting hook applied before the run."""
    machine = machine_factory()
    kernel = Kernel(machine, TimeProtectionConfig.full())
    hi = kernel.create_domain("Hi", n_colours=2, slice_cycles=3000)
    lo = kernel.create_domain("Lo", n_colours=2, slice_cycles=3000)
    kernel.create_thread(hi, secret_striding_trojan, params={"secret": 5})
    kernel.create_thread(lo, timing_observer)
    kernel.set_schedule(0, [(hi, None), (lo, None)])
    patch(kernel)
    kernel.run(max_cycles=run_cycles)
    return kernel


class TestForgottenFlush:
    def test_po3_catches_a_skipped_element(self):
        def plant(kernel):
            original = kernel.machine.flushable_elements_of_core

            def buggy(core_id):
                # "Forgets" the TLB on every switch.
                return [
                    element
                    for element in original(core_id)
                    if not element.name.endswith(".tlb")
                ]

            kernel.switch_path.machine.flushable_elements_of_core = buggy

        kernel = build_with(plant)
        # Restore the truthful view for the audit itself.
        kernel.switch_path.machine.flushable_elements_of_core = type(
            kernel.machine
        ).flushable_elements_of_core.__get__(kernel.machine)
        result = po3_flush_on_switch(kernel)
        assert not result.passed
        assert any("tlb" in violation for violation in result.violations)


class TestEarlyRelease:
    def test_po4_catches_a_shortened_pad(self):
        def plant(kernel):
            original = kernel.switch_path.execute

            def buggy(core, from_domain, to_domain, scheduled_at):
                record = original(core, from_domain, to_domain, scheduled_at)
                # A "clever optimisation": report release at the pad
                # target but cut the actual pad short next time by
                # shrinking the domain's pad attribute mid-flight.
                from_domain.pad_cycles = max(100, from_domain.pad_cycles - 4000)
                return record

            kernel.switch_path.execute = buggy

        kernel = build_with(plant)
        result = po4_constant_time_switch(kernel)
        assert not result.passed
        assert any("!= pad" in violation for violation in result.violations)


class TestMiscolouredFrame:
    def test_po2_catches_cross_partition_allocation(self):
        def plant(kernel):
            # The allocator "helpfully" hands Lo one of Hi's frames for
            # its next mapping: map a Hi-coloured frame into Lo's space.
            hi = kernel.domains["Hi"]
            lo = kernel.domains["Lo"]
            frame = kernel.allocator.alloc_for_domain(hi.name, 1)[0]
            lo_tcb = lo.threads[0]
            # Replace the first data page with the foreign-coloured frame.
            lo_tcb.space.map(0x0100_0000, frame, writable=True)

        kernel = build_with(plant)
        result = po2_partitioning(kernel)
        assert not result.passed
        assert any(
            "Lo" in violation and "outside allowed" in violation
            for violation in result.violations
        )


class TestLeakedUnmask:
    def test_po6_catches_a_mask_bypass(self):
        def plant(kernel):
            # IRQ partitioning "enabled", but a driver bug leaves every
            # line unmasked whenever masks are (re)programmed.
            def buggy_apply(irq, running):
                irq.set_mask_all_except(set(range(irq.n_lines)))

            kernel.irq_policy.apply_masks = buggy_apply
            # A stream of device completions; with the mask bypass, some
            # inevitably land while the non-owner (Lo) is running.
            kernel.irq_policy.assign(3, kernel.domains["Hi"])
            for index in range(40):
                kernel.machine.cores[0].irq.schedule(
                    line=3, fire_time=5_000 + index * 2_777
                )
            kernel.irq_policy.apply_masks(
                kernel.machine.cores[0].irq, kernel.domains["Hi"]
            )

        kernel = build_with(plant)
        result = po6_interrupt_partitioning(kernel)
        assert not result.passed
        assert any("owner" in violation for violation in result.violations)


class TestBugFreeBaseline:
    def test_unpatched_system_passes_everything(self):
        kernel = build_with(lambda kernel: None)
        results = check_all(kernel)
        failed = [r for r in results if not r.passed]
        assert not failed, "\n".join(str(r) for r in failed)

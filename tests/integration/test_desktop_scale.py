"""The desktop-scale machine: everything still holds at realistic geometry.

The `desktop` preset is sized like a small x86 part (4 KiB pages, 64-set
8-way L1s, a 4 MiB 16-way LLC with 64 colours, 64-entry TLB).  These
tests re-establish the core results there, confirming nothing about the
tiny machine's geometry was load-bearing.
"""

import pytest

from repro.core import (
    AbstractHardwareModel,
    check_all,
    secret_swap_experiment,
)
from repro.hardware import presets
from repro.kernel import TimeProtectionConfig

from tests.conftest import build_two_domain_system

pytestmark = pytest.mark.slow


def build(secret, tp=TimeProtectionConfig.full()):
    return build_two_domain_system(
        secret,
        tp,
        machine_factory=presets.desktop_machine,
        max_cycles=1_500_000,
    )


class TestDesktopScale:
    def test_model_extraction(self):
        machine = presets.desktop_machine()
        model = AbstractHardwareModel.from_machine(machine)
        assert model.conforms_to_aisa()
        assert model.element("llc").n_partitions == 64

    def test_pad_estimate_scales_with_geometry(self):
        from repro.kernel import Kernel

        tiny = Kernel(presets.tiny_machine())
        desktop = Kernel(presets.desktop_machine())
        assert desktop.pad_wcet_estimate > tiny.pad_wcet_estimate

    def test_obligations_pass(self):
        kernel = build(5)
        failed = [r for r in check_all(kernel) if not r.passed]
        assert not failed, "\n".join(str(r) for r in failed)

    def test_noninterference_holds(self):
        result = secret_swap_experiment(build, 3, 11, observer_domain="Lo")
        assert result.holds, str(result)

    def test_noninterference_fails_without_protection(self):
        result = secret_swap_experiment(
            lambda s: build(s, TimeProtectionConfig.none()),
            3,
            11,
            observer_domain="Lo",
        )
        assert not result.holds

    def test_l1_primeprobe_shape(self):
        from repro.attacks import primeprobe

        open_result = primeprobe.l1_experiment(
            TimeProtectionConfig.none(),
            presets.desktop_machine,
            symbols=[16, 48],
            rounds_per_run=5,
        )
        closed_result = primeprobe.l1_experiment(
            TimeProtectionConfig.full(),
            presets.desktop_machine,
            symbols=[16, 48],
            rounds_per_run=5,
        )
        assert open_result.capacity_bits() > 0.3
        assert closed_result.capacity_bits() < 1e-3

"""SC-2 scope must cover the analysis subsystem.

Since PR 6, ``analysis.capacity.mutual_information_from_samples`` is
the single MI estimator behind synth fitness *and* campaign reports:
an unseeded RNG or set-order dependency there silently breaks
same-seed reproducibility of every reported number.  The shipped
package must lint clean, and seeded violations must be caught.
"""

import shutil
from pathlib import Path

from repro.statcheck import run_lint
from repro.statcheck.runner import _SCOPE_SEGMENTS

REPO = Path(__file__).resolve().parents[2]


class TestAnalysisScope:
    def test_analysis_segment_is_in_sc2_scope(self):
        assert "analysis" in _SCOPE_SEGMENTS["SC-2"]

    def test_shipped_analysis_tree_lints_clean(self):
        report = run_lint(
            paths=[str(REPO / "src" / "repro" / "analysis")],
            baseline_path=str(REPO / "statcheck.baseline.json"),
        )
        assert report.clean, "\n".join(f.render() for f in report.findings)
        assert report.files_analyzed >= 3

    def test_seeded_global_rng_in_estimator_is_caught(self, tmp_path):
        analysis = tmp_path / "analysis"
        shutil.copytree(REPO / "src" / "repro" / "analysis", analysis)
        capacity = analysis / "capacity.py"
        source = capacity.read_text()
        needle = "def mutual_information_from_samples("
        assert needle in source, "capacity.py changed; update this fixture"
        capacity.write_text(source.replace(
            needle,
            "def _jitter():\n"
            "    import random\n"
            "    return random.random()\n\n\n" + needle,
            1,
        ))
        report = run_lint(paths=[str(analysis)])
        assert not report.clean
        assert any(
            f.checker == "SC-2" and f.rule == "global-rng"
            and f.path.endswith("capacity.py")
            for f in report.findings
        ), [f.render() for f in report.findings]

    def test_seeded_wall_clock_in_estimator_is_caught(self, tmp_path):
        analysis = tmp_path / "analysis"
        shutil.copytree(REPO / "src" / "repro" / "analysis", analysis)
        capacity = analysis / "capacity.py"
        source = capacity.read_text()
        needle = "def mutual_information_from_samples("
        assert needle in source, "capacity.py changed; update this fixture"
        capacity.write_text(source.replace(
            needle,
            "def _stamp():\n"
            "    import time\n"
            "    return time.time()\n\n\n" + needle,
            1,
        ))
        report = run_lint(paths=[str(analysis)])
        assert any(
            f.checker == "SC-2" and f.rule == "wall-clock"
            for f in report.findings
        ), [f.render() for f in report.findings]

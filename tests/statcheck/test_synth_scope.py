"""SC-2/SC-3 scope must cover the synth subsystem.

Discovered attacks are only as reproducible as the evolution loop is
deterministic: an unseeded RNG anywhere in ``src/repro/synth`` breaks
same-seed rediscovery silently, so the determinism checker owns that
tree from day one.  The shipped code must lint clean, and seeded
violations must be caught.
"""

import shutil
from pathlib import Path

from repro.statcheck import run_lint
from repro.statcheck.runner import _SCOPE_SEGMENTS

REPO = Path(__file__).resolve().parents[2]


class TestSynthScope:
    def test_synth_segment_is_in_sc2_and_sc3_scope(self):
        assert "synth" in _SCOPE_SEGMENTS["SC-2"]
        assert "synth" in _SCOPE_SEGMENTS["SC-3"]

    def test_shipped_synth_tree_lints_clean(self):
        report = run_lint(
            paths=[str(REPO / "src" / "repro" / "synth")],
            baseline_path=str(REPO / "statcheck.baseline.json"),
        )
        assert report.clean, "\n".join(f.render() for f in report.findings)
        assert report.files_analyzed >= 7

    def test_seeded_global_rng_in_search_is_caught(self, tmp_path):
        synth = tmp_path / "synth"
        shutil.copytree(REPO / "src" / "repro" / "synth", synth)
        search = synth / "search.py"
        source = search.read_text()
        needle = "class FamilyBandit:\n"
        assert needle in source, "search.py changed; update this fixture"
        search.write_text(source.replace(
            needle,
            "def _unseeded_pick(options):\n"
            "    import random\n"
            "    return random.random()\n\n\n" + needle,
            1,
        ))
        report = run_lint(paths=[str(synth)])
        assert not report.clean
        findings = [f for f in report.findings if f.checker == "SC-2"]
        assert any(
            f.rule == "global-rng" and f.path.endswith("search.py")
            for f in findings
        ), [f.render() for f in findings]

    def test_seeded_set_iteration_in_novelty_is_caught(self, tmp_path):
        synth = tmp_path / "synth"
        shutil.copytree(REPO / "src" / "repro" / "synth", synth)
        novelty = synth / "novelty.py"
        source = novelty.read_text()
        needle = "def touched_elements(\n"
        assert needle in source, "novelty.py changed; update this fixture"
        novelty.write_text(source.replace(
            needle,
            "def _unstable_listing(elements):\n"
            "    return [element for element in set(elements)]\n\n\n"
            + needle,
            1,
        ))
        report = run_lint(paths=[str(synth)])
        assert not report.clean
        findings = [f for f in report.findings if f.checker == "SC-2"]
        assert any(
            f.rule == "set-order" and f.path.endswith("novelty.py")
            for f in findings
        ), [f.render() for f in findings]

    def test_seeded_uninstrumented_element_is_caught(self, tmp_path):
        synth = tmp_path / "synth"
        shutil.copytree(REPO / "src" / "repro" / "synth", synth)
        victims = synth / "victims.py"
        source = victims.read_text()
        needle = "VICTIMS: Dict[str, object] = {\n"
        assert needle in source, "victims.py changed; update this fixture"
        victims.write_text(source.replace(
            needle,
            "class StateElement:\n"
            "    pass\n\n\n"
            "class _Scratchpad(StateElement):\n"
            "    pass\n\n\n"
            "def _rogue_scratchpad():\n"
            "    return _Scratchpad('scratchpad')\n\n\n" + needle,
            1,
        ))
        report = run_lint(paths=[str(synth)])
        assert not report.clean
        findings = [f for f in report.findings if f.checker == "SC-3"]
        assert any(
            f.rule == "uninstrumented-construction"
            and f.path.endswith("victims.py")
            for f in findings
        ), [f.render() for f in findings]

"""SC-2 determinism checker against the seeded fixture violations."""

from pathlib import Path

from repro.statcheck import run_lint

FIXTURES = Path(__file__).parent / "fixtures"


def lint_nondet():
    return run_lint(
        paths=[str(FIXTURES / "nondet.py")],
        checkers=["SC-2"],
        all_scopes=True,
    )


class TestDeterminism:
    def test_every_seeded_violation_found(self):
        report = lint_nondet()
        by_qualname = {f.qualname: f.rule for f in report.findings}
        assert by_qualname.get("wall_clock_read") == "wall-clock"
        assert by_qualname.get("perf_counter_read") == "wall-clock"
        assert by_qualname.get("unseeded_global_draw") == "global-rng"
        assert by_qualname.get("unseeded_instance") == "global-rng"
        assert by_qualname.get("entropy_read") == "entropy"
        assert by_qualname.get("address_ordering") == "hash-order"
        assert by_qualname.get("set_into_list") == "set-order"
        assert by_qualname.get("set_materialized") == "set-order"
        assert by_qualname.get("memo_subscript_load") == "id-key"
        assert by_qualname.get("memo_subscript_store") == "id-key"
        assert by_qualname.get("memo_get") == "id-key"
        assert by_qualname.get("memo_setdefault") == "id-key"

    def test_allowed_idioms_not_flagged(self):
        report = lint_nondet()
        flagged = {f.qualname for f in report.findings}
        assert not any(q.startswith("ok_") for q in flagged), flagged

    def test_findings_carry_file_and_line(self):
        report = lint_nondet()
        assert report.findings
        for finding in report.findings:
            assert finding.checker == "SC-2"
            assert finding.lineno > 0
            assert finding.path.endswith("nondet.py")


class TestRealTreeMutation:
    """Inserting time.time() into kernel/switch.py must trip SC-2."""

    REPO = Path(__file__).resolve().parents[2]
    NEEDLE = "        entered_at = core.clock.now\n"

    def test_inserted_wall_clock_read_is_caught(self, tmp_path):
        import shutil

        kernel = tmp_path / "kernel"
        shutil.copytree(self.REPO / "src" / "repro" / "kernel", kernel)
        switch_py = kernel / "switch.py"
        source = switch_py.read_text()
        assert self.NEEDLE in source, "switch.py changed; update the fixture"
        switch_py.write_text(source.replace(
            self.NEEDLE,
            self.NEEDLE + "        import time\n"
                          "        _skew = time.time()\n",
        ))
        report = run_lint(paths=[str(kernel)])
        assert not report.clean
        findings = [f for f in report.findings if f.checker == "SC-2"]
        assert len(findings) == 1
        assert findings[0].rule == "wall-clock"
        assert findings[0].qualname == "SwitchPath.execute"
        assert "switch.py" in findings[0].path

    def test_unmutated_kernel_is_clean(self, tmp_path):
        import shutil

        kernel = tmp_path / "kernel"
        shutil.copytree(self.REPO / "src" / "repro" / "kernel", kernel)
        report = run_lint(paths=[str(kernel)])
        assert report.clean

"""SC-4 fixture: seeded secret-flow violations and sanctioned conduits.

Parsed by the analyzer, never imported.  ``direct_leak`` writes a
secret straight into an observation trace (R1), ``implicit_leak``
branches on the secret into a sink-reaching write (R2), and
``record_leak`` smuggles it into a Lo-record constructor via a params
read (R1, interprocedural source form).  ``sanctioned_flow`` is the
allowed pattern -- the secret modulates *which line* is touched in a
``touch()``-instrumented element and only the resulting latency is
observed -- and must stay clean: that routing is the whole point of
time protection, not a leak.
"""


class StateElement:
    """Stand-in for repro.hardware.state.StateElement (matched by name)."""

    def __init__(self, name, instrumentation=None):
        self.name = name
        self.instr = instrumentation

    def _touch(self, index, kind):
        if self.instr is not None:
            self.instr.touch(self.name, index, kind)


class ConduitCache(StateElement):
    """A properly instrumented element: the sanctioned conduit."""

    def __init__(self, name, n_sets, instrumentation=None):
        super().__init__(name, instrumentation)
        self._sets = [[] for _ in range(n_sets)]
        self.n_sets = n_sets

    def access(self, paddr):
        self._touch(paddr % self.n_sets, "read")
        return 1 + len(self._sets[paddr % self.n_sets])


class ChannelResult:
    """Stand-in Lo-record type (matched by name)."""

    def __init__(self, samples=None, metadata=None):
        self.samples = samples
        self.metadata = metadata


def direct_leak(secret, trace):
    # VIOLATION (R1): the secret lands verbatim in the Lo-visible trace.
    trace.append(secret)


def implicit_leak(secret):
    # VIOLATION (R2): no tainted *value* reaches the sink, but the
    # secret decides which constant does -- the branch choice leaks.
    latency = 3
    if secret % 2:
        latency = 1
    samples = []
    samples.append((0, latency))
    return ChannelResult(samples=samples)


def record_leak(ctx):
    # VIOLATION (R1): a params["secret"] read folded into a Lo record.
    return ChannelResult(metadata={"hint": ctx.params["secret"]})


def sanctioned_flow(secret, cache, latencies):
    # OK: the secret picks the address, the address goes through the
    # instrumented element, and only the measured latency is observed.
    # This is the declared-state routing SC-4 exists to enforce.
    addr = secret % 16
    latency = cache.access(addr)
    latencies.append(latency)
    return latencies


def helper_passthrough(value, trace):
    # Interprocedural sink: callers passing taint into ``value`` leak.
    trace.append(value)


def interprocedural_leak(secret, trace):
    # VIOLATION (R1): the leak happens one call away.
    helper_passthrough(secret, trace)

"""SC-1 fixture: element classes with seeded footprint violations.

Parsed by the analyzer, never imported.  ``LeakyCache.access`` reads a
state container on a latency root without touching -- the exact bug
SC-1 exists to catch.  ``TouchingCache`` shows every allowed pattern:
reads under the entry point's own touch, helpers covered by an
instrumented caller, protocol-covered ``flush``, and audit accessors
off the latency path.
"""


class StateElement:
    """Stand-in for repro.hardware.state.StateElement (matched by name)."""

    def __init__(self, name, instrumentation=None):
        self.name = name
        self.instr = instrumentation

    def _touch(self, index, kind):
        if self.instr is not None:
            self.instr.touch(self.name, index, kind)


class LeakyCache(StateElement):
    def __init__(self, name, n_sets, instrumentation=None):
        super().__init__(name, instrumentation)
        self._sets = [[] for _ in range(n_sets)]
        self.n_sets = n_sets

    def access(self, paddr):
        # VIOLATION: latency depends on occupancy, but no touch records
        # the dependence.
        lines = self._sets[paddr % self.n_sets]
        return 1 + len(lines)


class TouchingCache(StateElement):
    def __init__(self, name, n_sets, instrumentation=None):
        super().__init__(name, instrumentation)
        self._sets = [[] for _ in range(n_sets)]
        self.n_sets = n_sets

    def access(self, paddr):
        self._touch(paddr % self.n_sets, "read")
        return self._lookup_cost(paddr)

    def _lookup_cost(self, paddr):
        # OK: covered by the instrumented caller (access touched).
        return len(self._sets[paddr % self.n_sets])

    def flush(self):
        # OK: flush latency is declared wholesale via its return value
        # (FlushResult protocol), audited dynamically by PO-3/PO-5.
        dirty = sum(len(lines) for lines in self._sets)
        self._sets = [[] for _ in range(self.n_sets)]
        return dirty

    def fingerprint(self):
        # OK: audit accessor, not reachable from any latency root.
        return tuple(tuple(lines) for lines in self._sets)


def peek_raw(cache):
    # VIOLATION: reaches into another object's private state container,
    # bypassing the instrumentation boundary entirely (SC-1 R2).
    return cache._sets[0]

"""SC-3 fixture: a machine that hides an element from the abstract model.

Parsed by the analyzer, never imported.  Violations seeded:

* ``ShadowBuffer`` is constructed without ``instrumentation=`` and its
  binding (``self.shadow``) never appears in ``all_state_elements()``.
* ``GhostPredictor`` is never constructed anywhere.
* ``BlindExtractor.from_machine`` ignores ``all_state_elements()``.
"""


class StateElement:
    def __init__(self, name, instrumentation=None):
        self.name = name
        self.instr = instrumentation


class TrackedCache(StateElement):
    def __init__(self, name, instrumentation=None):
        super().__init__(name, instrumentation)
        self._sets = []


class ShadowBuffer(StateElement):
    def __init__(self, name, instrumentation=None):
        super().__init__(name, instrumentation)
        self._entries = {}


class GhostPredictor(StateElement):
    """VIOLATION: never constructed by any machine in scope."""

    def __init__(self, name, instrumentation=None):
        super().__init__(name, instrumentation)
        self._counters = {}


class FixtureMachine:
    def __init__(self, instrumentation):
        self.instrumentation = instrumentation
        self.llc = TrackedCache("llc", instrumentation=instrumentation)
        # VIOLATION x2: no instrumentation= argument, and the binding is
        # invisible to all_state_elements() below.
        self.shadow = ShadowBuffer("shadow")

    def all_state_elements(self):
        return [self.llc]


class Extractor:
    @classmethod
    def from_machine(cls, machine):
        return list(machine.all_state_elements())


class BlindExtractor:
    @classmethod
    def from_machine(cls, machine):
        # VIOLATION: extracts a hard-coded attribute instead of the
        # enumeration -- new elements would be silently invisible.
        return [machine.llc]

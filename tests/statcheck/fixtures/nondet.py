"""SC-2 fixture: seeded determinism violations next to allowed idioms.

Parsed by the analyzer, never imported.  Each violating function is one
rule; the ``ok_*`` functions are patterns SC-2 must NOT flag.
"""

import os
import random
import time


def wall_clock_read():
    return time.time()  # VIOLATION: wall-clock


def perf_counter_read():
    return time.perf_counter()  # VIOLATION: wall-clock


def unseeded_global_draw():
    return random.randint(0, 10)  # VIOLATION: global-rng


def unseeded_instance():
    return random.Random()  # VIOLATION: global-rng (self-seeds from OS)


def entropy_read():
    return os.urandom(8)  # VIOLATION: entropy


def address_ordering(elements):
    return sorted(elements, key=lambda e: id(e))  # VIOLATION: hash-order


def set_into_list(tags):
    seen = {tag for tag in tags}
    out = []
    for tag in seen:  # VIOLATION: set-order (appends in set order)
        out.append(tag)
    return out


def set_materialized(tags):
    resident = set(tags)
    return list(resident)  # VIOLATION: set-order


def memo_subscript_load(table, element):
    return table[id(element)]  # VIOLATION: id-key


def memo_subscript_store(table, element, latency):
    table[id(element)] = latency  # VIOLATION: id-key


def memo_get(table, element):
    return table.get(id(element))  # VIOLATION: id-key


def memo_setdefault(table, element):
    return table.setdefault(id(element), [])  # VIOLATION: id-key


def ok_seeded_instance(seed):
    rng = random.Random(seed)
    return rng.randint(0, 10)


def ok_explicit_seed(seed):
    random.seed(seed)


def ok_sorted_set(tags):
    resident = set(tags)
    return sorted(resident)


def ok_membership_only(elements):
    seen = set()
    for element in elements:
        if id(element) not in seen:  # id() for identity, not ordering
            seen.add(id(element))
    return len(seen)


def ok_dict_iteration(table):
    out = []
    for key in table:  # dicts are insertion-ordered (3.7+)
        out.append(key)
    return out


def ok_sleep():
    time.sleep(0)  # not a clock *read*

"""SC-3 registry-completeness checker against the seeded fixtures."""

from pathlib import Path

from repro.statcheck import run_lint

FIXTURES = Path(__file__).parent / "fixtures"


def lint_registry():
    return run_lint(
        paths=[str(FIXTURES / "registry.py")],
        checkers=["SC-3"],
        all_scopes=True,
    )


class TestRegistryCompleteness:
    def test_unenumerated_element_flagged(self):
        report = lint_registry()
        hits = [f for f in report.findings if f.rule == "unenumerated-element"]
        assert len(hits) == 1
        assert "'shadow'" in hits[0].message
        assert hits[0].qualname == "FixtureMachine.__init__"

    def test_uninstrumented_construction_flagged(self):
        report = lint_registry()
        hits = [
            f for f in report.findings
            if f.rule == "uninstrumented-construction"
        ]
        assert len(hits) == 1
        assert "ShadowBuffer" in hits[0].message

    def test_never_constructed_element_flagged(self):
        report = lint_registry()
        hits = [f for f in report.findings if f.rule == "unregistered-element"]
        assert len(hits) == 1
        assert hits[0].qualname == "GhostPredictor"

    def test_blind_extraction_flagged(self):
        report = lint_registry()
        hits = [f for f in report.findings if f.rule == "blind-extraction"]
        assert len(hits) == 1
        assert hits[0].qualname == "BlindExtractor.from_machine"

    def test_enumerated_and_instrumented_element_clean(self):
        report = lint_registry()
        assert not any("TrackedCache" in f.message
                       for f in report.findings
                       if f.rule != "unregistered-element")
        assert not any(f.qualname == "Extractor.from_machine"
                       for f in report.findings)

    def test_real_machine_enumerates_everything(self):
        # The shipped Machine/Core/absmodel wiring is the positive case.
        repo = Path(__file__).resolve().parents[2]
        report = run_lint(
            paths=[str(repo / "src" / "repro")], checkers=["SC-3"]
        )
        assert report.clean, [f.render() for f in report.findings]

"""The shipped tree must lint clean against the committed baseline.

This is the static analogue of the repo's own proof: E8/E9 evidence
presumes these three checkers pass on the code that produced it.
"""

from pathlib import Path

from repro.statcheck import run_lint, to_obligation_results

REPO = Path(__file__).resolve().parents[2]


class TestCleanTree:
    def test_src_repro_lints_clean(self):
        report = run_lint(
            paths=[str(REPO / "src" / "repro")],
            baseline_path=str(REPO / "statcheck.baseline.json"),
        )
        assert report.clean, "\n".join(f.render() for f in report.findings)
        assert report.exit_code == 0
        assert report.checkers_run == ["SC-1", "SC-2", "SC-3", "SC-4"]
        assert report.files_analyzed > 50

    def test_parallel_parse_matches_serial(self):
        serial = run_lint(
            paths=[str(REPO / "src" / "repro")],
            baseline_path=str(REPO / "statcheck.baseline.json"),
        )
        parallel = run_lint(
            paths=[str(REPO / "src" / "repro")],
            baseline_path=str(REPO / "statcheck.baseline.json"),
            jobs=4,
        )
        assert parallel.files_analyzed == serial.files_analyzed
        assert (
            [f.to_json() for f in parallel.findings]
            == [f.to_json() for f in serial.findings]
        )
        assert (
            [f.to_json() for f in parallel.suppressed]
            == [f.to_json() for f in serial.suppressed]
        )
        assert parallel.stale_suppressions == serial.stale_suppressions

    def test_suppressions_limited_to_campaign_wall_clock(self):
        # The baseline must stay an explicit, narrow list: only the
        # campaign layer's operational wall-clock reads are waived.
        report = run_lint(
            paths=[str(REPO / "src" / "repro")],
            baseline_path=str(REPO / "statcheck.baseline.json"),
        )
        for finding in report.suppressed:
            assert finding.checker == "SC-2"
            assert finding.rule == "wall-clock"
            assert finding.module.startswith("repro.campaign.")

    def test_obligation_rendering_reads_like_proof_report(self):
        report = run_lint(
            paths=[str(REPO / "src" / "repro")],
            baseline_path=str(REPO / "statcheck.baseline.json"),
        )
        results = to_obligation_results(
            report.findings, report.checkers_run
        )
        rendered = [str(r) for r in results]
        assert any(r.startswith("SC-1 [PASS]") for r in rendered)
        assert any(r.startswith("SC-2 [PASS]") for r in rendered)
        assert any(r.startswith("SC-3 [PASS]") for r in rendered)
        assert any(r.startswith("SC-4 [PASS]") for r in rendered)

"""SC-2 scope must cover the model checker.

Fingerprints cross process boundaries (the parallel explorer shards the
frontier to fork workers by state hash), so any nondeterminism in
``src/repro/mc`` silently desynchronises workers.  The determinism
checker therefore owns that tree: the shipped code must lint clean, and
a seeded violation must be caught.
"""

import shutil
from pathlib import Path

from repro.statcheck import run_lint
from repro.statcheck.runner import _SCOPE_SEGMENTS

REPO = Path(__file__).resolve().parents[2]


class TestMcScope:
    def test_mc_segment_is_in_sc2_scope(self):
        assert "mc" in _SCOPE_SEGMENTS["SC-2"]

    def test_shipped_mc_tree_lints_clean(self):
        report = run_lint(
            paths=[str(REPO / "src" / "repro" / "mc")],
            baseline_path=str(REPO / "statcheck.baseline.json"),
        )
        assert report.clean, "\n".join(f.render() for f in report.findings)
        assert report.files_analyzed >= 7

    def test_seeded_wall_clock_in_explorer_is_caught(self, tmp_path):
        mc = tmp_path / "mc"
        shutil.copytree(REPO / "src" / "repro" / "mc", mc)
        explorer = mc / "explorer.py"
        source = explorer.read_text()
        needle = "        stats = McStats()\n"
        assert needle in source, "explorer.py changed; update this fixture"
        explorer.write_text(source.replace(
            needle,
            needle + "        import time\n"
                     "        _started = time.time()\n",
            1,
        ))
        report = run_lint(paths=[str(mc)])
        assert not report.clean
        findings = [f for f in report.findings if f.checker == "SC-2"]
        assert any(
            f.rule == "wall-clock" and f.path.endswith("explorer.py")
            for f in findings
        ), [f.render() for f in findings]

    def test_seeded_hash_ordering_in_fingerprint_is_caught(self, tmp_path):
        mc = tmp_path / "mc"
        shutil.copytree(REPO / "src" / "repro" / "mc", mc)
        fingerprint = mc / "fingerprint.py"
        source = fingerprint.read_text()
        needle = "DIGEST_SIZE = 16\n"
        assert needle in source, "fingerprint.py changed; update this fixture"
        fingerprint.write_text(source.replace(
            needle,
            needle + "\n\ndef _unstable_order(elements):\n"
                     "    return sorted(elements, key=lambda e: id(e))\n",
            1,
        ))
        report = run_lint(paths=[str(mc)])
        assert not report.clean
        findings = [f for f in report.findings if f.checker == "SC-2"]
        assert any(
            f.rule == "hash-order" and f.path.endswith("fingerprint.py")
            for f in findings
        ), [f.render() for f in findings]

"""SC-4 secret-taint checker against the seeded fixture flows."""

from pathlib import Path

from repro.statcheck import run_lint
from repro.statcheck.sanitizers import DECLASSIFIED_PARAMS

FIXTURES = Path(__file__).parent / "fixtures"


def lint_flows():
    return run_lint(
        paths=[str(FIXTURES / "flows.py")],
        checkers=["SC-4"],
        all_scopes=True,
    )


class TestDirectFlow:
    def test_trace_append_flagged(self):
        report = lint_flows()
        hits = [
            f for f in report.findings
            if f.rule == "direct-flow" and f.qualname == "direct_leak"
        ]
        assert len(hits) == 1
        assert "trace" in hits[0].message
        assert hits[0].location.endswith(f"flows.py:{hits[0].lineno}")

    def test_params_read_into_lo_record_flagged(self):
        report = lint_flows()
        hits = [
            f for f in report.findings if f.qualname == "record_leak"
        ]
        assert len(hits) == 1
        assert hits[0].rule == "direct-flow"
        assert "ChannelResult" in hits[0].message

    def test_interprocedural_leak_reported_at_call_site(self):
        report = lint_flows()
        hits = [
            f for f in report.findings
            if f.qualname == "interprocedural_leak"
        ]
        assert len(hits) == 1
        # The message names the callee whose sink the taint reaches.
        assert "helper_passthrough" in hits[0].message

    def test_helper_itself_not_flagged(self):
        # ``helper_passthrough(value, trace)`` has no secret of its own;
        # only callers that pass taint into it leak.
        report = lint_flows()
        assert "helper_passthrough" not in {
            f.qualname for f in report.findings
        }


class TestImplicitFlow:
    def test_secret_guarded_sink_write_flagged(self):
        report = lint_flows()
        hits = [
            f for f in report.findings if f.rule == "implicit-flow"
        ]
        assert len(hits) == 1
        assert hits[0].qualname == "implicit_leak"
        assert "latency" in hits[0].message


class TestSanctionedConduit:
    """The regression the ISSUE demands: secret -> Cache.access ->
    touch() -> latency is the *allowed* routing and must not flag."""

    def test_touch_routed_flow_not_flagged(self):
        report = lint_flows()
        assert "sanctioned_flow" not in {
            f.qualname for f in report.findings
        }

    def test_element_access_not_flagged(self):
        report = lint_flows()
        assert "ConduitCache.access" not in {
            f.qualname for f in report.findings
        }

    def test_fixture_exit_code_and_locations(self):
        report = lint_flows()
        assert report.exit_code == 1
        assert len(report.findings) == 4
        for finding in report.findings:
            assert finding.checker == "SC-4"
            assert "flows.py:" in finding.render()


class TestPolicyTables:
    def test_every_declassification_is_justified(self):
        # Declassifiers are policy exemptions; like baseline waivers,
        # an unexplained one is a configuration smell.
        for key, justification in DECLASSIFIED_PARAMS.items():
            assert len(key) == 3
            assert justification.strip(), key

    def test_harness_symbols_declassifier_present(self):
        # The one endorsed flow: the sweep's ground-truth label column.
        assert (
            "repro.attacks.harness", "run_symbol_sweep", "symbols"
        ) in DECLASSIFIED_PARAMS

"""SC-2/SC-3 scope must cover the batch engine.

The lockstep engine is bit-identical to the scalar one only while it
stays strictly deterministic: an unseeded RNG or an unordered-set walk
in ``src/repro/hardware/batch`` would break the differential contract
on some machine without failing loudly.  The tree rides in the
``hardware`` scope segment, so the shipped code must lint clean and
seeded violations must be caught.
"""

import shutil
from pathlib import Path

from repro.statcheck import run_lint
from repro.statcheck.runner import _SCOPE_SEGMENTS

REPO = Path(__file__).resolve().parents[2]


class TestBatchScope:
    def test_hardware_segment_covers_batch_in_sc2_and_sc3(self):
        assert "hardware" in _SCOPE_SEGMENTS["SC-2"]
        assert "hardware" in _SCOPE_SEGMENTS["SC-3"]

    def test_shipped_batch_tree_lints_clean(self):
        report = run_lint(
            paths=[str(REPO / "src" / "repro" / "hardware" / "batch")],
            baseline_path=str(REPO / "statcheck.baseline.json"),
        )
        assert report.clean, "\n".join(f.render() for f in report.findings)
        assert report.files_analyzed >= 4

    @staticmethod
    def _copy_batch_tree(tmp_path: Path) -> Path:
        # Copied under a ``hardware`` package (module names walk up
        # through __init__.py files) so the scope segment matching sees
        # the tree exactly as it does in ``src/repro``.
        batch = tmp_path / "hardware" / "batch"
        shutil.copytree(REPO / "src" / "repro" / "hardware" / "batch", batch)
        (tmp_path / "hardware" / "__init__.py").write_text("")
        return batch

    def test_seeded_global_rng_in_engine_is_caught(self, tmp_path):
        batch = self._copy_batch_tree(tmp_path)
        engine = batch / "engine.py"
        source = engine.read_text()
        needle = "def run_lockstep(\n"
        assert needle in source, "engine.py changed; update this fixture"
        engine.write_text(source.replace(
            needle,
            "def _unseeded_lane_jitter():\n"
            "    import random\n"
            "    return random.random()\n\n\n" + needle,
            1,
        ))
        report = run_lint(paths=[str(tmp_path / "hardware")])
        assert not report.clean
        findings = [f for f in report.findings if f.checker == "SC-2"]
        assert any(
            f.rule == "global-rng" and f.path.endswith("engine.py")
            for f in findings
        ), [f.render() for f in findings]

    def test_seeded_set_iteration_in_state_is_caught(self, tmp_path):
        batch = self._copy_batch_tree(tmp_path)
        state = batch / "state.py"
        source = state.read_text()
        needle = "class BatchHardware:\n"
        assert needle in source, "state.py changed; update this fixture"
        state.write_text(source.replace(
            needle,
            "def _unstable_lane_listing(lanes):\n"
            "    return [lane for lane in set(lanes)]\n\n\n" + needle,
            1,
        ))
        report = run_lint(paths=[str(tmp_path / "hardware")])
        assert not report.clean
        findings = [f for f in report.findings if f.checker == "SC-2"]
        assert any(
            f.rule == "set-order" and f.path.endswith("state.py")
            for f in findings
        ), [f.render() for f in findings]

"""SC-2/SC-3 scope must cover the distributed campaign service.

The service's determinism story depends on two disciplines: backoff
jitter comes from an explicitly seeded RNG, and shards are emitted in
insertion order, never out of a set.  Both are exactly the failure
modes SC-2 exists to catch, so the ``campaign`` scope segment must
cover the service tree, the shipped tree must lint clean with zero new
waivers, and seeded violations of each discipline must be caught.
"""

import shutil
from pathlib import Path

from repro.statcheck import run_lint
from repro.statcheck.runner import _SCOPE_SEGMENTS

REPO = Path(__file__).resolve().parents[2]


class TestServiceScope:
    def test_campaign_segment_covers_service_in_sc2_and_sc3(self):
        assert "campaign" in _SCOPE_SEGMENTS["SC-2"]
        assert "campaign" in _SCOPE_SEGMENTS["SC-3"]

    def test_shipped_service_tree_lints_clean(self):
        report = run_lint(
            paths=[str(REPO / "src" / "repro" / "campaign" / "service")],
            baseline_path=str(REPO / "statcheck.baseline.json"),
        )
        assert report.clean, "\n".join(f.render() for f in report.findings)
        assert report.files_analyzed >= 6

    def test_service_has_zero_waivers(self):
        """The whole subsystem ships without a single new suppression."""
        baseline = (REPO / "statcheck.baseline.json").read_text()
        assert "service" not in baseline
        assert "store_sqlite" not in baseline

    @staticmethod
    def _copy_service_tree(tmp_path: Path) -> Path:
        # Copied under a ``campaign`` package (module names walk up
        # through __init__.py files) so scope segment matching sees the
        # tree exactly as it does in ``src/repro``.
        service = tmp_path / "campaign" / "service"
        shutil.copytree(
            REPO / "src" / "repro" / "campaign" / "service", service
        )
        (tmp_path / "campaign" / "__init__.py").write_text("")
        return service

    def test_seeded_unseeded_jitter_rng_is_caught(self, tmp_path):
        service = self._copy_service_tree(tmp_path)
        protocol = service / "protocol.py"
        source = protocol.read_text()
        needle = "class BackoffPolicy:\n"
        assert needle in source, "protocol.py changed; update this fixture"
        protocol.write_text(source.replace(
            needle,
            needle
            + "    def _unseeded_jitter(self):\n"
            + "        return random.random()\n\n",
            1,
        ))
        report = run_lint(paths=[str(tmp_path / "campaign")])
        assert not report.clean
        findings = [f for f in report.findings if f.checker == "SC-2"]
        assert any(
            f.rule == "global-rng" and f.path.endswith("protocol.py")
            for f in findings
        ), [f.render() for f in findings]

    def test_seeded_set_ordered_shard_emission_is_caught(self, tmp_path):
        service = self._copy_service_tree(tmp_path)
        leases = service / "leases.py"
        source = leases.read_text()
        needle = "class LeaseTable:\n"
        assert needle in source, "leases.py changed; update this fixture"
        leases.write_text(source.replace(
            needle,
            "def _unordered_shard_emission(shards):\n"
            "    return [shard for shard in set(shards)]\n\n\n" + needle,
            1,
        ))
        report = run_lint(paths=[str(tmp_path / "campaign")])
        assert not report.clean
        findings = [f for f in report.findings if f.checker == "SC-2"]
        assert any(
            f.rule == "set-order" and f.path.endswith("leases.py")
            for f in findings
        ), [f.render() for f in findings]

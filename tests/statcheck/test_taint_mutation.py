"""SC-4 mutation self-tests: seeded leaks in the real kernel tree.

Copies ``src/repro/kernel`` to a temp dir, splices a leak into the
switch path, and asserts the checker reports it with file:line and exit
code 1 -- while the unmutated tree stays clean with zero new waivers.
These are the leaks the runtime obligations cannot see (the secret
rides in switch records bound for the *Hi* domain, which no Lo
comparison ever reads -- see EXPERIMENTS.md E16).
"""

import shutil
from pathlib import Path

from repro.cli import main
from repro.statcheck import run_lint

REPO = Path(__file__).resolve().parents[2]

#: Insertion anchors in ``kernel/switch.py``; the mutation tests fail
#: loudly if refactors move them.
DIRECT_ANCHOR = "        finished_at = core.clock.now\n"
DIRECT_LEAK = (
    '        post_flush["secret"] = to_domain.threads[0].params["secret"]\n'
)
IMPLICIT_ANCHOR = (
    "            pad_target = scheduled_at + from_domain.pad_cycles\n"
)
IMPLICIT_LEAK = (
    '            if to_domain.threads[0].params["secret"] % 2:\n'
    "                pad_target = pad_target - 32\n"
)


def _mutated_kernel(tmp_path, anchor, insertion, before=False):
    kernel = tmp_path / "kernel"
    shutil.copytree(REPO / "src" / "repro" / "kernel", kernel)
    switch_py = kernel / "switch.py"
    source = switch_py.read_text()
    assert anchor in source, "mutation anchor moved; update the test"
    replacement = insertion + anchor if before else anchor + insertion
    switch_py.write_text(source.replace(anchor, replacement, 1))
    return kernel


class TestDirectLeakMutation:
    def test_secret_into_switch_record_caught(self, tmp_path):
        kernel = _mutated_kernel(
            tmp_path, DIRECT_ANCHOR, DIRECT_LEAK, before=True
        )
        report = run_lint([str(kernel)], checkers=["SC-4"])
        assert report.exit_code == 1
        direct = [f for f in report.findings if f.rule == "direct-flow"]
        assert direct, "seeded direct leak not caught"
        assert all(f.qualname == "SwitchPath.execute" for f in direct)
        assert any("SwitchRecord" in f.message for f in direct)
        for finding in direct:
            assert "switch.py:" in finding.render()

    def test_cli_exit_one_with_location(self, tmp_path, capsys):
        kernel = _mutated_kernel(
            tmp_path, DIRECT_ANCHOR, DIRECT_LEAK, before=True
        )
        assert main(["lint", str(kernel)]) == 1
        out = capsys.readouterr().out
        assert "SC-4 [FAIL]" in out
        assert "switch.py:" in out


class TestImplicitLeakMutation:
    def test_secret_guarded_pad_shortcut_caught(self, tmp_path):
        kernel = _mutated_kernel(tmp_path, IMPLICIT_ANCHOR, IMPLICIT_LEAK)
        report = run_lint([str(kernel)], checkers=["SC-4"])
        assert report.exit_code == 1
        implicit = [
            f for f in report.findings if f.rule == "implicit-flow"
        ]
        assert len(implicit) == 1
        finding = implicit[0]
        assert finding.qualname == "SwitchPath.execute"
        assert "pad_target" in finding.message
        assert "switch.py:" in finding.render()

    def test_cli_exit_one(self, tmp_path, capsys):
        kernel = _mutated_kernel(tmp_path, IMPLICIT_ANCHOR, IMPLICIT_LEAK)
        assert main(["lint", str(kernel)]) == 1
        assert "SC-4 [FAIL]" in capsys.readouterr().out


class TestCleanTreeZeroWaivers:
    def test_unmutated_kernel_clean(self):
        report = run_lint(
            [str(REPO / "src" / "repro" / "kernel")], checkers=["SC-4"]
        )
        assert report.clean, "\n".join(f.render() for f in report.findings)

    def test_full_tree_sc4_clean_without_any_waiver(self):
        # The acceptance bar: SC-4 over the shipped tree needs *zero*
        # baseline entries -- suppressing nothing, not even once.
        report = run_lint(
            [str(REPO / "src" / "repro")],
            baseline_path=str(REPO / "statcheck.baseline.json"),
            checkers=["SC-4"],
        )
        assert report.clean
        assert report.suppressed == []

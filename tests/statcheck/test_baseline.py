"""Baseline semantics: justified suppressions, wildcards, stale keys."""

import json
from pathlib import Path

import pytest

from repro.statcheck import BaselineError, run_lint
from repro.statcheck.baseline import Baseline

FIXTURES = Path(__file__).parent / "fixtures"


def write_baseline(tmp_path, suppressions):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 1, "suppressions": suppressions}))
    return str(path)


class TestBaseline:
    def test_suppression_hides_finding(self, tmp_path):
        unsuppressed = run_lint(
            paths=[str(FIXTURES / "nondet.py")],
            checkers=["SC-2"], all_scopes=True,
        )
        target = next(f for f in unsuppressed.findings
                      if f.qualname == "wall_clock_read")
        baseline = write_baseline(tmp_path, [
            {"key": target.suppression_key,
             "justification": "fixture: intentionally suppressed"},
        ])
        report = run_lint(
            paths=[str(FIXTURES / "nondet.py")],
            checkers=["SC-2"], all_scopes=True, baseline_path=baseline,
        )
        assert target.suppression_key not in {
            f.suppression_key for f in report.findings
        }
        assert len(report.suppressed) == 1
        assert len(report.findings) == len(unsuppressed.findings) - 1

    def test_wildcard_qualname_matches_whole_module(self, tmp_path):
        module = next(
            f.module for f in run_lint(
                paths=[str(FIXTURES / "nondet.py")],
                checkers=["SC-2"], all_scopes=True,
            ).findings
        )
        baseline = write_baseline(tmp_path, [
            {"key": f"SC-2:{module}:*:wall-clock",
             "justification": "fixture: module-wide wall-clock waiver"},
        ])
        report = run_lint(
            paths=[str(FIXTURES / "nondet.py")],
            checkers=["SC-2"], all_scopes=True, baseline_path=baseline,
        )
        assert not any(f.rule == "wall-clock" for f in report.findings)
        assert len(report.suppressed) == 2  # both wall-clock fixtures

    def test_missing_justification_is_an_error(self, tmp_path):
        baseline = write_baseline(tmp_path, [
            {"key": "SC-2:whatever:*:wall-clock", "justification": "  "},
        ])
        with pytest.raises(BaselineError, match="justification"):
            run_lint(
                paths=[str(FIXTURES / "nondet.py")],
                checkers=["SC-2"], all_scopes=True, baseline_path=baseline,
            )

    def test_malformed_baseline_is_an_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("[not an object]")
        with pytest.raises(BaselineError):
            Baseline.load(path)

    def test_stale_suppressions_reported(self, tmp_path):
        baseline = write_baseline(tmp_path, [
            {"key": "SC-2:no.such.module:*:wall-clock",
             "justification": "matches nothing"},
        ])
        report = run_lint(
            paths=[str(FIXTURES / "nondet.py")],
            checkers=["SC-2"], all_scopes=True, baseline_path=baseline,
        )
        assert report.stale_suppressions == [
            "SC-2:no.such.module:*:wall-clock"
        ]
        # Stale keys warn; they do not change the exit code logic.
        assert report.exit_code == 1  # fixture still has live findings

    def test_committed_baseline_entries_all_used(self):
        # Every suppression in the shipped baseline must still match a
        # real finding -- otherwise it is dead weight to remove.
        repo = Path(__file__).resolve().parents[2]
        report = run_lint(
            paths=[str(repo / "src" / "repro")],
            baseline_path=str(repo / "statcheck.baseline.json"),
        )
        assert report.stale_suppressions == []


def _nondet_module():
    report = run_lint(
        paths=[str(FIXTURES / "nondet.py")],
        checkers=["SC-2"], all_scopes=True,
    )
    return next(
        f.module for f in report.findings if f.rule == "wall-clock"
    )


class TestPrune:
    def test_prune_removes_only_stale_entries(self, tmp_path):
        live_key = f"SC-2:{_nondet_module()}:*:wall-clock"
        baseline = write_baseline(tmp_path, [
            {"key": live_key,
             "justification": "fixture waiver, still live"},
            {"key": "SC-2:no.such.module:*:wall-clock",
             "justification": "matches nothing"},
        ])
        report = run_lint(
            paths=[str(FIXTURES / "nondet.py")],
            checkers=["SC-2"], all_scopes=True, baseline_path=baseline,
        )
        assert report.stale_suppressions == [
            "SC-2:no.such.module:*:wall-clock"
        ]
        pruned = report.baseline.prune()
        assert pruned == ["SC-2:no.such.module:*:wall-clock"]
        rewritten = json.loads(Path(baseline).read_text())
        keys = [e["key"] for e in rewritten["suppressions"]]
        assert keys == [live_key]
        # Live entries keep their justification verbatim.
        assert rewritten["suppressions"][0]["justification"] == (
            "fixture waiver, still live"
        )

    def test_prune_is_a_noop_when_tight(self, tmp_path):
        baseline = write_baseline(tmp_path, [
            {"key": f"SC-2:{_nondet_module()}:*:wall-clock",
             "justification": "fixture waiver, still live"},
        ])
        before = Path(baseline).read_text()
        report = run_lint(
            paths=[str(FIXTURES / "nondet.py")],
            checkers=["SC-2"], all_scopes=True, baseline_path=baseline,
        )
        assert report.baseline.prune() == []
        assert Path(baseline).read_text() == before

    def test_pruned_payload_preserves_extra_top_level_keys(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": 1,
            "_comment": "hand-maintained",
            "suppressions": [
                {"key": "SC-2:no.such.module:*:wall-clock",
                 "justification": "gone"},
            ],
        }))
        report = run_lint(
            paths=[str(FIXTURES / "nondet.py")],
            checkers=["SC-2"], all_scopes=True, baseline_path=str(path),
        )
        payload = report.baseline.pruned_payload()
        assert payload["_comment"] == "hand-maintained"
        assert payload["version"] == 1
        assert payload["suppressions"] == []

"""SC-1 footprint-escape checker against the seeded fixture violations."""

from pathlib import Path

from repro.statcheck import run_lint

FIXTURES = Path(__file__).parent / "fixtures"


def lint_elements():
    return run_lint(
        paths=[str(FIXTURES / "elements.py")],
        checkers=["SC-1"],
        all_scopes=True,
    )


class TestFootprintEscape:
    def test_uncovered_read_on_latency_root_flagged(self):
        report = lint_elements()
        leaks = [f for f in report.findings if f.rule == "undeclared-read"]
        assert len(leaks) == 1
        finding = leaks[0]
        assert finding.checker == "SC-1"
        assert finding.qualname == "LeakyCache.access"
        assert "_sets" in finding.message
        assert finding.location.endswith(f"elements.py:{finding.lineno}")

    def test_raw_external_read_flagged(self):
        report = lint_elements()
        raws = [f for f in report.findings if f.rule == "raw-state-access"]
        assert len(raws) == 1
        assert raws[0].qualname == "peek_raw"
        assert "_sets" in raws[0].message

    def test_allowed_patterns_not_flagged(self):
        # Touching entry points, helpers under an instrumented caller,
        # protocol-covered flush, and off-path audit accessors are clean.
        report = lint_elements()
        flagged = {f.qualname for f in report.findings}
        assert "TouchingCache.access" not in flagged
        assert "TouchingCache._lookup_cost" not in flagged
        assert "TouchingCache.flush" not in flagged
        assert "TouchingCache.fingerprint" not in flagged

    def test_findings_render_with_file_and_line(self):
        report = lint_elements()
        for finding in report.findings:
            rendered = finding.render()
            assert "elements.py:" in rendered
            assert "SC-1" in rendered


class TestRealTreeMutation:
    """Deleting the touch() from Cache.invalidate_line must trip SC-1."""

    REPO = Path(__file__).resolve().parents[2]
    NEEDLE = (
        "                lines.remove(line)\n"
        "                self._fp_version += 1\n"
        "                self.instr.touch(self.name, set_index, "
        "TouchKind.EVICT)\n"
    )

    def test_deleting_touch_from_cache_is_caught(self, tmp_path):
        import shutil

        hardware = tmp_path / "hardware"
        shutil.copytree(self.REPO / "src" / "repro" / "hardware", hardware)
        cache_py = hardware / "cache.py"
        source = cache_py.read_text()
        assert self.NEEDLE in source, "cache.py changed; update the fixture"
        cache_py.write_text(
            source.replace(self.NEEDLE, "                lines.remove(line)\n")
        )
        report = run_lint(paths=[str(hardware)])
        assert not report.clean
        findings = [f for f in report.findings if f.checker == "SC-1"]
        assert len(findings) == 1
        assert findings[0].qualname == "Cache.invalidate_line"
        assert findings[0].rule == "undeclared-read"
        assert "cache.py" in findings[0].path

    def test_unmutated_hardware_is_clean(self, tmp_path):
        import shutil

        hardware = tmp_path / "hardware"
        shutil.copytree(self.REPO / "src" / "repro" / "hardware", hardware)
        report = run_lint(paths=[str(hardware)])
        assert report.clean

"""Property tests: the batch engine vs. N independent scalar runs.

The differential golden suite pins the batch engine to a fixed set of
recorded workloads; these properties let hypothesis pick the workloads.
Random attack genomes, machine geometries, secrets and seeds must all
satisfy the same contract: a batch of N lanes produces observation
traces, channel statistics and noninterference verdicts bit-identical
to N independent scalar runs, and the per-lane results do not depend on
the order lanes occupy in the batch.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.attacks.primeprobe import l1_spy, l1_trojan
from repro.core.noninterference import batched_secret_sweep, sweep_secrets
from repro.hardware.geometry import CacheGeometry
from repro.hardware.machine import Machine, MachineConfig
from repro.kernel.kernel import Kernel
from repro.kernel.timeprotect import TimeProtectionConfig
from repro.synth.env import ChannelGuessEnv
from repro.synth.genome import random_genome

# Small envelope-conforming geometry variants (all single-core, LRU or
# FIFO, power-of-two pages): enough shape diversity to exercise the
# vectorized tag/stamp indexing without ballooning runtime.
_GEOMETRY_VARIANTS = (
    {},  # the tiny preset itself
    {
        "l1i_geometry": CacheGeometry(sets=4, ways=2, line_size=32),
        "l1d_geometry": CacheGeometry(sets=4, ways=2, line_size=32),
    },
    {"tlb_entries": 4},
    {"branch_history_bits": 0},
)


def _machine_factory(variant: dict):
    def factory() -> Machine:
        return Machine(MachineConfig(n_cores=1, **variant))

    return factory


def _sweep_builder(variant: dict, tp: TimeProtectionConfig, rounds: int):
    factory = _machine_factory(variant)
    geometry = factory().config.l1d_geometry
    lo_slice = max(12000, geometry.sets * geometry.ways * 80)

    def build(secret: int) -> Kernel:
        machine = factory()
        kernel = Kernel(machine, tp)
        hi = kernel.create_domain("Hi", n_colours=2, slice_cycles=4000)
        lo = kernel.create_domain("Lo", n_colours=2, slice_cycles=lo_slice)
        kernel.create_thread(
            hi, l1_trojan, params={"symbol": secret},
            data_pages=geometry.ways,
        )
        kernel.create_thread(
            lo, l1_spy,
            params={
                "l1_sets": geometry.sets,
                "prime_pages": geometry.ways,
                "results": [],
                "rounds": rounds,
                "sleep_cycles": lo_slice + 2000,
            },
            data_pages=geometry.ways,
        )
        kernel.set_schedule(0, [(hi, None), (lo, None)])
        return kernel

    return build, rounds * 60 * lo_slice


@given(
    seed=st.integers(min_value=0, max_value=2 ** 16),
    n_genomes=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=6, deadline=None)
def test_batched_generation_matches_serial_evaluation(seed, n_genomes):
    """Random genomes: evaluate_population == map(evaluate), bitwise."""
    rng = random.Random(seed)
    genomes = [random_genome(rng) for _ in range(n_genomes)]
    env = ChannelGuessEnv(
        machine="tiny", tp="none", victim="set_hammer",
        symbols=(0, 2), rounds_per_run=3, sweep_rounds=1, seed=seed,
    )
    serial = [env.evaluate(genome) for genome in genomes]
    batched = env.evaluate_population(genomes)
    assert len(batched) == len(serial)
    for lane, (one, many) in enumerate(zip(serial, batched)):
        assert many.fitness == one.fitness, f"genome {lane}"
        assert many.error == one.error, f"genome {lane}"
        if one.result is None:
            assert many.result is None, f"genome {lane}"
        else:
            assert many.result.samples == one.result.samples, f"genome {lane}"
            assert many.result.stats() == one.result.stats(), f"genome {lane}"


@given(
    variant=st.sampled_from(_GEOMETRY_VARIANTS),
    secrets=st.lists(
        st.integers(min_value=0, max_value=7),
        min_size=2, max_size=4, unique=True,
    ),
    tp_full=st.booleans(),
    seed=st.integers(min_value=0, max_value=2 ** 16),
)
@settings(max_examples=6, deadline=None)
def test_batched_sweep_matches_scalar_and_lane_order(
    variant, secrets, tp_full, seed
):
    """Random geometries/secrets: batch == scalar loop, any lane order."""
    tp = TimeProtectionConfig.full() if tp_full else TimeProtectionConfig.none()
    build, max_cycles = _sweep_builder(variant, tp, rounds=2)

    def build_and_run(secret: int) -> Kernel:
        kernel = build(secret)
        kernel.run(max_cycles=max_cycles)
        return kernel

    scalar = sweep_secrets(build_and_run, secrets, "Lo")
    batched = batched_secret_sweep(build, secrets, "Lo", max_cycles)
    assert [str(r) for r in batched] == [str(r) for r in scalar]

    # Lane-order permutation invariance: shuffling the non-baseline
    # lanes must permute the verdicts and change nothing else.
    tail = secrets[1:]
    random.Random(seed).shuffle(tail)
    permuted_secrets = [secrets[0]] + tail
    permuted = batched_secret_sweep(build, permuted_secrets, "Lo", max_cycles)
    by_secret = {r.secret_b: str(r) for r in batched}
    for result in permuted:
        assert str(result) == by_secret[result.secret_b]

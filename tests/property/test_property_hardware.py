"""Property-based tests (hypothesis) over the hardware substrate."""

from hypothesis import given, settings, strategies as st

from repro.hardware.cache import Cache, LatencyParams, ReplacementPolicy
from repro.hardware.geometry import CacheGeometry, colour_of_frame
from repro.hardware.prefetcher import StridePrefetcher
from repro.hardware.state import Scope, StateCategory
from repro.hardware.tlb import Tlb
from repro.hardware.geometry import TlbGeometry


def make_cache(sets=8, ways=2, policy=ReplacementPolicy.LRU):
    return Cache(
        name="prop.cache",
        geometry=CacheGeometry(sets=sets, ways=ways, line_size=32),
        category=StateCategory.FLUSHABLE,
        scope=Scope.CORE_LOCAL,
        latency=LatencyParams(hit_cycles=4),
        page_size=256,
        policy=policy,
    )


addresses = st.integers(min_value=0, max_value=0xFFFF)
access_sequences = st.lists(
    st.tuples(addresses, st.booleans()), min_size=1, max_size=200
)


class TestCacheProperties:
    @given(access_sequences)
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_geometry(self, sequence):
        cache = make_cache()
        for address, write in sequence:
            cache.access(address, write=write)
        for set_index in range(cache.geometry.sets):
            assert cache.occupancy(set_index) <= cache.geometry.ways

    @given(access_sequences)
    @settings(max_examples=60, deadline=None)
    def test_flush_is_idempotent_and_total(self, sequence):
        cache = make_cache()
        for address, write in sequence:
            cache.access(address, write=write)
        cache.flush()
        assert cache.fingerprint() == cache.reset_fingerprint()
        second = cache.flush()
        assert cache.fingerprint() == cache.reset_fingerprint()
        assert second.lines_written_back == 0

    @given(access_sequences)
    @settings(max_examples=60, deadline=None)
    def test_immediate_reaccess_always_hits(self, sequence):
        cache = make_cache()
        for address, write in sequence:
            cache.access(address, write=write)
            assert cache.access(address).hit is True

    @given(access_sequences)
    @settings(max_examples=40, deadline=None)
    def test_dirty_count_bounded_by_capacity(self, sequence):
        cache = make_cache()
        for address, write in sequence:
            cache.access(address, write=write)
        capacity = cache.geometry.sets * cache.geometry.ways
        assert 0 <= cache.dirty_line_count() <= capacity

    @given(access_sequences, st.sampled_from(list(ReplacementPolicy)))
    @settings(max_examples=40, deadline=None)
    def test_determinism_across_policies(self, sequence, policy):
        def run():
            cache = make_cache(ways=4, policy=policy)
            hits = []
            for address, write in sequence:
                hits.append(cache.access(address, write=write).hit)
            return hits, cache.fingerprint()

        assert run() == run()

    @given(access_sequences)
    @settings(max_examples=40, deadline=None)
    def test_set_confinement(self, sequence):
        """An access only ever perturbs its own set."""
        cache = make_cache()
        for address, write in sequence:
            before = {
                s: cache.resident_tags(s) for s in range(cache.geometry.sets)
            }
            result = cache.access(address, write=write)
            for set_index in range(cache.geometry.sets):
                if set_index != result.set_index:
                    assert cache.resident_tags(set_index) == before[set_index]


class TestColourProperties:
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from([1, 2, 4, 8, 16, 64]),
    )
    def test_colour_in_range(self, frame, n_colours):
        assert 0 <= colour_of_frame(frame, n_colours) < n_colours

    @given(st.integers(min_value=0, max_value=10_000))
    def test_page_colour_constant_within_page(self, frame):
        geometry = CacheGeometry(sets=64, ways=8, line_size=32)
        page_size = 256
        colours = {
            geometry.colour_of_paddr(frame * page_size + offset, page_size)
            for offset in range(0, page_size, 32)
        }
        assert len(colours) == 1

    @given(st.integers(min_value=0, max_value=63))
    def test_set_colour_partition_is_total(self, set_index):
        geometry = CacheGeometry(sets=64, ways=8, line_size=32)
        colour = geometry.colour_of_set(set_index, 256)
        assert 0 <= colour < geometry.n_colours(256)


class TestTlbProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=4),  # asid
                st.integers(min_value=0, max_value=30),  # vpage
            ),
            min_size=1,
            max_size=80,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_capacity_and_flush(self, fills):
        tlb = Tlb(name="prop.tlb", geometry=TlbGeometry(entries=8))
        for asid, vpage in fills:
            tlb.fill(asid, vpage, frame_number=vpage, writable=True, generation=0)
        total = sum(len(tlb.entries_for_asid(a)) for a in range(1, 5))
        assert total <= 8
        tlb.flush()
        assert tlb.fingerprint() == tlb.reset_fingerprint()

    @given(
        st.lists(
            st.tuples(st.integers(1, 4), st.integers(0, 30)),
            min_size=1,
            max_size=80,
        ),
        st.integers(1, 4),
    )
    @settings(max_examples=50, deadline=None)
    def test_invalidate_asid_is_selective(self, fills, victim_asid):
        tlb = Tlb(name="prop.tlb", geometry=TlbGeometry(entries=16))
        for asid, vpage in fills:
            tlb.fill(asid, vpage, frame_number=vpage, writable=True, generation=0)
        others_before = {
            asid: tlb.entries_for_asid(asid)
            for asid in range(1, 5)
            if asid != victim_asid
        }
        tlb.invalidate_asid(victim_asid)
        assert tlb.entries_for_asid(victim_asid) == {}
        for asid, entries in others_before.items():
            assert tlb.entries_for_asid(asid).keys() == entries.keys()


class TestPrefetcherProperties:
    @given(st.lists(addresses, min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_prefetches_follow_observed_stride(self, sequence):
        prefetcher = StridePrefetcher(name="prop.pf", degree=2)
        last_by_region = {}
        for address in sequence:
            region = address >> prefetcher.region_bits
            issued = prefetcher.observe(address)
            if issued:
                stride = address - last_by_region.get(region, address)
                assert issued == [address + stride, address + 2 * stride]
            last_by_region[region] = address

    @given(st.lists(addresses, min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_flush_always_resets(self, sequence):
        prefetcher = StridePrefetcher(name="prop.pf")
        for address in sequence:
            prefetcher.observe(address)
        prefetcher.flush()
        assert prefetcher.fingerprint() == prefetcher.reset_fingerprint()

"""Property-based tests over the kernel and the noninterference claim."""

from hypothesis import given, settings, strategies as st

from repro.hardware.memory import PhysicalMemory
from repro.kernel import TimeProtectionConfig
from repro.kernel.colour_alloc import ColourAwareAllocator, ColourExhausted
from repro.kernel.ipc import EndpointTable

from tests.conftest import build_two_domain_system


class TestAllocatorProperties:
    @given(
        st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=4)
    )
    @settings(max_examples=40, deadline=None)
    def test_assignments_always_disjoint(self, requests):
        memory = PhysicalMemory(total_frames=128, page_size=256, n_colours=16)
        allocator = ColourAwareAllocator(memory, colouring_enabled=True)
        for index, count in enumerate(requests):
            try:
                allocator.assign_domain_colours(f"d{index}", count)
            except ColourExhausted:
                break
        assert allocator.verify_disjoint()

    @given(
        st.lists(st.integers(min_value=1, max_value=3), min_size=2, max_size=5),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_frames_never_cross_partitions(self, requests, frames_each):
        memory = PhysicalMemory(total_frames=256, page_size=256, n_colours=16)
        allocator = ColourAwareAllocator(memory, colouring_enabled=True)
        domains = []
        for index, count in enumerate(requests):
            try:
                allocator.assign_domain_colours(f"d{index}", count)
                domains.append(f"d{index}")
            except ColourExhausted:
                break
        seen = {}
        for name in domains:
            for frame in allocator.alloc_for_domain(name, frames_each):
                assert frame.colour in allocator.colours_of(name)
                assert frame.number not in seen
                seen[frame.number] = name


class TestIpcProperties:
    @given(
        st.integers(min_value=0, max_value=10_000),  # now
        st.integers(min_value=0, max_value=10_000),  # slice start
        st.integers(min_value=0, max_value=8_000),  # min exec
    )
    def test_padded_visibility_lower_bound(self, now, slice_start, min_exec):
        table = EndpointTable(padded_ipc=True)
        endpoint = table.create("e", min_exec_cycles=min_exec)
        message = table.enqueue(endpoint, 1, "Hi", now=now, sender_slice_start=slice_start)
        assert message.visible_at >= now
        if min_exec > 0:
            assert message.visible_at >= slice_start + min_exec

    @given(st.lists(st.integers(min_value=0, max_value=100), max_size=20))
    def test_fifo_delivery_order(self, values):
        table = EndpointTable(padded_ipc=False)
        endpoint = table.create("e")
        for time, value in enumerate(values):
            table.enqueue(endpoint, value, "Hi", now=time, sender_slice_start=0)
        received = []
        while True:
            value = table.try_receive(endpoint.endpoint_id, now=10_000)
            if value is None:
                break
            received.append(value)
        assert received == values


class TestNonInterferenceProperty:
    """The headline metamorphic property: under full time protection,
    Lo's world is a constant function of Hi's secret."""

    @given(st.integers(min_value=0, max_value=63))
    @settings(max_examples=8, deadline=None)
    def test_lo_trace_invariant_under_secret(self, secret):
        reference = build_two_domain_system(
            0, TimeProtectionConfig.full(), observer_iterations=60,
            max_cycles=250_000,
        )
        variant = build_two_domain_system(
            secret, TimeProtectionConfig.full(), observer_iterations=60,
            max_cycles=250_000,
        )
        assert reference.observation_trace("Lo") == variant.observation_trace("Lo")

    @given(st.integers(min_value=1, max_value=63))
    @settings(max_examples=6, deadline=None)
    def test_switch_records_invariant_under_secret(self, secret):
        def switch_view(kernel):
            return [
                (r.from_domain, r.to_domain, r.scheduled_at, r.released_at)
                for r in kernel.switch_records
            ]

        reference = build_two_domain_system(
            0, TimeProtectionConfig.full(), observer_iterations=60,
            max_cycles=250_000,
        )
        variant = build_two_domain_system(
            secret, TimeProtectionConfig.full(), observer_iterations=60,
            max_cycles=250_000,
        )
        assert switch_view(reference) == switch_view(variant)

"""Property-based tests over replacement policies and colour arithmetic.

The fast-path work specialises the LRU hit loop and precomputes the
address-slicing masks, so these properties pin down exactly the
behaviour those optimisations must preserve: who gets evicted under
each policy, and that slicing/colour arithmetic is a lossless
partition of the address space.
"""

from hypothesis import given, settings, strategies as st

from repro.hardware.cache import Cache, LatencyParams, ReplacementPolicy
from repro.hardware.geometry import CacheGeometry, colour_of_frame
from repro.hardware.state import Scope, StateCategory


def make_cache(sets=4, ways=4, policy=ReplacementPolicy.LRU):
    return Cache(
        name="prop.cache",
        geometry=CacheGeometry(sets=sets, ways=ways, line_size=32),
        category=StateCategory.FLUSHABLE,
        scope=Scope.CORE_LOCAL,
        latency=LatencyParams(hit_cycles=4),
        page_size=256,
        policy=policy,
    )


addresses = st.integers(min_value=0, max_value=0x3FFF)
access_sequences = st.lists(
    st.tuples(addresses, st.booleans()), min_size=1, max_size=150
)
policies = st.sampled_from(list(ReplacementPolicy))


class TestEvictionVictims:
    @given(access_sequences, policies)
    @settings(max_examples=60, deadline=None)
    def test_victim_was_resident_and_is_gone(self, sequence, policy):
        """Every evicted tag was resident before the access and not after."""
        cache = make_cache(policy=policy)
        for address, write in sequence:
            tag = cache.geometry.tag(address)
            set_index = cache.geometry.set_index(address)
            before = cache.resident_tags(set_index)
            result = cache.access(address, write=write)
            if result.evicted_tag is not None:
                assert result.evicted_tag in before
                assert result.evicted_tag != tag
                after = cache.resident_tags(set_index)
                assert result.evicted_tag not in after
                assert tag in after

    @given(access_sequences, policies)
    @settings(max_examples=60, deadline=None)
    def test_eviction_only_from_full_sets(self, sequence, policy):
        """A fill evicts iff its set is already at full associativity."""
        cache = make_cache(policy=policy)
        for address, write in sequence:
            set_index = cache.geometry.set_index(address)
            occupancy_before = cache.occupancy(set_index)
            result = cache.access(address, write=write)
            if not result.hit:
                evicted = result.evicted_tag is not None
                assert evicted == (occupancy_before == cache.geometry.ways)

    @given(access_sequences)
    @settings(max_examples=60, deadline=None)
    def test_lru_evicts_least_recently_used(self, sequence):
        """LRU's victim is the tag untouched for the longest time."""
        cache = make_cache(policy=ReplacementPolicy.LRU)
        recency = {}  # (set_index, tag) -> last-use sequence number
        for step, (address, write) in enumerate(sequence):
            tag = cache.geometry.tag(address)
            set_index = cache.geometry.set_index(address)
            result = cache.access(address, write=write)
            if result.evicted_tag is not None:
                resident = [
                    t
                    for (s, t) in recency
                    if s == set_index and t != tag
                ]
                oldest = min(resident, key=lambda t: recency[(set_index, t)])
                assert result.evicted_tag == oldest
                del recency[(set_index, result.evicted_tag)]
            recency[(set_index, tag)] = step

    @given(access_sequences)
    @settings(max_examples=60, deadline=None)
    def test_fifo_evicts_oldest_fill(self, sequence):
        """FIFO's victim is the earliest-filled tag; hits never refresh."""
        cache = make_cache(policy=ReplacementPolicy.FIFO)
        fill_order = {}  # (set_index, tag) -> fill sequence number
        for step, (address, write) in enumerate(sequence):
            tag = cache.geometry.tag(address)
            set_index = cache.geometry.set_index(address)
            result = cache.access(address, write=write)
            if result.hit:
                continue  # a hit must not change the fill order
            if result.evicted_tag is not None:
                resident = [t for (s, t) in fill_order if s == set_index]
                oldest = min(
                    resident, key=lambda t: fill_order[(set_index, t)]
                )
                assert result.evicted_tag == oldest
                del fill_order[(set_index, result.evicted_tag)]
            fill_order[(set_index, tag)] = step

    @given(access_sequences)
    @settings(max_examples=60, deadline=None)
    def test_plru_never_evicts_the_just_touched_line(self, sequence):
        """Tree-PLRU's next victim is never the most recently used way."""
        cache = make_cache(policy=ReplacementPolicy.PLRU)
        for address, write in sequence:
            tag = cache.geometry.tag(address)
            set_index = cache.geometry.set_index(address)
            cache.access(address, write=write)
            if cache.occupancy(set_index) == cache.geometry.ways:
                victim_way = cache._plru_victim(set_index)
                assert 0 <= victim_way < cache.geometry.ways
                assert cache._sets[set_index][victim_way].tag != tag


class TestGeometryRoundTrips:
    geometries = st.builds(
        CacheGeometry,
        sets=st.sampled_from([1, 4, 8, 64, 256]),
        ways=st.integers(min_value=1, max_value=16),
        line_size=st.sampled_from([16, 32, 64]),
    )

    @given(geometries, addresses)
    def test_slicing_is_lossless_up_to_line_offset(self, geometry, paddr):
        """(tag, set_index) reassemble to exactly the line address."""
        rebuilt = (
            (geometry.tag(paddr) << geometry.index_bits)
            | geometry.set_index(paddr)
        ) << geometry.offset_bits
        assert rebuilt == geometry.line_address(paddr)
        assert 0 <= paddr - rebuilt < geometry.line_size

    @given(geometries, addresses)
    def test_mask_slicing_matches_method_slicing(self, geometry, paddr):
        """The precomputed masks agree with the arithmetic definition."""
        assert geometry.set_index(paddr) == (
            paddr // geometry.line_size
        ) % geometry.sets
        assert geometry.tag(paddr) == paddr // (
            geometry.line_size * geometry.sets
        )
        assert geometry.line_address(paddr) == (
            paddr // geometry.line_size
        ) * geometry.line_size

    @given(
        st.sampled_from([64, 256]),  # page sizes
        st.integers(min_value=0, max_value=4_000),
    )
    def test_frame_and_paddr_colours_agree(self, page_size, frame):
        """colour_of_frame matches colour_of_paddr for every page offset."""
        geometry = CacheGeometry(sets=64, ways=8, line_size=32)
        n = geometry.n_colours(page_size)
        expected = colour_of_frame(frame, n)
        for offset in (0, page_size // 2, page_size - 1):
            paddr = frame * page_size + offset
            assert geometry.colour_of_paddr(paddr, page_size) == expected

    @given(st.sampled_from([32, 64, 128, 256, 512, 2048, 4096]))
    def test_colour_partition_is_exact(self, page_size):
        """Colours partition the sets into equal consecutive runs."""
        geometry = CacheGeometry(sets=64, ways=8, line_size=32)
        n = geometry.n_colours(page_size)
        per_colour = geometry.sets_per_colour(page_size)
        if n > 1:
            assert n * per_colour == geometry.sets
        counts = {}
        for set_index in range(geometry.sets):
            colour = geometry.colour_of_set(set_index, page_size)
            assert 0 <= colour < n
            counts[colour] = counts.get(colour, 0) + 1
        assert len(counts) == n
        assert len(set(counts.values())) == 1  # equal-size classes

"""Property-based tests for CAT-style way partitioning."""

from hypothesis import given, settings, strategies as st

from repro.hardware.cache import Cache, LatencyParams
from repro.hardware.geometry import CacheGeometry
from repro.hardware.state import Scope, StateCategory


def make_cache(quotas):
    cache = Cache(
        name="prop.llc",
        geometry=CacheGeometry(sets=8, ways=8, line_size=32),
        category=StateCategory.PARTITIONABLE,
        scope=Scope.SHARED,
        latency=LatencyParams(hit_cycles=40),
        page_size=256,
    )
    cache.set_way_quotas(quotas)
    return cache


owners = st.sampled_from(["A", "B", "@kernel"])
accesses = st.lists(
    st.tuples(owners, st.integers(min_value=0, max_value=0x3FFF), st.booleans()),
    min_size=1,
    max_size=300,
)

QUOTAS = {"A": 3, "B": 3, "@kernel": 2}

# Way quotas partition *capacity*, not *addresses*: a hit is served from
# whichever way holds the line, whoever filled it.  If two partitions
# accessed the same physical line, one could observe the other evicting
# its own copy -- which is why the kernel never maps one user frame into
# two partitions (colour allocator / clone both enforce frame
# disjointness).  The tests model that discipline by giving each owner a
# disjoint physical region.
OWNER_BASE = {"A": 0x0000, "B": 0x10000, "@kernel": 0x20000}


def run_sequence(cache, sequence):
    for owner, offset, write in sequence:
        cache.instr.set_context(owner, 0, 0)
        cache.access(OWNER_BASE[owner] + offset, write=write)


class TestWayQuotaProperties:
    @given(accesses)
    @settings(max_examples=60, deadline=None)
    def test_quotas_never_exceeded(self, sequence):
        cache = make_cache(QUOTAS)
        run_sequence(cache, sequence)
        assert cache.quotas_respected()
        assert cache.quota_violations == []

    @given(accesses)
    @settings(max_examples=60, deadline=None)
    def test_capacity_still_never_exceeded(self, sequence):
        cache = make_cache(QUOTAS)
        run_sequence(cache, sequence)
        for set_index in range(cache.geometry.sets):
            assert cache.occupancy(set_index) <= cache.geometry.ways

    @given(accesses)
    @settings(max_examples=60, deadline=None)
    def test_partition_isolation(self, sequence):
        """Whatever B and the kernel do, A's most recent quota-many
        distinct lines per set remain resident."""
        cache = make_cache(QUOTAS)
        run_sequence(cache, sequence)
        # Reconstruct A's expected resident lines: last 3 distinct line
        # addresses per set.
        expected = {}
        for owner, offset, _write in sequence:
            if owner != "A":
                continue
            address = OWNER_BASE[owner] + offset
            line = cache.geometry.line_address(address)
            set_index = cache.geometry.set_index(address)
            bucket = expected.setdefault(set_index, [])
            if line in bucket:
                bucket.remove(line)
            bucket.append(line)
        cache.instr.set_context("A", 0, 0)
        for set_index, lines in expected.items():
            for line in lines[-QUOTAS["A"]:]:
                assert cache.probe(line), (
                    f"A's line {line:#x} (set {set_index}) was evicted by "
                    f"another partition"
                )

    @given(accesses)
    @settings(max_examples=40, deadline=None)
    def test_flush_resets_partition_state(self, sequence):
        cache = make_cache(QUOTAS)
        run_sequence(cache, sequence)
        cache.flush()
        assert cache.fingerprint() == cache.reset_fingerprint()
        for set_index in range(cache.geometry.sets):
            assert cache.occupancy_by_owner(set_index) == {}

"""Multicore kernel behaviour: cross-core IPC, per-core schedules."""

from repro.hardware import Compute, Halt, ReadTime, Syscall, presets
from repro.kernel import Kernel, ThreadState, TimeProtectionConfig


class TestCrossCoreIpc:
    def test_message_crosses_cores(self):
        received = {}

        def sender(ctx):
            yield Compute(100)
            yield Syscall("send", (ctx.params["ep"], 777))
            yield Halt()

        def receiver(ctx):
            message = yield Syscall("recv", (ctx.params["ep"],))
            received["value"] = message.value
            yield Halt()

        machine = presets.tiny_machine(n_cores=2)
        kernel = Kernel(machine, TimeProtectionConfig.full())
        domain_a = kernel.create_domain("A", n_colours=2)
        domain_b = kernel.create_domain("B", n_colours=2)
        endpoint = kernel.create_endpoint("pipe")
        kernel.create_thread(
            domain_a, sender, core_id=0, params={"ep": endpoint.endpoint_id}
        )
        kernel.create_thread(
            domain_b, receiver, core_id=1, params={"ep": endpoint.endpoint_id}
        )
        kernel.set_schedule(0, [(domain_a, None)])
        kernel.set_schedule(1, [(domain_b, None)])
        kernel.run(max_cycles=200_000)
        assert received.get("value") == 777

    def test_receiver_blocks_until_cross_core_send(self):
        stamps = {}

        def slow_sender(ctx):
            yield Syscall("sleep", (30_000,))
            yield Syscall("send", (ctx.params["ep"], 1))
            yield Halt()

        def receiver(ctx):
            yield Syscall("recv", (ctx.params["ep"],))
            stamp = yield ReadTime()
            stamps["arrival"] = stamp.value
            yield Halt()

        machine = presets.tiny_machine(n_cores=2)
        kernel = Kernel(machine, TimeProtectionConfig.full())
        domain_a = kernel.create_domain("A", n_colours=2)
        domain_b = kernel.create_domain("B", n_colours=2)
        endpoint = kernel.create_endpoint("pipe")
        kernel.create_thread(
            domain_a, slow_sender, core_id=0, params={"ep": endpoint.endpoint_id}
        )
        kernel.create_thread(
            domain_b, receiver, core_id=1, params={"ep": endpoint.endpoint_id}
        )
        kernel.set_schedule(0, [(domain_a, None)])
        kernel.set_schedule(1, [(domain_b, None)])
        kernel.run(max_cycles=300_000)
        assert stamps["arrival"] >= 30_000

    def test_same_domain_on_two_cores(self):
        progress = {"c0": 0, "c1": 0}

        def worker(tag):
            def program(ctx):
                for _ in range(20):
                    yield Compute(50)
                    progress[tag] += 1
                yield Halt()

            return program

        machine = presets.tiny_machine(n_cores=2)
        kernel = Kernel(machine, TimeProtectionConfig.full())
        domain = kernel.create_domain("A", n_colours=2)
        kernel.create_thread(domain, worker("c0"), core_id=0)
        kernel.create_thread(domain, worker("c1"), core_id=1)
        kernel.set_schedule(0, [(domain, None)])
        kernel.set_schedule(1, [(domain, None)])
        kernel.run(max_cycles=200_000)
        assert progress["c0"] == 20
        assert progress["c1"] == 20


class TestPerCoreScheduling:
    def test_cores_advance_in_global_time_order(self):
        def busy(ctx):
            while True:
                yield Compute(10)

        machine = presets.tiny_machine(n_cores=2)
        kernel = Kernel(machine, TimeProtectionConfig.full())
        domain_a = kernel.create_domain("A", n_colours=2)
        domain_b = kernel.create_domain("B", n_colours=2)
        kernel.create_thread(domain_a, busy, core_id=0)
        kernel.create_thread(domain_b, busy, core_id=1)
        kernel.set_schedule(0, [(domain_a, None)])
        kernel.set_schedule(1, [(domain_b, None)])
        kernel.run(max_cycles=100_000)
        clocks = [core.clock.now for core in machine.cores]
        assert all(clock >= 100_000 for clock in clocks)
        # Neither core ran far ahead of the other.
        assert abs(clocks[0] - clocks[1]) < 10_000

    def test_unscheduled_core_stays_idle(self):
        def busy(ctx):
            while True:
                yield Compute(10)

        machine = presets.tiny_machine(n_cores=2)
        kernel = Kernel(machine, TimeProtectionConfig.full())
        domain = kernel.create_domain("A", n_colours=2)
        kernel.create_thread(domain, busy, core_id=0)
        kernel.set_schedule(0, [(domain, None)])
        kernel.run(max_cycles=50_000)
        assert machine.cores[0].clock.now >= 50_000
        assert machine.cores[1].clock.now == 0

    def test_thread_on_unscheduled_core_never_runs(self):
        ran = {"flag": False}

        def oops(ctx):
            ran["flag"] = True
            yield Halt()

        machine = presets.tiny_machine(n_cores=2)
        kernel = Kernel(machine, TimeProtectionConfig.full())
        domain_a = kernel.create_domain("A", n_colours=2)
        domain_b = kernel.create_domain("B", n_colours=2)
        kernel.create_thread(domain_a, lambda ctx: iter([Halt()]), core_id=0)
        tcb = kernel.create_thread(domain_b, oops, core_id=1)
        kernel.set_schedule(0, [(domain_a, None)])  # core 1 unscheduled
        kernel.run(max_cycles=50_000)
        assert ran["flag"] is False
        assert tcb.state is ThreadState.READY

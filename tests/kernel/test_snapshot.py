"""Kernel snapshot/restore and the replayable-program protocol."""

import pytest

from repro.hardware import Access, Compute
from repro.kernel.objects import ReplayableProgram
from repro.mc import McSpec, build_system, state_fingerprint


def _spec():
    return McSpec.for_machine("micro", "full")


class TestSnapshot:
    def test_snapshot_is_independent_of_the_original(self):
        spec = _spec()
        kernel = build_system(spec, secret=1)
        snap = kernel.snapshot()
        before = state_fingerprint(snap)
        for _ in range(4):
            kernel.step(core_id=0, max_cycles=spec.max_cycles)
        # The original moved; the snapshot must not have.
        assert state_fingerprint(snap) == before
        assert state_fingerprint(kernel) != before

    def test_snapshot_resumes_identically(self):
        spec = _spec()
        kernel = build_system(spec, secret=1)
        for _ in range(3):
            kernel.step(core_id=0, max_cycles=spec.max_cycles)
        snap = kernel.snapshot()
        kernel.step(core_id=0, max_cycles=spec.max_cycles)
        snap.step(core_id=0, max_cycles=spec.max_cycles)
        assert state_fingerprint(snap) == state_fingerprint(kernel)

    def test_raw_generator_programs_are_rejected_with_guidance(self):
        from repro.campaign.registry import MACHINES, TP_CONFIGS
        from repro.kernel import Kernel

        def generator_program(ctx):
            while True:
                yield Compute(5)

        kernel = Kernel(
            MACHINES["micro"](), TP_CONFIGS["full"](), kernel_image_pages=8)
        domain = kernel.create_domain("Hi", n_colours=1)
        kernel.create_thread(domain, generator_program, data_pages=1)
        with pytest.raises(TypeError, match="ReplayableProgram"):
            kernel.snapshot()


class TestReplayableProgram:
    def test_follows_the_generator_protocol(self):
        def step_fn(ctx, index, observation):
            if index < 2:
                return Access(index * 32)
            return None

        program = ReplayableProgram(step_fn, ctx=None)
        first = program.send(None)
        second = program.send(17)
        assert isinstance(first, Access) and isinstance(second, Access)
        assert program.index == 2
        with pytest.raises(StopIteration):
            program.send(None)
        assert program.finished
        # Exhausted programs stay exhausted, like generators.
        with pytest.raises(StopIteration):
            program.send(None)

    def test_factory_binds_context(self):
        seen = {}

        def step_fn(ctx, index, observation):
            seen["ctx"] = ctx
            return None

        factory = ReplayableProgram.factory(step_fn)
        program = factory("the-context")
        with pytest.raises(StopIteration):
            next(iter(program))
        assert seen["ctx"] == "the-context"

"""Unit tests for the padded domain-switch path."""

import pytest

from repro.hardware import presets
from repro.kernel import Kernel, TimeProtectionConfig
from repro.kernel.switch import estimate_pad_cycles


def boot_kernel(tp, machine=None):
    machine = machine or presets.tiny_machine()
    kernel = Kernel(machine, tp)
    hi = kernel.create_domain("Hi", n_colours=2, slice_cycles=2000)
    lo = kernel.create_domain("Lo", n_colours=2, slice_cycles=2000)
    return machine, kernel, hi, lo


def execute_switch(kernel, machine, hi, lo, dirty_lines=0):
    core = machine.cores[0]
    for line in range(dirty_lines):
        core.l1d.access(line * 32, write=True)
    scheduled_at = core.clock.now
    return kernel.switch_path.execute(core, hi, lo, scheduled_at)


class TestFlushOnSwitch:
    def test_all_flushables_flushed(self):
        machine, kernel, hi, lo = boot_kernel(TimeProtectionConfig.full())
        record = execute_switch(kernel, machine, hi, lo, dirty_lines=4)
        expected = {e.name for e in machine.flushable_elements_of_core(0)}
        assert set(record.flushed_elements) == expected
        for name in record.flushed_elements:
            assert (
                record.post_flush_fingerprints[name]
                == record.reset_fingerprints[name]
            )

    def test_no_flush_when_disabled(self):
        machine, kernel, hi, lo = boot_kernel(
            TimeProtectionConfig.full().without(flush_on_switch=False)
        )
        record = execute_switch(kernel, machine, hi, lo)
        assert record.flushed_elements == ()
        assert record.flush_cycles == 0

    def test_flush_cycles_grow_with_dirty_lines(self):
        machine_a, kernel_a, hi_a, lo_a = boot_kernel(TimeProtectionConfig.full())
        clean = execute_switch(kernel_a, machine_a, hi_a, lo_a, dirty_lines=0)
        machine_b, kernel_b, hi_b, lo_b = boot_kernel(TimeProtectionConfig.full())
        dirty = execute_switch(kernel_b, machine_b, hi_b, lo_b, dirty_lines=12)
        assert dirty.flush_cycles > clean.flush_cycles
        assert dirty.lines_written_back == 12


class TestPadding:
    def test_padded_release_is_constant(self):
        machine, kernel, hi, lo = boot_kernel(TimeProtectionConfig.full())
        record = execute_switch(kernel, machine, hi, lo, dirty_lines=8)
        assert record.pad_target == record.scheduled_at + hi.pad_cycles
        assert record.released_at == record.pad_target
        assert record.overrun is False

    def test_unpadded_release_varies_with_history(self):
        tp = TimeProtectionConfig.full().without(pad_switch=False)
        machine_a, kernel_a, hi_a, lo_a = boot_kernel(tp)
        clean = execute_switch(kernel_a, machine_a, hi_a, lo_a, dirty_lines=0)
        machine_b, kernel_b, hi_b, lo_b = boot_kernel(tp)
        dirty = execute_switch(kernel_b, machine_b, hi_b, lo_b, dirty_lines=12)
        assert clean.pad_target is None
        assert dirty.switch_latency != clean.switch_latency

    def test_insufficient_pad_flagged_as_overrun(self):
        machine = presets.tiny_machine()
        kernel = Kernel(machine, TimeProtectionConfig.full(pad_cycles=10))
        hi = kernel.create_domain("Hi", n_colours=2, slice_cycles=2000)
        lo = kernel.create_domain("Lo", n_colours=2, slice_cycles=2000)
        record = execute_switch(kernel, machine, hi, lo, dirty_lines=8)
        assert record.overrun is True
        assert record.released_at > record.pad_target

    def test_pad_is_attribute_of_switched_from_domain(self):
        machine = presets.tiny_machine()
        kernel = Kernel(machine, TimeProtectionConfig.full())
        hi = kernel.create_domain("Hi", n_colours=2, slice_cycles=2000,
                                  pad_cycles=50_000)
        lo = kernel.create_domain("Lo", n_colours=2, slice_cycles=2000)
        record = execute_switch(kernel, machine, hi, lo)
        assert record.pad_target == record.scheduled_at + 50_000


class TestEvidence:
    def test_colour_fingerprints_recorded(self):
        machine, kernel, hi, lo = boot_kernel(TimeProtectionConfig.full())
        record = execute_switch(kernel, machine, hi, lo)
        assert set(record.llc_colour_fingerprints) == set(range(machine.n_colours))

    def test_fingerprints_skippable_for_speed(self):
        machine, kernel, hi, lo = boot_kernel(TimeProtectionConfig.full())
        kernel.switch_path.record_fingerprints = False
        record = execute_switch(kernel, machine, hi, lo)
        assert record.llc_colour_fingerprints == {}

    def test_kernel_data_sweep_normalises_shared_colour(self):
        machine, kernel, hi, lo = boot_kernel(TimeProtectionConfig.full())
        first = execute_switch(kernel, machine, hi, lo)
        # Pollute nothing kernel-coloured (user frames are non-zero
        # colours); run a second switch and compare the kernel colour.
        second = kernel.switch_path.execute(
            machine.cores[0], lo, hi, machine.cores[0].clock.now
        )
        kernel_colour = next(iter(kernel.allocator.kernel_colours))
        assert (
            first.llc_colour_fingerprints[kernel_colour]
            == second.llc_colour_fingerprints[kernel_colour]
        )


class TestPadEstimate:
    def test_estimate_covers_observed_switches(self):
        machine, kernel, hi, lo = boot_kernel(TimeProtectionConfig.full())
        record = execute_switch(kernel, machine, hi, lo, dirty_lines=16)
        worst_observed = record.finished_at - record.entered_at
        assert kernel.pad_wcet_estimate > worst_observed

    def test_estimate_scales_with_machine(self):
        tiny = estimate_pad_cycles(presets.tiny_machine(), kernel_data_lines=16)
        desktop = estimate_pad_cycles(presets.desktop_machine(), kernel_data_lines=128)
        assert desktop > tiny

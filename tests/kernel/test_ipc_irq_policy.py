"""Unit tests for IPC endpoints (padded delivery) and IRQ partitioning."""

import pytest

from repro.hardware.interrupts import InterruptController, PREEMPTION_TIMER_IRQ
from repro.kernel.ipc import EndpointTable
from repro.kernel.irq_policy import IrqPartitionPolicy
from repro.kernel.objects import Domain


def make_domain(name):
    return Domain(name=name, domain_id=1, colours={1}, slice_cycles=1000,
                  pad_cycles=100)


class TestEndpointTable:
    def test_unpadded_delivery_is_immediate(self):
        table = EndpointTable(padded_ipc=False)
        endpoint = table.create("e", min_exec_cycles=5000)
        message = table.enqueue(endpoint, 42, "Hi", now=1234, sender_slice_start=1000)
        assert message.visible_at == 1234

    def test_padded_delivery_waits_for_min_exec(self):
        table = EndpointTable(padded_ipc=True)
        endpoint = table.create("e", min_exec_cycles=5000)
        message = table.enqueue(endpoint, 42, "Hi", now=1234, sender_slice_start=1000)
        assert message.visible_at == 6000

    def test_padded_delivery_never_travels_back(self):
        table = EndpointTable(padded_ipc=True)
        endpoint = table.create("e", min_exec_cycles=100)
        message = table.enqueue(endpoint, 42, "Hi", now=9999, sender_slice_start=0)
        assert message.visible_at == 9999

    def test_receive_respects_visibility(self):
        table = EndpointTable(padded_ipc=True)
        endpoint = table.create("e", min_exec_cycles=5000)
        table.enqueue(endpoint, 42, "Hi", now=100, sender_slice_start=0)
        assert table.try_receive(endpoint.endpoint_id, now=100) is None
        assert table.try_receive(endpoint.endpoint_id, now=5000) == 42

    def test_fifo_order(self):
        table = EndpointTable(padded_ipc=False)
        endpoint = table.create("e")
        table.enqueue(endpoint, 1, "Hi", 10, 0)
        table.enqueue(endpoint, 2, "Hi", 20, 0)
        assert table.try_receive(endpoint.endpoint_id, 30) == 1
        assert table.try_receive(endpoint.endpoint_id, 30) == 2

    def test_default_min_cycles_applied(self):
        table = EndpointTable(padded_ipc=True, default_min_cycles=700)
        endpoint = table.create("e")
        assert endpoint.min_exec_cycles == 700

    def test_earliest_visibility(self):
        table = EndpointTable(padded_ipc=True)
        e1 = table.create("a", min_exec_cycles=5000)
        e2 = table.create("b", min_exec_cycles=9000)
        table.enqueue(e1, 1, "Hi", now=0, sender_slice_start=0)
        table.enqueue(e2, 2, "Hi", now=0, sender_slice_start=0)
        assert table.earliest_visibility(now=0) == 5000

    def test_unknown_endpoint_raises(self):
        table = EndpointTable(padded_ipc=False)
        with pytest.raises(KeyError):
            table.get(999)


class TestIrqPartitionPolicy:
    def test_assignment_exclusive(self):
        policy = IrqPartitionPolicy(enabled=True, n_lines=8)
        hi, lo = make_domain("Hi"), make_domain("Lo")
        policy.assign(3, hi)
        with pytest.raises(ValueError):
            policy.assign(3, lo)

    def test_timer_line_not_assignable(self):
        policy = IrqPartitionPolicy(enabled=True, n_lines=8)
        with pytest.raises(ValueError):
            policy.assign(PREEMPTION_TIMER_IRQ, make_domain("Hi"))

    def test_may_submit_owner_only_when_enabled(self):
        policy = IrqPartitionPolicy(enabled=True, n_lines=8)
        hi, lo = make_domain("Hi"), make_domain("Lo")
        policy.assign(3, hi)
        assert policy.may_submit(hi, 3) is True
        assert policy.may_submit(lo, 3) is False

    def test_may_submit_anything_when_disabled(self):
        policy = IrqPartitionPolicy(enabled=False, n_lines=8)
        assert policy.may_submit(make_domain("Lo"), 3) is True

    def test_apply_masks_partitioned(self):
        policy = IrqPartitionPolicy(enabled=True, n_lines=8)
        hi = make_domain("Hi")
        policy.assign(3, hi)
        irq = InterruptController(n_lines=8)
        policy.apply_masks(irq, hi)
        assert not irq.is_masked(3)
        assert not irq.is_masked(PREEMPTION_TIMER_IRQ)
        assert irq.is_masked(5)
        lo = make_domain("Lo")
        policy.apply_masks(irq, lo)
        assert irq.is_masked(3)

    def test_apply_masks_disabled_unmasks_all(self):
        policy = IrqPartitionPolicy(enabled=False, n_lines=8)
        irq = InterruptController(n_lines=8)
        irq.mask(4)
        policy.apply_masks(irq, make_domain("Lo"))
        assert all(not irq.is_masked(line) for line in range(8))

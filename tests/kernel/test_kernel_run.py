"""Integration-level unit tests for the kernel façade and run loop."""

import pytest

from repro.hardware import Access, Compute, Halt, ReadTime, Syscall, presets
from repro.kernel import Kernel, ThreadState, TimeProtectionConfig
from repro.kernel.kernel import KTEXT_BASE


def simple_counter(ctx):
    for i in range(ctx.params.get("n", 10)):
        yield Compute(5)
    yield Halt()


class TestDomainAndThreadCreation:
    def test_duplicate_domain_rejected(self):
        kernel = Kernel(presets.tiny_machine())
        kernel.create_domain("A", n_colours=2)
        with pytest.raises(ValueError):
            kernel.create_domain("A", n_colours=2)

    def test_thread_memory_is_domain_coloured(self):
        kernel = Kernel(presets.tiny_machine(), TimeProtectionConfig.full())
        domain = kernel.create_domain("A", n_colours=2)
        tcb = kernel.create_thread(domain, simple_counter, data_pages=4)
        for frame in tcb.space.frames():
            assert frame.colour in domain.colours | kernel.allocator.kernel_colours \
                or frame.colour in domain.colours

    def test_kernel_text_mapped_readonly(self):
        kernel = Kernel(presets.tiny_machine(), TimeProtectionConfig.full())
        domain = kernel.create_domain("A", n_colours=2)
        tcb = kernel.create_thread(domain, simple_counter)
        mapping = tcb.space.lookup(KTEXT_BASE)
        assert mapping.writable is False
        assert mapping.frame.number == domain.kernel_image.frames[0].number

    def test_shared_text_points_at_clone(self):
        kernel = Kernel(presets.tiny_machine(), TimeProtectionConfig.full())
        a = kernel.create_domain("A", n_colours=2)
        b = kernel.create_domain("B", n_colours=2)
        tcb_a = kernel.create_thread(a, simple_counter)
        tcb_b = kernel.create_thread(b, simple_counter)
        frame_a = tcb_a.space.lookup(KTEXT_BASE).frame.number
        frame_b = tcb_b.space.lookup(KTEXT_BASE).frame.number
        assert frame_a != frame_b

    def test_shared_text_aliases_master_without_clone(self):
        kernel = Kernel(presets.tiny_machine(), TimeProtectionConfig.none())
        a = kernel.create_domain("A")
        b = kernel.create_domain("B")
        tcb_a = kernel.create_thread(a, simple_counter)
        tcb_b = kernel.create_thread(b, simple_counter)
        assert (
            tcb_a.space.lookup(KTEXT_BASE).frame.number
            == tcb_b.space.lookup(KTEXT_BASE).frame.number
        )

    def test_page_colours_exposed_to_program(self):
        kernel = Kernel(presets.tiny_machine(), TimeProtectionConfig.full())
        domain = kernel.create_domain("A", n_colours=2)
        captured = {}

        def grab(ctx):
            captured["colours"] = ctx.page_colours
            yield Halt()

        kernel.create_thread(domain, grab, data_pages=4)
        kernel.set_schedule(0, [(domain, None)])
        kernel.run(max_cycles=50_000)  # generator body runs on first step
        assert len(captured["colours"]) == 4
        assert set(captured["colours"]) <= domain.colours


class TestRunLoop:
    def test_requires_schedule(self):
        kernel = Kernel(presets.tiny_machine())
        with pytest.raises(RuntimeError):
            kernel.run(max_cycles=1000)

    def test_threads_complete(self):
        kernel = Kernel(presets.tiny_machine())
        domain = kernel.create_domain("A", n_colours=2)
        tcb = kernel.create_thread(domain, simple_counter, params={"n": 5})
        kernel.set_schedule(0, [(domain, None)])
        kernel.run(max_cycles=100_000)
        assert tcb.state is ThreadState.DONE
        assert tcb.steps_executed == 6  # 5 computes + halt

    def test_run_stops_at_max_cycles(self):
        def forever(ctx):
            while True:
                yield Compute(10)

        machine = presets.tiny_machine()
        kernel = Kernel(machine)
        domain = kernel.create_domain("A", n_colours=2)
        kernel.create_thread(domain, forever)
        kernel.set_schedule(0, [(domain, None)])
        kernel.run(max_cycles=50_000)
        assert machine.cores[0].clock.now >= 50_000
        assert machine.cores[0].clock.now < 80_000

    def test_faulting_thread_marked(self):
        def bad(ctx):
            yield Access(0xDEAD0000)

        kernel = Kernel(presets.tiny_machine())
        domain = kernel.create_domain("A", n_colours=2)
        tcb = kernel.create_thread(domain, bad)
        kernel.set_schedule(0, [(domain, None)])
        kernel.run(max_cycles=100_000)
        assert tcb.state is ThreadState.FAULTED

    def test_round_robin_within_domain(self):
        order = []

        def worker(tag):
            def program(ctx):
                for _ in range(3):
                    order.append(tag)
                    yield Syscall("yield")
                yield Halt()
            return program

        kernel = Kernel(presets.tiny_machine())
        domain = kernel.create_domain("A", n_colours=2)
        kernel.create_thread(domain, worker("x"))
        kernel.create_thread(domain, worker("y"))
        kernel.set_schedule(0, [(domain, None)])
        kernel.run(max_cycles=500_000)
        assert order[:4] == ["x", "y", "x", "y"]

    def test_observation_trace_records_values_and_latencies(self):
        def observer(ctx):
            yield ReadTime()
            yield Access(ctx.data_base, write=True, value=7)
            yield Halt()

        kernel = Kernel(presets.tiny_machine())
        domain = kernel.create_domain("A", n_colours=2)
        kernel.create_thread(domain, observer)
        kernel.set_schedule(0, [(domain, None)])
        kernel.run(max_cycles=100_000)
        trace = kernel.observation_trace("A")
        assert len(trace) == 2
        assert trace[0][1] > 0  # a timestamp
        assert trace[1][1] == 7  # the stored value

    def test_recording_can_be_disabled(self):
        kernel = Kernel(presets.tiny_machine(), record_observations=False)
        domain = kernel.create_domain("A", n_colours=2)
        kernel.create_thread(domain, simple_counter)
        kernel.set_schedule(0, [(domain, None)])
        kernel.run(max_cycles=100_000)
        assert kernel.observation_trace("A") == []


class TestIpcThroughSyscalls:
    def test_send_recv_roundtrip(self):
        received = {}

        def sender(ctx):
            yield Syscall("send", (ctx.params["ep"], 123))
            yield Halt()

        def receiver(ctx):
            message = yield Syscall("recv", (ctx.params["ep"],))
            received["value"] = message.value
            yield Halt()

        kernel = Kernel(presets.tiny_machine())
        domain = kernel.create_domain("A", n_colours=2)
        endpoint = kernel.create_endpoint("e")
        kernel.create_thread(domain, sender, params={"ep": endpoint.endpoint_id})
        kernel.create_thread(domain, receiver, params={"ep": endpoint.endpoint_id})
        kernel.set_schedule(0, [(domain, None)])
        kernel.run(max_cycles=500_000)
        assert received["value"] == 123

    def test_poll_returns_minus_one_when_empty(self):
        polled = {}

        def poller(ctx):
            result = yield Syscall("poll", (ctx.params["ep"],))
            polled["value"] = result.value
            yield Halt()

        kernel = Kernel(presets.tiny_machine())
        domain = kernel.create_domain("A", n_colours=2)
        endpoint = kernel.create_endpoint("e")
        kernel.create_thread(domain, poller, params={"ep": endpoint.endpoint_id})
        kernel.set_schedule(0, [(domain, None)])
        kernel.run(max_cycles=100_000)
        assert polled["value"] == -1

    def test_sleep_delays_thread(self):
        stamps = {}

        def sleeper(ctx):
            t0 = yield ReadTime()
            yield Syscall("sleep", (5000,))
            t1 = yield ReadTime()
            stamps["delta"] = t1.value - t0.value
            yield Halt()

        kernel = Kernel(presets.tiny_machine())
        domain = kernel.create_domain("A", n_colours=2)
        kernel.create_thread(domain, sleeper)
        kernel.set_schedule(0, [(domain, None)])
        kernel.run(max_cycles=200_000)
        assert stamps["delta"] >= 5000

    def test_io_submit_denied_for_non_owner(self):
        outcome = {}

        def submitter(ctx):
            result = yield Syscall("io_submit", (3, 100, 0))
            outcome["retval"] = result.value
            yield Halt()

        kernel = Kernel(presets.tiny_machine(), TimeProtectionConfig.full())
        hi = kernel.create_domain("Hi", n_colours=2, irq_lines=(3,))
        lo = kernel.create_domain("Lo", n_colours=2)
        kernel.create_thread(lo, submitter)
        kernel.set_schedule(0, [(lo, None), (hi, None)])
        kernel.run(max_cycles=200_000)
        assert outcome["retval"] == -1

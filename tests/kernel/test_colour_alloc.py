"""Unit tests for the colour-aware frame allocator."""

import pytest

from repro.hardware.memory import PhysicalMemory
from repro.kernel.colour_alloc import ColourAwareAllocator, ColourExhausted


def make_allocator(colouring=True, frames=64, n_colours=8):
    memory = PhysicalMemory(total_frames=frames, page_size=256, n_colours=n_colours)
    return ColourAwareAllocator(memory, colouring_enabled=colouring)


class TestColourAssignment:
    def test_kernel_reserves_colour_zero(self):
        allocator = make_allocator()
        assert allocator.kernel_colours == {0}
        assert 0 not in allocator.available_colours()

    def test_assignments_are_disjoint(self):
        allocator = make_allocator()
        a = allocator.assign_domain_colours("A", 3)
        b = allocator.assign_domain_colours("B", 3)
        assert not (a & b)
        assert allocator.verify_disjoint()

    def test_exhaustion_raises(self):
        allocator = make_allocator()
        allocator.assign_domain_colours("A", 7)  # 8 - 1 kernel colour
        with pytest.raises(ColourExhausted):
            allocator.assign_domain_colours("B", 1)

    def test_over_request_raises(self):
        allocator = make_allocator()
        with pytest.raises(ColourExhausted):
            allocator.assign_domain_colours("A", 99)

    def test_colouring_disabled_gives_everything(self):
        allocator = make_allocator(colouring=False)
        a = allocator.assign_domain_colours("A")
        b = allocator.assign_domain_colours("B")
        assert a == b == set(range(8))
        assert not allocator.verify_disjoint()  # two overlapping domains

    def test_default_share_is_quarter_of_free(self):
        allocator = make_allocator()
        share = allocator.assign_domain_colours("A")
        assert len(share) == max(1, 7 // 4)

    def test_assignments_report_includes_kernel(self):
        allocator = make_allocator()
        allocator.assign_domain_colours("A", 2)
        report = allocator.assignments()
        assert report["@kernel"] == {0}
        assert len(report["A"]) == 2


class TestFrameAllocation:
    def test_frames_match_domain_colours(self):
        allocator = make_allocator()
        colours = allocator.assign_domain_colours("A", 2)
        frames = allocator.alloc_for_domain("A", 6)
        assert all(frame.colour in colours for frame in frames)

    def test_kernel_frames_use_reserved_colour(self):
        allocator = make_allocator()
        frames = allocator.alloc_kernel_frames(3)
        assert all(frame.colour == 0 for frame in frames)

    def test_unassigned_domain_rejected(self):
        allocator = make_allocator()
        with pytest.raises(KeyError):
            allocator.alloc_for_domain("ghost", 1)

    def test_colouring_disabled_allocates_first_fit(self):
        allocator = make_allocator(colouring=False)
        allocator.assign_domain_colours("A")
        frames = allocator.alloc_for_domain("A", 4)
        assert [frame.number for frame in frames] == [0, 1, 2, 3]

    def test_single_colour_llc_reserves_nothing(self):
        allocator = make_allocator(n_colours=1)
        assert allocator.kernel_colours == set()

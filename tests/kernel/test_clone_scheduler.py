"""Unit tests for the kernel-clone mechanism and the domain scheduler."""

import pytest

from repro.hardware.memory import PhysicalMemory
from repro.kernel.clone import KernelCloneManager
from repro.kernel.colour_alloc import ColourAwareAllocator
from repro.kernel.objects import Domain
from repro.kernel.scheduler import DomainScheduler


def make_clone_manager(clone=True, colouring=True):
    memory = PhysicalMemory(total_frames=256, page_size=256, n_colours=8)
    allocator = ColourAwareAllocator(memory, colouring_enabled=colouring)
    manager = KernelCloneManager(
        allocator, image_pages=4, line_size=32, clone_enabled=clone
    )
    return allocator, manager


def make_domain(name, colours, slice_cycles=1000):
    return Domain(
        name=name,
        domain_id=1,
        colours=colours,
        slice_cycles=slice_cycles,
        pad_cycles=500,
    )


class TestKernelClone:
    def test_clone_uses_domain_colours(self):
        allocator, manager = make_clone_manager()
        colours = allocator.assign_domain_colours("A", 2)
        domain = make_domain("A", colours)
        image = manager.image_for_domain(domain)
        assert all(frame.colour in colours for frame in image.frames)

    def test_clone_is_cached_per_domain(self):
        allocator, manager = make_clone_manager()
        domain = make_domain("A", allocator.assign_domain_colours("A", 2))
        assert manager.image_for_domain(domain) is manager.image_for_domain(domain)

    def test_clones_disjoint_across_domains(self):
        allocator, manager = make_clone_manager()
        domain_a = make_domain("A", allocator.assign_domain_colours("A", 2))
        domain_b = make_domain("B", allocator.assign_domain_colours("B", 2))
        manager.image_for_domain(domain_a)
        manager.image_for_domain(domain_b)
        assert manager.images_disjoint()

    def test_no_clone_shares_master(self):
        allocator, manager = make_clone_manager(clone=False)
        domain_a = make_domain("A", allocator.assign_domain_colours("A", 2))
        domain_b = make_domain("B", allocator.assign_domain_colours("B", 2))
        assert manager.image_for_domain(domain_a) is manager.master
        assert manager.image_for_domain(domain_b) is manager.master

    def test_master_in_kernel_colour(self):
        _allocator, manager = make_clone_manager()
        assert all(frame.colour == 0 for frame in manager.master.frames)

    def test_line_paddr_walks_frames(self):
        _allocator, manager = make_clone_manager()
        image = manager.master
        lines_per_page = 256 // 32
        first_of_second_page = image.line_paddr(lines_per_page)
        assert first_of_second_page == image.frames[1].base_paddr(256)

    def test_line_paddr_wraps(self):
        _allocator, manager = make_clone_manager()
        image = manager.master
        assert image.line_paddr(image.n_lines) == image.line_paddr(0)


class TestDomainScheduler:
    def _two_domains(self):
        a = make_domain("A", {1}, slice_cycles=1000)
        b = make_domain("B", {2}, slice_cycles=2000)
        return a, b

    def test_initial_slice(self):
        a, b = self._two_domains()
        scheduler = DomainScheduler()
        scheduler.set_schedule(0, [(a, None), (b, None)])
        state = scheduler.state(0)
        assert state.current is a
        assert state.slice_end == 1000

    def test_advance_rotates(self):
        a, b = self._two_domains()
        scheduler = DomainScheduler()
        scheduler.set_schedule(0, [(a, None), (b, None)])
        from_domain, to_domain = scheduler.advance(0, release_time=1500)
        assert (from_domain, to_domain) == (a, b)
        assert scheduler.state(0).slice_end == 1500 + 2000

    def test_explicit_slice_overrides_domain_default(self):
        a, b = self._two_domains()
        scheduler = DomainScheduler()
        scheduler.set_schedule(0, [(a, 777), (b, None)])
        assert scheduler.state(0).slice_end == 777

    def test_peek_next(self):
        a, b = self._two_domains()
        scheduler = DomainScheduler()
        scheduler.set_schedule(0, [(a, None), (b, None)])
        assert scheduler.peek_next(0) is b

    def test_forced_switch_truncates_slice(self):
        a, b = self._two_domains()
        scheduler = DomainScheduler()
        scheduler.set_schedule(0, [(a, None), (b, None)])
        scheduler.force_switch(0, b, at_time=400)
        assert scheduler.state(0).effective_switch_time() == 400
        assert scheduler.peek_next(0) is b

    def test_forced_switch_does_not_extend_slice(self):
        a, b = self._two_domains()
        scheduler = DomainScheduler()
        scheduler.set_schedule(0, [(a, None), (b, None)])
        scheduler.force_switch(0, b, at_time=99999)
        assert scheduler.state(0).effective_switch_time() == 1000

    def test_forced_advance_clears_force(self):
        a, b = self._two_domains()
        scheduler = DomainScheduler()
        scheduler.set_schedule(0, [(a, None), (b, None)])
        scheduler.force_switch(0, b, at_time=400)
        scheduler.advance(0, release_time=500)
        state = scheduler.state(0)
        assert state.forced_next is None
        assert state.effective_switch_time() == 500 + 2000

    def test_empty_schedule_rejected(self):
        scheduler = DomainScheduler()
        with pytest.raises(ValueError):
            scheduler.set_schedule(0, [])

    def test_domains_on_core_deduplicates(self):
        a, b = self._two_domains()
        scheduler = DomainScheduler()
        scheduler.set_schedule(0, [(a, None), (b, None), (a, 500)])
        assert scheduler.domains_on_core(0) == [a, b]

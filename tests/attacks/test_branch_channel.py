"""Tests for the branch-predictor training channel."""

import pytest

from repro.attacks import branch_channel
from repro.hardware import presets
from repro.kernel import TimeProtectionConfig

pytestmark = pytest.mark.slow


class TestBranchChannel:
    def test_open_without_protection(self):
        result = branch_channel.experiment(
            TimeProtectionConfig.none(), presets.tiny_bimodal_machine,
            sweep_rounds=1,
        )
        assert result.capacity_bits() > 0.5
        assert result.decode_accuracy() == 1.0

    def test_closed_with_flushing(self):
        tp = TimeProtectionConfig.none().without(
            flush_on_switch=True, pad_switch=True
        )
        result = branch_channel.experiment(
            tp, presets.tiny_bimodal_machine, sweep_rounds=1
        )
        assert result.capacity_bits() < 1e-3

    def test_closed_with_full_protection(self):
        result = branch_channel.experiment(
            TimeProtectionConfig.full(), presets.tiny_bimodal_machine,
            sweep_rounds=1,
        )
        assert result.capacity_bits() < 1e-3

    def test_gshare_history_masks_this_simple_attack(self):
        # With a history-indexed (gshare) predictor, the Trojan's
        # training lands at different table indexes than the spy's
        # lookups: this *particular* decoder sees nothing, which is why
        # the experiment uses the bimodal machine.  (Flushing remains
        # the principled defence either way -- history tricks are
        # attacker hygiene, not security.)
        result = branch_channel.experiment(
            TimeProtectionConfig.none(), presets.tiny_machine, sweep_rounds=1
        )
        assert result.capacity_bits() < 0.5

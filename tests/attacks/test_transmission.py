"""Tests for the covert-transmission framework."""

import pytest

from repro.attacks.transmission import CovertTransmitter, TransmissionResult


def perfect_channel(symbol):
    """The spy observes the transmitted symbol exactly, five times."""
    return [symbol] * 5


def dead_channel(_symbol):
    """The spy observes a constant, whatever was sent."""
    return [4] * 5


def noisy_channel(symbol):
    """Majority-correct observations with a minority of junk."""
    return [symbol, 0, symbol, 7, symbol]


SYMBOL_MAP = {0: 1, 1: 3, 2: 5, 3: 7}


class TestTransmit:
    def test_perfect_channel_recovers_message(self):
        transmitter = CovertTransmitter(perfect_channel, SYMBOL_MAP)
        result = transmitter.transmit(0xC3, width_bits=8)
        assert result.recovered
        assert result.bit_error_rate == 0.0
        assert result.symbols_sent == 4

    def test_dead_channel_recovers_nothing_but_constant(self):
        transmitter = CovertTransmitter(dead_channel, SYMBOL_MAP)
        results = {
            message: transmitter.transmit(message, width_bits=8).received_bits
            for message in (0x00, 0x5A, 0xFF)
        }
        # The decoder output is constant -- zero information.
        assert len({tuple(bits) for bits in results.values()}) == 1

    def test_majority_vote_corrects_noise(self):
        transmitter = CovertTransmitter(noisy_channel, SYMBOL_MAP)
        result = transmitter.transmit(0xA7, width_bits=8)
        assert result.recovered

    def test_symbol_errors_counted(self):
        transmitter = CovertTransmitter(dead_channel, SYMBOL_MAP)
        result = transmitter.transmit(0x00, width_bits=8)
        # dead channel answers "4" -> snaps to logical 1 or 2, so every
        # 00 symbol decodes wrong.
        assert result.symbol_errors == 4
        assert 0.0 < result.bit_error_rate <= 1.0

    def test_width_must_be_multiple_of_symbol_bits(self):
        transmitter = CovertTransmitter(perfect_channel, SYMBOL_MAP)
        with pytest.raises(ValueError):
            transmitter.transmit(0x1, width_bits=7)

    def test_symbol_map_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            CovertTransmitter(perfect_channel, {0: 1, 1: 2, 2: 3})

    def test_empty_symbol_map_rejected(self):
        with pytest.raises(ValueError):
            CovertTransmitter(perfect_channel, {})


class TestBandwidthReporting:
    def test_effective_rate_zero_at_half_error(self):
        result = TransmissionResult(
            sent_bits=[0, 1] * 4,
            received_bits=[1, 0] * 2 + [0, 1] * 2,
            bit_error_rate=0.5,
            symbol_errors=2,
            symbols_sent=4,
            symbol_period_cycles=1000,
        )
        assert result.effective_bits_per_second() == pytest.approx(0.0, abs=1e-6)

    def test_raw_rate_scales_with_clock(self):
        result = TransmissionResult(
            sent_bits=[1] * 8,
            received_bits=[1] * 8,
            bit_error_rate=0.0,
            symbol_errors=0,
            symbols_sent=4,
            symbol_period_cycles=2000,
            clock_hz=2e9,
        )
        # 2 bits per symbol, 1e6 symbols/s at 2 GHz / 2000 cycles.
        assert result.bandwidth().bits_per_second == pytest.approx(2e6)

    def test_summary_mentions_rate_when_period_known(self):
        result = TransmissionResult(
            sent_bits=[1] * 4,
            received_bits=[1] * 4,
            bit_error_rate=0.0,
            symbol_errors=0,
            symbols_sent=2,
            symbol_period_cycles=1000,
        )
        assert "bit/s" in result.summary()
        assert "RECOVERED" in result.summary()


@pytest.mark.slow
class TestEndToEndOverRealChannel:
    def test_byte_over_l1_primeprobe(self):
        """A real end-to-end transmission over the L1 channel."""
        from repro.attacks.primeprobe import l1_experiment
        from repro.hardware import presets
        from repro.kernel import TimeProtectionConfig

        def run_symbol(symbol):
            result = l1_experiment(
                TimeProtectionConfig.none(),
                presets.tiny_machine,
                symbols=[symbol],
                rounds_per_run=6,
            )
            return [obs for _s, obs in result.samples]

        transmitter = CovertTransmitter(
            run_symbol, symbol_map={0: 4, 1: 5, 2: 6, 3: 7}
        )
        result = transmitter.transmit(0x9, width_bits=4)
        assert result.recovered, result.summary()

"""Tests for codecs and the channel-experiment harness."""

import pytest

from repro.attacks.encoding import (
    bits_to_int,
    hamming_error_rate,
    int_to_bits,
    majority,
)
from repro.attacks.harness import ChannelResult, run_symbol_sweep


class TestEncoding:
    def test_roundtrip(self):
        for value in (0, 1, 5, 255):
            assert bits_to_int(int_to_bits(value, 8)) == value

    def test_big_endian(self):
        assert int_to_bits(0b100, 3) == [1, 0, 0]

    def test_majority(self):
        assert majority([1, 1, 0]) == 1
        assert majority([0, 1]) == 0  # tie breaks low

    def test_majority_empty_rejected(self):
        with pytest.raises(ValueError):
            majority([])

    def test_hamming_error_rate(self):
        assert hamming_error_rate([1, 0, 1], [1, 0, 1]) == 0.0
        assert hamming_error_rate([1, 0], [0, 1]) == 1.0
        assert hamming_error_rate([1, 0, 1, 1], [1, 0]) == 0.5


class TestHarness:
    def test_sweep_collects_per_symbol(self):
        result = run_symbol_sweep(
            name="fake",
            tp_label="TP:none",
            run_once=lambda symbol: [symbol * 10, symbol * 10],
            symbols=[0, 1, 2],
            rounds=2,
        )
        assert len(result.samples) == 12
        assert result.n_symbols() == 3

    def test_perfect_fake_channel_stats(self):
        result = run_symbol_sweep(
            name="fake",
            tp_label="TP:none",
            run_once=lambda symbol: [f"obs{symbol}"] * 4,
            symbols=[0, 1],
        )
        assert result.capacity_bits() == pytest.approx(1.0, abs=1e-5)
        assert result.decode_accuracy() == 1.0
        assert result.chance_accuracy() == 0.5

    def test_empty_experiment_rejected(self):
        with pytest.raises(RuntimeError):
            run_symbol_sweep(
                name="fake",
                tp_label="TP:none",
                run_once=lambda symbol: [],
                symbols=[0, 1],
            )

    def test_summary_mentions_name_and_label(self):
        result = ChannelResult(
            name="the channel", tp_label="TP:full", samples=[(0, "a"), (1, "b")]
        )
        summary = result.summary()
        assert "the channel" in summary
        assert "TP:full" in summary

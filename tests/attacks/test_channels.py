"""End-to-end channel tests: every attack must work when its defence is
off and carry (numerically) nothing when the defence is on.

These are the paper's defence claims, each exercised at reduced scale to
stay fast; the full-scale sweeps live in benchmarks/.
"""

import pytest

from repro.attacks import (
    event_timing,
    flushreload,
    interconnect_channel,
    irq_channel,
    occupancy,
    primeprobe,
    switch_latency,
)
from repro.hardware import presets
from repro.kernel import TimeProtectionConfig

FULL = TimeProtectionConfig.full()
NONE = TimeProtectionConfig.none()

CLOSED_BITS = 1e-3


def two_core():
    return presets.tiny_machine(n_cores=2)


@pytest.mark.slow
class TestPrimeProbeL1:
    # Low-numbered sets overlap the spy's own deterministic kernel-data
    # pollution, so the fast tests use upper-half sets; the full-range
    # sweep (with its honestly lower capacity) lives in the benchmarks.
    def test_open_without_protection(self):
        result = primeprobe.l1_experiment(
            NONE, presets.tiny_machine, symbols=[4, 7], rounds_per_run=6
        )
        assert result.capacity_bits() > 0.5

    def test_closed_with_protection(self):
        result = primeprobe.l1_experiment(
            FULL, presets.tiny_machine, symbols=[4, 7], rounds_per_run=6
        )
        assert result.capacity_bits() < CLOSED_BITS

    def test_flush_alone_closes_l1_channel(self):
        # L1 caches have one colour; flushing is the operative mechanism.
        tp = TimeProtectionConfig.none().without(
            flush_on_switch=True, pad_switch=True
        )
        result = primeprobe.l1_experiment(
            tp, presets.tiny_machine, symbols=[4, 7], rounds_per_run=6
        )
        assert result.capacity_bits() < CLOSED_BITS


@pytest.mark.slow
class TestPrimeProbeLlc:
    def test_open_without_colouring(self):
        result = primeprobe.llc_experiment(
            NONE, two_core, symbols=[1, 6], rounds_per_run=5
        )
        assert result.capacity_bits() > 0.9
        assert result.decode_accuracy() == 1.0

    def test_closed_with_colouring(self):
        result = primeprobe.llc_experiment(
            FULL, two_core, symbols=[1, 6], rounds_per_run=5
        )
        assert result.capacity_bits() < CLOSED_BITS

    def test_colouring_alone_suffices_cross_core(self):
        tp = TimeProtectionConfig.none().without(cache_colouring=True)
        result = primeprobe.llc_experiment(
            tp, two_core, symbols=[1, 6], rounds_per_run=5
        )
        assert result.capacity_bits() < CLOSED_BITS


class TestFlushReload:
    def test_open_without_clone(self):
        result = flushreload.experiment(NONE, presets.tiny_machine)
        assert result.capacity_bits() > 0.9

    def test_closed_with_clone(self):
        result = flushreload.experiment(FULL, presets.tiny_machine)
        assert result.capacity_bits() < CLOSED_BITS

    def test_open_with_everything_but_clone(self):
        # "Even read-only sharing of code is sufficient": all other
        # mechanisms on, cloning off, the channel remains.
        tp = TimeProtectionConfig.full().without(kernel_clone=False)
        result = flushreload.experiment(tp, presets.tiny_machine)
        assert result.capacity_bits() > 0.5


class TestOccupancy:
    def test_open_without_protection(self):
        result = occupancy.experiment(
            NONE, presets.tiny_machine, symbols=[1, 10], rounds_per_run=5
        )
        assert result.capacity_bits() > 0.5

    def test_closed_with_protection(self):
        result = occupancy.experiment(
            FULL, presets.tiny_machine, symbols=[1, 10], rounds_per_run=5
        )
        assert result.capacity_bits() < CLOSED_BITS


class TestEventTiming:
    def test_open_without_padded_ipc(self):
        result = event_timing.experiment(
            NONE, presets.tiny_machine, symbols=[0, 8], messages_per_run=4
        )
        assert result.capacity_bits() > 0.9

    def test_closed_with_padded_ipc(self):
        tp = TimeProtectionConfig.full(padded_ipc=True)
        result = event_timing.experiment(
            tp, presets.tiny_machine, symbols=[0, 8], messages_per_run=4
        )
        assert result.capacity_bits() < CLOSED_BITS

    def test_switch_padding_alone_does_not_close_it(self):
        # The E1 channel is in the *delivery time*, not the switch cost:
        # full TP without padded IPC still leaks.
        result = event_timing.experiment(
            FULL, presets.tiny_machine, symbols=[0, 8], messages_per_run=4
        )
        assert result.capacity_bits() > 0.5


class TestIrqChannel:
    def test_open_without_partitioning(self):
        result = irq_channel.experiment(NONE, presets.tiny_machine)
        assert result.capacity_bits() > 0.5

    def test_closed_with_partitioning(self):
        result = irq_channel.experiment(FULL, presets.tiny_machine)
        assert result.capacity_bits() < CLOSED_BITS


class TestSwitchLatency:
    def test_open_with_flush_but_no_padding(self):
        tp = TimeProtectionConfig.none().without(flush_on_switch=True)
        result = switch_latency.experiment(
            tp, presets.tiny_machine, symbols=[1, 14], rounds_per_run=6
        )
        assert result.capacity_bits() > 0.5

    def test_closed_with_padding(self):
        result = switch_latency.experiment(
            FULL, presets.tiny_machine, symbols=[1, 14], rounds_per_run=6
        )
        assert result.capacity_bits() < CLOSED_BITS


class TestInterconnect:
    def test_survives_full_protection(self):
        # The declared limitation (Sect. 2): the stateless interconnect
        # channel is NOT closed by time protection.
        result = interconnect_channel.experiment(FULL, presets.contended_machine)
        assert result.capacity_bits() > 0.3

    def test_mba_does_not_close_it(self):
        result = interconnect_channel.experiment(
            FULL, lambda: presets.contended_machine(mba=True)
        )
        assert result.capacity_bits() > 0.3

"""Tests for the victim workloads."""

import pytest

from repro.hardware import presets
from repro.kernel import Kernel, ThreadState, TimeProtectionConfig
from repro.workloads import (
    branchy_compute,
    cache_churner,
    encryption_engine,
    exponent_work_cycles,
    key_dependent_line,
    modexp_victim,
    network_stack,
    sbox_victim,
    syscall_churner,
    web_server,
)
from repro.workloads.modexp import MULTIPLY_CYCLES, SQUARE_CYCLES


class TestModexpAnalysis:
    def test_work_scales_with_hamming_weight(self):
        base = exponent_work_cycles(0b0000, 4)
        heavy = exponent_work_cycles(0b1111, 4)
        assert heavy == base + 4 * MULTIPLY_CYCLES
        assert base == 4 * SQUARE_CYCLES

    def test_width_masks_exponent(self):
        assert exponent_work_cycles(0xFF, 4) == exponent_work_cycles(0x0F, 4)

    def test_victim_runtime_tracks_secret(self):
        def run(exponent):
            machine = presets.tiny_machine()
            kernel = Kernel(machine, TimeProtectionConfig.none())
            hi = kernel.create_domain("Hi", slice_cycles=30_000)
            lo = kernel.create_domain("Lo", slice_cycles=5_000)
            endpoint = kernel.create_endpoint("out", receiver_domain=lo)
            kernel.create_thread(
                hi,
                modexp_victim,
                params={
                    "exponent": exponent,
                    "bits": 8,
                    "endpoint_id": endpoint.endpoint_id,
                    "messages": 2,
                },
            )
            arrivals = []

            def sink(ctx):
                from repro.hardware import ReadTime, Syscall

                for _ in range(2):
                    yield Syscall("recv", (endpoint.endpoint_id,))
                    stamp = yield ReadTime()
                    arrivals.append(stamp.value)

            kernel.create_thread(lo, sink)
            kernel.set_schedule(0, [(hi, None), (lo, None)])
            kernel.run(max_cycles=600_000)
            return arrivals

        light = run(0b00000001)
        heavy = run(0b11111111)
        assert light and heavy
        assert heavy[0] > light[0]  # more 1-bits -> later first arrival


class TestTableCrypto:
    def test_key_dependent_line_formula(self):
        assert key_dependent_line(key_byte=5, plaintext=0, table_rows=16) == 5
        assert key_dependent_line(key_byte=5, plaintext=5, table_rows=16) == 0

    def test_victim_runs_and_touches_table(self):
        machine = presets.tiny_machine()
        kernel = Kernel(machine, TimeProtectionConfig.none())
        domain = kernel.create_domain("Hi", slice_cycles=20_000)
        kernel.create_thread(
            domain,
            sbox_victim,
            data_pages=4,
            params={"key": [3, 7], "blocks_per_slice": 2},
        )
        kernel.set_schedule(0, [(domain, None)])
        kernel.run(max_cycles=100_000)
        touched = machine.instrumentation.touched_indices("Hi", "llc")
        assert touched  # the table walk reached the cache hierarchy


class TestDowngraderPipeline:
    def test_three_stage_pipeline_delivers(self):
        machine = presets.tiny_machine()
        kernel = Kernel(machine, TimeProtectionConfig.full(padded_ipc=True,
                                                           ipc_min_cycles=9000))
        hi = kernel.create_domain("Hi", n_colours=2, slice_cycles=25_000)
        lo = kernel.create_domain("Lo", n_colours=2, slice_cycles=8_000)
        to_crypto = kernel.create_endpoint("to_crypto")
        to_network = kernel.create_endpoint(
            "to_network", min_exec_cycles=15_000, receiver_domain=lo
        )
        secrets = [3, 9]
        kernel.create_thread(
            hi,
            web_server,
            params={"endpoint_id": to_crypto.endpoint_id, "secrets": secrets},
        )
        kernel.create_thread(
            hi,
            encryption_engine,
            params={
                "in_endpoint_id": to_crypto.endpoint_id,
                "out_endpoint_id": to_network.endpoint_id,
                "messages": len(secrets),
            },
        )
        arrivals = []
        kernel.create_thread(
            lo,
            network_stack,
            params={
                "in_endpoint_id": to_network.endpoint_id,
                "arrivals": arrivals,
                "messages": len(secrets),
            },
        )
        kernel.set_schedule(0, [(hi, None), (lo, None)])
        kernel.run(max_cycles=2_000_000)
        assert len(arrivals) == len(secrets)


class TestBackgroundLoads:
    @pytest.mark.parametrize(
        "program", [cache_churner, syscall_churner, branchy_compute]
    )
    def test_runs_without_fault(self, program):
        machine = presets.tiny_machine()
        kernel = Kernel(machine, TimeProtectionConfig.full())
        domain = kernel.create_domain("Bg", n_colours=2, slice_cycles=5000)
        tcb = kernel.create_thread(domain, program, data_pages=4)
        kernel.set_schedule(0, [(domain, None)])
        kernel.run(max_cycles=60_000)
        assert tcb.state is not ThreadState.FAULTED
        assert tcb.steps_executed > 10

"""Unit tests for physical memory, frames and address spaces."""

import pytest

from repro.hardware.memory import PhysicalMemory
from repro.hardware.mmu import AddressSpaceManager, TranslationFault


def make_memory(frames=64, page_size=256, n_colours=8):
    return PhysicalMemory(total_frames=frames, page_size=page_size, n_colours=n_colours)


class TestFrameAllocation:
    def test_frames_cycle_through_colours(self):
        memory = make_memory()
        colours = [frame.colour for frame in memory.frames[:16]]
        assert colours == [i % 8 for i in range(16)]

    def test_alloc_respects_colour_filter(self):
        memory = make_memory()
        frame = memory.alloc_frame(colours={3})
        assert frame.colour == 3

    def test_alloc_exhaustion_raises(self):
        memory = make_memory(frames=8)  # one frame per colour
        memory.alloc_frame(colours={0})
        with pytest.raises(MemoryError):
            memory.alloc_frame(colours={0})

    def test_release_returns_frames(self):
        memory = make_memory(frames=8)
        frame = memory.alloc_frame(colours={2})
        assert memory.free_frames({2}) == 0
        memory.release([frame])
        assert memory.free_frames({2}) == 1

    def test_free_frames_counts(self):
        memory = make_memory(frames=16)
        assert memory.free_frames() == 16
        memory.alloc_frames(4)
        assert memory.free_frames() == 12

    def test_word_read_write(self):
        memory = make_memory()
        assert memory.read_word(0x100) == 0
        memory.write_word(0x100, 42)
        assert memory.read_word(0x100) == 42


class TestAddressSpace:
    def test_map_and_translate(self):
        memory = make_memory()
        manager = AddressSpaceManager(memory)
        space = manager.create()
        frame = memory.alloc_frame()
        space.map(0x1000, frame)
        paddr = space.translate(0x1010)
        assert paddr == frame.base_paddr(256) + 0x10

    def test_unmapped_raises_fault(self):
        memory = make_memory()
        space = AddressSpaceManager(memory).create()
        with pytest.raises(TranslationFault):
            space.translate(0x9999)

    def test_unmap(self):
        memory = make_memory()
        space = AddressSpaceManager(memory).create()
        frame = memory.alloc_frame()
        space.map(0x1000, frame)
        space.unmap(0x1000)
        with pytest.raises(TranslationFault):
            space.translate(0x1000)

    def test_generation_bumps_on_modification(self):
        memory = make_memory()
        space = AddressSpaceManager(memory).create()
        generation = space.generation
        space.map(0x1000, memory.alloc_frame())
        assert space.generation == generation + 1
        space.unmap(0x1000)
        assert space.generation == generation + 2

    def test_asids_are_unique(self):
        memory = make_memory()
        manager = AddressSpaceManager(memory)
        asids = {manager.create().asid for _ in range(5)}
        assert len(asids) == 5

    def test_walk_addresses_inside_root_frame(self):
        memory = make_memory()
        space = AddressSpaceManager(memory).create()
        base = space.root_frame.base_paddr(256)
        for walk_addr in space.walk_addresses(0x4321):
            assert base <= walk_addr < base + 256

    def test_root_frame_colour_filter(self):
        memory = make_memory()
        manager = AddressSpaceManager(memory)
        space = manager.create(colours={5})
        assert space.root_frame.colour == 5

    def test_frames_lists_root_and_mappings(self):
        memory = make_memory()
        space = AddressSpaceManager(memory).create()
        frame = memory.alloc_frame()
        space.map(0x1000, frame)
        numbers = {f.number for f in space.frames()}
        assert space.root_frame.number in numbers
        assert frame.number in numbers

"""Unit tests for the set-associative cache model."""

import pytest

from repro.hardware.cache import Cache, LatencyParams, ReplacementPolicy
from repro.hardware.geometry import CacheGeometry
from repro.hardware.state import Scope, StateCategory


def make_cache(ways=2, sets=8, policy=ReplacementPolicy.LRU, broken=False):
    return Cache(
        name="test.cache",
        geometry=CacheGeometry(sets=sets, ways=ways, line_size=32),
        category=StateCategory.FLUSHABLE,
        scope=Scope.CORE_LOCAL,
        latency=LatencyParams(hit_cycles=4),
        page_size=256,
        policy=policy,
        flush_is_broken=broken,
    )


class TestAccess:
    def test_first_access_misses(self):
        cache = make_cache()
        assert cache.access(0x100).hit is False

    def test_second_access_hits(self):
        cache = make_cache()
        cache.access(0x100)
        assert cache.access(0x100).hit is True

    def test_same_line_different_offsets_hit(self):
        cache = make_cache()
        cache.access(0x100)
        assert cache.access(0x11F).hit is True  # same 32-byte line
        assert cache.access(0x120).hit is False  # next line

    def test_fill_respects_associativity(self):
        cache = make_cache(ways=2, sets=8)
        set_stride = 8 * 32
        cache.access(0 * set_stride)
        cache.access(1 * set_stride)
        assert cache.occupancy(0) == 2
        result = cache.access(2 * set_stride)
        assert result.hit is False
        assert result.evicted_tag is not None
        assert cache.occupancy(0) == 2  # never exceeds ways

    def test_lru_evicts_least_recently_used(self):
        cache = make_cache(ways=2, sets=8)
        stride = 8 * 32
        cache.access(0 * stride)  # A
        cache.access(1 * stride)  # B
        cache.access(0 * stride)  # refresh A
        cache.access(2 * stride)  # must evict B
        assert cache.access(0 * stride).hit is True
        assert cache.access(1 * stride).hit is False

    def test_fifo_ignores_hits_for_replacement(self):
        cache = make_cache(ways=2, sets=8, policy=ReplacementPolicy.FIFO)
        stride = 8 * 32
        cache.access(0 * stride)  # A (first in)
        cache.access(1 * stride)  # B
        cache.access(0 * stride)  # hit A: must not refresh under FIFO
        cache.access(2 * stride)  # evicts A (first in)
        assert cache.access(1 * stride).hit is True
        assert cache.access(0 * stride).hit is False

    def test_plru_never_evicts_most_recently_used(self):
        # Tree-PLRU only approximates LRU, but it guarantees the victim
        # is never the line touched immediately before the miss.
        cache = make_cache(ways=4, sets=8, policy=ReplacementPolicy.PLRU)
        stride = 8 * 32
        for way in range(4):
            cache.access(way * stride)
        cache.access(1 * stride)  # most recently used
        cache.access(4 * stride)  # miss: victim must not be tag 1
        assert cache.access(1 * stride).hit is True

    def test_plru_cycles_through_all_ways(self):
        # Consecutive misses (no touches in between) must not evict the
        # same way twice in a row.
        cache = make_cache(ways=4, sets=8, policy=ReplacementPolicy.PLRU)
        stride = 8 * 32
        for tag in range(4):
            cache.access(tag * stride)
        cache.access(4 * stride)
        victim_first = {t for t in range(4) if not cache.probe(t * stride)}
        cache.access(5 * stride)
        assert cache.probe(4 * stride)  # the just-filled line survives

    def test_write_marks_dirty(self):
        cache = make_cache()
        cache.access(0x100, write=True)
        assert cache.dirty_line_count() == 1
        cache.access(0x200, write=False)
        assert cache.dirty_line_count() == 1

    def test_dirty_eviction_reports_writeback(self):
        cache = make_cache(ways=1, sets=8)
        stride = 8 * 32
        cache.access(0 * stride, write=True)
        result = cache.access(1 * stride)
        assert result.dirty_writeback is True


class TestProbeAndInvalidate:
    def test_probe_does_not_allocate(self):
        cache = make_cache()
        assert cache.probe(0x100) is False
        assert cache.occupancy(cache.geometry.set_index(0x100)) == 0

    def test_probe_sees_resident_line(self):
        cache = make_cache()
        cache.access(0x100)
        assert cache.probe(0x100) is True

    def test_invalidate_line(self):
        cache = make_cache()
        cache.access(0x100)
        assert cache.invalidate_line(0x100) is True
        assert cache.probe(0x100) is False
        assert cache.invalidate_line(0x100) is False


class TestFlush:
    def test_flush_empties_cache(self):
        cache = make_cache()
        for i in range(16):
            cache.access(i * 32, write=(i % 2 == 0))
        result = cache.flush()
        assert cache.fingerprint() == cache.reset_fingerprint()
        assert result.lines_written_back == 8

    def test_flush_latency_depends_on_dirty_lines(self):
        clean = make_cache()
        for i in range(8):
            clean.access(i * 32)
        dirty = make_cache()
        for i in range(8):
            dirty.access(i * 32, write=True)
        assert dirty.flush().cycles > clean.flush().cycles

    def test_flush_latency_formula(self):
        cache = make_cache()
        for i in range(5):
            cache.access(i * 32, write=True)
        result = cache.flush()
        expected = (
            cache.latency.flush_base_cycles
            + 5 * cache.latency.writeback_cycles_per_line
        )
        assert result.cycles == expected

    def test_broken_flush_leaves_residue(self):
        cache = make_cache(broken=True)
        for i in range(16):
            cache.access(i * 32)
        cache.flush()
        assert cache.fingerprint() != cache.reset_fingerprint()

    def test_flush_resets_plru_bits(self):
        cache = make_cache(ways=4, policy=ReplacementPolicy.PLRU)
        for i in range(16):
            cache.access(i * 32)
        cache.flush()
        assert cache.fingerprint() == cache.reset_fingerprint()


class TestPartitioning:
    def test_partition_of_index_is_page_colour(self):
        cache = Cache(
            name="llc",
            geometry=CacheGeometry(sets=64, ways=8, line_size=32),
            category=StateCategory.PARTITIONABLE,
            scope=Scope.SHARED,
            latency=LatencyParams(hit_cycles=40),
            page_size=256,
        )
        assert cache.n_partitions == 8
        assert cache.partition_of_index(0) == 0
        assert cache.partition_of_index(8) == 1
        assert cache.partition_of_index(63) == 7

    def test_single_colour_cache_has_one_partition(self):
        cache = make_cache()
        assert cache.n_partitions == 1

    def test_fingerprint_changes_with_content(self):
        cache = make_cache()
        empty = cache.fingerprint()
        cache.access(0x100)
        assert cache.fingerprint() != empty

"""Unit tests for machine assembly and the contract-violation presets."""

import pytest

from repro.hardware import Machine, MachineConfig, StateCategory, presets


class TestMachineAssembly:
    def test_tiny_machine_shape(self):
        machine = presets.tiny_machine()
        assert len(machine.cores) == 1
        assert machine.n_colours == 8
        assert machine.page_size == 256

    def test_cores_share_llc(self):
        machine = presets.tiny_machine(n_cores=2)
        assert machine.cores[0].llc is machine.cores[1].llc

    def test_cores_have_private_l1(self):
        machine = presets.tiny_machine(n_cores=2)
        assert machine.cores[0].l1d is not machine.cores[1].l1d

    def test_element_names_unique(self):
        machine = presets.tiny_machine(n_cores=2)
        names = [e.name for e in machine.all_state_elements()]
        assert len(names) == len(set(names))

    def test_all_state_elements_count(self):
        machine = presets.tiny_machine(n_cores=2)
        # llc + 6 private elements per core.
        assert len(machine.all_state_elements()) == 1 + 6 * 2

    def test_needs_at_least_one_core(self):
        with pytest.raises(ValueError):
            Machine(MachineConfig(n_cores=0))

    def test_desktop_machine_colours(self):
        machine = presets.desktop_machine()
        assert machine.n_colours == 64
        assert machine.page_size == 4096

    def test_fingerprint_all_covers_every_element(self):
        machine = presets.tiny_machine()
        fingerprints = dict(machine.fingerprint_all())
        assert set(fingerprints) == {e.name for e in machine.all_state_elements()}


class TestSmtPreset:
    def test_smt_shares_private_state(self):
        machine = presets.tiny_smt_machine()
        assert machine.cores[0].l1d is machine.cores[1].l1d
        assert machine.cores[0].tlb is machine.cores[1].tlb

    def test_smt_private_state_becomes_unmanaged(self):
        machine = presets.tiny_smt_machine()
        assert (
            machine.cores[0].l1d.effective_category() is StateCategory.UNMANAGED
        )

    def test_smt_needs_even_cores(self):
        config = presets.tiny_config(n_cores=3)
        config.smt = True
        with pytest.raises(ValueError):
            Machine(config)

    def test_smt_elements_deduplicated(self):
        machine = presets.tiny_smt_machine()
        # One LLC plus ONE set of shared private elements.
        assert len(machine.all_state_elements()) == 1 + 6


class TestViolationPresets:
    def test_unflushable_prefetcher_unmanaged(self):
        machine = presets.tiny_unflushable_machine()
        assert (
            machine.cores[0].prefetcher.effective_category()
            is StateCategory.UNMANAGED
        )

    def test_broken_flush_keeps_residue(self):
        machine = presets.tiny_broken_flush_machine()
        l1d = machine.cores[0].l1d
        for i in range(16):
            l1d.access(i * 32)
        l1d.flush()
        assert l1d.fingerprint() != l1d.reset_fingerprint()

    def test_nocolour_llc_single_partition(self):
        machine = presets.tiny_nocolour_machine()
        assert machine.llc.n_partitions == 1
        assert machine.llc.effective_category() is StateCategory.UNMANAGED

    def test_contended_machine_has_slow_bus(self):
        machine = presets.contended_machine()
        assert machine.interconnect.transfer_cycles > presets.tiny_machine(
        ).interconnect.transfer_cycles

    def test_healthy_tiny_machine_fully_managed(self):
        machine = presets.tiny_machine()
        for element in machine.all_state_elements():
            assert element.effective_category() is not StateCategory.UNMANAGED

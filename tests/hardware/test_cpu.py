"""Unit tests for the core's execution and memory-access paths."""

import pytest

from repro.hardware import (
    Access,
    Branch,
    Compute,
    FlushLine,
    Halt,
    INSTRUCTION_BYTES,
    ReadTime,
    Syscall,
    TrapKind,
    presets,
)
from repro.hardware.mmu import AddressSpaceManager


@pytest.fixture
def core_and_space():
    machine = presets.tiny_machine()
    manager = AddressSpaceManager(machine.memory)
    space = manager.create()
    for page in range(4):
        space.map(0x1000 + page * 256, machine.memory.alloc_frame())
    return machine.cores[0], space


class TestMemoryPath:
    def test_miss_costlier_than_hit(self, core_and_space):
        core, space = core_and_space
        _lat, paddr = core.translate(space, 0x1000)
        miss = core.cached_access(paddr)
        hit = core.cached_access(paddr)
        assert miss > hit

    def test_translate_returns_physical_address(self, core_and_space):
        core, space = core_and_space
        _lat, paddr = core.translate(space, 0x1008)
        assert paddr == space.translate(0x1008)

    def test_tlb_hit_cheaper_than_walk(self, core_and_space):
        core, space = core_and_space
        walk_latency, _ = core.translate(space, 0x1000)
        hit_latency, _ = core.translate(space, 0x1000)
        assert hit_latency < walk_latency

    def test_flush_line_everywhere(self, core_and_space):
        core, space = core_and_space
        _lat, paddr = core.translate(space, 0x1000)
        core.cached_access(paddr)
        core.flush_line_everywhere(paddr)
        assert not core.l1d.probe(paddr)
        assert not core.l2.probe(paddr)
        assert not core.llc.probe(paddr)


class TestExecuteUser:
    def test_compute_advances_clock(self, core_and_space):
        core, space = core_and_space
        before = core.clock.now
        result = core.execute_user(space, 0x1000, Compute(50))
        assert core.clock.now == before + result.latency
        assert result.latency >= 50

    def test_load_returns_stored_value(self, core_and_space):
        core, space = core_and_space
        core.execute_user(space, 0x1000, Access(0x1108, write=True, value=99))
        result = core.execute_user(space, 0x1004, Access(0x1108))
        assert result.value == 99

    def test_pc_advances_by_instruction_size(self, core_and_space):
        core, space = core_and_space
        result = core.execute_user(space, 0x1000, Compute(1))
        assert result.new_pc == 0x1000 + INSTRUCTION_BYTES

    def test_branch_taken_jumps(self, core_and_space):
        core, space = core_and_space
        result = core.execute_user(space, 0x1000, Branch(taken=True, target=0x1040))
        assert result.new_pc == 0x1040

    def test_branch_not_taken_falls_through(self, core_and_space):
        core, space = core_and_space
        result = core.execute_user(space, 0x1000, Branch(taken=False, target=0x1040))
        assert result.new_pc == 0x1000 + INSTRUCTION_BYTES

    def test_mispredict_costs_more(self, core_and_space):
        core, space = core_and_space
        # Train until the gshare history saturates (all-taken -> all-ones)
        # so the final taken prediction is correct and stable.
        for _ in range(20):
            core.execute_user(space, 0x1000, Branch(taken=True, target=0x1040))
        predicted = core.execute_user(space, 0x1000, Branch(taken=True, target=0x1040))
        surprised = core.execute_user(space, 0x1000, Branch(taken=False, target=0x1040))
        assert surprised.latency > predicted.latency

    def test_readtime_returns_clock(self, core_and_space):
        core, space = core_and_space
        result = core.execute_user(space, 0x1000, ReadTime())
        assert result.value == core.clock.now

    def test_syscall_traps(self, core_and_space):
        core, space = core_and_space
        result = core.execute_user(space, 0x1000, Syscall("nop"))
        assert result.trap is not None
        assert result.trap.kind is TrapKind.SYSCALL
        assert result.trap.syscall.op == "nop"

    def test_halt_traps(self, core_and_space):
        core, space = core_and_space
        result = core.execute_user(space, 0x1000, Halt())
        assert result.trap.kind is TrapKind.HALT

    def test_unmapped_access_faults(self, core_and_space):
        core, space = core_and_space
        result = core.execute_user(space, 0x1000, Access(0xDEAD00))
        assert result.trap.kind is TrapKind.FAULT
        assert result.trap.fault_vaddr == 0xDEAD00

    def test_unmapped_pc_faults(self, core_and_space):
        core, space = core_and_space
        result = core.execute_user(space, 0xDEAD00, Compute(1))
        assert result.trap.kind is TrapKind.FAULT

    def test_flushline_instruction(self, core_and_space):
        core, space = core_and_space
        core.execute_user(space, 0x1000, Access(0x1100))
        paddr = space.translate(0x1100)
        assert core.l1d.probe(paddr)
        core.execute_user(space, 0x1004, FlushLine(0x1100))
        assert not core.l1d.probe(paddr)

    def test_unknown_instruction_rejected(self, core_and_space):
        core, space = core_and_space
        with pytest.raises(TypeError):
            core.execute_user(space, 0x1000, object())

    def test_latency_deterministic_for_same_state(self):
        def run():
            machine = presets.tiny_machine()
            space = AddressSpaceManager(machine.memory).create()
            space.map(0x1000, machine.memory.alloc_frame())
            core = machine.cores[0]
            return [
                core.execute_user(space, 0x1000, Access(0x1000 + 8 * i)).latency
                for i in range(8)
            ]

        assert run() == run()

"""Unit tests for the branch predictor."""

from repro.hardware.branch import BranchPredictor


def make_predictor(**kwargs):
    return BranchPredictor(name="test.bp", **kwargs)


class TestDirectionPrediction:
    def test_reset_state_is_weakly_not_taken(self):
        predictor = make_predictor()
        result = predictor.predict_and_update(0x100, taken=False, target=0x200)
        assert result.predicted_taken is False
        assert result.mispredicted is False

    def test_learns_always_taken_branch(self):
        # history_bits=0 pins the gshare index so the counter is stable.
        predictor = make_predictor(history_bits=0)
        mispredictions = []
        for _ in range(6):
            result = predictor.predict_and_update(0x100, taken=True, target=0x200)
            mispredictions.append(result.mispredicted)
        # Early mispredictions, then correct (direction + BTB learned).
        assert mispredictions[0] is True
        assert mispredictions[-1] is False

    def test_learns_with_history_after_warmup(self):
        # With a history register, an always-taken branch stabilises once
        # the history saturates to all-ones.
        predictor = make_predictor(history_bits=4)
        results = [
            predictor.predict_and_update(0x100, taken=True, target=0x200)
            for _ in range(20)
        ]
        assert results[-1].mispredicted is False

    def test_counter_saturates(self):
        predictor = make_predictor(history_bits=0)
        for _ in range(10):
            predictor.predict_and_update(0x100, taken=True, target=0x200)
        # One not-taken shouldn't flip the prediction out of taken.
        predictor.predict_and_update(0x100, taken=False, target=0x200)
        result = predictor.predict_and_update(0x100, taken=True, target=0x200)
        assert result.predicted_taken is True

    def test_taken_with_wrong_target_is_mispredicted(self):
        predictor = make_predictor()
        for _ in range(4):
            predictor.predict_and_update(0x100, taken=True, target=0x200)
        result = predictor.predict_and_update(0x100, taken=True, target=0x999)
        assert result.mispredicted is True


class TestHistoryAndState:
    def test_history_affects_table_index(self):
        predictor = make_predictor(history_bits=4)
        # Train a pattern at one pc; the gshare index depends on history,
        # so state accumulates across branches.
        before = predictor.fingerprint()
        predictor.predict_and_update(0x100, taken=True, target=0x200)
        assert predictor.fingerprint() != before

    def test_btb_capacity_bounded(self):
        predictor = make_predictor(btb_entries=4)
        for pc in range(0, 32, 4):
            predictor.predict_and_update(pc, taken=True, target=pc + 64)
        # Internal BTB never exceeds its capacity.
        _counters, btb, _history = predictor.fingerprint()
        assert len(btb) <= 4

    def test_flush_resets_everything(self):
        predictor = make_predictor()
        for pc in (0x100, 0x104, 0x108):
            predictor.predict_and_update(pc, taken=True, target=pc + 64)
        predictor.flush()
        assert predictor.fingerprint() == predictor.reset_fingerprint()

    def test_flush_restores_initial_predictions(self):
        predictor = make_predictor()
        for _ in range(6):
            predictor.predict_and_update(0x100, taken=True, target=0x200)
        predictor.flush()
        result = predictor.predict_and_update(0x100, taken=False, target=0x200)
        assert result.predicted_taken is False

"""Unit tests for cache geometry and colour arithmetic."""

import pytest

from repro.hardware.geometry import CacheGeometry, TlbGeometry, colour_of_frame


class TestCacheGeometry:
    def test_size_bytes(self):
        geometry = CacheGeometry(sets=64, ways=4, line_size=32)
        assert geometry.size_bytes == 64 * 4 * 32

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheGeometry(sets=63, ways=4, line_size=32)

    def test_rejects_non_power_of_two_line_size(self):
        with pytest.raises(ValueError):
            CacheGeometry(sets=64, ways=4, line_size=48)

    def test_rejects_zero_ways(self):
        with pytest.raises(ValueError):
            CacheGeometry(sets=64, ways=0, line_size=32)

    def test_set_index_masks_correctly(self):
        geometry = CacheGeometry(sets=8, ways=2, line_size=32)
        assert geometry.set_index(0) == 0
        assert geometry.set_index(32) == 1
        assert geometry.set_index(8 * 32) == 0  # wraps past the last set
        assert geometry.set_index(31) == 0  # offset bits ignored

    def test_tag_above_index(self):
        geometry = CacheGeometry(sets=8, ways=2, line_size=32)
        assert geometry.tag(0) == 0
        assert geometry.tag(8 * 32) == 1
        # Same set, different tags must differ.
        assert geometry.tag(0) != geometry.tag(8 * 32)
        assert geometry.set_index(0) == geometry.set_index(8 * 32)

    def test_line_address_alignment(self):
        geometry = CacheGeometry(sets=8, ways=2, line_size=32)
        assert geometry.line_address(33) == 32
        assert geometry.line_address(32) == 32
        assert geometry.line_address(31) == 0


class TestColours:
    def test_l1_has_single_colour(self):
        # per-way capacity == page size -> cannot be partitioned.
        geometry = CacheGeometry(sets=8, ways=2, line_size=32)
        assert geometry.n_colours(page_size=256) == 1

    def test_llc_colour_count(self):
        geometry = CacheGeometry(sets=64, ways=8, line_size=32)
        assert geometry.n_colours(page_size=256) == 8

    def test_desktop_llc_colours(self):
        geometry = CacheGeometry(sets=4096, ways=16, line_size=64)
        assert geometry.n_colours(page_size=4096) == 64

    def test_colour_of_set_is_contiguous_blocks(self):
        geometry = CacheGeometry(sets=64, ways=8, line_size=32)
        sets_per_colour = geometry.sets_per_colour(page_size=256)
        assert sets_per_colour == 8
        for set_index in range(64):
            assert geometry.colour_of_set(set_index, 256) == set_index // 8

    def test_colour_of_paddr_matches_frame_colour(self):
        geometry = CacheGeometry(sets=64, ways=8, line_size=32)
        page_size = 256
        n_colours = geometry.n_colours(page_size)
        for frame in range(32):
            paddr = frame * page_size + 16
            assert geometry.colour_of_paddr(paddr, page_size) == colour_of_frame(
                frame, n_colours
            )

    def test_all_lines_of_a_page_share_a_colour(self):
        geometry = CacheGeometry(sets=64, ways=8, line_size=32)
        page_size = 256
        for frame in (0, 3, 9):
            colours = {
                geometry.colour_of_paddr(frame * page_size + offset, page_size)
                for offset in range(0, page_size, 32)
            }
            assert len(colours) == 1

    def test_colour_of_frame_rejects_bad_n(self):
        with pytest.raises(ValueError):
            colour_of_frame(3, 0)


class TestTlbGeometry:
    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            TlbGeometry(entries=0)

    def test_accepts_positive(self):
        assert TlbGeometry(entries=16).entries == 16

"""Unit tests for the ASID-tagged TLB (Syeda & Klein-style model)."""

from repro.hardware.geometry import TlbGeometry
from repro.hardware.memory import PhysicalMemory
from repro.hardware.mmu import AddressSpaceManager
from repro.hardware.tlb import Tlb


def make_tlb(entries=4):
    return Tlb(name="test.tlb", geometry=TlbGeometry(entries=entries))


class TestLookupFill:
    def test_miss_then_hit(self):
        tlb = make_tlb()
        assert tlb.lookup(1, 0x10).hit is False
        tlb.fill(asid=1, vpage=0x10, frame_number=5, writable=True, generation=0)
        result = tlb.lookup(1, 0x10)
        assert result.hit is True
        assert result.frame_number == 5

    def test_asid_tags_distinguish_spaces(self):
        tlb = make_tlb()
        tlb.fill(asid=1, vpage=0x10, frame_number=5, writable=True, generation=0)
        assert tlb.lookup(2, 0x10).hit is False

    def test_lru_eviction_when_full(self):
        tlb = make_tlb(entries=2)
        tlb.fill(1, 0x10, 5, True, 0)
        tlb.fill(1, 0x11, 6, True, 0)
        tlb.lookup(1, 0x10)  # refresh
        tlb.fill(1, 0x12, 7, True, 0)  # evicts (1, 0x11)
        assert tlb.lookup(1, 0x10).hit is True
        assert tlb.lookup(1, 0x11).hit is False

    def test_capacity_never_exceeded(self):
        tlb = make_tlb(entries=3)
        for vpage in range(10):
            tlb.fill(1, vpage, vpage, True, 0)
        assert len(tlb.entries_for_asid(1)) <= 3


class TestInvalidation:
    def test_invalidate_asid_removes_only_that_asid(self):
        tlb = make_tlb(entries=8)
        tlb.fill(1, 0x10, 5, True, 0)
        tlb.fill(1, 0x11, 6, True, 0)
        tlb.fill(2, 0x10, 7, True, 0)
        removed = tlb.invalidate_asid(1)
        assert removed == 2
        assert tlb.lookup(2, 0x10).hit is True

    def test_invalidate_page(self):
        tlb = make_tlb()
        tlb.fill(1, 0x10, 5, True, 0)
        assert tlb.invalidate_page(1, 0x10) is True
        assert tlb.lookup(1, 0x10).hit is False
        assert tlb.invalidate_page(1, 0x10) is False

    def test_flush_clears_everything(self):
        tlb = make_tlb()
        tlb.fill(1, 0x10, 5, True, 0)
        tlb.fill(2, 0x20, 6, True, 0)
        tlb.flush()
        assert tlb.fingerprint() == tlb.reset_fingerprint()


class TestAsidIsolationTheorem:
    """Sect. 5.3: page-table mods under one ASID don't affect another's
    TLB consistency -- the partitioning theorem the paper points at."""

    def _spaces(self):
        memory = PhysicalMemory(total_frames=64, page_size=256, n_colours=8)
        manager = AddressSpaceManager(memory)
        space_a = manager.create()
        space_b = manager.create()
        frame_a = memory.alloc_frame()
        frame_b = memory.alloc_frame()
        space_a.map(0x1000, frame_a)
        space_b.map(0x1000, frame_b)
        return memory, space_a, space_b

    def test_consistency_predicate_holds_after_fill(self):
        _memory, space_a, space_b = self._spaces()
        tlb = make_tlb(entries=8)
        mapping = space_a.lookup(0x1000)
        tlb.fill(space_a.asid, 0x1000 // 256, mapping.frame.number, True,
                 space_a.generation)
        assert tlb.consistent_with(space_a.asid, space_a)

    def test_other_asid_mutation_preserves_consistency(self):
        memory, space_a, space_b = self._spaces()
        tlb = make_tlb(entries=8)
        mapping = space_a.lookup(0x1000)
        tlb.fill(space_a.asid, 0x1000 // 256, mapping.frame.number, True,
                 space_a.generation)
        # Mutate B's page table arbitrarily.
        space_b.unmap(0x1000)
        space_b.map(0x2000, memory.alloc_frame())
        assert tlb.consistent_with(space_a.asid, space_a)

    def test_own_asid_mutation_breaks_consistency_until_shootdown(self):
        memory, space_a, _space_b = self._spaces()
        tlb = make_tlb(entries=8)
        mapping = space_a.lookup(0x1000)
        vpage = 0x1000 // 256
        tlb.fill(space_a.asid, vpage, mapping.frame.number, True, space_a.generation)
        space_a.unmap(0x1000)
        space_a.map(0x1000, memory.alloc_frame())
        assert not tlb.consistent_with(space_a.asid, space_a)
        tlb.invalidate_page(space_a.asid, vpage)
        assert tlb.consistent_with(space_a.asid, space_a)

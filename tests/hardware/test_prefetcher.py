"""Unit tests for the stride prefetcher."""

from repro.hardware.prefetcher import StridePrefetcher
from repro.hardware.state import StateCategory


def make_prefetcher(**kwargs):
    return StridePrefetcher(name="test.pf", **kwargs)


class TestStrideDetection:
    def test_no_prefetch_on_first_accesses(self):
        prefetcher = make_prefetcher()
        assert prefetcher.observe(0x1000) == []
        assert prefetcher.observe(0x1040) == []

    def test_stable_stride_triggers_prefetch(self):
        prefetcher = make_prefetcher(degree=2)
        addresses = [0x1000 + i * 64 for i in range(5)]
        issued = []
        for address in addresses:
            issued = prefetcher.observe(address)
        assert issued == [addresses[-1] + 64, addresses[-1] + 128]

    def test_erratic_stride_never_prefetches(self):
        prefetcher = make_prefetcher()
        for address in (0x1000, 0x1040, 0x10C0, 0x1020, 0x1100, 0x1010):
            issued = prefetcher.observe(address)
        assert issued == []

    def test_negative_stride_supported(self):
        prefetcher = make_prefetcher(degree=1)
        issued = []
        for i in range(5):
            issued = prefetcher.observe(0x2000 - i * 32)
        assert issued == [0x2000 - 5 * 32]

    def test_table_capacity_bounded(self):
        prefetcher = make_prefetcher(table_entries=2, region_bits=12)
        for region in range(6):
            prefetcher.observe(region << 12)
        assert len(prefetcher.fingerprint()) <= 2


class TestFlushability:
    def test_flush_clears_table(self):
        prefetcher = make_prefetcher()
        for i in range(4):
            prefetcher.observe(0x1000 + i * 64)
        prefetcher.flush()
        assert prefetcher.fingerprint() == prefetcher.reset_fingerprint()

    def test_unflushable_hardware_keeps_state(self):
        prefetcher = make_prefetcher(flushable_in_hardware=False)
        for i in range(4):
            prefetcher.observe(0x1000 + i * 64)
        prefetcher.flush()
        assert prefetcher.fingerprint() != prefetcher.reset_fingerprint()

    def test_unflushable_hardware_is_unmanaged(self):
        prefetcher = make_prefetcher(flushable_in_hardware=False)
        assert prefetcher.effective_category() is StateCategory.UNMANAGED

    def test_flushable_hardware_is_flushable(self):
        prefetcher = make_prefetcher()
        assert prefetcher.effective_category() is StateCategory.FLUSHABLE

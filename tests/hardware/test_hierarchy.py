"""Tests for the composed memory hierarchy behaviour in Core.cached_access."""

import pytest

from repro.hardware import presets
from repro.hardware.mmu import AddressSpaceManager


@pytest.fixture
def core_space():
    machine = presets.tiny_machine()
    manager = AddressSpaceManager(machine.memory)
    space = manager.create()
    for page in range(8):
        space.map(0x1000 + page * 256, machine.memory.alloc_frame())
    return machine, machine.cores[0], space


class TestHierarchyFill:
    def test_miss_fills_all_levels(self, core_space):
        machine, core, space = core_space
        paddr = space.translate(0x1000)
        core.cached_access(paddr)
        assert core.l1d.probe(paddr)
        assert core.l2.probe(paddr)
        assert machine.llc.probe(paddr)

    def test_l2_hit_after_l1_eviction(self, core_space):
        machine, core, space = core_space
        target = space.translate(0x1000)
        core.cached_access(target)
        # Evict from L1 only (same L1 set, different pages).
        core.l1d.invalidate_line(target)
        latency = core.cached_access(target)
        # L2 hit: cheaper than a full miss, dearer than an L1 hit.
        l1_hit = core.cached_access(target)
        assert l1_hit < latency
        fresh = space.translate(0x1700)
        full_miss = core.cached_access(fresh)
        assert latency < full_miss

    def test_latency_ordering_l1_l2_llc_dram(self, core_space):
        machine, core, space = core_space
        paddr = space.translate(0x1000)
        dram = core.cached_access(paddr)  # cold: all levels miss
        l1 = core.cached_access(paddr)
        core.l1d.invalidate_line(paddr)
        l2 = core.cached_access(paddr)
        core.l1d.invalidate_line(paddr)
        core.l2.invalidate_line(paddr)
        llc = core.cached_access(paddr)
        assert l1 < l2 < llc < dram


class TestWriteBackPaths:
    def test_dirty_l1_eviction_costs_more(self, core_space):
        machine, core, space = core_space
        # Fill one L1 set (2 ways) with dirty lines, then force evictions.
        base = space.translate(0x1000)
        stride = 256  # same L1 set on consecutive pages
        dirty_cost = 0
        clean_cost = 0
        for trial, write in ((0, True), (1, False)):
            machine2 = presets.tiny_machine()
            manager = AddressSpaceManager(machine2.memory)
            space2 = manager.create()
            for page in range(6):
                space2.map(0x1000 + page * 256, machine2.memory.alloc_frame())
            core2 = machine2.cores[0]
            for page in range(2):
                core2.cached_access(space2.translate(0x1000 + page * 256),
                                    write=write)
                # Let the bus drain: cached_access alone does not advance
                # the clock, and a busy bus would mask the write-back cost.
                core2.clock.advance(1000)
            # Third line in the same set evicts the first (dirty or clean).
            cost = core2.cached_access(space2.translate(0x1000 + 2 * 256))
            if write:
                dirty_cost = cost
            else:
                clean_cost = cost
        assert dirty_cost > clean_cost

    def test_memory_values_survive_eviction(self, core_space):
        machine, core, space = core_space
        from repro.hardware import Access

        core.execute_user(space, 0x1000, Access(0x1008, write=True, value=1234))
        paddr = space.translate(0x1008)
        core.flush_line_everywhere(paddr)
        result = core.execute_user(space, 0x1004, Access(0x1008))
        assert result.value == 1234


class TestPrefetcherIntegration:
    def test_stride_prefetch_fills_l2(self, core_space):
        machine, core, space = core_space
        # A steady stride within one 4 KiB region trains the prefetcher.
        addresses = [space.translate(0x1000 + i * 32) for i in range(6)]
        for paddr in addresses:
            core.cached_access(paddr)
        ahead = addresses[-1] + 32
        assert core.l2.probe(ahead)
        assert not core.l1d.probe(ahead)  # prefetch targets L2, not L1

    def test_prefetched_line_is_cheaper(self, core_space):
        machine, core, space = core_space
        for i in range(6):
            core.cached_access(space.translate(0x1000 + i * 32))
        prefetched = core.cached_access(space.translate(0x1000 + 6 * 32))
        cold_machine = presets.tiny_machine()
        manager = AddressSpaceManager(cold_machine.memory)
        cold_space = manager.create()
        cold_space.map(0x1000, cold_machine.memory.alloc_frame())
        cold = cold_machine.cores[0].cached_access(cold_space.translate(0x1000))
        assert prefetched < cold


class TestBusCoupling:
    def test_llc_misses_use_the_shared_bus(self):
        machine = presets.tiny_machine(n_cores=2)
        manager = AddressSpaceManager(machine.memory)
        space = manager.create()
        space.map(0x1000, machine.memory.alloc_frame())
        before = machine.interconnect.total_transfers
        machine.cores[0].cached_access(space.translate(0x1000))
        assert machine.interconnect.total_transfers == before + 1

    def test_hits_do_not_use_the_bus(self):
        machine = presets.tiny_machine()
        manager = AddressSpaceManager(machine.memory)
        space = manager.create()
        space.map(0x1000, machine.memory.alloc_frame())
        paddr = space.translate(0x1000)
        machine.cores[0].cached_access(paddr)
        before = machine.interconnect.total_transfers
        machine.cores[0].cached_access(paddr)
        assert machine.interconnect.total_transfers == before

    def test_concurrent_miss_sees_queueing_delay(self):
        machine = presets.tiny_machine(n_cores=2)
        manager = AddressSpaceManager(machine.memory)
        spaces = [manager.create(), manager.create()]
        for space in spaces:
            space.map(0x1000, machine.memory.alloc_frame())
        # Core 1 occupies the bus "now"; core 0's miss right after waits.
        machine.cores[1].clock.advance(1000)
        machine.cores[0].clock.advance(1000)
        quiet = presets.tiny_machine()
        qm = AddressSpaceManager(quiet.memory)
        qs = qm.create()
        qs.map(0x1000, quiet.memory.alloc_frame())
        quiet.cores[0].clock.advance(1000)
        baseline = quiet.cores[0].cached_access(qs.translate(0x1000))
        machine.cores[1].cached_access(spaces[1].translate(0x1000))
        contended = machine.cores[0].cached_access(spaces[0].translate(0x1000))
        assert contended > baseline
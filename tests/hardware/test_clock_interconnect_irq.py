"""Unit tests for the clock, interconnect and interrupt controller."""

import pytest

from repro.hardware.clock import CycleClock
from repro.hardware.interconnect import Interconnect, MbaConfig
from repro.hardware.interrupts import InterruptController


class TestCycleClock:
    def test_advance(self):
        clock = CycleClock()
        assert clock.advance(10) == 10
        assert clock.now == 10

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            CycleClock().advance(-1)

    def test_advance_to_pads_forward_only(self):
        clock = CycleClock(start=100)
        clock.advance_to(150)
        assert clock.now == 150
        clock.advance_to(120)  # no going back
        assert clock.now == 150


class TestInterconnect:
    def test_uncontended_transfer_has_no_wait(self):
        bus = Interconnect(transfer_cycles=24)
        result = bus.request(core=0, now=1000)
        assert result.wait_cycles == 0
        assert result.transfer_cycles == 24

    def test_back_to_back_requests_queue(self):
        bus = Interconnect(transfer_cycles=24)
        bus.request(core=0, now=1000)
        result = bus.request(core=1, now=1010)
        assert result.wait_cycles == (1000 + 24) - 1010

    def test_cross_core_contention_is_visible(self):
        # The essence of the stateless-interconnect channel: one core's
        # traffic delays the other's.
        bus = Interconnect(transfer_cycles=24)
        bus.request(core=1, now=1000)
        delayed = bus.request(core=0, now=1001)
        quiet_bus = Interconnect(transfer_cycles=24)
        undelayed = quiet_bus.request(core=0, now=1001)
        assert delayed.total_cycles > undelayed.total_cycles

    def test_transfer_accounting(self):
        bus = Interconnect()
        before = bus.total_transfers
        bus.request(0, 0)
        bus.request(1, 100)
        assert bus.utilisation_since(before) == 2
        assert bus.per_core_transfers == {0: 1, 1: 1}

    def test_mba_throttles_over_budget_core(self):
        mba = MbaConfig(window_cycles=1000, requests_per_window=2,
                        throttle_delay_cycles=40)
        bus = Interconnect(transfer_cycles=10, mba=mba)
        waits = [bus.request(0, now=i * 20).wait_cycles for i in range(4)]
        # Requests beyond the window budget pick up the throttle delay.
        assert max(waits[2:]) >= 40

    def test_mba_is_approximate_not_partitioning(self):
        # A new window resets the count: modulation across windows stays
        # visible (footnote 1: approximate enforcement is insufficient).
        mba = MbaConfig(window_cycles=100, requests_per_window=1,
                        throttle_delay_cycles=40)
        bus = Interconnect(transfer_cycles=10, mba=mba)
        bus.request(0, now=0)
        late = bus.request(0, now=500)  # new window -> no throttle
        assert late.wait_cycles == 0


class TestInterruptController:
    def test_schedule_and_deliver(self):
        irq = InterruptController(n_lines=4)
        irq.schedule(line=2, fire_time=100)
        assert irq.deliverable(now=50) is None
        pending = irq.deliverable(now=100)
        assert pending is not None and pending.line == 2

    def test_masked_lines_stay_pending(self):
        irq = InterruptController(n_lines=4)
        irq.schedule(line=2, fire_time=100)
        irq.mask(2)
        assert irq.deliverable(now=200) is None
        irq.unmask(2)
        pending = irq.deliverable(now=200)
        assert pending is not None and pending.line == 2

    def test_delivery_order_by_fire_time(self):
        irq = InterruptController(n_lines=4)
        irq.schedule(line=3, fire_time=300)
        irq.schedule(line=1, fire_time=100)
        first = irq.deliverable(now=400)
        assert first.line == 1

    def test_set_mask_all_except(self):
        irq = InterruptController(n_lines=4)
        irq.set_mask_all_except({0, 2})
        assert not irq.is_masked(0)
        assert irq.is_masked(1)
        assert not irq.is_masked(2)
        assert irq.is_masked(3)

    def test_next_unmasked_fire_time_skips_masked(self):
        irq = InterruptController(n_lines=4)
        irq.schedule(line=1, fire_time=100)
        irq.schedule(line=2, fire_time=200)
        irq.mask(1)
        assert irq.next_unmasked_fire_time() == 200

    def test_line_range_validated(self):
        irq = InterruptController(n_lines=4)
        with pytest.raises(ValueError):
            irq.schedule(line=9, fire_time=0)
        with pytest.raises(ValueError):
            irq.mask(-1)

    def test_delivered_count(self):
        irq = InterruptController(n_lines=4)
        irq.schedule(line=1, fire_time=10)
        irq.schedule(line=1, fire_time=20)
        irq.deliverable(now=15)
        irq.deliverable(now=25)
        assert irq.delivered_count[1] == 2

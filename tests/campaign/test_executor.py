"""Executor behaviour: resume, retry, determinism, parallel pool, CLI."""

import pytest

from repro.attacks.harness import ChannelResult
from repro.campaign import (
    CampaignSpec,
    ResultStore,
    TrialSpec,
    deterministic_view,
    register_attack,
    run_campaign,
    unregister_attack,
)

_CALLS = {"flaky": 0}


def _quick_attack(tp, machine_factory, **params):
    """A registry-compatible attack that skips the simulator entirely."""
    return ChannelResult(
        name="quick", tp_label="quick", samples=[(0, 0), (1, 1)],
        metadata={"params": sorted(params)},
    )


def _failing_attack(tp, machine_factory, **params):
    raise RuntimeError("injected trial failure")


def _flaky_attack(tp, machine_factory, **params):
    _CALLS["flaky"] += 1
    if _CALLS["flaky"] == 1:
        raise RuntimeError("injected transient failure")
    return _quick_attack(tp, machine_factory, **params)


@pytest.fixture
def fake_attacks():
    register_attack("quick", _quick_attack)
    register_attack("always-fails", _failing_attack)
    _CALLS["flaky"] = 0
    register_attack("flaky-once", _flaky_attack)
    yield
    for name in ("quick", "always-fails", "flaky-once"):
        unregister_attack(name)


def _spec(attacks, tps=("full",), seeds=(0,)):
    return CampaignSpec(
        machines=("tiny",), tps=tps, attacks=attacks, seeds=seeds
    )


class TestSerialExecution:
    def test_one_record_per_trial(self, fake_attacks, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        spec = _spec(("quick",), tps=("full", "none"), seeds=(0, 1))
        report = run_campaign(spec, store, n_workers=1, quiet=True)
        assert report.total == report.executed == report.succeeded == 4
        assert report.all_ok and report.skipped == 0
        records = store.records()
        assert len(records) == 4
        assert {r["key"] for r in records} == {
            t.key() for t in spec.trials()
        }
        for record in records:
            assert record["status"] == "ok"
            assert record["result"]["stats"]["n_samples"] == 2

    def test_resume_skips_completed_trials(self, fake_attacks, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        spec = _spec(("quick",), tps=("full", "none"), seeds=(0, 1))
        run_campaign(spec, store, n_workers=1, quiet=True)
        rerun = run_campaign(spec, store, n_workers=1, quiet=True)
        assert rerun.executed == 0 and rerun.skipped == 4
        assert len(store.records()) == 4  # nothing re-appended

    def test_resume_runs_only_new_trials(self, fake_attacks, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        run_campaign(_spec(("quick",), seeds=(0,)), store, quiet=True)
        grown = run_campaign(
            _spec(("quick",), seeds=(0, 1, 2)), store, quiet=True
        )
        assert grown.skipped == 1 and grown.executed == 2

    def test_fresh_reruns_everything(self, fake_attacks, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        spec = _spec(("quick",))
        run_campaign(spec, store, quiet=True)
        rerun = run_campaign(spec, store, resume=False, quiet=True)
        assert rerun.executed == 1 and rerun.skipped == 0
        assert len(store.records()) == 2  # append-only: both runs on disk

    def test_worker_crash_retry_then_success(self, fake_attacks, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        report = run_campaign(
            _spec(("flaky-once",)), store, max_retries=2, quiet=True
        )
        assert report.all_ok and report.retries == 1
        (record,) = store.records()
        assert record["status"] == "ok" and record["attempts"] == 2

    def test_retries_exhausted_writes_failed_record(
        self, fake_attacks, tmp_path
    ):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        report = run_campaign(
            _spec(("always-fails",)), store, max_retries=2, quiet=True
        )
        assert report.failed == 1 and report.retries == 2
        (record,) = store.records()
        assert record["status"] == "failed"
        assert record["attempts"] == 3  # 1 try + 2 retries
        assert "injected trial failure" in record["error"]
        # A failed record does not satisfy resume: the trial re-runs.
        rerun = run_campaign(
            _spec(("always-fails",)), store, max_retries=0, quiet=True
        )
        assert rerun.executed == 1 and rerun.skipped == 0


class TestDeterminism:
    def test_same_seed_gives_identical_stored_record(self, tmp_path):
        trial = TrialSpec("tiny", "none", "e5", seed=7)
        views = []
        for run in range(2):
            store = ResultStore(str(tmp_path / f"run{run}.jsonl"))
            report = run_campaign([trial], store, n_workers=1, quiet=True)
            assert report.all_ok
            views.append(deterministic_view(store.records()[0]))
        assert views[0] == views[1]
        assert views[0]["result"]["stats"]["n_samples"] > 0


class TestParallelExecution:
    def test_pool_produces_same_records_as_serial(
        self, fake_attacks, tmp_path
    ):
        spec = _spec(("quick",), tps=("full", "none"), seeds=(0, 1, 2))
        serial = ResultStore(str(tmp_path / "serial.jsonl"))
        pooled = ResultStore(str(tmp_path / "pool.jsonl"))
        run_campaign(spec, serial, n_workers=1, quiet=True)
        report = run_campaign(spec, pooled, n_workers=2, quiet=True)
        assert report.executed == 6 and report.all_ok
        by_key_serial = {
            r["key"]: deterministic_view(r) for r in serial.records()
        }
        by_key_pooled = {
            r["key"]: deterministic_view(r) for r in pooled.records()
        }
        assert by_key_serial == by_key_pooled

    def test_pool_failure_and_resume(self, fake_attacks, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        spec = _spec(("quick", "always-fails"), tps=("full",), seeds=(0, 1))
        report = run_campaign(
            spec, store, n_workers=2, max_retries=1, quiet=True
        )
        assert report.executed == 4
        assert report.succeeded == 2 and report.failed == 2
        # Resume re-runs only the failed trials.
        rerun = run_campaign(
            spec, store, n_workers=2, max_retries=0, quiet=True
        )
        assert rerun.skipped == 2 and rerun.executed == 2


class TestTimeout:
    def test_slow_trial_times_out_and_fails(self, tmp_path):
        def sleepy(tp, machine_factory, **params):
            import time

            time.sleep(30)
            return _quick_attack(tp, machine_factory)

        register_attack("sleepy", sleepy)
        try:
            store = ResultStore(str(tmp_path / "r.jsonl"))
            report = run_campaign(
                _spec(("sleepy",)), store, timeout_s=1,
                max_retries=0, quiet=True,
            )
            assert report.failed == 1
            (record,) = store.records()
            assert record["status"] == "failed"
            assert "timed out" in record["error"]
        finally:
            unregister_attack("sleepy")

"""Live coordinator over HTTP: endpoints, worker loop, portable deadline."""

import json
import time
from urllib import error as urlerror
from urllib import request as urlrequest

import pytest

from repro.attacks.harness import ChannelResult
from repro.campaign import TrialSpec, register_attack, unregister_attack
from repro.campaign.service import (
    BackoffPolicy,
    CoordinatorUnreachable,
    LeaseTable,
    ServiceWorker,
    plan_payloads,
)
from repro.campaign.service.coordinator import Coordinator, CoordinatorServer
from repro.campaign.service.status import format_status
from repro.campaign.service.worker import run_trial_with_deadline
from repro.campaign.store import ResultStore


def _quick_attack(tp, machine_factory, **params):
    return ChannelResult(
        name="quick", tp_label="quick", samples=[(0, 0), (1, 1)],
        metadata={},
    )


def _sleepy_attack(tp, machine_factory, **params):
    time.sleep(30)
    return _quick_attack(tp, machine_factory)


@pytest.fixture
def fake_attacks():
    register_attack("quick", _quick_attack)
    register_attack("sleepy", _sleepy_attack)
    yield
    unregister_attack("quick")
    unregister_attack("sleepy")


def _trials(n, attack="quick"):
    return [TrialSpec("tiny", "none", attack, seed=i) for i in range(n)]


@pytest.fixture
def live_server(fake_attacks, tmp_path):
    store = ResultStore(str(tmp_path / "r.jsonl"))
    table = LeaseTable(plan_payloads(_trials(4)), shard_size=2,
                       lease_ttl_s=30.0)
    coordinator = Coordinator(table, store, campaign="http-test")
    server = CoordinatorServer(coordinator)
    url = server.start()
    yield url, table, store, coordinator
    server.stop()


def _post(url, path, payload):
    request = urlrequest.Request(
        url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urlrequest.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


class TestEndpoints:
    def test_lease_heartbeat_results_cycle(self, live_server):
        url, table, store, _ = live_server
        lease = _post(url, "/lease", {"worker": "t0"})["lease"]
        assert lease["generation"] == 1 and len(lease["trials"]) == 2
        beat = _post(url, "/heartbeat", {
            "worker": "t0", "shard": lease["shard"],
            "generation": lease["generation"],
        })
        assert beat["ok"] is True
        record = {"key": lease["trials"][0]["key"], "status": "ok",
                  "result": None}
        outcome = _post(url, "/results", {
            "worker": "t0", "shard": lease["shard"],
            "generation": lease["generation"], "records": [record],
        })
        assert outcome["accepted"] == 1 and outcome["done"] is False
        # The coordinator is the single writer: the record landed with
        # its campaign label attached.
        (stored,) = store.records()
        assert stored["key"] == record["key"]
        assert stored["campaign"] == "http-test"
        # A duplicate submission is dropped, not re-appended.
        again = _post(url, "/results", {
            "worker": "t1", "shard": lease["shard"],
            "generation": lease["generation"], "records": [record],
        })
        assert again["duplicate"] == 1 and len(store.records()) == 1

    def test_status_endpoint_reports_progress(self, live_server):
        url, *_ = live_server
        with urlrequest.urlopen(url + "/status", timeout=10) as response:
            status = json.loads(response.read())
        assert status["campaign"] == "http-test"
        assert status["total"] == 4 and status["resolved"] == 0
        assert "capacity" in status and "workers" in status
        assert "http-test" in format_status(status)

    def test_unknown_endpoint_is_404(self, live_server):
        url, *_ = live_server
        with pytest.raises(urlerror.HTTPError) as excinfo:
            _post(url, "/nope", {})
        assert excinfo.value.code == 404

    def test_malformed_json_is_400_and_server_survives(self, live_server):
        url, *_ = live_server
        request = urlrequest.Request(
            url + "/lease", data=b"not json{", method="POST"
        )
        with pytest.raises(urlerror.HTTPError) as excinfo:
            urlrequest.urlopen(request, timeout=10)
        assert excinfo.value.code in (400, 500)
        # Server still answers afterwards.
        assert _post(url, "/lease", {"worker": "t0"})["lease"] is not None


class TestServiceWorker:
    def test_worker_drains_the_grid(self, live_server):
        url, table, store, _ = live_server
        worker = ServiceWorker(url, worker_id="inline",
                               backoff=BackoffPolicy(seed=0))
        stats = worker.run()
        assert stats.trials == 4 and stats.succeeded == 4
        assert table.done
        assert len(store.records()) == 4
        assert store.completed_keys() == {t.key() for t in _trials(4)}

    def test_two_sequential_workers_split_without_overlap(self, live_server):
        url, table, store, _ = live_server
        first = ServiceWorker(url, worker_id="a")
        lease = first._call("/lease", {"worker": "a"})["lease"]
        first._run_lease(lease)
        second = ServiceWorker(url, worker_id="b")
        second.run()
        assert table.done and table.stats.duplicates == 0
        assert len(store.records()) == 4

    def test_engine_preference_keeps_lease_identity(self, live_server):
        url, table, store, _ = live_server
        worker = ServiceWorker(url, worker_id="relabel", engine="batch")
        worker.run()
        assert table.done
        for record in store.records():
            # The record keeps the lease's scalar identity; the engine
            # actually used is volatile worker metadata.
            assert record["engine"] == "scalar"
            assert "/engine=" not in record["key"]
            assert record["worker"]["executed_engine"] == "batch"

    def test_backoff_gives_up_with_coordinator_unreachable(self):
        sleeps = []
        worker = ServiceWorker(
            "http://127.0.0.1:1",  # nothing listens on port 1
            worker_id="lost",
            max_failures=3,
            http_timeout_s=0.2,
            backoff=BackoffPolicy(base_s=0.01, cap_s=0.05, seed=7),
            sleep=sleeps.append,
        )
        with pytest.raises(CoordinatorUnreachable):
            worker.run()
        # Two backoff sleeps before the third failure gives up, every
        # delay bounded by the cap and drawn from the seeded stream.
        assert len(sleeps) == 2
        assert all(0 < delay <= 0.05 for delay in sleeps)
        reference = BackoffPolicy(base_s=0.01, cap_s=0.05, seed=7)
        assert sleeps == [reference.next_delay() for _ in range(2)]


class TestPortableDeadline:
    def test_inline_when_no_budget(self, fake_attacks):
        payload = plan_payloads(_trials(1), timeout_s=0.0)[0]
        record = run_trial_with_deadline(payload)
        assert record["status"] == "ok"
        assert record["key"] == payload["key"]

    def test_fast_trial_beats_its_deadline(self, fake_attacks):
        payload = plan_payloads(_trials(1), timeout_s=20.0)[0]
        record = run_trial_with_deadline(payload)
        assert record["status"] == "ok"

    def test_wedged_trial_is_terminated(self, fake_attacks):
        payload = plan_payloads(_trials(1, attack="sleepy"), timeout_s=0.8)[0]
        beats = []
        started = time.monotonic()
        record = run_trial_with_deadline(
            payload, heartbeat=lambda: beats.append(1), poll_s=0.1
        )
        elapsed = time.monotonic() - started
        assert record["status"] == "failed"
        assert "deadline" in record["error"]
        assert record["key"] == payload["key"]
        assert elapsed < 10  # nowhere near the 30s sleep
        assert beats  # the lease stayed warm while the trial ran

"""Fleet behaviour: churn survival, resume identity, pool equivalence.

The acceptance bar: a coordinator + 2-worker fleet must complete its
grid even when one worker is SIGKILLed mid-lease, never losing or
double-counting a trial, and the surviving records' deterministic views
must equal what the single-host pool produces for the same grid.
"""

import os
import signal
import time

import pytest

from repro.attacks.harness import ChannelResult
from repro.campaign import (
    CampaignSpec,
    ResultStore,
    deterministic_view,
    open_store,
    register_attack,
    run_campaign,
    unregister_attack,
)
from repro.campaign.service import run_distributed_campaign
from repro.campaign.service.coordinator import Coordinator, CoordinatorServer
from repro.campaign.service.fleet import _fleet_worker_main
from repro.campaign.service.leases import LeaseTable, plan_payloads
from repro.campaign.service.worker import _mp_context


def _quick_attack(tp, machine_factory, **params):
    return ChannelResult(
        name="quick", tp_label="quick", samples=[(0, 0), (1, 1)],
        metadata={},
    )


def _slow_attack(tp, machine_factory, **params):
    time.sleep(0.25)
    return _quick_attack(tp, machine_factory)


@pytest.fixture
def fake_attacks():
    # Registered before any fork: worker children inherit the registry.
    register_attack("quick", _quick_attack)
    register_attack("slow", _slow_attack)
    yield
    unregister_attack("quick")
    unregister_attack("slow")


def _spec(attack="quick", seeds=(0, 1, 2)):
    return CampaignSpec(
        machines=("tiny",), tps=("full", "none"), attacks=(attack,),
        seeds=seeds,
    )


def _views(store):
    return {r["key"]: deterministic_view(r) for r in store.records()}


class TestDistributedRun:
    def test_fleet_matches_pool_bit_for_bit(self, fake_attacks, tmp_path):
        spec = _spec()
        pool_store = ResultStore(str(tmp_path / "pool.jsonl"))
        run_campaign(spec, pool_store, n_workers=2, quiet=True)
        fleet_store = open_store(str(tmp_path / "fleet.sqlite"))
        report = run_distributed_campaign(
            spec, fleet_store, n_workers=2, shard_size=2, quiet=True
        )
        assert report.completed and report.all_ok
        assert report.executed == 6
        assert _views(fleet_store) == _views(pool_store)

    def test_fleet_resumes_past_pool_records(self, fake_attacks, tmp_path):
        spec = _spec()
        store = ResultStore(str(tmp_path / "r.jsonl"))
        run_campaign(spec, store, n_workers=1, quiet=True)
        report = run_distributed_campaign(
            spec, store, n_workers=2, quiet=True
        )
        assert report.completed
        assert report.skipped == 6 and report.executed == 0
        assert len(store.records()) == 6  # nothing re-appended

    def test_empty_grid_short_circuits(self, fake_attacks, tmp_path):
        report = run_distributed_campaign(
            [], ResultStore(str(tmp_path / "r.jsonl")), n_workers=2,
            quiet=True,
        )
        assert report.completed and report.total == 0


class TestChurnSurvival:
    def _start_fleet(self, spec, store, tmp_path, lease_ttl_s=2.0,
                     n_workers=2, shard_size=1):
        completed = store.completed_keys()
        todo = [t for t in spec.trials() if t.key() not in completed]
        table = LeaseTable(
            plan_payloads(todo), shard_size=shard_size,
            lease_ttl_s=lease_ttl_s,
        )
        coordinator = Coordinator(table, store, campaign=spec.name)
        server = CoordinatorServer(coordinator)
        server.bind()
        ctx = _mp_context()
        workers = [
            ctx.Process(
                target=_fleet_worker_main,
                args=(server.url, f"w{i}", i, None, 1),
                daemon=True,
            )
            for i in range(n_workers)
        ]
        for worker in workers:
            worker.start()
        server.start()
        return table, server, workers

    def test_sigkilled_worker_loses_no_trials(self, fake_attacks, tmp_path):
        """Kill one of two workers mid-lease; the sweep still completes
        with every trial resolved exactly once."""
        spec = _spec(attack="slow", seeds=(0, 1, 2, 3))
        store = ResultStore(str(tmp_path / "churn.jsonl"))
        table, server, workers = self._start_fleet(spec, store, tmp_path)
        try:
            # Let the fleet get into its leases, then kill w0 dead —
            # SIGKILL, no cleanup, mid-trial.
            deadline = time.monotonic() + 30
            while len(store.completed_keys()) < 2:
                assert time.monotonic() < deadline, "fleet never progressed"
                time.sleep(0.05)
            os.kill(workers[0].pid, signal.SIGKILL)
            assert server.wait_done(timeout=60), (
                "fleet did not finish after losing a worker: "
                f"{table.snapshot()}"
            )
        finally:
            for worker in workers:
                worker.join(timeout=10)
                if worker.is_alive():
                    worker.terminate()
            server.stop()
        # No trial lost, none double-counted.
        assert table.done
        assert store.completed_keys() == {t.key() for t in spec.trials()}
        assert len(store.records()) == 8  # exactly one record per trial

    def test_killed_and_restarted_fleet_matches_serial(
        self, fake_attacks, tmp_path
    ):
        """Tear the whole fleet down mid-sweep, restart it, and converge
        on the identical completed-key set a serial run produces."""
        spec = _spec(attack="slow", seeds=(0, 1, 2))
        store = ResultStore(str(tmp_path / "restart.jsonl"))
        table, server, workers = self._start_fleet(spec, store, tmp_path)
        try:
            deadline = time.monotonic() + 30
            while len(store.completed_keys()) < 1:
                assert time.monotonic() < deadline, "fleet never progressed"
                time.sleep(0.05)
        finally:
            for worker in workers:  # SIGKILL the whole fleet mid-sweep
                os.kill(worker.pid, signal.SIGKILL)
            for worker in workers:
                worker.join(timeout=10)
            server.stop()
        resolved_early = len(store.completed_keys())
        assert resolved_early < 6, "fleet finished before the kill"
        # Restart: the new fleet leases only the unresolved remainder.
        report = run_distributed_campaign(
            spec, store, n_workers=2, shard_size=1, quiet=True
        )
        assert report.completed
        assert report.skipped == resolved_early
        serial_store = ResultStore(str(tmp_path / "serial.jsonl"))
        run_campaign(spec, serial_store, n_workers=1, quiet=True)
        assert store.completed_keys() == serial_store.completed_keys()
        assert len(store.records()) == 6
        assert _views(store) == _views(serial_store)


@pytest.mark.slow
class TestThousandTrialAcceptance:
    def test_1000_trials_with_worker_killed_matches_pool(
        self, fake_attacks, tmp_path
    ):
        """The ISSUE acceptance sweep: >=1000 trials through a 2-worker
        fleet with one worker killed partway, sqlite store, deterministic
        views equal to the pool run's."""
        spec = _spec(seeds=tuple(range(500)))  # 500 seeds x 2 tps = 1000
        assert len(spec.trials()) == 1000
        fleet_store = open_store(str(tmp_path / "fleet.sqlite"))
        churn = TestChurnSurvival()
        table, server, workers = churn._start_fleet(
            spec, fleet_store, tmp_path, lease_ttl_s=5.0, shard_size=25,
        )
        try:
            deadline = time.monotonic() + 120
            while len(fleet_store.completed_keys()) < 100:
                assert time.monotonic() < deadline, "fleet never progressed"
                time.sleep(0.05)
            os.kill(workers[0].pid, signal.SIGKILL)
            assert server.wait_done(timeout=300), (
                f"sweep incomplete: {table.snapshot()}"
            )
        finally:
            for worker in workers:
                worker.join(timeout=10)
                if worker.is_alive():
                    worker.terminate()
            server.stop()
        assert table.done and len(fleet_store) == 1000
        pool_store = ResultStore(str(tmp_path / "pool.jsonl"))
        report = run_campaign(spec, pool_store, n_workers=2, quiet=True)
        assert report.all_ok
        assert _views(fleet_store) == _views(pool_store)

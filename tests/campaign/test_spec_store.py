"""Specs expand deterministically; the store appends, loads and resumes."""

import json

import pytest

from repro.campaign import (
    CampaignSpec,
    ResultStore,
    TrialSpec,
    deterministic_view,
)


class TestTrialSpec:
    def test_key_is_stable_and_distinct(self):
        a = TrialSpec("tiny", "full", "e5", seed=0)
        b = TrialSpec("tiny", "full", "e5", seed=1)
        assert a.key() == TrialSpec("tiny", "full", "e5", seed=0).key()
        assert a.key() != b.key()
        assert "machine=tiny" in a.key() and "attack=e5" in a.key()

    def test_params_change_the_key_order_insensitively(self):
        base = TrialSpec("tiny", "full", "e5")
        with_params = TrialSpec("tiny", "full", "e5", params={"rounds_per_run": 3})
        assert base.key() != with_params.key()
        reordered = TrialSpec(
            "tiny", "full", "e5", params={"rounds_per_run": 3}
        )
        assert with_params.key() == reordered.key()

    def test_derived_seed_distinct_per_trial_but_reproducible(self):
        a = TrialSpec("tiny", "full", "e5", seed=0)
        b = TrialSpec("tiny", "none", "e5", seed=0)
        assert a.derived_seed() == TrialSpec("tiny", "full", "e5").derived_seed()
        assert a.derived_seed() != b.derived_seed()

    def test_payload_roundtrip(self):
        trial = TrialSpec("tiny", "no-pad", "occupancy", seed=3,
                          params={"rounds_per_run": 2})
        assert TrialSpec.from_payload(trial.to_payload()) == trial

    def test_validate_rejects_unknown_names(self):
        with pytest.raises(KeyError):
            TrialSpec("no-such-machine", "full", "e5").validate()
        with pytest.raises(KeyError):
            TrialSpec("tiny", "no-such-tp", "e5").validate()
        with pytest.raises(KeyError):
            TrialSpec("tiny", "full", "no-such-attack").validate()


class TestCampaignSpec:
    def test_grid_is_full_cross_product(self):
        spec = CampaignSpec(
            machines=("tiny",), tps=("full", "none"),
            attacks=("e5", "occupancy"), seeds=(0, 1),
        )
        trials = spec.trials()
        assert len(trials) == 1 * 2 * 2 * 2
        assert len({t.key() for t in trials}) == len(trials)

    def test_core_starved_attacks_are_skipped(self):
        # e3/e7 need two cores; 'tiny' has one, 'tiny2' has two.
        spec = CampaignSpec(
            machines=("tiny", "tiny2"), tps=("full",),
            attacks=("e5", "e7"), seeds=(0,),
        )
        trials = spec.trials()
        pairs = {(t.machine, t.attack) for t in trials}
        assert ("tiny", "e5") in pairs and ("tiny2", "e7") in pairs
        assert ("tiny", "e7") not in pairs

    def test_json_roundtrip(self, tmp_path):
        spec = CampaignSpec(
            machines=("tiny", "nocolour"), tps=("full", "no-flush"),
            attacks=("e5",), seeds=(0, 7),
            attack_params={"e5": {"rounds_per_run": 3}}, name="rt",
        )
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        loaded = CampaignSpec.from_json_file(str(path))
        assert loaded.to_dict() == spec.to_dict()
        assert [t.key() for t in loaded.trials()] == [
            t.key() for t in spec.trials()
        ]

    def test_unknown_spec_fields_rejected(self):
        with pytest.raises(KeyError):
            CampaignSpec.from_dict({"machines": ["tiny"], "bogus": 1})


class TestResultStore:
    def _record(self, key, status="ok", capacity=0.5):
        return {
            "key": key, "status": status, "machine": "tiny", "tp": "full",
            "attack": "e5", "seed": 0,
            "result": {"stats": {"capacity_bits": capacity}},
            "wall_time_s": 1.0, "worker": {"pid": 1}, "attempts": 1,
        }

    def test_append_then_load(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        assert store.records() == [] and len(store) == 0
        store.append(self._record("k1"))
        store.append(self._record("k2", status="failed"))
        records = store.records()
        assert [r["key"] for r in records] == ["k1", "k2"]
        assert store.completed_keys() == {"k1"}

    def test_record_without_key_rejected(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        with pytest.raises(ValueError):
            store.append({"status": "ok"})

    def test_torn_tail_line_is_ignored(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultStore(str(path))
        store.append(self._record("k1"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "k2", "status": "o')  # interrupted write
        assert [r["key"] for r in store.records()] == ["k1"]
        assert store.completed_keys() == {"k1"}

    def test_latest_by_key_prefers_newest(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        store.append(self._record("k1", capacity=0.1))
        store.append(self._record("k1", capacity=0.9))
        assert store.latest_by_key()["k1"]["result"]["stats"][
            "capacity_bits"
        ] == 0.9

    def test_deterministic_view_drops_volatile_fields(self):
        record = self._record("k1")
        view = deterministic_view(record)
        assert "wall_time_s" not in view and "worker" not in view
        assert view["key"] == "k1" and "result" in view

"""The analysis pivot and the ``repro-tp campaign`` subcommand."""

import json

import pytest

from repro.analysis.summary import capacity_matrix, format_matrix, pivot_records
from repro.campaign import ResultStore
from repro.cli import main


def _record(machine, tp, attack="e5", seed=0, capacity=0.0, status="ok"):
    return {
        "key": f"machine={machine}/tp={tp}/attack={attack}/seed={seed}",
        "machine": machine, "tp": tp, "attack": attack, "seed": seed,
        "status": status,
        "result": {"stats": {"capacity_bits": capacity}} if status == "ok" else None,
    }


class TestPivot:
    def test_worst_case_aggregation_over_attacks(self):
        records = [
            _record("tiny", "none", attack="e5", capacity=0.2),
            _record("tiny", "none", attack="occupancy", capacity=1.0),
            _record("tiny", "full", attack="e5", capacity=0.0),
        ]
        rows, cols, cells = pivot_records(records)
        assert rows == ["tiny"] and set(cols) == {"none", "full"}
        assert cells[("tiny", "none")] == 1.0
        assert cells[("tiny", "full")] == 0.0

    def test_failed_records_are_excluded(self):
        records = [
            _record("tiny", "full", capacity=0.0),
            _record("tiny", "none", status="failed"),
        ]
        _rows, _cols, cells = pivot_records(records)
        assert ("tiny", "none") not in cells

    def test_mean_aggregate_and_unknown_rejected(self):
        records = [
            _record("tiny", "none", seed=0, capacity=0.0),
            _record("tiny", "none", seed=1, capacity=1.0),
        ]
        _r, _c, cells = pivot_records(records, agg="mean")
        assert cells[("tiny", "none")] == pytest.approx(0.5)
        with pytest.raises(KeyError):
            pivot_records(records, agg="median")

    def test_format_marks_closed_and_missing_cells(self):
        rows, cols, cells = pivot_records(
            [
                _record("tiny", "full", capacity=0.0),
                _record("nocolour", "none", capacity=0.8),
            ]
        )
        table = format_matrix(rows, cols, cells)
        assert "·" in table      # closed cell
        assert "-" in table      # missing (machine, tp) combination
        assert "0.800" in table

    def test_capacity_matrix_one_call(self):
        table = capacity_matrix([_record("tiny", "full", capacity=0.0)])
        assert "tiny" in table and "full" in table


class TestCampaignCli:
    def test_grid_runs_resumes_and_summarises(self, tmp_path, capsys):
        store_path = str(tmp_path / "cli.jsonl")
        argv = [
            "campaign", "--machines", "tiny", "--tps", "full,none",
            "--attacks", "e5", "--seeds", "0", "--workers", "1",
            "--store", store_path, "--quiet",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 executed" in out and "capacity_bits" in out
        assert len(ResultStore(store_path).records()) == 2
        # Immediate re-run: zero trials re-executed.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 executed" in out and "2 resumed" in out
        assert len(ResultStore(store_path).records()) == 2

    def test_spec_file(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "name": "from-file",
            "machines": ["tiny"],
            "tps": ["full"],
            "attacks": ["e5"],
            "seeds": [0],
            "attack_params": {"e5": {"rounds_per_run": 3}},
        }))
        store_path = str(tmp_path / "spec.jsonl")
        code = main([
            "campaign", "--spec", str(spec_path),
            "--workers", "1", "--store", store_path, "--quiet",
        ])
        assert code == 0
        assert "from-file" in capsys.readouterr().out
        (record,) = ResultStore(store_path).records()
        assert record["params"] == {"rounds_per_run": 3}

    def test_unknown_attack_rejected(self, tmp_path, capsys):
        code = main([
            "campaign", "--attacks", "bogus", "--workers", "1",
            "--store", str(tmp_path / "x.jsonl"),
        ])
        assert code == 2
        assert "known attacks" in capsys.readouterr().err

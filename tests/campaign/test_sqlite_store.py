"""Sqlite ResultStore: API parity with JSONL, migration, generations."""

import json
import threading

import pytest

from repro.campaign import ResultStore, open_store
from repro.campaign.store_sqlite import (
    SqliteResultStore,
    migrate_jsonl_to_sqlite,
    migrate_store,
    store_info,
)


def _fill(store):
    store.append({"key": "a", "status": "ok", "result": {"v": 1}})
    store.append({"key": "b", "status": "failed", "result": None})
    store.append({"key": "c", "status": "ok", "result": {"v": 3}})
    store.append({"key": "a", "status": "ok", "result": {"v": 9}})  # re-run
    return store


class TestOpenStore:
    def test_suffix_selects_backend(self, tmp_path):
        assert isinstance(
            open_store(str(tmp_path / "r.jsonl")), ResultStore
        )
        for suffix in (".sqlite", ".sqlite3", ".db"):
            store = open_store(str(tmp_path / f"r{suffix}"))
            assert isinstance(store, SqliteResultStore)
            # Still a ResultStore: the executor's isinstance checks hold.
            assert isinstance(store, ResultStore)

    def test_store_objects_pass_through(self, tmp_path):
        store = SqliteResultStore(str(tmp_path / "r.sqlite"))
        assert open_store(store) is store


class TestApiParity:
    """Same operations, same answers, both backends."""

    @pytest.fixture(params=["jsonl", "sqlite"])
    def store(self, request, tmp_path):
        if request.param == "jsonl":
            return ResultStore(str(tmp_path / "r.jsonl"))
        return SqliteResultStore(str(tmp_path / "r.sqlite"))

    def test_append_requires_key(self, store):
        with pytest.raises(ValueError):
            store.append({"status": "ok"})

    def test_len_and_records_order(self, store):
        _fill(store)
        assert len(store) == 4
        assert [r["key"] for r in store.records()] == ["a", "b", "c", "a"]
        assert [r["key"] for r in store.iter_records()] == ["a", "b", "c", "a"]

    def test_completed_keys(self, store):
        _fill(store)
        assert store.completed_keys() == {"a", "c"}

    def test_latest_by_key_last_record_wins(self, store):
        _fill(store)
        latest = store.latest_by_key()
        assert latest["a"]["result"] == {"v": 9}
        assert set(latest) == {"a", "c"}
        everything = store.latest_by_key(status=None)
        assert set(everything) == {"a", "b", "c"}
        assert everything["a"]["result"] == {"v": 9}

    def test_empty_store(self, store):
        assert len(store) == 0
        assert store.completed_keys() == set()
        assert store.latest_by_key() == {}
        assert store.records() == []


class TestSqliteSpecifics:
    def test_generations_count_reruns(self, tmp_path):
        store = _fill(SqliteResultStore(str(tmp_path / "r.sqlite")))
        assert store.generations("a") == 2
        assert store.generations("b") == 1
        assert store.generations("nope") == 0

    def test_records_survive_reopen(self, tmp_path):
        path = str(tmp_path / "r.sqlite")
        _fill(SqliteResultStore(path)).close()
        reopened = SqliteResultStore(path)
        assert len(reopened) == 4
        assert reopened.completed_keys() == {"a", "c"}

    def test_concurrent_threads_get_own_connections(self, tmp_path):
        store = SqliteResultStore(str(tmp_path / "r.sqlite"))
        _fill(store)
        seen = []

        def reader():
            seen.append(store.completed_keys())

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert seen == [{"a", "c"}] * 4


class TestMigration:
    def test_jsonl_to_sqlite_preserves_everything(self, tmp_path):
        jsonl = _fill(ResultStore(str(tmp_path / "r.jsonl")))
        sqlite_path = str(tmp_path / "r.sqlite")
        migrated = migrate_jsonl_to_sqlite(jsonl.path, sqlite_path)
        assert migrated == 4
        converted = SqliteResultStore(sqlite_path)
        assert converted.records() == jsonl.records()
        assert converted.completed_keys() == jsonl.completed_keys()
        assert converted.latest_by_key() == jsonl.latest_by_key()
        assert converted.generations("a") == 2

    def test_round_trip_is_bit_identical(self, tmp_path):
        jsonl = _fill(ResultStore(str(tmp_path / "r.jsonl")))
        migrate_store(jsonl.path, str(tmp_path / "r.sqlite"))
        migrate_store(str(tmp_path / "r.sqlite"), str(tmp_path / "rt.jsonl"))
        original = (tmp_path / "r.jsonl").read_bytes()
        round_tripped = (tmp_path / "rt.jsonl").read_bytes()
        assert original == round_tripped

    def test_resume_semantics_preserved(self, tmp_path):
        jsonl = _fill(ResultStore(str(tmp_path / "r.jsonl")))
        sqlite_path = str(tmp_path / "r.sqlite")
        migrate_store(jsonl.path, sqlite_path)
        # The executor's resume decision is completed_keys(): identical
        # before and after migration, so the same trials are skipped.
        assert open_store(sqlite_path).completed_keys() == \
            jsonl.completed_keys()

    def test_same_path_is_rejected(self, tmp_path):
        path = str(tmp_path / "r.jsonl")
        _fill(ResultStore(path))
        with pytest.raises(ValueError):
            migrate_store(path, path)

    def test_store_info_counts(self, tmp_path):
        jsonl = _fill(ResultStore(str(tmp_path / "r.jsonl")))
        info = store_info(jsonl.path)
        assert info["backend"] == "ResultStore"
        assert info["records"] == 4
        assert info["failed_records"] == 1
        assert info["completed_keys"] == 2
        migrate_store(jsonl.path, str(tmp_path / "r.sqlite"))
        sqlite_info = store_info(str(tmp_path / "r.sqlite"))
        assert sqlite_info["backend"] == "SqliteResultStore"
        for field in ("records", "failed_records", "completed_keys"):
            assert sqlite_info[field] == info[field]


class TestJsonlScanCache:
    """The mtime/size cache behind the JSONL read paths (satellite fix)."""

    @pytest.fixture
    def counting_store(self, tmp_path, monkeypatch):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        scans = {"n": 0}
        real_scan = ResultStore._scan_file

        def counted(self):
            scans["n"] += 1
            return real_scan(self)

        monkeypatch.setattr(ResultStore, "_scan_file", counted)
        return store, scans

    def test_repeated_reads_scan_once(self, counting_store):
        store, scans = counting_store
        _fill(store)
        for _ in range(5):
            store.completed_keys()
            store.latest_by_key()
            len(store)
            store.records()
        assert scans["n"] == 1

    def test_append_keeps_cache_coherent_without_rescan(self, counting_store):
        store, scans = counting_store
        _fill(store)
        assert store.completed_keys() == {"a", "c"}
        store.append({"key": "d", "status": "ok", "result": None})
        assert store.completed_keys() == {"a", "c", "d"}
        assert [r["key"] for r in store.records()][-1] == "d"
        assert scans["n"] == 1  # the writer never re-reads its own writes

    def test_external_write_invalidates_cache(self, counting_store):
        store, scans = counting_store
        _fill(store)
        assert store.completed_keys() == {"a", "c"}
        with open(store.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"key": "x", "status": "ok"}) + "\n")
        assert store.completed_keys() == {"a", "c", "x"}
        assert scans["n"] == 2

    def test_cached_view_matches_fresh_scan_after_append(self, tmp_path):
        path = str(tmp_path / "r.jsonl")
        writer = _fill(ResultStore(path))
        writer.append({"key": "e", "status": "ok", "result": {"t": (1, 2)}})
        fresh = ResultStore(path)
        # Tuples must round-trip to lists in the cached view too.
        assert writer.records() == fresh.records()
        assert writer.completed_keys() == fresh.completed_keys()

    def test_torn_tail_is_ignored(self, tmp_path):
        store = _fill(ResultStore(str(tmp_path / "r.jsonl")))
        with open(store.path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "torn", "status"')  # killed mid-write
        assert store.completed_keys() == {"a", "c"}
        assert len(store) == 4

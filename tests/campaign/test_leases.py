"""Lease lifecycle: no trial lost, none double-counted, fake clock only."""

import pytest

from repro.campaign import TrialSpec
from repro.campaign.service import BackoffPolicy, LeaseTable, plan_payloads
from repro.campaign.service.leases import (
    ACCEPTED,
    AVAILABLE,
    DONE,
    DUPLICATE,
    LEASED,
    UNKNOWN,
)


def _payloads(n, timeout_s=0.0):
    trials = [TrialSpec("tiny", "none", "e5", seed=i) for i in range(n)]
    return plan_payloads(trials, timeout_s=timeout_s)


def _record(key, status="ok"):
    return {"key": key, "status": status, "result": None}


class TestPlanAndShard:
    def test_payloads_embed_timeout_and_key(self):
        payloads = _payloads(3, timeout_s=2.5)
        assert all(p["timeout_s"] == 2.5 for p in payloads)
        assert [p["key"] for p in payloads] == [
            TrialSpec("tiny", "none", "e5", seed=i).key() for i in range(3)
        ]

    def test_sharding_is_deterministic_and_ordered(self):
        table = LeaseTable(_payloads(10), shard_size=4)
        assert [s.shard_id for s in table.shards] == [0, 1, 2]
        assert [s.open_count for s in table.shards] == [4, 4, 2]
        flattened = [
            key for shard in table.shards for key in shard.pending
        ]
        assert flattened == [p["key"] for p in _payloads(10)]
        assert table.total == 10 and not table.done

    def test_shard_size_must_be_positive(self):
        with pytest.raises(ValueError):
            LeaseTable(_payloads(2), shard_size=0)


class TestLeaseLifecycle:
    def test_acquire_grants_each_shard_once(self):
        table = LeaseTable(_payloads(4), shard_size=2, lease_ttl_s=10.0)
        first = table.acquire("w0", now=0.0)
        second = table.acquire("w1", now=0.0)
        assert first["shard"] != second["shard"]
        assert first["generation"] == second["generation"] == 1
        assert first["ttl_s"] == 10.0
        assert len(first["trials"]) == 2
        assert table.acquire("w2", now=0.0) is None  # everything leased

    def test_heartbeat_extends_live_lease(self):
        table = LeaseTable(_payloads(2), shard_size=2, lease_ttl_s=10.0)
        grant = table.acquire("w0", now=0.0)
        assert table.heartbeat(grant["shard"], grant["generation"], now=8.0)
        # Without the heartbeat the lease would have expired at t=10.
        assert table.expire(now=12.0) == []
        assert table.expire(now=19.0) == [grant["shard"]]

    def test_stale_or_unknown_heartbeat_is_rejected(self):
        table = LeaseTable(_payloads(2), shard_size=2, lease_ttl_s=1.0)
        grant = table.acquire("w0", now=0.0)
        assert not table.heartbeat(grant["shard"], 99, now=0.5)
        assert not table.heartbeat(7, 1, now=0.5)  # out-of-range shard
        assert table.stats.stale_heartbeats == 1

    def test_expired_lease_reissues_only_unresolved_trials(self):
        table = LeaseTable(_payloads(4), shard_size=4, lease_ttl_s=5.0)
        grant = table.acquire("w0", now=0.0)
        keys = [t["key"] for t in grant["trials"]]
        assert table.submit(
            grant["shard"], grant["generation"], _record(keys[0]), now=1.0
        ) == ACCEPTED
        # Worker dies; lease expires; the re-issued grant carries only
        # the three unresolved trials at a bumped generation.
        regrant = table.acquire("w1", now=20.0)
        assert table.stats.leases_expired == 1
        assert regrant["generation"] == 2
        assert [t["key"] for t in regrant["trials"]] == keys[1:]

    def test_no_trial_double_counted_across_generations(self):
        table = LeaseTable(_payloads(2), shard_size=2, lease_ttl_s=5.0)
        grant = table.acquire("w0", now=0.0)
        keys = [t["key"] for t in grant["trials"]]
        regrant = table.acquire("w1", now=10.0)  # w0 presumed dead
        # w1 resolves both; then the zombie w0 reports the same work.
        for key in keys:
            assert table.submit(
                regrant["shard"], regrant["generation"], _record(key), 11.0
            ) == ACCEPTED
        for key in keys:
            assert table.submit(
                grant["shard"], grant["generation"], _record(key), 12.0
            ) == DUPLICATE
        assert table.done
        assert table.stats.accepted == 2 and table.stats.duplicates == 2

    def test_stale_generation_result_still_resolves_open_trial(self):
        # A slow-but-alive worker beats the re-issued lease: its finished
        # work is accepted (records are pure functions of the spec).
        table = LeaseTable(_payloads(1), shard_size=1, lease_ttl_s=5.0)
        grant = table.acquire("w0", now=0.0)
        key = grant["trials"][0]["key"]
        table.acquire("w1", now=10.0)
        assert table.submit(
            grant["shard"], grant["generation"], _record(key), 11.0
        ) == ACCEPTED
        assert table.stats.stale_accepted == 1
        assert table.done

    def test_unknown_key_is_rejected(self):
        table = LeaseTable(_payloads(1), shard_size=1)
        grant = table.acquire("w0", now=0.0)
        assert table.submit(
            grant["shard"], grant["generation"], _record("bogus"), 0.5
        ) == UNKNOWN
        assert table.submit(
            grant["shard"], grant["generation"], {"status": "ok"}, 0.5
        ) == UNKNOWN

    def test_progress_extends_deadline(self):
        table = LeaseTable(_payloads(2), shard_size=2, lease_ttl_s=10.0)
        grant = table.acquire("w0", now=0.0)
        keys = [t["key"] for t in grant["trials"]]
        table.submit(grant["shard"], grant["generation"], _record(keys[0]), 9.0)
        assert table.expire(now=15.0) == []  # submission reset the clock
        shard = table.shards[grant["shard"]]
        assert shard.state == LEASED and shard.open_count == 1

    def test_failed_records_resolve_but_count_as_failed(self):
        table = LeaseTable(_payloads(1), shard_size=1)
        grant = table.acquire("w0", now=0.0)
        key = grant["trials"][0]["key"]
        assert table.submit(
            grant["shard"], grant["generation"], _record(key, "failed"), 1.0
        ) == ACCEPTED
        assert table.done
        assert table.stats.failed == 1 and table.stats.succeeded == 0

    def test_drained_shard_goes_done_and_never_reissues(self):
        table = LeaseTable(_payloads(2), shard_size=2, lease_ttl_s=1.0)
        grant = table.acquire("w0", now=0.0)
        for trial in grant["trials"]:
            table.submit(
                grant["shard"], grant["generation"], _record(trial["key"]), 0.5
            )
        assert table.counts() == {AVAILABLE: 0, LEASED: 0, DONE: 1}
        assert table.acquire("w1", now=100.0) is None
        assert table.done and table.open_trials == 0


class TestLossFreedomProperty:
    def test_every_trial_resolved_under_heavy_churn(self):
        """Simulated churn: leases keep expiring, workers keep dying, yet
        the table converges with every key resolved exactly once."""
        table = LeaseTable(_payloads(25), shard_size=4, lease_ttl_s=2.0)
        now, resolved, rounds = 0.0, set(), 0
        while not table.done:
            rounds += 1
            assert rounds < 200, "lease table failed to converge"
            grant = table.acquire(f"w{rounds}", now=now)
            if grant is None:
                now += 1.0
                continue
            # Complete only the first trial of the lease, then "die";
            # the rest must come back on a later generation.
            key = grant["trials"][0]["key"]
            outcome = table.submit(
                grant["shard"], grant["generation"], _record(key), now
            )
            assert outcome == ACCEPTED
            assert key not in resolved
            resolved.add(key)
            now += 5.0  # beyond the TTL: the remainder expires
        assert resolved == {p["key"] for p in _payloads(25)}
        assert table.stats.accepted == 25


class TestBackoffPolicy:
    def test_delays_are_bounded_and_grow(self):
        policy = BackoffPolicy(base_s=0.1, cap_s=2.0, multiplier=2.0, seed=1)
        delays = [policy.next_delay() for _ in range(10)]
        assert all(0.0 < d <= 2.0 for d in delays)
        assert delays[0] <= 0.1
        assert max(delays) > 0.5  # the curve actually grew

    def test_same_seed_same_delays(self):
        a = BackoffPolicy(seed=42)
        b = BackoffPolicy(seed=42)
        assert [a.next_delay() for _ in range(6)] == [
            b.next_delay() for _ in range(6)
        ]

    def test_reset_restarts_the_curve(self):
        policy = BackoffPolicy(base_s=0.1, cap_s=5.0, seed=0)
        for _ in range(5):
            policy.next_delay()
        assert policy.failures == 5
        policy.reset()
        assert policy.failures == 0
        assert policy.next_delay() <= 0.1

"""Explorer behaviour: exhaustive verdicts, bounds, counterexamples,
serial/parallel agreement."""

import pytest

from repro.mc import McSpec, ModelChecker, confirm_counterexample


def check(machine, tp, **overrides):
    jobs = overrides.pop("jobs", 1)
    spec = McSpec.for_machine(machine, tp, **overrides)
    return spec, ModelChecker(spec, jobs=jobs).run()


class TestExhaustivePass:
    def test_micro_full_is_clean_and_exhaustive(self):
        spec, report = check("micro", "full", secrets=(0, 1))
        assert report.passed
        assert report.exhaustive
        assert report.stop_reason == "exhausted"
        assert not report.counterexamples
        assert report.stats.terminal_states > 0
        # Exhaustive means the frontier drained: every visited state was
        # expanded, deduplicated, violating (none here) or terminal.
        assert report.stats.states_visited > report.stats.terminal_states

    def test_tiny_full_is_clean_and_exhaustive(self):
        spec, report = check("tiny", "full", secrets=(0, 1))
        assert report.passed and report.exhaustive

    def test_state_count_is_reproducible(self):
        _, first = check("micro", "full", secrets=(0, 1))
        _, second = check("micro", "full", secrets=(0, 1))
        assert first.stats.to_json() == second.stats.to_json()


class TestViolations:
    @pytest.mark.parametrize("tp", ["no-pad", "none"])
    def test_micro_finds_replayable_counterexample(self, tp):
        spec, report = check("micro", tp, secrets=(0, 2))
        assert not report.passed
        assert report.stop_reason == "violation"
        cex = report.minimal_counterexample()
        assert cex is not None
        assert len(cex.path) == cex.depth
        result = confirm_counterexample(spec, cex)
        assert not result.holds
        assert result.divergence is not None
        predicted = cex.predicted_divergence_index
        if predicted is not None:
            assert result.divergence.index == predicted

    def test_counterexamples_are_minimal_per_pair(self):
        spec, report = check("micro", "no-pad")
        by_pair = {}
        for cex in report.counterexamples:
            pair = (cex.secret_a, cex.secret_b)
            by_pair.setdefault(pair, []).append(cex.depth)
        for pair, depths in by_pair.items():
            assert len(set(depths)) == 1, (
                f"pair {pair} mixes depths {depths}: only minimal-depth "
                f"counterexamples may be reported"
            )


class TestBounds:
    def test_depth_bound_cuts_exploration(self):
        _, report = check("micro", "full", secrets=(0, 1), depth=3)
        assert report.passed  # nothing violated within the bound
        assert not report.exhaustive
        assert report.stop_reason == "depth-bound"
        assert report.stats.max_depth <= 3

    def test_state_bound_cuts_exploration(self):
        _, report = check("micro", "full", secrets=(0, 1), max_states=10)
        assert not report.exhaustive
        assert report.stop_reason == "state-bound"
        assert report.stats.states_visited <= 10

    def test_unbounded_run_ignores_both_cuts(self):
        _, report = check("micro", "full", secrets=(0, 1))
        assert report.stats.max_depth < 400
        assert report.stats.states_visited < 200_000


class TestParallel:
    def test_parallel_matches_serial_on_violation(self):
        spec, serial = check("micro", "no-pad", secrets=(0, 1))
        _, parallel = check("micro", "no-pad", secrets=(0, 1), jobs=2)
        assert serial.stats.to_json() == parallel.stats.to_json()
        assert (
            [(c.secret_a, c.secret_b, c.path, c.depth)
             for c in serial.counterexamples]
            == [(c.secret_a, c.secret_b, c.path, c.depth)
                for c in parallel.counterexamples]
        )

    @pytest.mark.slow
    def test_parallel_matches_serial_on_exhaustive_pass(self):
        _, serial = check("micro", "full", secrets=(0, 1))
        _, parallel = check("micro", "full", secrets=(0, 1), jobs=2)
        assert serial.passed and parallel.passed
        assert serial.exhaustive and parallel.exhaustive
        assert serial.stats.to_json() == parallel.stats.to_json()


class TestReport:
    def test_json_round_trip(self):
        import json

        from repro.mc import render_json

        _, report = check("micro", "no-pad", secrets=(0, 1))
        payload = json.loads(render_json(report))
        assert payload["machine"] == "micro"
        assert payload["tp"] == "no-pad"
        assert payload["passed"] is False
        assert payload["counterexamples"]
        cex = payload["counterexamples"][0]
        assert cex["depth"] == len(cex["path"])
        assert payload["stats"]["states_visited"] > 0

    def test_text_report_names_the_machine(self):
        from repro.mc import render_text

        _, report = check("micro", "full", secrets=(0, 1))
        text = render_text(report)
        assert "machine=micro" in text
        assert "verdict: PASS" in text
        assert "exhaustive over the reachable state space" in text

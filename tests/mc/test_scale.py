"""Differential tests for the scaled explorer: every exploration lever
(POR, incremental fingerprints, fast clone, batched expansion, bitstate,
disk spill) must preserve the exact explorer's verdicts bit-for-bit on
the configurations it is sound for.

The exact mode (``McOptions.exact()``) is the seed explorer's behaviour
and the oracle throughout: full-prefix checks, repr-based fingerprints,
deepcopy snapshots, no reductions.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mc import McOptions, McSpec, ModelChecker

#: Every TP config the differential matrix pins, passing and failing.
TP_MATRIX = ("full", "no-pad", "no-colour", "no-flush", "none")


def run(machine, tp, options=None, **overrides):
    spec = McSpec.for_machine(machine, tp, secrets=(0, 1), **overrides)
    return ModelChecker(spec, options=options).run()


def verdict_signature(report):
    """Everything two equivalent explorations must agree on."""
    cex = report.minimal_counterexample()
    return (
        report.passed,
        report.exhaustive,
        report.stop_reason,
        report.stats.states_visited,
        report.stats.transitions,
        report.stats.max_depth,
        cex.depth if cex is not None else None,
        tuple(str(v) for v in cex.violations) if cex is not None else None,
    )


@pytest.fixture(scope="module")
def exact_micro():
    """Exact-mode oracle reports for every TP config on micro."""
    return {
        tp: run("micro", tp, options=McOptions.exact()) for tp in TP_MATRIX
    }


LEVERS = {
    "por-only": McOptions(por=True, incremental=False, fast_clone=False),
    "incremental-only": McOptions(por=False, incremental=True,
                                  fast_clone=False),
    "fast-clone-only": McOptions(por=False, incremental=False,
                                 fast_clone=True),
    "all-on": McOptions(),
}


class TestDifferentialMicro:
    @pytest.mark.parametrize("tp", TP_MATRIX)
    @pytest.mark.parametrize("lever", sorted(LEVERS))
    def test_lever_matches_exact(self, exact_micro, tp, lever):
        report = run("micro", tp, options=LEVERS[lever])
        assert verdict_signature(report) == verdict_signature(
            exact_micro[tp]
        ), f"{lever} diverges from exact on micro/{tp}"


class TestDifferentialTiny:
    @pytest.mark.parametrize("tp", ("full", "no-pad"))
    def test_all_levers_match_exact(self, tp):
        exact = run("tiny", tp, options=McOptions.exact())
        fast = run("tiny", tp)
        assert verdict_signature(fast) == verdict_signature(exact)


class TestPartialOrderReduction:
    def test_identity_on_single_irq_line(self):
        # With one IRQ line there is nothing symmetric to collapse.
        report = run("micro", "full")
        assert report.stats.por_pruned == 0

    def test_prunes_symmetric_lines(self):
        spec_kwargs = dict(irq_lines=(1, 2, 3))
        on = run("tiny", "full", **spec_kwargs)
        off = run("tiny", "full", options=McOptions(por=False),
                  **spec_kwargs)
        assert on.stats.por_pruned > 0
        assert on.stats.states_visited < off.stats.states_visited
        assert (on.passed, on.exhaustive) == (off.passed, off.exhaustive)

    def test_preserves_violations_on_multi_line(self):
        spec_kwargs = dict(irq_lines=(1, 2))
        on = run("micro", "no-pad", **spec_kwargs)
        off = run("micro", "no-pad", options=McOptions(por=False),
                  **spec_kwargs)
        assert not on.passed and not off.passed
        assert (
            on.minimal_counterexample().depth
            == off.minimal_counterexample().depth
        )


class TestBatchExpansion:
    @pytest.mark.parametrize("tp", ("no-colour", "none"))
    def test_matches_scalar_on_uncoloured(self, tp):
        batched = run("tiny", tp, options=McOptions(batch_expand=True))
        scalar = run("tiny", tp)
        assert verdict_signature(batched) == verdict_signature(scalar)

    def test_coloured_config_still_correct(self):
        # Colouring needs the per-touch partition audit the batch engine
        # does not record; the explorer must fall back to scalar
        # expansion and keep the exact verdict.
        batched = run("micro", "full", options=McOptions(batch_expand=True))
        scalar = run("micro", "full")
        assert verdict_signature(batched) == verdict_signature(scalar)


class TestBitstateAndSpill:
    def test_bitstate_smoke(self):
        report = run("tiny", "full", options=McOptions(bitstate_mb=1.0))
        assert report.passed
        assert report.bitstate is not None
        assert report.bitstate["est_omission_probability"] < 1e-6

    def test_bitstate_still_finds_violations(self):
        report = run("micro", "no-pad", options=McOptions(bitstate_mb=1.0))
        assert not report.passed
        assert report.minimal_counterexample() is not None

    def test_spill_matches_in_ram(self, tmp_path):
        spilled = run(
            "micro", "full",
            options=McOptions(
                spill_ram_states=4, spill_dir=str(tmp_path)
            ),
        )
        in_ram = run("micro", "full")
        assert verdict_signature(spilled) == verdict_signature(in_ram)


class TestProfileAndPresets:
    def test_profile_reports_all_phases(self):
        report = run("micro", "full", options=McOptions(profile=True))
        assert report.profile is not None
        assert set(report.profile) == {
            "clone", "step", "check", "fingerprint", "dedup"
        }
        assert sum(report.profile.values()) > 0

    def test_pocket_exhaustive_pass(self):
        # The first preset larger than tiny with a complete drain (E19).
        report = run("pocket", "full")
        assert report.passed and report.exhaustive
        assert report.stop_reason == "exhausted"


class TestHypothesisDifferential:
    @given(
        secret_b=st.integers(min_value=1, max_value=7),
        por=st.booleans(),
        incremental=st.booleans(),
    )
    @settings(max_examples=6, deadline=None)
    def test_random_levers_match_exact(self, secret_b, por, incremental):
        spec = McSpec.for_machine("micro", "full", secrets=(0, secret_b))
        exact = ModelChecker(spec, options=McOptions.exact()).run()
        levered = ModelChecker(
            spec,
            options=McOptions(por=por, incremental=incremental),
        ).run()
        assert verdict_signature(levered) == verdict_signature(exact)

    @given(irq_budget=st.integers(min_value=0, max_value=2))
    @settings(max_examples=3, deadline=None)
    def test_irq_budget_sweep_matches_exact(self, irq_budget):
        spec = McSpec.for_machine(
            "micro", "full", secrets=(0, 1), irq_budget=irq_budget
        )
        exact = ModelChecker(spec, options=McOptions.exact()).run()
        fast = ModelChecker(spec).run()
        assert verdict_signature(fast) == verdict_signature(exact)

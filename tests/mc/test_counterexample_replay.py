"""Property: every counterexample the checker emits on an unprotected
configuration replays, via the concrete two-run harness
(``core/noninterference.py``), to a real observation-trace divergence --
at the predicted index whenever the violating transition itself was a
Lo-trace divergence.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mc import McSpec, ModelChecker, confirm_counterexample

LEAKY_TPS = ("none", "no-pad")
SECRET_PAIRS = ((0, 1), (0, 2), (1, 2))

# Model-checking is deterministic and costs ~0.3s per (tp, pair); memoise
# so hypothesis can revisit examples without re-exploring.
_memo = {}


def checked(tp, pair):
    key = (tp, pair)
    if key not in _memo:
        spec = McSpec.for_machine("micro", tp, secrets=pair)
        _memo[key] = (spec, ModelChecker(spec).run())
    return _memo[key]


@settings(max_examples=12, deadline=None)
@given(
    tp=st.sampled_from(LEAKY_TPS),
    pair=st.sampled_from(SECRET_PAIRS),
)
def test_counterexample_replays_to_concrete_divergence(tp, pair):
    spec, report = checked(tp, pair)

    assert not report.passed, (
        f"micro/{tp} must leak for secrets {pair}: the checker found nothing"
    )
    cex = report.minimal_counterexample()
    assert cex is not None
    assert (cex.secret_a, cex.secret_b) == pair
    assert len(cex.path) == cex.depth
    assert cex.violations

    result = confirm_counterexample(spec, cex)
    assert not result.holds, (
        f"counterexample {cex.path} did not replay to a divergence"
    )
    assert result.divergence is not None
    assert result.observer_domain == "Lo"

    predicted = cex.predicted_divergence_index
    if predicted is not None:
        assert result.divergence.index == predicted, (
            f"checker predicted divergence at observation #{predicted}, "
            f"replay diverged at #{result.divergence.index}"
        )


@settings(max_examples=6, deadline=None)
@given(pair=st.sampled_from(SECRET_PAIRS))
def test_full_protection_never_emits_counterexamples(pair):
    _, report = checked("full", pair)
    assert report.passed
    assert report.exhaustive
    assert report.minimal_counterexample() is None

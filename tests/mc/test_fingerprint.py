"""Canonical fingerprinting: stability, sensitivity, symmetry reduction."""

from repro.kernel import Kernel
from repro.kernel.objects import ReplayableProgram
from repro.mc import (
    McSpec,
    build_system,
    canonical_state,
    product_fingerprint,
    state_fingerprint,
)
from repro.mc.spec import hi_step, lo_step


def _spec(tp="full", **overrides):
    return McSpec.for_machine("micro", tp, **overrides)


class TestStability:
    def test_identical_builds_fingerprint_equal(self):
        spec = _spec()
        a = build_system(spec, secret=1)
        b = build_system(spec, secret=1)
        assert state_fingerprint(a) == state_fingerprint(b)

    def test_fingerprint_is_plain_hex(self):
        spec = _spec()
        fp = state_fingerprint(build_system(spec, secret=0))
        assert isinstance(fp, str)
        int(fp, 16)  # must parse as hex

    def test_step_changes_fingerprint(self):
        spec = _spec()
        kernel = build_system(spec, secret=0)
        before = state_fingerprint(kernel)
        kernel.step(core_id=0, max_cycles=spec.max_cycles)
        assert state_fingerprint(kernel) != before

    def test_secret_distinguishes_roots(self):
        # The secret is a program parameter, which fully determines
        # future behaviour: states must never alias across secrets even
        # before the first secret-dependent instruction executes.
        spec = _spec()
        assert (
            state_fingerprint(build_system(spec, secret=0))
            != state_fingerprint(build_system(spec, secret=1))
        )


class TestSymmetry:
    def _system_with_names(self, spec, trojan_name):
        from repro.campaign.registry import MACHINES, TP_CONFIGS

        machine = MACHINES[spec.machine]()
        tp = TP_CONFIGS[spec.tp]()
        kernel = Kernel(
            machine, tp, kernel_image_pages=spec.kernel_image_pages)
        kernel.capture_footprints = True
        hi = kernel.create_domain(
            trojan_name, n_colours=1, slice_cycles=spec.slice_cycles,
            irq_lines=spec.irq_lines,
        )
        lo = kernel.create_domain(
            "Lo", n_colours=1, slice_cycles=spec.slice_cycles)
        kernel.create_thread(
            hi, ReplayableProgram.factory(hi_step),
            data_pages=2, code_pages=1, params={"secret": 1},
        )
        kernel.create_thread(
            lo, ReplayableProgram.factory(lo_step),
            data_pages=2, code_pages=1,
            params={"probes": spec.lo_probes, "rounds": spec.lo_rounds},
        )
        kernel.set_schedule(0, [(hi, None), (lo, None)])
        return kernel

    def test_non_observer_name_is_relabelled_away(self):
        # Renaming the Trojan domain (and thus its threads, contexts,
        # switch records and observation attribution) must not change
        # the canonical state: identity is by role, not by name.
        spec = _spec()
        a = self._system_with_names(spec, "Hi")
        b = self._system_with_names(spec, "Trojan")
        for _ in range(6):
            a.step(core_id=0, max_cycles=spec.max_cycles)
            b.step(core_id=0, max_cycles=spec.max_cycles)
        assert canonical_state(a) == canonical_state(b)
        assert state_fingerprint(a) == state_fingerprint(b)

    def test_product_pair_is_unordered(self):
        fp_a = "0" * 32
        fp_b = "f" * 32
        assert (
            product_fingerprint(fp_a, fp_b)
            == product_fingerprint(fp_b, fp_a)
        )
        assert product_fingerprint(fp_a, fp_b) != product_fingerprint(
            fp_a, fp_a)

    def test_colour_ids_are_canonicalised(self):
        # Concrete colour ids are allocator accidents; the canonical
        # document must only ever mention first-appearance indices.
        spec = _spec()
        kernel = build_system(spec, secret=0)
        doc = canonical_state(kernel)
        domains = doc[1]
        canonical_colours = sorted(
            colour for domain in domains for colour in domain[1]
        )
        # Kernel colours take index 0..k-1; the two domains follow.
        assert canonical_colours == sorted(
            range(len(kernel.allocator.kernel_colours),
                  len(kernel.allocator.kernel_colours) + 2)
        )

"""Make the benchmark helpers and the test builders importable."""

import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)

for path in (_HERE, _ROOT):
    if path not in sys.path:
        sys.path.insert(0, path)

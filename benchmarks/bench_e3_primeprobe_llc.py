"""E3 (Sect. 4.1): concurrent cross-core LLC prime-and-probe.

Paper claim: "partitioning is the only option where concurrent accesses
happen" -- flushing cannot help a cache that both cores hit
simultaneously, while page colouring confines each domain to disjoint LLC
sets and removes the conflict signal entirely.

Series regenerated: capacity/accuracy over the colour alphabet for no
protection, flush-only (ineffective here), colouring-only (sufficient
here), and full TP.
"""

from repro.attacks import primeprobe
from repro.hardware import presets
from repro.kernel import TimeProtectionConfig

from _common import CLOSED_BITS, OPEN_BITS, print_channel_table, run_once


def _two_core():
    return presets.tiny_machine(n_cores=2)


def _sweep():
    configs = [
        TimeProtectionConfig.none(),
        TimeProtectionConfig.none().without(flush_on_switch=True, pad_switch=True),
        TimeProtectionConfig.none().without(cache_colouring=True),
        TimeProtectionConfig.full(),
        # Extension: CAT-style way allocation instead of colouring also
        # satisfies Sect. 4.1's partitioning requirement.
        TimeProtectionConfig.full_with_way_partitioning(),
    ]
    symbols = [1, 3, 5, 7]
    return [
        primeprobe.llc_experiment(tp, _two_core, symbols=symbols, rounds_per_run=6)
        for tp in configs
    ]


def test_e3_primeprobe_llc(benchmark):
    unprotected, flush_only, colour_only, full, way_partitioned = run_once(
        benchmark, _sweep
    )
    print_channel_table(
        "E3: concurrent LLC prime+probe (2 cores)",
        [unprotected, flush_only, colour_only, full, way_partitioned],
    )
    # The unprotected concurrent channel is noiseless and decodes fully.
    assert unprotected.capacity_bits() > 1.9
    assert unprotected.decode_accuracy() == 1.0
    # Flushing cannot defend concurrent sharing.
    assert flush_only.capacity_bits() > OPEN_BITS
    # Colouring alone closes it; full TP stays closed.
    assert colour_only.capacity_bits() < CLOSED_BITS
    assert full.capacity_bits() < CLOSED_BITS
    # Way partitioning is an equally valid partitioning mechanism.
    assert way_partitioned.capacity_bits() < CLOSED_BITS

"""E10 (Sect. 4.3): padding generalises to algorithmic channels.

Paper claim: padding "is a general mechanism that can also be used to
prevent algorithmic channels" -- the square-and-multiply victim's running
time encodes its exponent's Hamming weight, and padding the component's
execution to an upper bound hides it.

Rows regenerated: (exponent Hamming weight -> first-arrival time at Lo)
for unpadded and padded IPC; plus the capacity of the arrival channel.
"""

import statistics

from repro.analysis import capacity_bits, from_samples
from repro.hardware import ReadTime, Syscall, presets
from repro.kernel import Kernel, TimeProtectionConfig
from repro.workloads import exponent_work_cycles, modexp_victim

from _common import CLOSED_BITS, OPEN_BITS, run_once

EXPONENTS = [0x01, 0x0F, 0x5B, 0xFF]  # Hamming weights 1, 4, 5, 8
BITS = 8
MIN_EXEC = 14_000  # designer-chosen bound above the modexp WCET


def _run(exponent, padded):
    machine = presets.tiny_machine()
    tp = TimeProtectionConfig.full(padded_ipc=padded)
    kernel = Kernel(machine, tp)
    hi = kernel.create_domain("Hi", n_colours=2, slice_cycles=20_000)
    lo = kernel.create_domain("Lo", n_colours=2, slice_cycles=6_000)
    endpoint = kernel.create_endpoint(
        "result", min_exec_cycles=MIN_EXEC, receiver_domain=lo
    )
    kernel.create_thread(
        hi,
        modexp_victim,
        params={
            "exponent": exponent,
            "bits": BITS,
            "endpoint_id": endpoint.endpoint_id,
            "messages": 3,
        },
    )
    arrivals = []

    def sink(ctx):
        for _ in range(3):
            yield Syscall("recv", (endpoint.endpoint_id,))
            stamp = yield ReadTime()
            arrivals.append(stamp.value)

    kernel.create_thread(lo, sink)
    kernel.set_schedule(0, [(hi, None), (lo, None)])
    kernel.run(max_cycles=2_500_000)
    return arrivals


def _sweep():
    table = {}
    for padded in (False, True):
        for exponent in EXPONENTS:
            table[(padded, exponent)] = _run(exponent, padded)
    return table


def test_e10_algorithmic_channel_padding(benchmark):
    table = run_once(benchmark, _sweep)
    print("\n=== E10: modexp arrival times vs exponent Hamming weight ===")
    print(f"{'exponent':>10s} {'weight':>7s} {'work(cyc)':>10s} "
          f"{'arrival (unpadded)':>20s} {'arrival (padded)':>18s}")
    for exponent in EXPONENTS:
        weight = bin(exponent).count("1")
        work = exponent_work_cycles(exponent, BITS)
        print(
            f"{exponent:#10x} {weight:>7d} {work:>10d} "
            f"{table[(False, exponent)][0]:>20d} {table[(True, exponent)][0]:>18d}"
        )
    # Shape: unpadded first arrivals strictly increase with the weight...
    unpadded_firsts = [table[(False, e)][0] for e in EXPONENTS]
    assert unpadded_firsts == sorted(unpadded_firsts)
    assert unpadded_firsts[-1] > unpadded_firsts[0]
    # ...and padded arrivals are identical across secrets.
    padded_firsts = {table[(True, e)][0] for e in EXPONENTS}
    assert len(padded_firsts) == 1
    # Channel capacities agree.
    unpadded_samples = [
        (e, t) for e in EXPONENTS for t in table[(False, e)]
    ]
    padded_samples = [(e, t) for e in EXPONENTS for t in table[(True, e)]]
    assert capacity_bits(from_samples(unpadded_samples)) > OPEN_BITS
    assert capacity_bits(from_samples(padded_samples)) < CLOSED_BITS


def _interim_utilisation(with_interim):
    """Sect. 4.3's second claim: busy-loop padding is wasteful; scheduling
    an interim Hi process reclaims the pad time without moving delivery."""
    from repro.hardware import Compute, Halt

    machine = presets.tiny_machine()
    kernel = Kernel(machine, TimeProtectionConfig.full(padded_ipc=True))
    hi = kernel.create_domain("Hi", n_colours=2, slice_cycles=20_000)
    lo = kernel.create_domain("Lo", n_colours=2, slice_cycles=6_000)
    endpoint = kernel.create_endpoint(
        "result", min_exec_cycles=MIN_EXEC, receiver_domain=lo
    )
    kernel.create_thread(
        hi,
        modexp_victim,
        params={
            "exponent": 0x5B,
            "bits": BITS,
            "endpoint_id": endpoint.endpoint_id,
            "messages": 3,
        },
    )
    work = [0]
    if with_interim:
        def interim(ctx):
            while True:
                yield Compute(50)
                work[0] += 1

        kernel.create_thread(hi, interim)
    arrivals = []

    def sink(ctx):
        for _ in range(3):
            yield Syscall("recv", (endpoint.endpoint_id,))
            stamp = yield ReadTime()
            arrivals.append(stamp.value)
        yield Halt()

    kernel.create_thread(lo, sink)
    kernel.set_schedule(0, [(hi, None), (lo, None)])
    kernel.run(max_cycles=1_500_000)
    return arrivals, work[0]


def test_e10b_interim_process_padding(benchmark):
    (busy_arrivals, busy_work), (interim_arrivals, interim_work) = run_once(
        benchmark, lambda: (_interim_utilisation(False), _interim_utilisation(True))
    )
    print("\n=== E10b: busy-loop vs interim-process padding (Sect. 4.3) ===")
    print(f"{'strategy':18s} {'arrivals':36s} {'interim work units':>18s}")
    print(f"{'busy-loop pad':18s} {str(busy_arrivals):36s} {busy_work:>18d}")
    print(f"{'interim process':18s} {str(interim_arrivals):36s} {interim_work:>18d}")
    # Same (deterministic) delivery schedule, reclaimed utilisation.
    assert busy_arrivals == interim_arrivals
    assert busy_work == 0
    assert interim_work > 100

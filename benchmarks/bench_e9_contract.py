"""E9 (Sects. 4.1/6): contract-violating hardware defeats the proof.

Paper claim: the proof is conditional on the hardware honouring the
security-oriented contract ("we are clearly at the mercy of processor
manufacturers here!").  On each violating machine the proof must fail,
the failure must name the violating element/mechanism, and -- where the
violation is exploitable inside this harness -- two-run interference must
actually be witnessed despite full TP.
"""

from repro.core import prove_time_protection
from repro.hardware import presets
from repro.kernel import TimeProtectionConfig

from _common import run_once

from tests.conftest import build_two_domain_system

VIOLATIONS = [
    ("unflushable prefetcher", presets.tiny_unflushable_machine, "PO-1"),
    ("broken L1D flush", presets.tiny_broken_flush_machine, "PO-3"),
    ("single-colour LLC", lambda: presets.tiny_nocolour_machine(n_cores=1), "PO-1"),
]


def _prove_all():
    reports = {}
    for name, factory, _expected in VIOLATIONS:
        reports[name] = prove_time_protection(
            lambda s, factory=factory: build_two_domain_system(
                s, TimeProtectionConfig.full(), machine_factory=factory
            ),
            secrets=[1, 9],
            observer="Lo",
        )
    return reports


def test_e9_contract_violations(benchmark):
    reports = run_once(benchmark, _prove_all)
    print("\n=== E9: proof outcomes on contract-violating hardware ===")
    print(f"{'machine':28s} {'verdict':10s} failed obligations")
    for (name, _factory, expected) in VIOLATIONS:
        report = reports[name]
        failed = [o.obligation_id for o in report.failed_obligations()]
        print(f"{name:28s} {'FAILS' if not report.holds else 'holds':10s} {failed}")
        assert not report.holds
        assert expected in failed, f"{name}: expected {expected} among {failed}"
    # The exploitable violations also produce live interference witnesses.
    assert any(
        not r.holds
        for r in reports["broken L1D flush"].noninterference
    )
    assert any(
        not r.holds
        for r in reports["unflushable prefetcher"].noninterference
    )

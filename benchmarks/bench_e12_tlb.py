"""E12 (Sect. 5.3): the TLB/ASID partitioning theorem, functional + timing.

Paper claim: the Syeda & Klein TLB model shows "page tables modifications
under one address space identifier (ASID) do not affect TLB consistency
for any other ASID" -- "the kind of partitioning theorem we would make
use of for timing-relevant state."

Regenerated: (i) the functional theorem on the TLB model directly, over a
sweep of mutation counts; (ii) its timing shadow in the full system: a
Hi domain that remaps its own pages at a secret-dependent rate never
perturbs Lo's TLB-sensitive walk timing under full TP.
"""

from repro.core import secret_swap_experiment
from repro.hardware import Access, Compute, Halt, ReadTime, presets
from repro.hardware.geometry import TlbGeometry
from repro.hardware.memory import PhysicalMemory
from repro.hardware.mmu import AddressSpaceManager
from repro.hardware.tlb import Tlb
from repro.kernel import Kernel, TimeProtectionConfig

from _common import run_once


def _functional_theorem(mutations):
    """Mutate space B ``mutations`` times; A's TLB view must not move."""
    memory = PhysicalMemory(total_frames=128, page_size=256, n_colours=8)
    manager = AddressSpaceManager(memory)
    space_a, space_b = manager.create(), manager.create()
    for page in range(4):
        space_a.map(0x1000 + page * 256, memory.alloc_frame())
        space_b.map(0x1000 + page * 256, memory.alloc_frame())
    tlb = Tlb(name="e12.tlb", geometry=TlbGeometry(entries=16))
    for page in range(4):
        mapping = space_a.lookup(0x1000 + page * 256)
        tlb.fill(space_a.asid, (0x1000 + page * 256) // 256,
                 mapping.frame.number, True, space_a.generation)
    view_before = tlb.entries_for_asid(space_a.asid)
    for mutation in range(mutations):
        vaddr = 0x1000 + (mutation % 4) * 256
        space_b.unmap(vaddr)
        space_b.map(vaddr, memory.alloc_frame())
    view_after = tlb.entries_for_asid(space_a.asid)
    consistent = tlb.consistent_with(space_a.asid, space_a)
    return view_before.keys() == view_after.keys(), consistent


def _remapper(ctx):
    # Hi: plain compute; its *kernel-visible* behaviour (remap rate) is
    # modelled by secret-dependent memory pressure over many pages, which
    # churns the shared TLB when unprotected.
    secret = ctx.params["secret"]
    n_pages = ctx.data_size // ctx.page_size
    while True:
        for i in range(secret + 1):
            yield Access(ctx.data_base + (i % n_pages) * ctx.page_size, write=True,
                         value=i)
        yield Compute(20)


def _walker(ctx):
    # Lo: touches many of its own pages so TLB misses (and their cached
    # walks) dominate its timing.
    n_pages = ctx.data_size // ctx.page_size
    for i in range(300):
        yield ReadTime()
        yield Access(ctx.data_base + (i % n_pages) * ctx.page_size)
    yield Halt()


def _system(secret):
    machine = presets.tiny_machine()
    kernel = Kernel(machine, TimeProtectionConfig.full())
    hi = kernel.create_domain("Hi", n_colours=2, slice_cycles=3000)
    lo = kernel.create_domain("Lo", n_colours=2, slice_cycles=3000)
    kernel.create_thread(hi, _remapper, data_pages=8, params={"secret": secret})
    kernel.create_thread(lo, _walker, data_pages=8)
    kernel.set_schedule(0, [(hi, None), (lo, None)])
    kernel.run(max_cycles=500_000)
    return kernel


def _sweep():
    functional = {m: _functional_theorem(m) for m in (0, 1, 8, 64)}
    timing = secret_swap_experiment(_system, 1, 7, observer_domain="Lo")
    return functional, timing


def test_e12_tlb_asid_partitioning(benchmark):
    functional, timing = run_once(benchmark, _sweep)
    print("\n=== E12: TLB/ASID partitioning theorem ===")
    print(f"{'B mutations':>12s} {'A view unchanged':>17s} {'A consistent':>13s}")
    for mutations, (unchanged, consistent) in sorted(functional.items()):
        print(f"{mutations:>12d} {str(unchanged):>17s} {str(consistent):>13s}")
    print(f"\ntiming shadow (two-run, TLB-heavy Lo): {timing}")
    for unchanged, consistent in functional.values():
        assert unchanged and consistent
    assert timing.holds

"""E5 (Sect. 4.2): the dirty-line switch-latency channel and padding.

Paper claim: "the latency of the flush is itself dependent on execution
history (number of dirty lines), which would create a channel.  We avoid
this channel by padding the domain-switch latency to a fixed value."

Rows regenerated: (dirty lines -> observed Lo slice-start period) with
flushing but no padding (the period tracks the Trojan's dirty count) and
with padding (one constant row); plus channel capacities.
"""

import statistics

from repro.attacks import switch_latency
from repro.hardware import presets
from repro.kernel import TimeProtectionConfig

from _common import CLOSED_BITS, OPEN_BITS, print_channel_table, run_once

SYMBOLS = [1, 5, 10, 16]  # dirty-line counts


def _sweep():
    flush_no_pad = TimeProtectionConfig.none().without(flush_on_switch=True)
    full = TimeProtectionConfig.full()
    results = []
    for tp in (flush_no_pad, full):
        results.append(
            switch_latency.experiment(
                tp,
                presets.tiny_machine,
                symbols=SYMBOLS,
                rounds_per_run=8,
                quantum=1,  # raw periods for the table
            )
        )
    return results


def test_e5_switch_latency_padding(benchmark):
    unpadded, padded = run_once(benchmark, _sweep)
    print("\n=== E5: Lo slice-start period vs Trojan dirty lines ===")
    print(f"{'dirty lines':>12s} {'period (no pad)':>16s} {'period (padded)':>16s}")
    unpadded_by_symbol = {}
    padded_by_symbol = {}
    for symbol, observation in unpadded.samples:
        unpadded_by_symbol.setdefault(symbol, []).append(observation)
    for symbol, observation in padded.samples:
        padded_by_symbol.setdefault(symbol, []).append(observation)
    for symbol in SYMBOLS:
        print(
            f"{symbol:>12d} "
            f"{statistics.median(unpadded_by_symbol[symbol]):>16.0f} "
            f"{statistics.median(padded_by_symbol[symbol]):>16.0f}"
        )
    print_channel_table("E5 capacities", [unpadded, padded])
    # Shape: unpadded period grows monotonically with dirty lines.
    medians = [statistics.median(unpadded_by_symbol[s]) for s in SYMBOLS]
    assert medians == sorted(medians)
    assert medians[-1] > medians[0]
    # Padded periods are identical across symbols (the observation
    # sequence is the same whatever the Trojan dirtied).
    padded_sequences = {
        symbol: tuple(padded_by_symbol[symbol]) for symbol in SYMBOLS
    }
    assert len(set(padded_sequences.values())) == 1
    assert unpadded.capacity_bits() > OPEN_BITS
    assert padded.capacity_bits() < CLOSED_BITS

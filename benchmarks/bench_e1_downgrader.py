"""E1 (Figure 1): the downgrader's event-timing channel.

Paper claim (Sect. 3.2): the arrival time of the encryption component's
output leaks its secret-dependent execution time; padded synchronous IPC
delivery (Cock et al. [2014]) makes delivery happen at pre-determined
times, closing the channel.

Series regenerated: channel capacity of the ciphertext inter-arrival
times over a sweep of crypto secrets, for (i) no protection, (ii) full TP
without padded IPC (switch padding alone does NOT close this), (iii) full
TP with padded IPC.
"""

from repro.attacks import event_timing
from repro.hardware import presets
from repro.kernel import TimeProtectionConfig

from _common import CLOSED_BITS, OPEN_BITS, print_channel_table, run_once

SYMBOLS = [0, 4, 8, 12]


def _sweep():
    configs = [
        TimeProtectionConfig.none(),
        TimeProtectionConfig.full(),  # padded switches but unpadded IPC
        TimeProtectionConfig.full(padded_ipc=True),
    ]
    return [
        event_timing.experiment(
            tp, presets.tiny_machine, symbols=SYMBOLS, messages_per_run=5
        )
        for tp in configs
    ]


def test_e1_downgrader_event_timing(benchmark):
    unprotected, unpadded_ipc, padded_ipc = run_once(benchmark, _sweep)
    print_channel_table(
        "E1: downgrader event timing (Figure 1)",
        [unprotected, unpadded_ipc, padded_ipc],
    )
    # Shape: open, still open, closed.
    assert unprotected.capacity_bits() > OPEN_BITS
    assert unpadded_ipc.capacity_bits() > OPEN_BITS
    assert padded_ipc.capacity_bits() < CLOSED_BITS
    # The unprotected channel is essentially noiseless: near log2(|S|).
    assert unprotected.capacity_bits() > 1.5

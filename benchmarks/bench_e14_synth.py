"""E14/E15 (engineering): attack-synthesis generation throughput.

Not a paper experiment: this benchmarks the search subsystem that
*discovers* timing channels (EXPERIMENTS.md E15) instead of replaying
hand-written ones.  A budgeted seeded evolutionary run (initial
population plus two mutate-and-select generations) executes on
tiny/no-TP, counting simulated kernel steps through the same
``on_kernel`` hook the attack benches use; the printed figures are
evaluations per generation and simulated steps per host second.  The
same generation is then re-evaluated through the campaign bridge's
worker pool, which must reproduce the serial fitnesses bit-for-bit.

Shape asserted: the budgeted search finds an open channel on tiny with
TP off (MI above the estimator noise floor), the pool evaluator is
deterministic against the serial one, and the canonical evolved
witnesses close under full time protection.
"""

import time

from repro.campaign.registry import MACHINES, TP_CONFIGS
from repro.synth import (
    CampaignEvaluator,
    ChannelGuessEnv,
    EvolutionSearch,
    PRIME_PROBE_GENOME,
    SearchConfig,
    experiment,
)

from _common import CLOSED_BITS, OPEN_BITS, print_channel_table, run_once

CONFIG = SearchConfig(generations=2, population=8, elite=2)


def _make_env(tp: str) -> ChannelGuessEnv:
    return ChannelGuessEnv(
        machine="tiny", tp=tp, victim="set_hammer",
        rounds_per_run=4, sweep_rounds=1,
    )


class _StepCounter:
    def __init__(self):
        self.steps = 0

    def __call__(self, kernel):
        self.steps += kernel.total_steps


def _run_search(env, counter):
    def counting_evaluator(genomes):
        return [env.evaluate(g, on_kernel=counter) for g in genomes]

    search = EvolutionSearch(env, CONFIG, seed=0, evaluator=counting_evaluator)
    return search.run()


def test_e14_synth_generation_throughput(benchmark, tmp_path):
    env = _make_env("none")
    counter = _StepCounter()

    t0 = time.perf_counter()
    report = run_once(benchmark, _run_search, env, counter)
    wall_s = time.perf_counter() - t0

    generations = len(report.history)
    print(f"\n=== E14: synthesis throughput, {report.evaluations} evaluations ===")
    print(f"{'metric':36s} {'value':>14s}")
    print("-" * 52)
    for label, value in (
        ("generations run", f"{generations}"),
        ("evaluations / generation", f"{report.evaluations / generations:.1f}"),
        ("simulated kernel steps", f"{counter.steps}"),
        ("steps / host second", f"{counter.steps / wall_s:,.0f}"),
        ("champion MI (bits)", f"{report.champion.evaluation.mutual_information_bits:.3f}"),
        ("noise floor (bits)", f"{report.noise_floor_bits:.3f}"),
    ):
        print(f"{label:36s} {value:>14s}")

    # The budgeted search must discover an open channel with TP off.
    assert report.found_channel()
    assert report.evaluations >= CONFIG.population

    # The campaign bridge's pool evaluator must reproduce the serial
    # fitnesses bit-for-bit (same genomes, same env, same seeds).
    genomes = [scored.genome for scored in report.discovered[:4]] or [
        report.champion.genome
    ]
    serial = [env.evaluate(g) for g in genomes]
    pool = CampaignEvaluator(
        env, str(tmp_path / "e14-fitness.jsonl"), n_workers=2
    )(genomes)
    assert [e.fitness for e in pool] == [e.fitness for e in serial]
    assert [e.mutual_information_bits for e in pool] == [
        e.mutual_information_bits for e in serial
    ]


def test_e14_full_tp_closes_evolved_witness():
    results = []
    for tp_name in ("none", "full"):
        result = experiment(
            TP_CONFIGS[tp_name](), MACHINES["tiny"], PRIME_PROBE_GENOME,
            victim="set_hammer", rounds_per_run=6, sweep_rounds=2,
        )
        results.append(result)
    print_channel_table("E14: evolved prime+probe witness vs TP", results)
    open_result, closed_result = results
    assert open_result.capacity_bits() > OPEN_BITS
    assert closed_result.capacity_bits() < CLOSED_BITS

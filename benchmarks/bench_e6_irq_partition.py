"""E6 (Sect. 4.2): the I/O-completion interrupt channel and partitioning.

Paper claim: a Trojan can steer a device completion interrupt into the
victim's slice; the kernel prevents this by partitioning interrupt lines
between domains and masking all lines not owned by the running domain.
"""

from repro.attacks import irq_channel
from repro.hardware import presets
from repro.kernel import TimeProtectionConfig

from _common import CLOSED_BITS, OPEN_BITS, print_channel_table, run_once


def _sweep():
    configs = [
        TimeProtectionConfig.none(),
        # Everything but interrupt partitioning: still open.
        TimeProtectionConfig.full().without(partition_interrupts=False),
        TimeProtectionConfig.full(),
    ]
    return [
        irq_channel.experiment(tp, presets.tiny_machine, rounds_per_run=7,
                               sweep_rounds=3)
        for tp in configs
    ]


def test_e6_interrupt_partitioning(benchmark):
    unprotected, no_partition, full = run_once(benchmark, _sweep)
    print_channel_table(
        "E6: Trojan-timed completion interrupts",
        [unprotected, no_partition, full],
    )
    assert unprotected.capacity_bits() > OPEN_BITS
    assert no_partition.capacity_bits() > OPEN_BITS
    assert full.capacity_bits() < CLOSED_BITS

"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment from DESIGN.md's index
(E1..E12), prints the rows/series the experiment produces (capacities,
decode accuracies, latency tables), and asserts the *shape* the paper
claims -- who wins, and where the channel closes.  Absolute cycle counts
are simulator artefacts; shapes are the reproduction target.
"""

from __future__ import annotations

from typing import Callable

from repro.attacks.harness import ChannelResult

# A channel is "closed" when its measured capacity is numerically zero
# (the simulator is deterministic, so closed channels produce literally
# constant observations).
CLOSED_BITS = 1e-3
# A channel is convincingly "open" above this.
OPEN_BITS = 0.3


def run_once(benchmark, fn: Callable, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def print_channel_table(title: str, results: "list[ChannelResult]") -> None:
    print(f"\n=== {title} ===")
    header = f"{'configuration':44s} {'capacity':>10s} {'decode':>8s} {'chance':>8s}"
    print(header)
    print("-" * len(header))
    for result in results:
        print(
            f"{result.tp_label[:44]:44s} "
            f"{result.capacity_bits():>7.3f} b "
            f"{result.decode_accuracy():>8.2f} "
            f"{result.chance_accuracy():>8.2f}"
        )

"""E11 (Sect. 5.2): the executable case split.

Paper claim: every Lo execution step falls into Case 1 (user
instruction), Case 2a (trap) or Case 2b (domain switch), and in each case
the step's observable timing is independent of other domains -- Case 1/2a
because the latency function's arguments lie in the domain's own
partition (plus deterministically re-normalised kernel-shared state),
Case 2b by the constant-time switch.

Regenerated: the per-case step counts, per-case pass verdicts, and the
latency-dependency profile (which state elements each case's time
function actually read -- the "arguments of the unspecified function").
"""

from repro.core import audit, dependency_profile, witnesses_from_kernel
from repro.kernel import TimeProtectionConfig

from _common import run_once

from tests.conftest import build_two_domain_system


def _run():
    kernel = build_two_domain_system(
        secret=5,
        tp=TimeProtectionConfig.full(),
        capture_footprints=True,
        observer_iterations=150,
        max_cycles=500_000,
    )
    return kernel, audit(kernel), dependency_profile(witnesses_from_kernel(kernel))


def test_e11_case_split(benchmark):
    kernel, result, profile = run_once(benchmark, _run)
    print("\n=== E11: Sect. 5.2 case split ===")
    print(result)
    print("\nlatency-dependency profile (case -> element -> steps):")
    for case in sorted(profile):
        for element, count in sorted(profile[case].items()):
            print(f"  case {case:>2s}: {element:20s} {count:>6d}")
    assert result.passed
    # Every executed step was classified, and Case 2b covers exactly the
    # recorded domain switches.
    counted = sum(r.steps for r in result.results)
    assert counted == result.total_steps
    assert result.result_for("2b").steps == len(kernel.switch_records)
    # Case 1 latencies depend on caches and the TLB, never on another
    # domain's partition (that is what `passed` asserts); the profile
    # must show the expected argument structure.
    assert any("l1i" in element for element in profile["1"])
    assert any("tlb" in element for element in profile["1"])

"""Standalone entry point for the throughput baseline harness.

Thin wrapper over :mod:`repro.bench` for running outside the installed
CLI (e.g. ``PYTHONPATH=src python benchmarks/baseline.py --record``).
All flags are shared with ``repro-tp bench``; see that subcommand's help
for details.  Baselines land next to this file as ``BENCH_<host>.json``.
"""

from __future__ import annotations

import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parents[1]
for entry in (str(_ROOT / "src"), str(_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)


def main(argv=None) -> int:
    from repro.cli import main as cli_main

    argv = list(sys.argv[1:] if argv is None else argv)
    if "--dir" not in argv and "--file" not in argv:
        argv += ["--dir", str(Path(__file__).resolve().parent)]
    return cli_main(["bench", *argv])


if __name__ == "__main__":
    sys.exit(main())

"""E8 (Sect. 5): the proof of time protection on conforming hardware.

Paper claim: given the aISA contract, time protection reduces to
functional properties (partitioning invariants, flush application,
timestamp-compared padding) dischargeable with storage-channel machinery,
and the assembled argument yields noninterference.

Regenerated: the full proof report -- abstract model extraction, PO-1..7,
the Sect. 5.2 case split, unwinding conditions, and the two-run secret
sweep -- which must come back THEOREM HOLDS with zero counterexamples.
"""

from repro.core import format_report, prove_time_protection
from repro.hardware import Access, Compute, Halt, ReadTime, Syscall, presets
from repro.kernel import Kernel, TimeProtectionConfig

from _common import run_once


def _hi(ctx):
    secret = ctx.params["secret"]
    for i in range(80):
        yield Access(
            ctx.data_base + (i * (secret + 1) * ctx.line_size) % ctx.data_size,
            write=True,
            value=i,
        )
        if i % 9 == 0:
            yield Syscall("nop")
    while True:
        yield Compute(15)


def _lo(ctx):
    for i in range(160):
        yield ReadTime()
        yield Access(ctx.data_base + (i * ctx.line_size) % ctx.data_size)
        if i % 20 == 0:
            yield Syscall("nop")
    yield Halt()


def _build(secret):
    machine = presets.tiny_machine()
    kernel = Kernel(machine, TimeProtectionConfig.full())
    kernel.capture_footprints = True
    hi = kernel.create_domain("Hi", n_colours=2, slice_cycles=3000)
    lo = kernel.create_domain("Lo", n_colours=2, slice_cycles=3000)
    kernel.create_thread(hi, _hi, params={"secret": secret})
    kernel.create_thread(lo, _lo)
    kernel.set_schedule(0, [(hi, None), (lo, None)])
    kernel.run(max_cycles=450_000)
    return kernel


def _prove():
    return prove_time_protection(_build, secrets=[1, 7, 19, 42], observer="Lo")


def test_e8_proof_of_time_protection(benchmark):
    report = run_once(benchmark, _prove)
    print()
    print(format_report(report))
    assert report.holds
    assert all(obligation.passed for obligation in report.obligations)
    assert report.case_split is not None and report.case_split.passed
    assert report.unwinding is not None and report.unwinding.passed
    assert all(result.holds for result in report.noninterference)
    assert report.counterexamples() == []

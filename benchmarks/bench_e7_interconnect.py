"""E7 (Sect. 2): the stateless-interconnect channel survives everything.

Paper claim: covert channels through stateless interconnects "can only be
prevented with hardware support that is not available on any contemporary
mainstream hardware" -- so time protection deliberately excludes them,
and Intel MBA's *approximate* bandwidth limits (footnote 1) are "not
sufficient for preventing covert channels".

Rows regenerated: capacity of the cross-core bandwidth channel under full
time protection, without and with MBA-style throttling.  Both stay open.
"""

from repro.attacks import interconnect_channel
from repro.hardware import presets
from repro.kernel import TimeProtectionConfig

from _common import OPEN_BITS, print_channel_table, run_once


def _sweep():
    full = TimeProtectionConfig.full()
    plain = interconnect_channel.experiment(
        full, presets.contended_machine, rounds_per_run=8, sweep_rounds=3
    )
    with_mba = interconnect_channel.experiment(
        full, lambda: presets.contended_machine(mba=True),
        rounds_per_run=8, sweep_rounds=3,
    )
    return plain, with_mba


def test_e7_interconnect_channel_survives(benchmark):
    plain, with_mba = run_once(benchmark, _sweep)
    print_channel_table(
        "E7: cross-core bandwidth channel under FULL time protection",
        [plain, with_mba],
    )
    # The declared limitation: open despite every TP mechanism.
    assert plain.capacity_bits() > OPEN_BITS
    # MBA's approximate enforcement does not close it either.
    assert with_mba.capacity_bits() > OPEN_BITS

"""E13 (engineering): campaign engine vs the hand-written serial loop.

Not a paper experiment: this benchmarks the orchestration subsystem that
regenerates the paper's config-matrix evaluations.  A 12-trial
(machine x tp x attack x seed) grid is run three ways — the old-style
serial ``for`` loop over experiment calls, the campaign executor with
``n_workers=1`` (orchestration overhead), and the campaign executor with
a multi-process pool (parallel speedup) — and a resumed re-run, which
must execute zero trials.

Shape asserted: the executor's serial overhead is small, resume is ~free,
and on a multi-core host the pool beats the serial loop.  On a single
-core host the speedup assertion is skipped (there is nothing to win).
"""

import os
import time

from repro.campaign import (
    ATTACKS,
    MACHINES,
    TP_CONFIGS,
    CampaignSpec,
    ResultStore,
    run_campaign,
)

from _common import run_once

SPEC = CampaignSpec(
    machines=("tiny",),
    tps=("full", "none", "no-pad"),
    attacks=("e5", "occupancy"),
    seeds=(0, 1),
    name="bench-e13",
)


def _serial_loop(trials):
    """The pre-campaign idiom: a bare loop over experiment calls."""
    results = []
    for trial in trials:
        tp = TP_CONFIGS[trial.tp]()
        machine_factory = MACHINES[trial.machine]
        results.append(ATTACKS[trial.attack].run(tp, machine_factory, trial.params))
    return results


def _run_campaign(tmp_path, n_workers, tag):
    store = ResultStore(str(tmp_path / f"e13-{tag}.jsonl"))
    report = run_campaign(SPEC, store, n_workers=n_workers, quiet=True)
    return store, report


def test_e13_campaign_speedup(benchmark, tmp_path):
    trials = SPEC.trials()
    n_trials = len(trials)
    assert n_trials >= 12

    t0 = time.perf_counter()
    serial_results = _serial_loop(trials)
    serial_s = time.perf_counter() - t0
    assert len(serial_results) == n_trials

    t0 = time.perf_counter()
    _store1, report1 = _run_campaign(tmp_path, 1, "serial")
    campaign_serial_s = time.perf_counter() - t0

    n_workers = max(2, min(4, os.cpu_count() or 1))
    t0 = time.perf_counter()
    store, report = run_once(
        benchmark, _run_campaign, tmp_path, n_workers, "pool"
    )
    pool_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    _store2, resumed = _run_campaign(tmp_path, n_workers, "pool")
    resume_s = time.perf_counter() - t0

    print(f"\n=== E13: {n_trials}-trial campaign, {n_workers} workers ===")
    print(f"{'strategy':32s} {'wall (s)':>10s} {'speedup':>8s}")
    print("-" * 52)
    for label, seconds in (
        ("hand-written serial loop", serial_s),
        ("campaign engine, 1 worker", campaign_serial_s),
        (f"campaign engine, {n_workers} workers", pool_s),
        ("resumed re-run", resume_s),
    ):
        print(f"{label:32s} {seconds:>10.2f} {serial_s / seconds:>7.1f}x")

    # One record per trial, all successful; the re-run executed nothing.
    assert report1.executed == n_trials and report1.all_ok
    assert report.executed == n_trials and report.all_ok
    assert len(store.completed_keys()) == n_trials
    assert resumed.executed == 0 and resumed.skipped == n_trials
    # Resume must be far cheaper than running (it only reads the store).
    assert resume_s < serial_s / 4
    # Orchestration overhead of the serial executor stays modest.
    assert campaign_serial_s < serial_s * 1.6
    if (os.cpu_count() or 1) >= 2:
        # The pool must beat the hand-written serial loop outright.
        assert pool_s < serial_s

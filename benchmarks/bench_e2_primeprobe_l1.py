"""E2 (Sect. 3.1): time-shared L1 prime-and-probe.

Paper claim: a Trojan sharing a core leaks through core-private cache
state with high bandwidth; flushing on domain switch (L1 caches have one
page colour, so flushing is the only mechanism) plus padding reduces the
channel to nothing.

Series regenerated: capacity/accuracy over the full set alphabet, for no
protection, flush-only, and full TP; plus the flush-necessity ablation
(colouring alone does not help the one-colour L1).
"""

from repro.attacks import primeprobe
from repro.hardware import presets
from repro.kernel import TimeProtectionConfig

from _common import CLOSED_BITS, OPEN_BITS, print_channel_table, run_once

SYMBOLS = [2, 3, 4, 5, 6, 7]  # sets clear of heavy kernel-data pollution


def _sweep():
    configs = [
        TimeProtectionConfig.none(),
        # Colouring alone: useless for a single-colour L1.
        TimeProtectionConfig.none().without(cache_colouring=True, kernel_clone=True),
        # Flush + padding alone: the operative defence.
        TimeProtectionConfig.none().without(flush_on_switch=True, pad_switch=True),
        TimeProtectionConfig.full(),
    ]
    return [
        primeprobe.l1_experiment(
            tp, presets.tiny_machine, symbols=SYMBOLS, rounds_per_run=7
        )
        for tp in configs
    ]


def test_e2_primeprobe_l1(benchmark):
    unprotected, colour_only, flush_only, full = run_once(benchmark, _sweep)
    print_channel_table(
        "E2: prime+probe over the time-shared L1",
        [unprotected, colour_only, flush_only, full],
    )
    assert unprotected.capacity_bits() > OPEN_BITS
    assert unprotected.decode_accuracy() > 2 * unprotected.chance_accuracy()
    # Colouring cannot partition a one-colour cache: channel stays open.
    assert colour_only.capacity_bits() > OPEN_BITS
    # Flushing closes it; full TP stays closed.
    assert flush_only.capacity_bits() < CLOSED_BITS
    assert full.capacity_bits() < CLOSED_BITS


def _branch_sweep():
    from repro.attacks import branch_channel

    configs = [
        TimeProtectionConfig.none(),
        TimeProtectionConfig.none().without(flush_on_switch=True, pad_switch=True),
        TimeProtectionConfig.full(),
    ]
    return [
        branch_channel.experiment(tp, presets.tiny_bimodal_machine)
        for tp in configs
    ]


def test_e2b_branch_predictor_channel(benchmark):
    """Sect. 3.1 also names branch predictors among the stateful shared
    resources; the direction-training channel closes under flushing."""
    unprotected, flush_only, full = run_once(benchmark, _branch_sweep)
    print_channel_table(
        "E2b: branch-predictor training channel (bimodal predictor)",
        [unprotected, flush_only, full],
    )
    assert unprotected.capacity_bits() > OPEN_BITS
    assert flush_only.capacity_bits() < CLOSED_BITS
    assert full.capacity_bits() < CLOSED_BITS

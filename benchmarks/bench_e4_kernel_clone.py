"""E4 (Sect. 4.2): Flush+Reload on shared kernel text vs the kernel clone.

Paper claim: "even read-only sharing of code is sufficient for creating a
channel", so the kernel image itself must be coloured via the policy-free
clone mechanism.  The decisive ablation: with *every other mechanism on*
but cloning off, the spy still reads the victim's syscall activity off
the shared text's cache residency; cloning alone closes it.
"""

from repro.attacks import flushreload
from repro.hardware import presets
from repro.kernel import TimeProtectionConfig

from _common import CLOSED_BITS, OPEN_BITS, print_channel_table, run_once


def _sweep():
    configs = [
        TimeProtectionConfig.none(),
        TimeProtectionConfig.full().without(kernel_clone=False),
        TimeProtectionConfig.full(),
    ]
    return [
        flushreload.experiment(tp, presets.tiny_machine, rounds_per_run=7,
                               sweep_rounds=3)
        for tp in configs
    ]


def test_e4_flush_reload_kernel_text(benchmark):
    unprotected, no_clone, full = run_once(benchmark, _sweep)
    print_channel_table(
        "E4: flush+reload on kernel text",
        [unprotected, no_clone, full],
    )
    assert unprotected.capacity_bits() > OPEN_BITS
    assert unprotected.decode_accuracy() == 1.0
    # All other mechanisms cannot compensate for shared kernel text.
    assert no_clone.capacity_bits() > OPEN_BITS
    # The clone closes it.
    assert full.capacity_bits() < CLOSED_BITS

#!/usr/bin/env python3
"""Cloud co-location scenario: a cross-VM covert channel, and its defences.

Two "virtual machines" (security domains) share a physical core and the
last-level cache -- the classic public-cloud co-location threat the
paper's introduction invokes.  A Trojan inside the victim VM encodes a
byte into cache sets; a spy VM decodes it with prime-and-probe.

The script transmits a full covert byte four ways:

* time-shared L1 channel, no protection       -> the byte gets out,
* concurrent LLC channel, no protection       -> the byte gets out,
* both again under full time protection       -> the decoder sees a
  constant (zero bits of information), whatever was sent.
"""

from repro import TimeProtectionConfig, presets
from repro.attacks import CovertTransmitter, primeprobe


def make_transmitter(experiment, tp, machine_factory, symbol_map,
                     symbol_period_cycles):
    def run_symbol(symbol):
        result = experiment(
            tp, machine_factory, symbols=[symbol], rounds_per_run=6
        )
        return [obs for _s, obs in result.samples]

    return CovertTransmitter(
        run_symbol,
        symbol_map=symbol_map,
        symbol_period_cycles=symbol_period_cycles,
    )


def run_scenario(label, experiment, machine_factory, symbol_map,
                 symbol_period_cycles, secret_byte):
    for tp_label, tp in (
        ("no protection", TimeProtectionConfig.none()),
        ("full time protection", TimeProtectionConfig.full()),
    ):
        transmitter = make_transmitter(
            experiment, tp, machine_factory, symbol_map, symbol_period_cycles
        )
        result = transmitter.transmit(secret_byte, width_bits=8)
        print(f"  {label:28s} [{tp_label:22s}] {result.summary()}")


def main():
    secret_byte = 0xA7
    print("cross-VM covert channel, transmitting one byte:\n")
    # Map 2-bit symbols onto well-separated cache sets / colours.  The
    # symbol period is the simulated time one symbol's transmission
    # occupies (used for the nominal-1 GHz bandwidth figure).
    run_scenario(
        "time-shared L1 prime+probe",
        primeprobe.l1_experiment,
        presets.tiny_machine,
        symbol_map={0: 4, 1: 5, 2: 6, 3: 7},
        symbol_period_cycles=6 * 600_000,
        secret_byte=secret_byte,
    )
    run_scenario(
        "concurrent LLC prime+probe",
        primeprobe.llc_experiment,
        lambda: presets.tiny_machine(n_cores=2),
        symbol_map={0: 1, 1: 3, 2: 5, 3: 7},
        symbol_period_cycles=6 * 200_000,
        secret_byte=secret_byte,
    )
    print(
        "\nWith time protection the kernel flushes core-local state at every"
        "\ndomain switch and colour-partitions the LLC: the same decoders see"
        "\nonly their own deterministic echo."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Side-channel key recovery against a table-lookup cipher -- and its defeat.

Unlike the covert-channel examples (where a Trojan cooperates), this is a
pure *side* channel: the victim is an honest AES-like cipher whose table
index depends on its key byte (Osvik et al. [2006]).  The spy never talks
to it -- it prime-and-probes the L1 data cache across domain switches and
reads the key byte off the conflict pattern.

With flush-on-switch + padding, the same spy recovers nothing.
"""

from repro import Kernel, TimeProtectionConfig, presets
from repro.attacks.encoding import majority
from repro.hardware import Access, ReadTime, Syscall
from repro.workloads import sbox_victim

HI_SLICE = 4_000
LO_SLICE = 12_000


def pp_spy(ctx):
    """Differential prime-and-probe over all L1 sets (see repro.attacks).

    The spy knows which sets its *own* sleep syscall pollutes (kernel
    data lands in the low sets -- public knowledge it can calibrate once,
    offline) and excludes them from the decode.
    """
    n_sets = ctx.params["l1_sets"]
    results = ctx.params["results"]
    excluded = set(ctx.params.get("exclude_sets", ()))
    for _round in range(ctx.params["rounds"]):
        for page in range(2):
            for set_index in range(n_sets):
                yield Access(
                    ctx.data_base + page * ctx.page_size + set_index * ctx.line_size
                )

        def probe():
            latencies = []
            for set_index in range(n_sets):
                t0 = yield ReadTime()
                for page in range(2):
                    yield Access(
                        ctx.data_base
                        + page * ctx.page_size
                        + set_index * ctx.line_size
                    )
                t1 = yield ReadTime()
                latencies.append(t1.value - t0.value)
            return latencies

        baseline = yield from probe()
        yield Syscall("sleep", (LO_SLICE + HI_SLICE // 2,))
        after = yield from probe()
        delta = [after[s] - baseline[s] for s in range(n_sets)]
        candidates = [s for s in range(n_sets) if s not in excluded]
        # Ties break toward higher sets: residual kernel pollution sits in
        # the low sets, so equal deltas favour the un-polluted candidate.
        results.append(max(candidates, key=lambda s: (delta[s], s)))


def attack(key_byte, protected):
    machine = presets.tiny_machine()
    tp = TimeProtectionConfig.full() if protected else TimeProtectionConfig.none()
    kernel = Kernel(machine, tp)
    hi = kernel.create_domain("Victim", n_colours=2, slice_cycles=HI_SLICE)
    lo = kernel.create_domain("Spy", n_colours=2, slice_cycles=LO_SLICE)
    # The honest cipher: its only "flaw" is the secret-indexed table.
    # A one-page table aliases table lines onto L1 sets directly.  The
    # chosen-plaintext setting (attacker feeds plaintext 0) makes the
    # first-round lookup line a pure function of the key byte.
    kernel.create_thread(
        hi,
        sbox_victim,
        data_pages=2,
        params={
            "key": [key_byte],
            "table_pages": 2,
            "blocks_per_slice": 6,
            "fixed_plaintext": 0,
        },
    )
    results = []
    kernel.create_thread(
        lo,
        pp_spy,
        data_pages=4,
        params={
            "l1_sets": machine.config.l1d_geometry.sets,
            "results": results,
            "rounds": 8,
            "exclude_sets": (0, 1),  # the spy's own syscall pollution
        },
    )
    kernel.set_schedule(0, [(hi, None), (lo, None)])
    kernel.run(max_cycles=3_000_000)
    return results[2:]  # drop schedule-alignment warmup


def main():
    # The victim's first-round lookup row is key % 8 (chosen plaintext 0),
    # which is also its L1 set.  The spy's modal hot set is its guess.
    for protected in (False, True):
        mode = "full time protection" if protected else "no protection"
        print(f"\n=== {mode} ===")
        recovered = 0
        guesses = []
        keys = (0x04, 0x06, 0x07)
        for key_byte in keys:
            observations = attack(key_byte, protected)
            guess = majority(observations) if observations else -1
            guesses.append(guess)
            hit = "recovered" if guess == key_byte % 8 else "missed"
            print(
                f"  key byte {key_byte:#04x}: spy's modal hot set = {guess} "
                f"(victim's dominant set = {key_byte % 8}) -> {hit}"
            )
            recovered += guess == key_byte % 8
        varies = len(set(guesses)) > 1
        print(f"  recovery rate: {recovered}/{len(keys)}")
        if varies:
            verdict = "YES -- the channel carries key material"
        else:
            verdict = (
                "no -- a constant output carries zero bits, "
                "whatever it happens to coincide with"
            )
        print(f"  spy output varies with the key: {verdict}")


if __name__ == "__main__":
    main()

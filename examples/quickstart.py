#!/usr/bin/env python3
"""Quickstart: boot a protected two-domain system and prove time protection.

This walks the library's whole surface in one sitting:

1. build a machine (the microarchitectural simulator),
2. boot the kernel with full time protection,
3. create a Hi domain (holding a secret) and a Lo domain (the observer),
4. run, then ask the proof engine whether Lo could have learnt anything.

Run it twice mentally: once as written (the theorem holds), then flip
``PROTECTED`` to False and watch the proof fail with concrete
counterexamples -- a divergence in Lo's own timestamps caused purely by
Hi's secret.
"""

from repro import Kernel, TimeProtectionConfig, presets
from repro.hardware import Access, Compute, Halt, ReadTime, Syscall
from repro.core import format_report, prove_time_protection

PROTECTED = True


def hi_program(ctx):
    """Hi: touches memory in a secret-dependent pattern (a side channel
    waiting to happen), and makes the occasional syscall."""
    secret = ctx.params["secret"]
    for i in range(80):
        stride = (secret + 1) * ctx.line_size
        yield Access(ctx.data_base + (i * stride) % ctx.data_size, write=True, value=i)
        if i % 10 == 0:
            yield Syscall("nop")
    while True:
        yield Compute(20)


def lo_program(ctx):
    """Lo: measures everything it legally can -- its own timestamps and
    its own memory latencies."""
    for i in range(150):
        yield ReadTime()
        yield Access(ctx.data_base + (i * ctx.line_size) % ctx.data_size)
    yield Halt()


def build_and_run(secret):
    """Build the *whole system* for one value of Hi's secret and run it.

    The proof engine calls this repeatedly with different secrets; any
    difference Lo can observe between those runs is interference.
    """
    machine = presets.tiny_machine()
    tp = TimeProtectionConfig.full() if PROTECTED else TimeProtectionConfig.none()
    kernel = Kernel(machine, tp)
    kernel.capture_footprints = True  # enables the Sect. 5.2 case-split audit

    hi = kernel.create_domain("Hi", n_colours=2, slice_cycles=3000)
    lo = kernel.create_domain("Lo", n_colours=2, slice_cycles=3000)
    kernel.create_thread(hi, hi_program, params={"secret": secret})
    kernel.create_thread(lo, lo_program)
    kernel.set_schedule(0, [(hi, None), (lo, None)])
    kernel.run(max_cycles=400_000)
    return kernel


def main():
    print(f"time protection: {'ON' if PROTECTED else 'OFF'}")
    report = prove_time_protection(
        build_and_run, secrets=[1, 7, 23], observer="Lo"
    )
    print(format_report(report, verbose=True))
    if report.holds:
        print("\nLo's world is bit-identical across all Hi secrets: no channel.")
    else:
        print("\nLo could distinguish Hi's secrets -- see the counterexamples.")


if __name__ == "__main__":
    main()

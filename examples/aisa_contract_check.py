#!/usr/bin/env python3
"""Audit machines against the security-oriented hardware contract (aISA).

The paper's conclusion: proving time protection is possible *iff* the
hardware honours a contract -- every timing-relevant state element must be
partitionable or flushable by the OS.  "We are clearly at the mercy of
processor manufacturers here!"

This example extracts the abstract hardware model from a family of
machines -- one conforming, four violating in different ways -- and runs
the full proof on each, showing exactly which obligation each violation
trips and that the noninterference theorem fails with it.
"""

from repro import TimeProtectionConfig, presets
from repro.core import AbstractHardwareModel, prove_time_protection
from repro.hardware import Access, Compute, Halt, ReadTime, Syscall

MACHINES = [
    ("conforming tiny machine", presets.tiny_machine),
    ("SMT pair (hyperthreading)", presets.tiny_smt_machine),
    ("unflushable prefetcher", presets.tiny_unflushable_machine),
    ("broken L1D flush", presets.tiny_broken_flush_machine),
    ("single-colour LLC", lambda: presets.tiny_nocolour_machine(n_cores=1)),
]


def hi_program(ctx):
    secret = ctx.params["secret"]
    for i in range(60):
        yield Access(
            ctx.data_base + (i * (secret + 1) * ctx.line_size) % ctx.data_size,
            write=True,
            value=i,
        )
        if i % 8 == 0:
            yield Syscall("nop")
    while True:
        yield Compute(10)


def lo_program(ctx):
    for i in range(100):
        yield ReadTime()
        yield Access(ctx.data_base + (i * ctx.line_size) % ctx.data_size)
    yield Halt()


def build_on(machine_factory):
    def build(secret):
        from repro import Kernel

        machine = machine_factory()
        kernel = Kernel(machine, TimeProtectionConfig.full())
        hi = kernel.create_domain("Hi", n_colours=2, slice_cycles=3000)
        lo = kernel.create_domain("Lo", n_colours=2, slice_cycles=3000)
        kernel.create_thread(hi, hi_program, params={"secret": secret})
        kernel.create_thread(lo, lo_program)
        kernel.set_schedule(0, [(hi, None), (lo, None)])
        kernel.run(max_cycles=350_000)
        return kernel

    return build


def main():
    for name, factory in MACHINES:
        model = AbstractHardwareModel.from_machine(factory())
        conforms = model.conforms_to_aisa()
        print(f"\n=== {name} ===")
        print(f"  aISA conformant: {'yes' if conforms else 'NO'}")
        for element in model.unmanaged():
            print(f"    unmanaged state: {element.name}")
        report = prove_time_protection(
            build_on(factory), secrets=[2, 11], observer="Lo"
        )
        print(f"  proof outcome:   {'THEOREM HOLDS' if report.holds else 'FAILS'}")
        for obligation in report.failed_obligations():
            print(f"    failed {obligation.obligation_id}: {obligation.title}")
        for result in report.noninterference:
            if not result.holds:
                print(f"    interference witness: {result.divergence}")
    print(
        "\nOnly the conforming machine yields the theorem; every violation"
        "\nis caught by the matching obligation, exactly as Sect. 5 predicts."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The Figure 1 downgrader: web server -> encryption -> network stack.

The encryption component is *trusted to declassify* ciphertext to the
network stack -- but its execution time depends on the secret (an
algorithmic channel), so the ciphertext's arrival time leaks what the
ciphertext itself must not.  This example runs the full three-stage
pipeline and shows Lo's arrival timestamps:

* unpadded IPC: inter-arrival times differ by exactly the secret-dependent
  crypto time -- the secret is in the timing;
* padded IPC (Cock et al.): the kernel hands over to the network stack at
  sender-slice-start + min-exec, a designer-chosen constant above the
  crypto WCET -- the arrivals are identical for every secret.
"""

from repro import Kernel, TimeProtectionConfig, presets
from repro.workloads import encryption_engine, network_stack, web_server

# The designer-chosen release point, measured from the sender's slice
# start: it must bound everything that can precede the call in a slice --
# request production, the receive, the crypto itself (including cold-cache
# first runs).  Too small a value is exactly a padding-insufficiency bug,
# and the proof layer's PO-5 analogue for IPC is "delivery == release
# point for every message", which this example prints.
CRYPTO_WCET = 28_000
SECRET_SETS = {"low secrets": [1, 2, 1], "high secrets": [9, 14, 11]}


def run_pipeline(secrets, padded):
    machine = presets.tiny_machine()
    tp = TimeProtectionConfig.full(padded_ipc=padded)
    kernel = Kernel(machine, tp)
    hi = kernel.create_domain("Hi", n_colours=2, slice_cycles=40_000)
    lo = kernel.create_domain("Lo", n_colours=2, slice_cycles=8_000)
    to_crypto = kernel.create_endpoint("to_crypto")
    to_network = kernel.create_endpoint(
        "to_network", min_exec_cycles=CRYPTO_WCET, receiver_domain=lo
    )
    kernel.create_thread(
        hi,
        web_server,
        params={
            "endpoint_id": to_crypto.endpoint_id,
            "secrets": secrets,
            "request_gap": 25_000,
        },
    )
    kernel.create_thread(
        hi,
        encryption_engine,
        params={
            "in_endpoint_id": to_crypto.endpoint_id,
            "out_endpoint_id": to_network.endpoint_id,
            "messages": len(secrets),
            "cycles_per_unit": 600,  # the algorithmic channel
            "base_cycles": 2_000,
        },
    )
    arrivals = []
    kernel.create_thread(
        lo,
        network_stack,
        params={
            "in_endpoint_id": to_network.endpoint_id,
            "arrivals": arrivals,
            "messages": len(secrets),
        },
    )
    kernel.set_schedule(0, [(hi, None), (lo, None)])
    kernel.run(max_cycles=4_000_000)
    return arrivals


def main():
    for padded in (False, True):
        mode = "padded IPC delivery" if padded else "unpadded IPC"
        print(f"\n=== {mode} ===")
        baseline = None
        for label, secrets in SECRET_SETS.items():
            arrivals = run_pipeline(secrets, padded)
            print(f"  {label:13s} -> network-stack arrival times: {arrivals}")
            if baseline is None:
                baseline = arrivals
            elif arrivals == baseline:
                print("                 identical to the other secret set: no leak")
            else:
                deltas = [a - b for a, b in zip(arrivals, baseline)]
                print(f"                 differs from the other secret set by {deltas}")
    print(
        "\nThe padded channel releases every ciphertext at a pre-determined"
        "\ntime (sender slice start + crypto WCET): the timing says nothing."
    )


if __name__ == "__main__":
    main()

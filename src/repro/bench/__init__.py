"""Perf-regression harness: named bench scenarios plus a recorded baseline.

The simulator's throughput is a first-class property of this repo (the
ROADMAP's "runs as fast as the hardware allows"), so regressions must be
caught the same way behavioural regressions are: against recorded
evidence.  ``repro.bench`` provides

* :mod:`repro.bench.scenarios` -- named, deterministic workloads that
  exercise the hot paths the E2/E3/E4/E5 benchmarks measure, each
  returning the number of simulated kernel steps it executed so results
  are reported as ns per simulated step;
* :mod:`repro.bench.baseline` -- record/compare machinery around
  ``benchmarks/BENCH_<host>.json`` (median ns/op per bench plus a
  tolerance band), driven by ``repro-tp bench [--record|--compare]``.

This package deliberately lives outside the ``hardware``/``kernel``/
``core``/``campaign`` statcheck scopes: measuring host wall-clock time
is its entire job, which SC-2 rightly forbids everywhere the simulated
world is in charge.
"""

from .baseline import (
    BaselineFile,
    BenchResult,
    CompareReport,
    compare_results,
    default_baseline_path,
    load_baseline,
    run_benches,
    write_baseline,
)
from .scenarios import SCENARIOS, Scenario

__all__ = [
    "BaselineFile",
    "BenchResult",
    "CompareReport",
    "SCENARIOS",
    "Scenario",
    "compare_results",
    "default_baseline_path",
    "load_baseline",
    "run_benches",
    "write_baseline",
]

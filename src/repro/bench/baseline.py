"""Record and compare throughput baselines (``BENCH_<host>.json``).

``record`` runs the named scenarios, takes the median wall-clock time of
``repeats`` runs each (after one warmup), and writes median ns per
simulated step to a per-host JSON file under ``benchmarks/``.  Baselines
are host-specific because wall-clock throughput is: comparing against a
different machine's numbers measures the hardware, not the code.

``compare`` re-runs the scenarios and fails when any bench's ns/op
exceeds ``baseline * (1 + tolerance)``.  The tolerance band is wide by
design (CI machines are noisy); the gate exists to catch order-of-
magnitude regressions -- an accidentally quadratic probe loop, a
debug-logging leak into the hot path -- not 5% drift.
"""

from __future__ import annotations

import json
import platform
import re
import socket
import statistics
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .scenarios import SCENARIOS


@dataclass(frozen=True)
class BenchResult:
    """One scenario's measurement: wall-clock samples over fixed work."""

    name: str
    ops: int
    runs_ns: Sequence[int]
    #: Optional scenario-reported side metrics (e.g. the model checker's
    #: peak frontier size); recorded in the baseline, never compared.
    extra: Optional[Dict[str, float]] = None

    @property
    def median_ns(self) -> int:
        return int(statistics.median(self.runs_ns))

    @property
    def ns_per_op(self) -> float:
        return self.median_ns / self.ops


@dataclass(frozen=True)
class BaselineFile:
    """Parsed ``BENCH_<host>.json`` contents."""

    host: str
    python: str
    repeats: int
    benches: Dict[str, Dict[str, float]]

    @classmethod
    def from_dict(cls, payload: dict) -> "BaselineFile":
        return cls(
            host=payload.get("host", "?"),
            python=payload.get("python", "?"),
            repeats=int(payload.get("repeats", 0)),
            benches=dict(payload.get("benches", {})),
        )


@dataclass
class CompareReport:
    """Per-bench ratios of a fresh run against a recorded baseline."""

    tolerance: float
    rows: List[dict] = field(default_factory=list)

    def add(self, name: str, result: BenchResult, base: Optional[dict]) -> None:
        if base is None:
            self.rows.append({
                "bench": name,
                "ns_per_op": result.ns_per_op,
                "baseline_ns_per_op": None,
                "ratio": None,
                "status": "new",
            })
            return
        ratio = result.ns_per_op / base["ns_per_op"]
        status = "ok" if ratio <= 1.0 + self.tolerance else "regression"
        self.rows.append({
            "bench": name,
            "ns_per_op": result.ns_per_op,
            "baseline_ns_per_op": base["ns_per_op"],
            "ratio": ratio,
            "status": status,
        })

    @property
    def regressions(self) -> List[dict]:
        return [row for row in self.rows if row["status"] == "regression"]

    @property
    def passed(self) -> bool:
        return not self.regressions

    def format(self) -> str:
        lines = [
            f"{'bench':<22} {'ns/op':>12} {'baseline':>12} "
            f"{'ratio':>7}  status"
        ]
        for row in self.rows:
            base = row["baseline_ns_per_op"]
            ratio = row["ratio"]
            # Benches absent from the baseline (status "new") have no
            # numbers to show; render placeholders instead of crashing.
            base_text = "-" if base is None else format(base, ".1f")
            ratio_text = "-" if ratio is None else format(ratio, ".2f")
            lines.append(
                f"{row['bench']:<22} {row['ns_per_op']:>12.1f} "
                f"{base_text:>12} {ratio_text:>7}  {row['status']}"
            )
        verdict = "PASS" if self.passed else (
            f"FAIL ({len(self.regressions)} bench(es) over "
            f"{(1 + self.tolerance):.2f}x baseline)"
        )
        lines.append(verdict)
        return "\n".join(lines)


def sanitized_host() -> str:
    """Hostname reduced to a filename-safe token."""
    host = socket.gethostname().split(".")[0] or "unknown"
    return re.sub(r"[^A-Za-z0-9_-]", "-", host)


def default_baseline_path(directory: Path, host: Optional[str] = None) -> Path:
    return directory / f"BENCH_{host or sanitized_host()}.json"


def run_benches(
    names: Optional[Sequence[str]] = None,
    repeats: int = 3,
    warmup: int = 1,
) -> List[BenchResult]:
    """Run scenarios by name (all when ``names`` is None), timed."""
    selected = list(names) if names else sorted(SCENARIOS)
    unknown = [name for name in selected if name not in SCENARIOS]
    if unknown:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown bench(es) {unknown}; known: {known}")
    results = []
    for name in selected:
        scenario = SCENARIOS[name]
        for _ in range(warmup):
            scenario.run()
        ops = 0
        extra: Optional[Dict[str, float]] = None
        runs_ns = []
        for _ in range(max(1, repeats)):
            start = time.perf_counter_ns()
            outcome = scenario.run()
            runs_ns.append(time.perf_counter_ns() - start)
            # A scenario returns its op count, optionally with a dict of
            # side metrics to carry into the baseline record.
            if isinstance(outcome, tuple):
                ops, extra = outcome
            else:
                ops = outcome
        if ops <= 0:
            raise RuntimeError(f"bench {name!r} reported no simulated steps")
        results.append(BenchResult(
            name=name, ops=ops, runs_ns=tuple(runs_ns), extra=extra))
    return results


def write_baseline(
    results: Sequence[BenchResult],
    path: Path,
    repeats: int,
) -> dict:
    payload = {
        "version": 1,
        "host": sanitized_host(),
        "python": platform.python_version(),
        "repeats": repeats,
        "benches": {
            result.name: {
                "ops": result.ops,
                "median_ns": result.median_ns,
                "ns_per_op": round(result.ns_per_op, 2),
                **({"extra": dict(result.extra)} if result.extra else {}),
            }
            for result in results
        },
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def load_baseline(path: Path) -> BaselineFile:
    return BaselineFile.from_dict(json.loads(path.read_text()))


def compare_results(
    results: Sequence[BenchResult],
    baseline: BaselineFile,
    tolerance: float,
) -> CompareReport:
    report = CompareReport(tolerance=tolerance)
    for result in results:
        report.add(result.name, result, baseline.benches.get(result.name))
    return report

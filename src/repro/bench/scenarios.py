"""Named, deterministic bench workloads over the real experiment code.

Each scenario calls the *actual* attack experiment functions (the same
entry points the campaign engine and ``benchmarks/bench_*`` drive), with
fixed symbols/rounds so the simulated work is identical run to run, and
returns the total number of simulated kernel steps executed.  The bench
engine divides host wall-clock time by that count, so results read as
"host nanoseconds per simulated instruction step" -- a unit that stays
comparable when scenario parameters change.

Step counting rides on the experiments' ``on_kernel`` hook rather than a
re-implementation of their setup, so a bench always measures exactly the
code path the experiment suite exercises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from ..attacks import flushreload, primeprobe, switch_latency
from ..hardware import presets
from ..kernel.kernel import Kernel
from ..kernel.timeprotect import TimeProtectionConfig


@dataclass(frozen=True)
class Scenario:
    """One bench workload: ``run()`` returns the op count, optionally
    paired with a dict of side metrics for the baseline record."""

    name: str
    description: str
    run: Callable[[], object]


class _StepCounter:
    """Accumulates ``kernel.total_steps`` across an experiment's runs."""

    def __init__(self) -> None:
        self.steps = 0

    def __call__(self, kernel: Kernel) -> None:
        self.steps += kernel.total_steps


def _both_tp_configs() -> Tuple[TimeProtectionConfig, TimeProtectionConfig]:
    # Every scenario runs the channel open *and* defended: the unprotected
    # run stresses the cache/TLB hot loops, the protected run additionally
    # stresses the switch path (flush + pad + clone bookkeeping).
    return (TimeProtectionConfig.none(), TimeProtectionConfig.full())


def _run_e2_l1_primeprobe() -> int:
    counter = _StepCounter()
    for tp in _both_tp_configs():
        primeprobe.l1_experiment(
            tp,
            presets.tiny_machine,
            symbols=(2, 4),
            rounds_per_run=5,
            on_kernel=counter,
        )
    return counter.steps


def _run_e3_llc_primeprobe() -> int:
    counter = _StepCounter()
    for tp in _both_tp_configs():
        primeprobe.llc_experiment(
            tp,
            lambda: presets.tiny_machine(n_cores=2),
            symbols=(1, 3),
            rounds_per_run=5,
            on_kernel=counter,
        )
    return counter.steps


def _run_e4_flushreload() -> int:
    counter = _StepCounter()
    for tp in _both_tp_configs():
        flushreload.experiment(
            tp,
            presets.tiny_machine,
            rounds_per_run=5,
            sweep_rounds=1,
            on_kernel=counter,
        )
    return counter.steps


def _run_mc(machine: str):
    # The checker's throughput unit is explored product states: one
    # "op" = one deduplicated state (two kernels snapshot-stepped in
    # lockstep plus a canonical fingerprint), so ns/op inverts to the
    # states/second figure E14 reports.  tp=full on two secrets is the
    # exhaustive-PASS path, so the bench covers the whole frontier
    # machinery with no early violation exit.  Peak frontier size rides
    # along as a side metric (memory high-water mark in states).
    from ..mc import McSpec, ModelChecker

    spec = McSpec.for_machine(machine, "full", secrets=(0, 1))
    report = ModelChecker(spec).run()
    return report.stats.states_visited, {
        "peak_frontier": report.stats.peak_frontier,
        "max_depth": report.stats.max_depth,
    }


def _run_mc_micro():
    return _run_mc("micro")


def _run_mc_tiny():
    return _run_mc("tiny")


def _run_mc_tiny_por():
    # POR lever benchmark.  The default specs raise a single IRQ line,
    # where the symmetric-line reduction is the identity; three lines
    # make it real.  Runs POR-on as the measured work and POR-off as the
    # reference, asserting identical verdicts -- the reduction ratio
    # (states explored without POR / with POR) rides along so a soundness
    # or pruning regression shows up in the bench diff.
    from ..mc import McOptions, McSpec, ModelChecker

    spec = McSpec.for_machine(
        "tiny", "full", secrets=(0, 1), irq_lines=(1, 2, 3)
    )
    report = ModelChecker(spec).run()
    reference = ModelChecker(spec, options=McOptions(por=False)).run()
    assert report.passed == reference.passed
    assert report.exhaustive == reference.exhaustive
    visited = report.stats.states_visited
    return visited, {
        "por_pruned": report.stats.por_pruned,
        "states_without_por": reference.stats.states_visited,
        "reduction_ratio": round(
            reference.stats.states_visited / max(1, visited), 3
        ),
    }


def _run_mc_depth():
    # Depth scaling: two IRQ injections per path multiply the reachable
    # interleavings (~7x the states of the budget-1 run on micro), so
    # this scenario tracks how per-state cost holds up as the frontier
    # and path lengths grow -- the regime the incremental fingerprints
    # and prefix-cached trace checks exist for.
    from ..mc import McSpec, ModelChecker

    spec = McSpec.for_machine("micro", "full", secrets=(0, 1), irq_budget=2)
    report = ModelChecker(spec).run()
    return report.stats.states_visited, {
        "max_depth": report.stats.max_depth,
        "peak_frontier": report.stats.peak_frontier,
    }


def _run_mc_batch_expand():
    # Batched frontier expansion through the vectorized lockstep engine,
    # on an uncoloured config (the batch path records no instrumentation
    # touches, so it is gated off when the partition audit needs them).
    # The scalar run is the reference; verdict and state count must
    # match exactly.
    from ..mc import McOptions, McSpec, ModelChecker

    spec = McSpec.for_machine("tiny", "no-colour", secrets=(0, 1))
    report = ModelChecker(
        spec, options=McOptions(batch_expand=True)
    ).run()
    reference = ModelChecker(spec).run()
    assert report.passed == reference.passed
    assert report.stats.states_visited == reference.stats.states_visited
    return report.stats.states_visited, {
        "max_depth": report.stats.max_depth,
        "passed": report.passed,
    }


def _run_synth_generation():
    # E14/E15 synthesis throughput: one seeded evolutionary generation
    # (initial population + one mutate-and-select round) on tiny with TP
    # off.  The unit is simulated kernel steps, counted through the same
    # ``on_kernel`` hook as the attack benches, so ns/op stays comparable
    # across scenarios; evaluations/generation rides along as a side
    # metric.  Fixed seed => fixed genomes => fixed simulated work.
    from ..synth import ChannelGuessEnv, EvolutionSearch, SearchConfig

    counter = _StepCounter()
    env = ChannelGuessEnv(
        machine="tiny", tp="none", victim="set_hammer",
        rounds_per_run=4, sweep_rounds=1,
    )

    def counting_evaluator(genomes):
        return [env.evaluate(genome, on_kernel=counter) for genome in genomes]

    config = SearchConfig(generations=1, population=6, elite=2)
    report = EvolutionSearch(
        env, config, seed=0, evaluator=counting_evaluator
    ).run()
    return counter.steps, {"evaluations": report.evaluations}


def _run_statcheck_lint():
    """Full static-conformance run (SC-1..SC-4) over ``src/repro``.

    Lint sits on the CI fast lane gating every other job, so its
    wall-time is a tracked budget like any hot path; ops = files
    analyzed, so ns_per_op reads as per-file analysis cost.
    """
    from pathlib import Path

    from ..statcheck.runner import run_lint

    src = Path(__file__).resolve().parents[2]
    baseline = src.parent / "statcheck.baseline.json"
    report = run_lint(
        [str(src / "repro")],
        baseline_path=str(baseline) if baseline.exists() else None,
    )
    return report.files_analyzed, {
        "findings": float(len(report.findings)),
        "checkers": float(len(report.checkers_run)),
    }


def _run_batch_step() -> int:
    # The lockstep engine as a batch of one: the same e2 workload as
    # ``e2_l1_primeprobe``, with every machine routed through
    # repro.hardware.batch via the engine override.  The ratio of this
    # bench to ``e2_l1_primeprobe`` is the batch engine's per-step tax
    # before amortization across lanes.
    from ..hardware.machine import engine_override

    counter = _StepCounter()
    with engine_override("batch"):
        for tp in _both_tp_configs():
            primeprobe.l1_experiment(
                tp,
                presets.tiny_machine,
                symbols=(2, 4),
                rounds_per_run=5,
                on_kernel=counter,
            )
    return counter.steps


def _run_batch_secret_swap():
    # The batched sweep's reason to exist: N-secret noninterference on
    # the e2 prime+probe workload, run once as a scalar loop (2(N-1)
    # full runs) and once as a single N-lane lockstep batch.  The
    # scenario *asserts* the two verdict lists are identical -- a
    # regression here fails the bench, not just the tests -- and reports
    # the measured speedup as a side metric.  Ops counts the simulated
    # steps of both sides, so ns/op stays comparable across scenarios.
    import time

    from ..core.noninterference import batched_secret_sweep, sweep_secrets

    rounds = 3
    hi_slice = 4000
    n_lanes = 64
    counter = _StepCounter()
    geometry = presets.tiny_config().l1d_geometry
    lo_slice = max(12000, geometry.sets * geometry.ways * 80)
    max_cycles = rounds * 60 * lo_slice
    tp = TimeProtectionConfig.full()

    def build(secret: int) -> Kernel:
        machine = presets.tiny_machine()
        kernel = Kernel(machine, tp)
        hi = kernel.create_domain("Hi", n_colours=2, slice_cycles=hi_slice)
        lo = kernel.create_domain("Lo", n_colours=2, slice_cycles=lo_slice)
        kernel.create_thread(
            hi, primeprobe.l1_trojan, params={"symbol": secret},
            data_pages=geometry.ways,
        )
        results = []
        kernel.create_thread(
            lo, primeprobe.l1_spy,
            params={
                "l1_sets": geometry.sets,
                "prime_pages": geometry.ways,
                "results": results,
                "rounds": rounds,
                "sleep_cycles": lo_slice + hi_slice // 2,
            },
            data_pages=geometry.ways,
        )
        kernel.set_schedule(0, [(hi, None), (lo, None)])
        return kernel

    def build_and_run(secret: int) -> Kernel:
        kernel = build(secret)
        kernel.run(max_cycles=max_cycles)
        counter(kernel)
        return kernel

    secrets = [secret % geometry.sets for secret in range(n_lanes)]
    scalar_started = time.perf_counter()
    scalar = sweep_secrets(build_and_run, secrets, "Lo")
    batched_started = time.perf_counter()
    batched = batched_secret_sweep(
        build, secrets, "Lo", max_cycles, on_kernel=counter
    )
    batched_elapsed = time.perf_counter() - batched_started
    scalar_elapsed = batched_started - scalar_started
    if [str(r) for r in scalar] != [str(r) for r in batched]:
        raise RuntimeError(
            "batched secret sweep diverged from the scalar loop"
        )
    return counter.steps, {
        "lanes": float(n_lanes),
        "scalar_s": round(scalar_elapsed, 3),
        "batched_s": round(batched_elapsed, 3),
        "speedup_vs_scalar": round(scalar_elapsed / batched_elapsed, 2),
    }


#: Lazily-built store fixture shared across ``campaign_store`` repeats.
_STORE_FIXTURE: Dict[str, Tuple[str, str, int]] = {}


def _campaign_store_fixture(n_records: int = 100_000) -> Tuple[str, str, int]:
    """A 100k-record JSONL store plus its sqlite migration, built once."""
    if "paths" not in _STORE_FIXTURE:
        import json
        import os
        import tempfile

        from ..campaign.store_sqlite import migrate_store

        directory = tempfile.mkdtemp(prefix="bench_campaign_store_")
        jsonl_path = os.path.join(directory, "store.jsonl")
        with open(jsonl_path, "w", encoding="utf-8") as handle:
            for i in range(n_records):
                # Shaped like a genuine run_trial record: the result
                # payload (samples + stats) dominates the line, exactly
                # as it does in a real sweep's store.
                record = {
                    "key": f"machine=tiny/tp=full/attack=e5/seed={i}",
                    "machine": "tiny",
                    "tp": "full",
                    "attack": "e5",
                    "seed": i,
                    "params": {},
                    "instrumentation": "full",
                    "engine": "scalar",
                    "derived_seed": (i * 2654435761) % (1 << 32),
                    "attempts": 1,
                    "worker": {"pid": 4242, "host": "bench"},
                    "status": "ok" if i % 8 else "failed",
                    "result": {
                        "name": "e5",
                        "tp_label": "full",
                        "samples": [[s % 4, (s * i) % 4] for s in range(24)],
                        "stats": {
                            "n_samples": 24,
                            "capacity_bits": 0.0,
                            "mutual_information_bits": 0.0,
                            "accuracy": 0.25,
                            "noise_floor_bits": 0.021,
                        },
                        "metadata": {"symbols": [1, 8], "rounds_per_run": 6},
                    },
                    "error": None,
                    "wall_time_s": 0.5,
                }
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        sqlite_path = os.path.join(directory, "store.sqlite")
        migrate_store(jsonl_path, sqlite_path)
        _STORE_FIXTURE["paths"] = (jsonl_path, sqlite_path, n_records)
    return _STORE_FIXTURE["paths"]


def _run_campaign_store():
    # The resume-check hot path at sweep scale: ``completed_keys()`` on
    # a fresh store handle (so neither backend serves from a warm
    # instance cache).  The JSONL side pays a whole-file parse; the
    # sqlite side is an index lookup.  The ISSUE acceptance bar -- the
    # indexed lookup at least 10x faster at 100k records -- rides along
    # as the ``speedup_sqlite_vs_jsonl`` side metric.
    import time

    from ..campaign.store import ResultStore
    from ..campaign.store_sqlite import SqliteResultStore

    jsonl_path, sqlite_path, n_records = _campaign_store_fixture()
    started = time.perf_counter()
    jsonl_keys = ResultStore(jsonl_path).completed_keys()
    jsonl_elapsed = time.perf_counter() - started
    started = time.perf_counter()
    sqlite_keys = SqliteResultStore(sqlite_path).completed_keys()
    sqlite_elapsed = time.perf_counter() - started
    if jsonl_keys != sqlite_keys:
        raise RuntimeError(
            "sqlite and JSONL resume sets diverged on the bench fixture"
        )
    return n_records, {
        "records": float(n_records),
        "completed_keys": float(len(jsonl_keys)),
        "jsonl_scan_ms": round(jsonl_elapsed * 1e3, 3),
        "sqlite_lookup_ms": round(sqlite_elapsed * 1e3, 3),
        "speedup_sqlite_vs_jsonl": round(jsonl_elapsed / sqlite_elapsed, 1),
    }


def _run_e5_switch_latency() -> int:
    counter = _StepCounter()
    for tp in _both_tp_configs():
        switch_latency.experiment(
            tp,
            presets.tiny_machine,
            symbols=(1, 8),
            rounds_per_run=6,
            on_kernel=counter,
        )
    return counter.steps


SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            "e2_l1_primeprobe",
            "time-shared L1 prime-and-probe on tiny, tp none+full",
            _run_e2_l1_primeprobe,
        ),
        Scenario(
            "e3_llc_primeprobe",
            "concurrent LLC prime-and-probe on 2-core tiny, tp none+full",
            _run_e3_llc_primeprobe,
        ),
        Scenario(
            "e4_flushreload",
            "kernel-text flush+reload on tiny, tp none+full",
            _run_e4_flushreload,
        ),
        Scenario(
            "e5_switch_latency",
            "dirty-line switch-latency channel on tiny, tp none+full",
            _run_e5_switch_latency,
        ),
        Scenario(
            "batch_step",
            "lockstep engine as a batch of one on the e2 workload",
            _run_batch_step,
        ),
        Scenario(
            "batch_secret_swap",
            "64-secret noninterference sweep, scalar loop vs one lockstep "
            "batch (asserts identical verdicts)",
            _run_batch_secret_swap,
        ),
        Scenario(
            "synth_generation",
            "one evolutionary generation of attack synthesis on tiny, tp none",
            _run_synth_generation,
        ),
        Scenario(
            "mc_micro",
            "exhaustive product-state model check on micro, tp full",
            _run_mc_micro,
        ),
        Scenario(
            "mc_tiny",
            "exhaustive product-state model check on tiny, tp full",
            _run_mc_tiny,
        ),
        Scenario(
            "mc_tiny_por",
            "3-IRQ-line model check on tiny with POR on vs off "
            "(asserts identical verdicts; reports reduction ratio)",
            _run_mc_tiny_por,
        ),
        Scenario(
            "mc_depth",
            "deeper model check on micro with two IRQ injections per path",
            _run_mc_depth,
        ),
        Scenario(
            "mc_batch_expand",
            "batched frontier expansion on uncoloured tiny vs the scalar "
            "explorer (asserts identical verdict and state count)",
            _run_mc_batch_expand,
        ),
        Scenario(
            "campaign_store",
            "resume-check lookup on a 100k-record store: JSONL whole-file "
            "scan vs sqlite indexed completed_keys (asserts identical sets)",
            _run_campaign_store,
        ),
        Scenario(
            "statcheck_lint",
            "full SC-1..SC-4 static conformance run over src/repro",
            _run_statcheck_lint,
        ),
    )
}

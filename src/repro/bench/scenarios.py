"""Named, deterministic bench workloads over the real experiment code.

Each scenario calls the *actual* attack experiment functions (the same
entry points the campaign engine and ``benchmarks/bench_*`` drive), with
fixed symbols/rounds so the simulated work is identical run to run, and
returns the total number of simulated kernel steps executed.  The bench
engine divides host wall-clock time by that count, so results read as
"host nanoseconds per simulated instruction step" -- a unit that stays
comparable when scenario parameters change.

Step counting rides on the experiments' ``on_kernel`` hook rather than a
re-implementation of their setup, so a bench always measures exactly the
code path the experiment suite exercises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from ..attacks import flushreload, primeprobe, switch_latency
from ..hardware import presets
from ..kernel.kernel import Kernel
from ..kernel.timeprotect import TimeProtectionConfig


@dataclass(frozen=True)
class Scenario:
    """One bench workload: ``run()`` returns the op count, optionally
    paired with a dict of side metrics for the baseline record."""

    name: str
    description: str
    run: Callable[[], object]


class _StepCounter:
    """Accumulates ``kernel.total_steps`` across an experiment's runs."""

    def __init__(self) -> None:
        self.steps = 0

    def __call__(self, kernel: Kernel) -> None:
        self.steps += kernel.total_steps


def _both_tp_configs() -> Tuple[TimeProtectionConfig, TimeProtectionConfig]:
    # Every scenario runs the channel open *and* defended: the unprotected
    # run stresses the cache/TLB hot loops, the protected run additionally
    # stresses the switch path (flush + pad + clone bookkeeping).
    return (TimeProtectionConfig.none(), TimeProtectionConfig.full())


def _run_e2_l1_primeprobe() -> int:
    counter = _StepCounter()
    for tp in _both_tp_configs():
        primeprobe.l1_experiment(
            tp,
            presets.tiny_machine,
            symbols=(2, 4),
            rounds_per_run=5,
            on_kernel=counter,
        )
    return counter.steps


def _run_e3_llc_primeprobe() -> int:
    counter = _StepCounter()
    for tp in _both_tp_configs():
        primeprobe.llc_experiment(
            tp,
            lambda: presets.tiny_machine(n_cores=2),
            symbols=(1, 3),
            rounds_per_run=5,
            on_kernel=counter,
        )
    return counter.steps


def _run_e4_flushreload() -> int:
    counter = _StepCounter()
    for tp in _both_tp_configs():
        flushreload.experiment(
            tp,
            presets.tiny_machine,
            rounds_per_run=5,
            sweep_rounds=1,
            on_kernel=counter,
        )
    return counter.steps


def _run_mc(machine: str):
    # The checker's throughput unit is explored product states: one
    # "op" = one deduplicated state (two kernels snapshot-stepped in
    # lockstep plus a canonical fingerprint), so ns/op inverts to the
    # states/second figure E14 reports.  tp=full on two secrets is the
    # exhaustive-PASS path, so the bench covers the whole frontier
    # machinery with no early violation exit.  Peak frontier size rides
    # along as a side metric (memory high-water mark in states).
    from ..mc import McSpec, ModelChecker

    spec = McSpec.for_machine(machine, "full", secrets=(0, 1))
    report = ModelChecker(spec).run()
    return report.stats.states_visited, {
        "peak_frontier": report.stats.peak_frontier,
        "max_depth": report.stats.max_depth,
    }


def _run_mc_micro():
    return _run_mc("micro")


def _run_mc_tiny():
    return _run_mc("tiny")


def _run_synth_generation():
    # E14/E15 synthesis throughput: one seeded evolutionary generation
    # (initial population + one mutate-and-select round) on tiny with TP
    # off.  The unit is simulated kernel steps, counted through the same
    # ``on_kernel`` hook as the attack benches, so ns/op stays comparable
    # across scenarios; evaluations/generation rides along as a side
    # metric.  Fixed seed => fixed genomes => fixed simulated work.
    from ..synth import ChannelGuessEnv, EvolutionSearch, SearchConfig

    counter = _StepCounter()
    env = ChannelGuessEnv(
        machine="tiny", tp="none", victim="set_hammer",
        rounds_per_run=4, sweep_rounds=1,
    )

    def counting_evaluator(genomes):
        return [env.evaluate(genome, on_kernel=counter) for genome in genomes]

    config = SearchConfig(generations=1, population=6, elite=2)
    report = EvolutionSearch(
        env, config, seed=0, evaluator=counting_evaluator
    ).run()
    return counter.steps, {"evaluations": report.evaluations}


def _run_statcheck_lint():
    """Full static-conformance run (SC-1..SC-4) over ``src/repro``.

    Lint sits on the CI fast lane gating every other job, so its
    wall-time is a tracked budget like any hot path; ops = files
    analyzed, so ns_per_op reads as per-file analysis cost.
    """
    from pathlib import Path

    from ..statcheck.runner import run_lint

    src = Path(__file__).resolve().parents[2]
    baseline = src.parent / "statcheck.baseline.json"
    report = run_lint(
        [str(src / "repro")],
        baseline_path=str(baseline) if baseline.exists() else None,
    )
    return report.files_analyzed, {
        "findings": float(len(report.findings)),
        "checkers": float(len(report.checkers_run)),
    }


def _run_e5_switch_latency() -> int:
    counter = _StepCounter()
    for tp in _both_tp_configs():
        switch_latency.experiment(
            tp,
            presets.tiny_machine,
            symbols=(1, 8),
            rounds_per_run=6,
            on_kernel=counter,
        )
    return counter.steps


SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            "e2_l1_primeprobe",
            "time-shared L1 prime-and-probe on tiny, tp none+full",
            _run_e2_l1_primeprobe,
        ),
        Scenario(
            "e3_llc_primeprobe",
            "concurrent LLC prime-and-probe on 2-core tiny, tp none+full",
            _run_e3_llc_primeprobe,
        ),
        Scenario(
            "e4_flushreload",
            "kernel-text flush+reload on tiny, tp none+full",
            _run_e4_flushreload,
        ),
        Scenario(
            "e5_switch_latency",
            "dirty-line switch-latency channel on tiny, tp none+full",
            _run_e5_switch_latency,
        ),
        Scenario(
            "synth_generation",
            "one evolutionary generation of attack synthesis on tiny, tp none",
            _run_synth_generation,
        ),
        Scenario(
            "mc_micro",
            "exhaustive product-state model check on micro, tp full",
            _run_mc_micro,
        ),
        Scenario(
            "mc_tiny",
            "exhaustive product-state model check on tiny, tp full",
            _run_mc_tiny,
        ),
        Scenario(
            "statcheck_lint",
            "full SC-1..SC-4 static conformance run over src/repro",
            _run_statcheck_lint,
        ),
    )
}

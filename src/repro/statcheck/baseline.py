"""Baseline (suppression) handling for the static conformance lints.

A baseline entry acknowledges a finding as *intentional* -- e.g. the
campaign layer legitimately reads the host wall clock for operational
metadata that never feeds simulated results.  Every suppression must
carry a non-empty justification: an unexplained suppression is exactly
the "unverified assumption" this layer exists to eliminate, so it is a
configuration error (exit code 2), not a warning.

Keys are line-number-free -- ``checker:module:qualname:rule``, with
``*`` allowed in the qualname position -- so baselines survive
unrelated edits to the flagged file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple

from .findings import Finding


class BaselineError(Exception):
    """Malformed baseline file: the runner maps this to exit code 2."""


class Baseline:
    def __init__(self, suppressions: Dict[str, str], path: str = ""):
        self.suppressions = suppressions
        self.path = path
        self._used: set = set()
        #: The parsed file payload, kept verbatim so ``--prune-baseline``
        #: can rewrite the file without touching live entries, comments,
        #: or any extra top-level keys.
        self.raw: dict = {"version": 1, "suppressions": []}

    @classmethod
    def empty(cls) -> "Baseline":
        return cls({}, path="")

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except OSError as error:
            raise BaselineError(f"cannot read baseline {path}: {error}")
        except json.JSONDecodeError as error:
            raise BaselineError(f"baseline {path} is not valid JSON: {error}")
        if not isinstance(raw, dict) or not isinstance(
            raw.get("suppressions", []), list
        ):
            raise BaselineError(
                f"baseline {path} must be an object with a 'suppressions' list"
            )
        suppressions: Dict[str, str] = {}
        for i, entry in enumerate(raw.get("suppressions", [])):
            if not isinstance(entry, dict) or "key" not in entry:
                raise BaselineError(
                    f"baseline {path}: suppression #{i} needs a 'key'"
                )
            justification = str(entry.get("justification", "")).strip()
            if not justification:
                raise BaselineError(
                    f"baseline {path}: suppression {entry['key']!r} has no "
                    f"justification -- every intentional finding must say why"
                )
            suppressions[str(entry["key"])] = justification
        baseline = cls(suppressions, path=str(path))
        baseline.raw = raw
        return baseline

    def matches(self, finding: Finding) -> bool:
        exact = finding.suppression_key
        wildcard = (
            f"{finding.checker}:{finding.module}:*:{finding.rule}"
        )
        for key in (exact, wildcard):
            if key in self.suppressions:
                self._used.add(key)
                return True
        return False

    def apply(
        self, findings: List[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Split findings into (kept, suppressed)."""
        kept, suppressed = [], []
        for finding in findings:
            (suppressed if self.matches(finding) else kept).append(finding)
        return kept, suppressed

    def stale_keys(self) -> List[str]:
        """Suppressions that matched nothing (candidates for removal)."""
        return sorted(set(self.suppressions) - self._used)

    def pruned_payload(self) -> dict:
        """The file payload with stale suppressions removed.

        Only valid after :meth:`apply` has run (staleness is defined
        against the findings of that run).  Live entries are preserved
        verbatim, justifications and all.
        """
        stale = set(self.stale_keys())
        payload = dict(self.raw)
        payload["suppressions"] = [
            entry for entry in self.raw.get("suppressions", [])
            if str(entry.get("key")) not in stale
        ]
        return payload

    def prune(self) -> List[str]:
        """Rewrite the baseline file without stale entries.

        Returns the pruned keys (empty list means the file was already
        tight and is left untouched).
        """
        stale = self.stale_keys()
        if not stale or not self.path:
            return []
        Path(self.path).write_text(
            json.dumps(self.pruned_payload(), indent=2) + "\n",
            encoding="utf-8",
        )
        return stale

"""Static conformance analysis for the proof substrate.

The runtime proof engine (``repro.core``) argues over an abstract
hardware model whose clock is a deterministic function of *declared*
state: every microarchitectural read in ``repro.hardware`` must flow
through the ``touch()`` instrumentation, and the whole simulator/kernel/
checker stack must be strictly deterministic, or the two-run secret-swap
bisimulation proves nothing.  Nothing at runtime can notice a read that
was never instrumented -- that is a property of the *source*, so this
package audits the source.  Four checkers, named like the runtime proof
obligations they statically back:

SC-1  footprint completeness: in ``repro.hardware``, any function on a
      latency-bearing path (reachable from ``Core.execute_user`` or an
      element's ``access``/``flush`` via an intra-package call graph)
      that reads a registered state container without ``touch()``
      coverage is an undeclared timing dependence (static PO-1/PO-7).
SC-2  determinism: wall-clock reads, entropy sources, unseeded global
      RNG draws, ``id()``/``hash()`` used for ordering, and unordered
      set iteration feeding ordering-sensitive sinks are forbidden in
      ``repro.{hardware,kernel,core,campaign}`` (static Case-2a).
SC-3  registry completeness: every ``StateElement`` subclass must be
      constructed with instrumentation and visible to
      ``Machine.all_state_elements()`` / the ``absmodel`` extraction,
      so no element can exist in a preset yet be invisible to the
      abstract model (static PO-1).
SC-4  secret information flow: interprocedural taint from Hi secrets
      (``secret*`` parameters, ``params["secret"|"symbol"|"bit"]``
      reads) must not reach a Lo-observable sink (trace appends,
      Lo-record construction, returned latencies) except through a
      sanctioned conduit -- ISA micro-ops and ``touch()``-instrumented
      element accesses (static noninterference; the routing property
      every other assurance layer assumes).

Everything here is stdlib ``ast``; analyzed code is parsed, never
imported.
"""

from .baseline import Baseline, BaselineError
from .findings import CHECKERS, Finding, to_obligation_results
from .runner import LintReport, StatcheckError, render_json, render_text, run_lint
from .taint import check_taint

__all__ = [
    "Baseline",
    "BaselineError",
    "CHECKERS",
    "check_taint",
    "Finding",
    "LintReport",
    "StatcheckError",
    "render_json",
    "render_text",
    "run_lint",
    "to_obligation_results",
]

"""Per-function flow model for SC-4: units, scopes, and call binding.

The taint checker analyzes *units* -- every top-level function and
method in the universe, plus every nested ``def`` (closures like the
attacks' ``run_once``) as its own unit.  This module owns the purely
syntactic machinery: unit enumeration, scope-respecting statement
walks, parameter lists, call-argument binding against a resolved
callee, and the backward "sink-reaching names" analysis the implicit-
flow rule (R2) needs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .universe import FunctionInfo, Universe

FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass
class Unit:
    """One analysis unit: a function, method, or nested ``def``."""

    module: str
    path: str
    qualname: str
    name: str
    node: ast.AST
    class_name: Optional[str] = None
    #: Enclosing FunctionInfo used for call resolution (``self.m()``
    #: dispatch needs the owning class even inside a nested def).
    resolver: Optional[FunctionInfo] = None
    params: List[str] = field(default_factory=list)

    @property
    def key(self) -> Tuple[str, str]:
        return (self.module, self.qualname)


def param_names(node: ast.AST) -> List[str]:
    args = node.args
    names = [a.arg for a in args.posonlyargs]
    names += [a.arg for a in args.args]
    if args.vararg:
        names.append(args.vararg.arg)
    names += [a.arg for a in args.kwonlyargs]
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


def iter_units(universe: Universe) -> Iterator[Unit]:
    """Every function/method plus nested defs, each as its own unit."""
    for func in universe.functions.values():
        yield from _units_of(func, func.node, func.qualname)


def _units_of(
    func: FunctionInfo, node: ast.AST, qualname: str
) -> Iterator[Unit]:
    yield Unit(
        module=func.module,
        path=func.path,
        qualname=qualname,
        name=node.name,
        node=node,
        class_name=func.class_name if qualname == func.qualname else None,
        resolver=func,
        params=param_names(node),
    )
    # scope_statements records nested defs without descending into them,
    # so each is seen exactly once here; recursion handles its children.
    for stmt in scope_statements(node):
        if isinstance(stmt, FunctionNode):
            yield from _units_of(func, stmt, f"{qualname}.{stmt.name}")


def scope_statements(node: ast.AST) -> List[ast.stmt]:
    """All statements in ``node``'s own scope, flattened.

    Descends through compound statements (if/for/while/try/with) but
    *not* into nested function or class definitions -- those are
    separate units (or out of scope entirely).
    """
    out: List[ast.stmt] = []
    stack: List[ast.stmt] = list(node.body)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, FunctionNode + (ast.ClassDef,)):
            out.append(stmt)  # recorded, but not descended into
            continue
        out.append(stmt)
        for fname in ("body", "orelse", "finalbody", "handlers", "cases"):
            for child in getattr(stmt, fname, []) or []:
                if isinstance(child, ast.stmt):
                    stack.append(child)
                elif hasattr(child, "body"):  # ExceptHandler, match_case
                    stack.extend(child.body)
    return out


def names_read(expr: Optional[ast.AST]) -> Set[str]:
    """All plain names loaded anywhere inside ``expr``."""
    if expr is None:
        return set()
    return {
        sub.id for sub in ast.walk(expr)
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load)
    }


def target_names(target: ast.expr) -> Set[str]:
    """Plain names bound by an assignment target (incl. tuple unpack).

    ``x[k] = v`` counts as a write to ``x``; attribute targets bind no
    plain name (cross-attribute flow is a documented approximation).
    """
    out: Set[str] = set()
    for sub in ast.walk(target):
        if isinstance(sub, ast.Name) and isinstance(
            sub.ctx, (ast.Store, ast.Del)
        ):
            out.add(sub.id)
        elif isinstance(sub, ast.Subscript) and isinstance(
            sub.ctx, ast.Store
        ):
            out |= names_read(sub.value)
    return out


def trailing_name(expr: ast.expr) -> Optional[str]:
    """Last dotted segment of a name/attribute chain, else None."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def assignments(stmts: List[ast.stmt]) -> List[Tuple[Set[str], Set[str]]]:
    """``(targets, reads)`` pairs for every assignment in the scope."""
    out: List[Tuple[Set[str], Set[str]]] = []
    for stmt in stmts:
        if isinstance(stmt, ast.Assign):
            targets: Set[str] = set()
            for t in stmt.targets:
                targets |= target_names(t)
            out.append((targets, names_read(stmt.value)))
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            out.append((target_names(stmt.target), names_read(stmt.value)))
        elif isinstance(stmt, ast.AugAssign):
            out.append((
                target_names(stmt.target),
                names_read(stmt.value) | names_read(stmt.target),
            ))
        elif isinstance(stmt, ast.For):
            out.append((target_names(stmt.target), names_read(stmt.iter)))
        elif isinstance(stmt, (ast.If, ast.While)):
            # ``x := ...`` in a test binds in the enclosing scope.
            for sub in ast.walk(stmt.test):
                if isinstance(sub, ast.NamedExpr):
                    out.append((
                        target_names(sub.target), names_read(sub.value)
                    ))
    return out


def propagate_sink_reaching(
    seeds: Set[str], edges: List[Tuple[Set[str], Set[str]]]
) -> Set[str]:
    """Backward closure: a name is sink-reaching if writing it can
    influence a seed (a name read at an actual sink position)."""
    reaching = set(seeds)
    changed = True
    while changed:
        changed = False
        for targets, reads in edges:
            if targets & reaching and not reads <= reaching:
                reaching |= reads
                changed = True
    return reaching


def bind_call_args(
    callee: FunctionInfo, call: ast.Call, method_call: bool
) -> List[Tuple[str, ast.expr]]:
    """Bind call-site argument expressions to ``callee`` parameter names.

    ``method_call`` skips the implicit ``self``/``cls`` slot (attribute
    calls and constructor calls resolved to ``__init__``).  Starred and
    ``**`` arguments are ignored -- an over-approximation elsewhere, but
    here the unbound taint is simply handled by the caller's fallback
    rules.
    """
    node = callee.node
    args = node.args
    positional = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    if method_call and positional and positional[0] in ("self", "cls"):
        positional = positional[1:]
    bound: List[Tuple[str, ast.expr]] = []
    index = 0
    for arg in call.args:
        if isinstance(arg, ast.Starred):
            continue
        if index < len(positional):
            bound.append((positional[index], arg))
        elif args.vararg is not None:
            bound.append((args.vararg.arg, arg))
        index += 1
    valid = set(positional) | {a.arg for a in args.kwonlyargs}
    for kw in call.keywords:
        if kw.arg is None:  # **kwargs at the call site
            continue
        if kw.arg in valid:
            bound.append((kw.arg, kw.value))
        elif args.kwarg is not None:
            bound.append((args.kwarg.arg, kw.value))
    return bound

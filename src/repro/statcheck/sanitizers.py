"""The SC-4 policy tables: sources, sinks, sanctioned conduits.

The paper's reduction (Sect. 5.1-5.2) is sound only if every Hi->Lo
information flow routes through a *declared* microarchitectural state
element -- because those are exactly the flows the aISA contract, the
flush/pad/colour mechanisms, and the runtime obligations govern.  SC-4
enforces that routing property syntactically; this module is the single
place where its policy lives:

* **Sources** -- where secrets enter: parameters named ``secret*`` and
  reads of ``*.params["secret"|"symbol"|"bit"]`` (the keys under which
  victims, trojans and the secret-swap harness carry Hi data).
* **Sinks** -- where Lo can look: appends to observation/trace/evidence
  accumulators, construction of the Lo-visible record types
  (``SwitchRecord``, ``ChannelResult``, ...), and latencies returned
  from element entry points.
* **Sanitizers** -- the sanctioned conduits: ISA micro-op constructors
  (executed by ``Core.execute_user``, whose state reads SC-1 proves are
  ``touch()``-instrumented) and calls that resolve to ``touch()``-ing
  functions or registered-element methods.  Taint that crosses one of
  these *has* routed through declared state, which is precisely the
  property being checked -- so it is absorbed, and any residual channel
  is SC-1/PO-1's jurisdiction, not SC-4's.
* **Declassifiers** -- explicit, justified endorsements of flows that
  are Hi->Lo only to the *analyst*, not to the modelled Lo observer.

Keeping the tables here (rather than inline in the checker) makes the
policy reviewable the same way ``statcheck.baseline.json`` is: every
exemption is enumerable and carries its reason.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from .universe import FunctionInfo

#: Parameters with this prefix carry Hi data by convention everywhere in
#: the repo (``secret``, ``secret_a``, ``secret_b``, ``secrets``...).
SECRET_PARAM_PREFIX = "secret"

#: ``ProgramContext.params`` keys under which programs receive Hi data:
#: victims read ``params["symbol"]``/``params["secret"]``, trojans read
#: ``params["bit"]``.
SECRET_PARAM_KEYS: FrozenSet[str] = frozenset({"secret", "symbol", "bit"})

#: ISA micro-op constructors (``repro.hardware.isa``).  A secret folded
#: into a micro-op operand is *the sanctioned channel*: the op executes
#: under ``Core.execute_user``, every state read it causes is
#: ``touch()``-instrumented (proved by SC-1), so the flow traverses a
#: registered element by construction.
ISA_OP_CTORS: FrozenSet[str] = frozenset({
    "Access", "Compute", "Branch", "ReadTime", "FlushLine", "Syscall",
    "Halt",
})

#: Accumulator names that are Lo-observable when written: observation
#: traces, latency lists, evidence/record stores, and the projections
#: built by ``lo_projection``.  Name-based on purpose -- the repo's
#: convention is strong, and a new Lo-visible accumulator *should* have
#: to either use one of these names or extend this table in review.
SINK_CONTAINER_NAMES: FrozenSet[str] = frozenset({
    "trace", "traces", "lo_trace", "observations", "samples", "evidence",
    "projections", "records", "switch_records", "results", "latencies",
})

#: Lo-visible record constructors: their fields are exactly what the
#: observer-side analyses read.
SINK_CTOR_NAMES: FrozenSet[str] = frozenset({
    "SwitchRecord", "ChannelResult", "ObservationRecord", "Observation",
})

#: Element entry points whose *return value* is a Lo-visible latency.
#: Only applied to methods of ``StateElement`` subclasses that do not
#: themselves touch -- a touching method has already routed the
#: dependence through the instrumentation.
SINK_RETURN_METHODS: FrozenSet[str] = frozenset({
    "access", "execute", "execute_user", "step", "cached_access",
})

#: Container write methods through which values reach a sink container.
MUTATOR_METHODS: FrozenSet[str] = frozenset({
    "append", "extend", "insert", "add",
})

#: Explicit declassifications: (module, qualname, parameter) triples
#: whose incoming taint is endorsed, each with its justification.  These
#: are policy, not waivers -- a flow that is Hi->Lo only in the
#: analyst's frame (ground-truth labels, not modelled observations)
#: does not violate the routing property.
DECLASSIFIED_PARAMS: Dict[Tuple[str, str, str], str] = {
    ("repro.attacks.harness", "run_symbol_sweep", "symbols"): (
        "the swept symbol is the experimenter's ground-truth label for "
        "each round, paired with the observation to *measure* the "
        "channel; the modelled Lo observer never sees it -- only the "
        "observation column is Lo-visible"
    ),
}


def is_secret_param(name: str) -> bool:
    return name.startswith(SECRET_PARAM_PREFIX)


def is_declassified(module: str, qualname: str, param: str) -> bool:
    return (module, qualname, param) in DECLASSIFIED_PARAMS


def is_sanitizing_callee(
    callee: FunctionInfo, element_class_names: FrozenSet[str]
) -> bool:
    """Does a call resolving to ``callee`` absorb taint?

    True for ``touch``/``_touch`` themselves, for any function whose
    body touches, and for registered-element methods: a flow through
    any of these has, by SC-1, traversed instrumented state.
    """
    if callee.name in ("touch", "_touch"):
        return True
    if callee.touches:
        return True
    return callee.class_name is not None and (
        callee.class_name in element_class_names
    )

"""A lightweight intra-package call graph over the analyzed universe.

Python has no static dispatch, so edges are heuristic and deliberately
*over*-approximate reachability: a method call ``x.access(...)`` links
to every in-universe method named ``access``.  Over-approximation is
the sound direction for SC-1 -- it can only put extra functions on the
latency path, never hide one.  To keep the graph from drowning in
spurious edges, calls whose attribute name is a builtin container/str
method (``.get``, ``.append``, ``.items``, ...) are never resolved.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from .universe import ClassInfo, FunctionInfo, Universe

FuncKey = Tuple[str, str]  # (module, qualname)

#: Attribute names that are (almost always) builtin container / str /
#: stdlib-object methods, never user code worth an edge.
_BUILTIN_METHOD_NAMES = frozenset({
    # list / dict / set
    "append", "extend", "insert", "remove", "pop", "clear", "index",
    "count", "sort", "reverse", "copy", "get", "items", "keys", "values",
    "setdefault", "update", "popitem", "fromkeys", "add", "discard",
    "union", "intersection", "difference", "symmetric_difference",
    "issubset", "issuperset", "isdisjoint",
    # str / bytes
    "split", "rsplit", "join", "strip", "lstrip", "rstrip", "startswith",
    "endswith", "format", "replace", "lower", "upper", "encode", "decode",
    "partition", "rpartition", "ljust", "rjust", "zfill", "find", "rfind",
    "title", "capitalize", "casefold", "splitlines",
    # int / misc
    "bit_length", "to_bytes", "from_bytes",
})


def _owning_class(universe: Universe, func: FunctionInfo) -> ClassInfo:
    for cls in universe.classes_by_name.get(func.class_name or "", []):
        if cls.module == func.module:
            return cls
    # Fall back to any same-named class (fixture trees).
    classes = universe.classes_by_name.get(func.class_name or "", [])
    return classes[0] if classes else None


def _resolve_call(
    universe: Universe, func: FunctionInfo, call: ast.Call
) -> List[FunctionInfo]:
    target = call.func
    if isinstance(target, ast.Name):
        name = target.id
        # Constructor call -> the class's __init__ (if any).
        for cls in universe.classes_by_name.get(name, []):
            init = cls.methods.get("__init__")
            return [init] if init else []
        return universe.module_functions_by_name.get(name, [])
    if isinstance(target, ast.Attribute):
        attr = target.attr
        if attr in _BUILTIN_METHOD_NAMES:
            return []
        if isinstance(target.value, ast.Name) and target.value.id == "self":
            # self.m(): resolve within the owning class hierarchy only.
            cls = _owning_class(universe, func)
            if cls is not None:
                for ancestor in universe.class_ancestry(cls):
                    if attr in ancestor.methods:
                        return [ancestor.methods[attr]]
            return []
        # x.m(): every in-universe method named m.
        return universe.methods_by_name.get(attr, [])
    return []


def build_call_graph(universe: Universe) -> Dict[FuncKey, Set[FuncKey]]:
    """Callee edges for every function in the universe."""
    graph: Dict[FuncKey, Set[FuncKey]] = {}
    for func in universe.functions.values():
        edges: Set[FuncKey] = set()
        for node in ast.walk(func.node):
            if isinstance(node, ast.Call):
                for callee in _resolve_call(universe, func, node):
                    if callee.key != func.key:
                        edges.add(callee.key)
        graph[func.key] = edges
    return graph

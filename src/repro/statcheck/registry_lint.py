"""SC-3: every ``StateElement`` must be registered and extractable.

PO-1 (complete management) is checked at runtime over whatever
``Machine.all_state_elements()`` returns -- so an element that a machine
*constructs* but never *enumerates* is silently outside the proof: it
accumulates history, is never flushed or partitioned, and PO-1 still
passes.  This checker closes that loophole statically:

``uninstrumented-construction``  a ``StateElement`` subclass constructed
    without an ``instrumentation=`` argument records no touches at all.
``unregistered-element``  a ``StateElement`` subclass that no machine
    module ever constructs -- dead state the presets cannot exercise.
``unenumerated-element``  an element bound in a machine's ``__init__``
    (``self.llc = Cache(...)``, or a ``dict(l1i=..., ...)`` handed to a
    core) whose binding name never appears in ``all_state_elements()``
    or a provider method it calls (``Core.private_elements``).
``blind-extraction``  the abstract-model extraction
    (``AbstractHardwareModel.from_machine``) does not call
    ``machine.all_state_elements()`` -- the static side of "the proof
    examines the hardware it actually got".

The checker is structural (it keys on a base class *named*
``StateElement`` and classes defining ``all_state_elements``), so
fixture trees exercise it without importing ``repro.hardware``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from .findings import Finding
from .universe import ClassInfo, Universe


def _call_class_name(node: ast.Call) -> Optional[str]:
    """Class name for ``Cache(...)`` or ``cache.Cache(...)`` calls."""
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _has_instrumentation_kwarg(node: ast.Call) -> bool:
    for kw in node.keywords:
        if kw.arg == "instrumentation" or kw.arg is None:  # **kwargs
            return True
    return False


def _element_factory_methods(
    cls: ClassInfo, element_names: Set[str]
) -> Set[str]:
    """Methods of ``cls`` that return a StateElement construction."""
    factories = set()
    for method in cls.methods.values():
        for node in ast.walk(method.node):
            if (isinstance(node, ast.Return)
                    and isinstance(node.value, ast.Call)
                    and _call_class_name(node.value) in element_names):
                factories.add(method.name)
                break
    return factories


def _is_element_construction(
    node: ast.expr, element_names: Set[str], factories: Set[str]
) -> bool:
    if not isinstance(node, ast.Call):
        return False
    if _call_class_name(node) in element_names:
        return True
    # self._build_cache(...) style factory helpers.
    return (isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
            and node.func.attr in factories)


def _bindings_in_init(
    cls: ClassInfo, element_names: Set[str], factories: Set[str]
) -> List[Tuple[str, int]]:
    """(name, lineno) for every element bound during ``__init__``."""
    init = cls.methods.get("__init__")
    if init is None:
        return []
    bindings: List[Tuple[str, int]] = []

    def is_element(node: ast.expr) -> bool:
        return _is_element_construction(node, element_names, factories)

    for node in ast.walk(init.node):
        # self.X = Element(...)
        if isinstance(node, ast.Assign) and is_element(node.value):
            for target in node.targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    bindings.append((target.attr, node.lineno))
        # dict(l1i=Element(...), ...) and Core(..., l1i=Element(...))
        if isinstance(node, ast.Call):
            for kw in node.keywords:
                if kw.arg is not None and is_element(kw.value):
                    bindings.append((kw.arg, kw.value.lineno))
        # {"l1i": Element(...), ...}
        if isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if (isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                        and is_element(value)):
                    bindings.append((key.value, value.lineno))
    return bindings


def _enumerated_names(cls: ClassInfo, universe: Universe) -> Set[str]:
    """Attr names visible to ``all_state_elements`` (incl. providers)."""
    enumerate_method = cls.methods.get("all_state_elements")
    if enumerate_method is None:
        return set()
    names: Set[str] = set()
    provider_methods: Set[str] = set()
    for node in ast.walk(enumerate_method.node):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            names.add(node.attr)
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            provider_methods.add(node.func.attr)
    # A provider method (e.g. Core.private_elements) contributes the
    # self-attributes its body mentions, on whichever class defines it.
    for provider in provider_methods:
        for method in universe.methods_by_name.get(provider, []):
            for node in ast.walk(method.node):
                if (isinstance(node, ast.Attribute)
                        and isinstance(node.value, ast.Name)
                        and node.value.id == "self"):
                    names.add(node.attr)
    return names


def check_registry(
    universe: Universe, scope_modules: Set[str]
) -> List[Finding]:
    element_classes = universe.element_classes()
    element_names = {cls.name for cls in element_classes}
    if not element_names:
        return []
    findings: List[Finding] = []
    constructed: Set[str] = set()

    in_scope = [m for m in universe.modules if m.modname in scope_modules]

    # -- constructions: instrumentation required, coverage recorded --------
    for module in in_scope:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_class_name(node)
            if name not in element_names:
                continue
            # Ignore the class's own definition module constructing
            # nothing: this IS a construction site.
            constructed.add(name)
            if not _has_instrumentation_kwarg(node):
                findings.append(Finding(
                    checker="SC-3",
                    rule="uninstrumented-construction",
                    path=module.path,
                    lineno=node.lineno,
                    module=module.modname,
                    qualname=name,
                    message=(
                        f"{name}(...) constructed without an "
                        f"instrumentation= argument: its touches are "
                        f"never recorded, so PO-2/PO-7 cannot see it"
                    ),
                ))

    # -- every element class must be constructed somewhere in scope --------
    scope_element_classes = [
        cls for cls in element_classes if cls.module in scope_modules
    ]
    for cls in scope_element_classes:
        if cls.name not in constructed:
            findings.append(Finding(
                checker="SC-3",
                rule="unregistered-element",
                path=cls.path,
                lineno=cls.lineno,
                module=cls.module,
                qualname=cls.name,
                message=(
                    f"StateElement subclass {cls.name} is never "
                    f"constructed by any machine/preset in scope: no "
                    f"preset can exercise it and no proof can see it"
                ),
            ))

    # -- machine classes: bound elements must be enumerated ----------------
    for module in in_scope:
        for cls in module.classes.values():
            if "all_state_elements" not in cls.methods:
                continue
            factories = _element_factory_methods(cls, element_names)
            enumerated = _enumerated_names(cls, universe)
            for binding, lineno in _bindings_in_init(
                cls, element_names, factories
            ):
                if binding not in enumerated:
                    findings.append(Finding(
                        checker="SC-3",
                        rule="unenumerated-element",
                        path=cls.path,
                        lineno=lineno,
                        module=cls.module,
                        qualname=f"{cls.name}.__init__",
                        message=(
                            f"element bound as {binding!r} is invisible "
                            f"to {cls.name}.all_state_elements(): it "
                            f"holds microarchitectural history outside "
                            f"the abstract model (PO-1 blind spot)"
                        ),
                    ))

    # -- the extraction must consume the enumeration -----------------------
    findings.extend(_check_extraction(universe))
    return findings


def _check_extraction(universe: Universe) -> List[Finding]:
    """``from_machine`` (where present) must call ``all_state_elements``."""
    findings = []
    for func in universe.methods_by_name.get("from_machine", []):
        calls_enumeration = any(
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "all_state_elements"
            for node in ast.walk(func.node)
        )
        if not calls_enumeration:
            findings.append(Finding(
                checker="SC-3",
                rule="blind-extraction",
                path=func.path,
                lineno=func.lineno,
                module=func.module,
                qualname=func.qualname,
                message=(
                    "abstract-model extraction does not call "
                    "machine.all_state_elements(); the proof would not "
                    "examine the hardware it actually got"
                ),
            ))
    return findings

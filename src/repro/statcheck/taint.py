"""SC-4: interprocedural secret-taint checker (static noninterference).

Proves, at the source level, that every Hi->Lo information flow routes
through a registered ``StateElement`` -- the precondition under which
the runtime obligations (PO-1/PO-7), SC-1, and the model checker are
sound.  A secret that reaches a Lo-observable sink *without* crossing a
sanctioned conduit is a finding:

* **R1 ``direct-flow``** -- a tainted value reaches a sink (trace
  append, Lo-record construction, returned latency) directly.
* **R2 ``implicit-flow``** -- a secret-dependent branch writes to a
  sink-reaching location, so the *choice* leaks even if no tainted
  value does.

The analysis is a forward taint pass per unit (function/method/nested
def) over origin-label sets, made interprocedural by function summaries
(``param -> return``, ``param -> sink``, ``returns source``) iterated
to a global fixpoint on the heuristic call graph.  Policy -- what is a
source, a sink, a sanitizer, a declassifier -- lives in
:mod:`repro.statcheck.sanitizers`.

Soundness posture: like the rest of statcheck this is AST-level and
heuristic.  It over-approximates call targets (callgraph) but
under-approximates some flows by design (see DESIGN.md 2.3c for the
caveat table): no closure capture, no cross-method ``self`` attribute
flow, calls through callable parameters and unresolved attributes
absorb argument taint, and loop-bound implicit flows are not tracked.
The mutation self-tests pin the flows it must catch.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .callgraph import _BUILTIN_METHOD_NAMES, _resolve_call
from .findings import Finding
from .flowgraph import (
    Unit,
    assignments,
    bind_call_args,
    iter_units,
    names_read,
    propagate_sink_reaching,
    scope_statements,
    trailing_name,
)
from .sanitizers import (
    ISA_OP_CTORS,
    MUTATOR_METHODS,
    SECRET_PARAM_KEYS,
    SINK_CONTAINER_NAMES,
    SINK_CTOR_NAMES,
    SINK_RETURN_METHODS,
    is_declassified,
    is_sanitizing_callee,
    is_secret_param,
)
from .universe import Universe

#: The origin label for a secret read in this very unit; parameter
#: origins are ``"param:<name>"``.
SOURCE = "<source>"

_MAX_UNIT_PASSES = 8
_MAX_GLOBAL_PASSES = 12


@dataclass
class Summary:
    """What a unit does with taint, as seen from its callers."""

    param_to_return: Set[str] = field(default_factory=set)
    param_to_sink: Dict[str, str] = field(default_factory=dict)
    returns_source: bool = False

    def signature(self) -> Tuple:
        return (
            frozenset(self.param_to_return),
            frozenset(self.param_to_sink),
            self.returns_source,
        )


@dataclass
class _SinkHit:
    origins: Set[str]
    lineno: int
    description: str


class _UnitAnalysis:
    """One forward taint pass over a unit (monotone; run to fixpoint)."""

    def __init__(self, unit: Unit, checker: "TaintChecker"):
        self.unit = unit
        self.checker = checker
        self.env: Dict[str, Set[str]] = {}
        self.self_attrs: Dict[str, Set[str]] = {}
        self.ret: Set[str] = set()
        self.hits: List[_SinkHit] = []
        self.implicit: List[Finding] = []
        self.sink_reaching: Set[str] = set()
        self.report = False
        for param in unit.params:
            if param in ("self", "cls"):
                continue
            origins: Set[str] = {f"param:{param}"}
            if is_secret_param(param) and not is_declassified(
                unit.module, unit.qualname, param
            ):
                origins.add(SOURCE)
            if is_declassified(unit.module, unit.qualname, param):
                origins = set()
            self.env[param] = origins

    # -- driving -------------------------------------------------------

    def run(self, report: bool) -> None:
        self.report = False
        for _ in range(_MAX_UNIT_PASSES):
            before = self._state_signature()
            self.hits = []
            self.exec_stmts(list(self.unit.node.body))
            if self._state_signature() == before:
                break
        if report:
            # One extra pass with reporting on, against the stable state.
            self.report = True
            self.sink_reaching = self._compute_sink_reaching()
            self.hits = []
            self.implicit = []
            self.exec_stmts(list(self.unit.node.body))

    def _state_signature(self) -> Tuple:
        return (
            tuple(sorted((k, frozenset(v)) for k, v in self.env.items())),
            tuple(sorted(
                (k, frozenset(v)) for k, v in self.self_attrs.items()
            )),
            frozenset(self.ret),
            tuple(sorted(
                (frozenset(h.origins), h.lineno) for h in self.hits
            )),
        )

    def summary(self) -> Summary:
        out = Summary()
        out.param_to_return = {
            p for p in self.unit.params
            if f"param:{p}" in self.ret
        }
        out.returns_source = SOURCE in self.ret
        for hit in self.hits:
            for origin in hit.origins:
                if origin.startswith("param:"):
                    out.param_to_sink.setdefault(
                        origin[len("param:"):], hit.description
                    )
        return out

    def findings(self) -> List[Finding]:
        found = [
            Finding(
                checker="SC-4",
                rule="direct-flow",
                path=self.unit.path,
                lineno=hit.lineno,
                module=self.unit.module,
                qualname=self.unit.qualname,
                message=(
                    f"secret-tainted value reaches Lo-observable sink "
                    f"({hit.description}) without traversing a "
                    f"registered state element"
                ),
            )
            for hit in self.hits
            if SOURCE in hit.origins
        ]
        found.extend(self.implicit)
        return found

    # -- statements ----------------------------------------------------

    def exec_stmts(self, stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            origins = self.eval(stmt.value)
            for target in stmt.targets:
                self.assign(target, origins)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.assign(stmt.target, self.eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            # ``eval`` dispatches on node shape, not ctx, so evaluating
            # the store target reads its current taint.
            origins = self.eval(stmt.value) | self.eval(stmt.target)
            self.assign(stmt.target, origins)
        elif isinstance(stmt, ast.For):
            self.assign(stmt.target, self.eval(stmt.iter))
            self.exec_stmts(stmt.body)
            self.exec_stmts(stmt.orelse)
        elif isinstance(stmt, (ast.If, ast.While)):
            test_origins = self.eval(stmt.test)
            if self.report and SOURCE in test_origins:
                self._check_implicit(stmt)
            self.exec_stmts(stmt.body)
            self.exec_stmts(stmt.orelse)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                origins = self.eval(stmt.value)
                self.ret |= origins
                if self._is_return_sink() and origins:
                    self._sink_hit(
                        origins, stmt.lineno,
                        f"latency returned from "
                        f"{self.unit.qualname} without touch()",
                    )
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                origins = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self.assign(item.optional_vars, origins)
            self.exec_stmts(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.exec_stmts(stmt.body)
            for handler in stmt.handlers:
                self.exec_stmts(handler.body)
            self.exec_stmts(stmt.orelse)
            self.exec_stmts(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.expr):
                    self.eval(sub)
        elif isinstance(stmt, ast.Match):
            self.eval(stmt.subject)
            for case in stmt.cases:
                self.exec_stmts(case.body)
        # Nested defs/classes are separate units; Import/Global/Pass/
        # Break/Continue/Delete carry no taint.

    def assign(self, target: ast.expr, origins: Set[str]) -> None:
        if isinstance(target, ast.Name):
            if origins:
                self.env[target.id] = self.env.get(target.id, set()) | origins
        elif isinstance(target, ast.Attribute):
            if (isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                if origins:
                    self.self_attrs[target.attr] = (
                        self.self_attrs.get(target.attr, set()) | origins
                    )
                if target.attr in SINK_CONTAINER_NAMES and origins:
                    self._sink_hit(
                        origins, target.lineno,
                        f"assignment to self.{target.attr}",
                    )
        elif isinstance(target, ast.Subscript):
            # ``x[k] = v`` poisons the container ``x``.
            self.eval(target.slice)
            base = target.value
            if origins:
                self.assign(base, origins)
            name = trailing_name(base)
            if name in SINK_CONTAINER_NAMES and origins:
                self._sink_hit(
                    origins, target.lineno, f"store into {name}[...]"
                )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self.assign(element, origins)
        elif isinstance(target, ast.Starred):
            self.assign(target.value, origins)

    def _poison(self, target: ast.expr, origins: Set[str]) -> None:
        """Taint the atom behind ``target`` without sink side-effects."""
        if isinstance(target, ast.Name):
            self.env[target.id] = self.env.get(target.id, set()) | origins
        elif isinstance(target, ast.Attribute):
            if (isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                self.self_attrs[target.attr] = (
                    self.self_attrs.get(target.attr, set()) | origins
                )

    # -- expressions ---------------------------------------------------

    def eval(self, expr: Optional[ast.expr]) -> Set[str]:
        if expr is None:
            return set()
        if isinstance(expr, ast.Name):
            return set(self.env.get(expr.id, ()))
        if isinstance(expr, ast.Attribute):
            if (isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"):
                return set(self.self_attrs.get(expr.attr, ()))
            return self.eval(expr.value)
        if isinstance(expr, ast.Subscript):
            if self._is_source_subscript(expr):
                return {SOURCE}
            return self.eval(expr.value) | self.eval(expr.slice)
        if isinstance(expr, ast.Call):
            return self.eval_call(expr)
        if isinstance(expr, ast.BinOp):
            return self.eval(expr.left) | self.eval(expr.right)
        if isinstance(expr, ast.UnaryOp):
            return self.eval(expr.operand)
        if isinstance(expr, ast.BoolOp):
            out: Set[str] = set()
            for value in expr.values:
                out |= self.eval(value)
            return out
        if isinstance(expr, ast.Compare):
            out = self.eval(expr.left)
            for comparator in expr.comparators:
                out |= self.eval(comparator)
            return out
        if isinstance(expr, ast.IfExp):
            return (
                self.eval(expr.test)
                | self.eval(expr.body)
                | self.eval(expr.orelse)
            )
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            out = set()
            for element in expr.elts:
                out |= self.eval(element)
            return out
        if isinstance(expr, ast.Dict):
            out = set()
            for key in expr.keys:
                out |= self.eval(key)
            for value in expr.values:
                out |= self.eval(value)
            return out
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            for gen in expr.generators:
                self.assign(gen.target, self.eval(gen.iter))
            out = self.eval(expr.elt)
            for gen in expr.generators:
                for cond in gen.ifs:
                    out |= self.eval(cond)
            return out
        if isinstance(expr, ast.DictComp):
            for gen in expr.generators:
                self.assign(gen.target, self.eval(gen.iter))
            return self.eval(expr.key) | self.eval(expr.value)
        if isinstance(expr, ast.JoinedStr):
            out = set()
            for value in expr.values:
                if isinstance(value, ast.FormattedValue):
                    out |= self.eval(value.value)
            return out
        if isinstance(expr, ast.NamedExpr):
            origins = self.eval(expr.value)
            self.assign(expr.target, origins)
            return origins
        if isinstance(expr, (ast.Yield, ast.YieldFrom)):
            # Yielded micro-ops are consumed by the execution engine;
            # what comes back from ``send`` is engine data, not the
            # secret (any secret folded into the op was absorbed by the
            # sanctioned ISA constructors).
            if getattr(expr, "value", None) is not None:
                self.eval(expr.value)
            return set()
        if isinstance(expr, ast.Await):
            return self.eval(expr.value)
        if isinstance(expr, ast.Starred):
            return self.eval(expr.value)
        if isinstance(expr, ast.Slice):
            return (
                self.eval(expr.lower)
                | self.eval(expr.upper)
                | self.eval(expr.step)
            )
        if isinstance(expr, ast.Lambda):
            return set()
        return set()

    def _is_source_subscript(self, expr: ast.Subscript) -> bool:
        """``<x>.params["secret"|"symbol"|"bit"]`` reads."""
        return (
            trailing_name(expr.value) == "params"
            and isinstance(expr.slice, ast.Constant)
            and expr.slice.value in SECRET_PARAM_KEYS
        )

    def _is_source_get(self, call: ast.Call) -> bool:
        """``<x>.params.get("secret", ...)`` reads."""
        func = call.func
        return (
            isinstance(func, ast.Attribute)
            and func.attr == "get"
            and trailing_name(func.value) == "params"
            and bool(call.args)
            and isinstance(call.args[0], ast.Constant)
            and call.args[0].value in SECRET_PARAM_KEYS
        )

    # -- calls ---------------------------------------------------------

    def eval_call(self, call: ast.Call) -> Set[str]:
        checker = self.checker
        func = call.func
        arg_union: Set[str] = set()
        for arg in call.args:
            arg_union |= self.eval(arg)
        for kw in call.keywords:
            arg_union |= self.eval(kw.value)

        if isinstance(func, ast.Name):
            name = func.id
            if name in ISA_OP_CTORS:
                return set()  # sanctioned conduit: SC-1 covers execution
            if name in SINK_CTOR_NAMES:
                if arg_union:
                    self._sink_hit(
                        arg_union, call.lineno,
                        f"{name}(...) Lo-record construction",
                    )
                return arg_union
            if name in self.unit.params:
                # Higher-order call through a callable parameter:
                # absorbed (documented caveat).
                return set()
            callees = _resolve_call(
                checker.universe, self.unit.resolver, call
            )
            if callees:
                return self._eval_resolved(call, callees, method_call=False)
            if name in checker.universe.classes_by_name:
                return arg_union  # dataclass-style ctor: taint the object
            return arg_union  # builtin (len/max/range/...)

        if isinstance(func, ast.Attribute):
            attr = func.attr
            if attr in ("touch", "_touch"):
                self.eval(func.value)
                return set()
            if self._is_source_get(call):
                return {SOURCE}
            recv = self.eval(func.value)
            if attr in MUTATOR_METHODS:
                # Container write: poison the receiver, check sinks.
                # (_poison, not assign: the sink check below is the one
                # witness for this write -- assign would double-report.)
                if arg_union:
                    self._poison(func.value, arg_union)
                name = trailing_name(func.value)
                if name in SINK_CONTAINER_NAMES and arg_union:
                    self._sink_hit(
                        arg_union, call.lineno, f"{attr} to {name}"
                    )
                return set()
            if attr in _BUILTIN_METHOD_NAMES:
                return recv | arg_union
            callees = _resolve_call(
                checker.universe, self.unit.resolver, call
            )
            if callees:
                return recv | self._eval_resolved(
                    call, callees, method_call=True
                )
            # Unresolved attribute call: argument taint is absorbed
            # (documented caveat -- e.g. ``build_and_run(secret)``
            # behind ``self.``), receiver taint flows through.
            return recv

        # Weird callee expression (subscripted table of callables, ...).
        self.eval(func)
        return arg_union

    def _eval_resolved(
        self, call: ast.Call, callees: List, method_call: bool
    ) -> Set[str]:
        checker = self.checker
        sanitizing = any(
            is_sanitizing_callee(c, checker.element_class_names)
            for c in callees
        )
        if sanitizing:
            return set()
        result: Set[str] = set()
        for callee in callees:
            summary = checker.summaries.get(
                callee.key, checker.empty_summary
            )
            if summary.returns_source:
                result.add(SOURCE)
            is_ctor = callee.name == "__init__"
            for param, arg_expr in bind_call_args(
                callee, call, method_call or is_ctor
            ):
                if is_declassified(callee.module, callee.qualname, param):
                    continue
                origins = self.eval(arg_expr)
                if not origins:
                    continue
                if param in summary.param_to_return or is_ctor:
                    result |= origins
                if param in summary.param_to_sink:
                    self._sink_hit(
                        origins, call.lineno,
                        f"argument {param!r} reaches sink in "
                        f"{callee.module}.{callee.qualname} "
                        f"({summary.param_to_sink[param]})",
                    )
        return result

    # -- sinks ---------------------------------------------------------

    def _is_return_sink(self) -> bool:
        unit = self.unit
        return (
            unit.class_name is not None
            and unit.class_name in self.checker.element_class_names
            and unit.name in SINK_RETURN_METHODS
            and not self.checker.unit_touches(unit)
        )

    def _sink_hit(
        self, origins: Set[str], lineno: int, description: str
    ) -> None:
        interesting = {
            o for o in origins if o == SOURCE or o.startswith("param:")
        }
        if interesting:
            self.hits.append(_SinkHit(interesting, lineno, description))

    # -- implicit flows (R2) -------------------------------------------

    def _compute_sink_reaching(self) -> Set[str]:
        """Names whose value can influence a sink position in this unit."""
        stmts = scope_statements(self.unit.node)
        seeds: Set[str] = set()
        for stmt in stmts:
            for sub_stmt, expr in _statement_exprs(stmt):
                for node in ast.walk(expr):
                    if isinstance(node, ast.Call):
                        seeds |= self._call_seed_names(node)
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                if self._is_return_sink():
                    seeds |= names_read(stmt.value)
            for targets, value in _sink_named_writes(stmt):
                seeds |= value
        return propagate_sink_reaching(seeds, assignments(stmts))

    def _call_seed_names(self, call: ast.Call) -> Set[str]:
        """Names read at an actual sink position inside ``call``."""
        func = call.func
        arg_names: Set[str] = set()
        for arg in call.args:
            arg_names |= names_read(arg)
        for kw in call.keywords:
            arg_names |= names_read(kw.value)
        if isinstance(func, ast.Name):
            if func.id in SINK_CTOR_NAMES:
                return arg_names
            callees = _resolve_call(
                self.checker.universe, self.unit.resolver, call
            )
            return self._bound_seed_names(call, callees, False)
        if isinstance(func, ast.Attribute):
            if (func.attr in MUTATOR_METHODS
                    and trailing_name(func.value) in SINK_CONTAINER_NAMES):
                return arg_names
            if func.attr in MUTATOR_METHODS | _BUILTIN_METHOD_NAMES:
                return set()
            callees = _resolve_call(
                self.checker.universe, self.unit.resolver, call
            )
            return self._bound_seed_names(call, callees, True)
        return set()

    def _bound_seed_names(
        self, call: ast.Call, callees: List, method_call: bool
    ) -> Set[str]:
        checker = self.checker
        if any(
            is_sanitizing_callee(c, checker.element_class_names)
            for c in callees
        ):
            return set()
        seeds: Set[str] = set()
        for callee in callees:
            summary = checker.summaries.get(
                callee.key, checker.empty_summary
            )
            if not summary.param_to_sink:
                continue
            for param, arg_expr in bind_call_args(
                callee, call, method_call or callee.name == "__init__"
            ):
                if param in summary.param_to_sink:
                    seeds |= names_read(arg_expr)
        return seeds

    def _check_implicit(self, stmt: ast.stmt) -> None:
        """A secret-dependent branch: do its arms write sink-ward?"""
        written: Optional[str] = None
        for arm_stmt in _arm_statements(stmt):
            for targets, _ in _assignment_targets(arm_stmt):
                hit = targets & self.sink_reaching
                if hit:
                    written = f"assigns sink-reaching name {sorted(hit)[0]!r}"
                    break
            if written is None and _writes_sink_directly(arm_stmt):
                written = "writes a Lo-observable sink directly"
            if written:
                break
        if written is None:
            return
        kind = "if" if isinstance(stmt, ast.If) else "while"
        self.implicit.append(Finding(
            checker="SC-4",
            rule="implicit-flow",
            path=self.unit.path,
            lineno=stmt.lineno,
            module=self.unit.module,
            qualname=self.unit.qualname,
            message=(
                f"secret-dependent {kind} at line {stmt.lineno} "
                f"{written}: the branch choice is Lo-visible "
                f"without traversing a registered state element"
            ),
        ))


# -- module-level helpers ----------------------------------------------


def _statement_exprs(stmt: ast.stmt) -> List[Tuple[ast.stmt, ast.expr]]:
    out = []
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.expr):
            out.append((stmt, child))
    return out


def _assignment_targets(stmt: ast.stmt) -> List[Tuple[Set[str], Set[str]]]:
    return assignments([stmt])


def _sink_named_writes(stmt: ast.stmt) -> List[Tuple[Set[str], Set[str]]]:
    """``self.<sink> = value`` / ``<sink>[k] = value`` write positions."""
    out = []
    targets: List[ast.expr] = []
    value: Optional[ast.expr] = None
    if isinstance(stmt, ast.Assign):
        targets, value = stmt.targets, stmt.value
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        targets, value = [stmt.target], stmt.value
    elif isinstance(stmt, ast.AugAssign):
        targets, value = [stmt.target], stmt.value
    if value is None:
        return out
    for target in targets:
        name = None
        if isinstance(target, ast.Attribute):
            name = target.attr
        elif isinstance(target, ast.Subscript):
            name = trailing_name(target.value)
        if name in SINK_CONTAINER_NAMES:
            out.append((set(), names_read(value)))
    return out


def _arm_statements(stmt: ast.stmt) -> List[ast.stmt]:
    """Shallow statements of both arms (not descending nested branches,
    which get their own R2 check when their test is tainted)."""
    return list(stmt.body) + list(stmt.orelse)


def _writes_sink_directly(stmt: ast.stmt) -> bool:
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in SINK_CTOR_NAMES:
                return True
            if (isinstance(func, ast.Attribute)
                    and func.attr in MUTATOR_METHODS
                    and trailing_name(func.value) in SINK_CONTAINER_NAMES):
                return True
        if isinstance(node, ast.Subscript) and isinstance(
            node.ctx, ast.Store
        ):
            if trailing_name(node.value) in SINK_CONTAINER_NAMES:
                return True
        if isinstance(node, ast.Attribute) and isinstance(
            node.ctx, ast.Store
        ):
            if node.attr in SINK_CONTAINER_NAMES:
                return True
    return False


class TaintChecker:
    """Drives the per-unit analyses to a global summary fixpoint."""

    def __init__(self, universe: Universe, scope_modules: Set[str]):
        self.universe = universe
        self.scope_modules = scope_modules
        self.element_class_names: FrozenSet[str] = frozenset(
            cls.name for cls in universe.element_classes()
        )
        self.summaries: Dict[Tuple[str, str], Summary] = {}
        self.empty_summary = Summary()
        self._touch_cache: Dict[Tuple[str, str], bool] = {}
        # Summaries are computed for *every* unit in the universe (a
        # scoped caller may call an unscoped helper); findings are only
        # reported for units in scoped modules.
        self.units: List[Unit] = list(iter_units(universe))

    def unit_touches(self, unit: Unit) -> bool:
        cached = self._touch_cache.get(unit.key)
        if cached is None:
            cached = any(
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in ("touch", "_touch")
                for stmt in scope_statements(unit.node)
                for sub in ast.walk(stmt)
            )
            self._touch_cache[unit.key] = cached
        return cached

    def run(self) -> List[Finding]:
        for _ in range(_MAX_GLOBAL_PASSES):
            changed = False
            for unit in self.units:
                analysis = _UnitAnalysis(unit, self)
                analysis.run(report=False)
                new = analysis.summary()
                old = self.summaries.get(unit.key)
                if old is None or old.signature() != new.signature():
                    self.summaries[unit.key] = new
                    changed = True
            if not changed:
                break
        findings: List[Finding] = []
        for unit in self.units:
            if unit.module not in self.scope_modules:
                continue
            analysis = _UnitAnalysis(unit, self)
            analysis.run(report=True)
            findings.extend(analysis.findings())
        return findings


def check_taint(
    universe: Universe, scope_modules: Set[str]
) -> List[Finding]:
    """Run SC-4 over the universe, reporting within ``scope_modules``."""
    return TaintChecker(universe, scope_modules).run()

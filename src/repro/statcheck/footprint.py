"""SC-1: every latency-path state read must be ``touch()``-covered.

The paper's core reduction (Sect. 5.1) treats instruction latency as a
deterministic function of *declared* microarchitectural state; the
runtime obligations (PO-1/PO-7) audit the declarations recorded by the
``touch()`` instrumentation.  A read of an element's state container on
a latency-bearing path that never flows through ``touch()`` is invisible
to that audit -- a hole no runtime check can see.  This checker closes
the gap statically:

R1 (``undeclared-read``): starting from the latency roots (element
   ``access``/``flush`` methods plus ``execute_user``/``execute``/
   ``step`` methods of classes in scope), walk the call graph tracking
   *coverage*: a function's container reads are covered if its own body
   touches, or an instrumented ancestor on the path does (helpers called
   from an instrumented entry point inherit its declaration -- e.g.
   ``Cache._fill_victim`` under ``Cache.access``).  ``flush`` methods
   are covered by protocol: their latency is declared wholesale via
   ``FlushResult`` and audited dynamically by PO-3/PO-5.  Audit-only
   accessors (``probe``, ``resident_tags``, ``fingerprint``...) are not
   reachable from the roots and are deliberately exempt.

R2 (``raw-state-access``): outside the element's own methods, reading a
   private state container directly (``llc._sets``) bypasses the
   instrumentation boundary entirely, wherever it happens -- flagged in
   any module in scope.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from .callgraph import FuncKey, build_call_graph
from .findings import Finding
from .universe import FunctionInfo, Universe

#: Method names that open a latency-bearing path on any class in scope.
ROOT_METHOD_NAMES = frozenset({"execute_user", "execute", "step"})
#: Element methods that are themselves latency roots.
ELEMENT_ROOT_METHODS = frozenset({"access", "flush"})


def _container_reads(
    func: FunctionInfo, containers: Set[str]
) -> List[Tuple[str, int]]:
    """``self.X`` loads in ``func`` where X is a registered container."""
    reads = []
    seen: Set[str] = set()
    for node in ast.walk(func.node):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in containers
                and node.attr not in seen):
            seen.add(node.attr)
            reads.append((node.attr, node.lineno))
    return reads


def _element_context(
    universe: Universe,
) -> Tuple[Dict[str, Set[str]], Set[str]]:
    """Per-class container names (with inherited) and element class names."""
    element_classes = universe.element_classes()
    element_names = {cls.name for cls in element_classes}
    containers_by_class: Dict[str, Set[str]] = {}
    for cls in element_classes:
        names: Set[str] = set()
        for ancestor in universe.class_ancestry(cls):
            names.update(ancestor.containers)
        containers_by_class[cls.name] = names
    return containers_by_class, element_names


def _roots(
    universe: Universe, scope_modules: Set[str], element_names: Set[str]
) -> List[FunctionInfo]:
    roots = []
    for func in universe.functions.values():
        if func.module not in scope_modules or func.class_name is None:
            continue
        if func.name in ROOT_METHOD_NAMES:
            roots.append(func)
        elif (func.name in ELEMENT_ROOT_METHODS
              and func.class_name in element_names):
            roots.append(func)
    return roots


def _is_protocol_covered(func: FunctionInfo, element_names: Set[str]) -> bool:
    """Element methods whose reads are declared by protocol, not touch().

    ``flush()``: latency declared wholesale via ``FlushResult`` and
    audited dynamically by PO-3/PO-5.  ``audit_*``: read-only audit
    accessors (the sanctioned alternative to R2's raw container reads);
    they charge no cycles, so a read inside one is not a timing
    dependence -- the name prefix is the declared contract.
    """
    if func.class_name not in element_names:
        return False
    return func.name == "flush" or func.name.startswith("audit_")


def check_footprint(
    universe: Universe,
    scope_modules: Set[str],
    raw_access_modules: Optional[Set[str]] = None,
) -> List[Finding]:
    """Run SC-1 over ``scope_modules`` (dotted module names).

    ``raw_access_modules`` widens only the R2 raw-read rule (the kernel
    and checkers must also not reach into element internals).
    """
    containers_by_class, element_names = _element_context(universe)
    findings: List[Finding] = []

    # -- R1: uncovered reads on latency-bearing paths ----------------------
    graph = build_call_graph(universe)
    roots = _roots(universe, scope_modules, element_names)
    flagged: Set[Tuple[FuncKey, str]] = set()
    visited: Set[Tuple[FuncKey, bool]] = set()
    queue: deque = deque()
    for root in roots:
        queue.append((root.key, False, root.qualname))
    while queue:
        key, covered_in, root_name = queue.popleft()
        func = universe.functions.get(key)
        if func is None:
            continue
        covered = (covered_in or func.touches
                   or _is_protocol_covered(func, element_names))
        if (key, covered) in visited:
            continue
        visited.add((key, covered))
        if not covered and func.class_name in containers_by_class:
            for attr, lineno in _container_reads(
                func, containers_by_class[func.class_name]
            ):
                if (key, attr) in flagged:
                    continue
                flagged.add((key, attr))
                findings.append(Finding(
                    checker="SC-1",
                    rule="undeclared-read",
                    path=func.path,
                    lineno=lineno,
                    module=func.module,
                    qualname=func.qualname,
                    message=(
                        f"reads state container 'self.{attr}' on a "
                        f"latency-bearing path (reached from {root_name}) "
                        f"with no touch() coverage: this timing dependence "
                        f"is invisible to PO-1/PO-7 evidence"
                    ),
                ))
        for callee in graph.get(key, ()):
            if (callee, covered) not in visited:
                queue.append((callee, covered, root_name))

    # -- R2: raw private-container reads from outside the element ----------
    private_owners: Dict[str, List[str]] = {}
    for cls_name, names in containers_by_class.items():
        for attr in names:
            if attr.startswith("_"):
                private_owners.setdefault(attr, []).append(cls_name)
    r2_scope = scope_modules | (raw_access_modules or set())
    for module in universe.modules:
        if module.modname not in r2_scope:
            continue
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Attribute)
                    and isinstance(node.ctx, ast.Load)
                    and node.attr in private_owners):
                continue
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                continue  # the element's own methods: R1 territory
            owners = "/".join(sorted(private_owners[node.attr]))
            findings.append(Finding(
                checker="SC-1",
                rule="raw-state-access",
                path=module.path,
                lineno=node.lineno,
                module=module.modname,
                qualname=_enclosing_qualname(module.tree, node),
                message=(
                    f"raw read of private state container "
                    f"'{node.attr}' (owned by {owners}) bypasses the "
                    f"touch() instrumentation boundary; use a public "
                    f"audit accessor"
                ),
            ))
    return findings


def _enclosing_qualname(tree: ast.Module, target: ast.AST) -> str:
    """Qualname of the innermost function/class containing ``target``."""
    path: List[str] = []

    def visit(node: ast.AST, names: List[str]) -> bool:
        for child in ast.iter_child_nodes(node):
            child_names = names
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                child_names = names + [child.name]
            if child is target:
                path.extend(child_names)
                return True
            if visit(child, child_names):
                return True
        return False

    visit(tree, [])
    return ".".join(path) if path else "<module>"

"""The findings model: one dataclass, rendered like proof obligations.

A finding is a *static counterexample*: a ``file:line`` witness that one
of the source-level conformance properties fails.  Findings group into
:class:`repro.core.obligations.ObligationResult` records so the lint
report reads like the runtime proof report it backs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..core.obligations import ObligationResult

#: Checker id -> title, in report order.  The titles deliberately echo
#: the runtime obligations each checker statically approximates.
CHECKERS: Dict[str, str] = {
    "SC-1": "every latency-path state read is touch()-instrumented "
            "(static PO-1/PO-7)",
    "SC-2": "simulator/kernel/checker stack is strictly deterministic "
            "(static Case 2a)",
    "SC-3": "every StateElement is registered and visible to the "
            "abstract model (static PO-1)",
    "SC-4": "every Hi->Lo information flow routes through a registered "
            "state element (static noninterference)",
}


@dataclass(frozen=True)
class Finding:
    """One static counterexample.

    ``qualname`` is the enclosing function (``Class.method`` form) or
    ``<module>`` for module-level code; together with the dotted module
    name and the rule it forms the line-number-free suppression key, so
    baselines survive unrelated edits to the flagged file.
    """

    checker: str   # "SC-1" | "SC-2" | "SC-3" | "SC-4"
    rule: str      # e.g. "undeclared-read", "wall-clock"
    path: str      # file path as given to the runner
    lineno: int
    module: str    # dotted module name, e.g. "repro.hardware.cache"
    qualname: str  # "Cache.access", "run_trial", or "<module>"
    message: str

    @property
    def location(self) -> str:
        return f"{self.path}:{self.lineno}"

    @property
    def suppression_key(self) -> str:
        return f"{self.checker}:{self.module}:{self.qualname}:{self.rule}"

    def render(self) -> str:
        return (
            f"{self.location}: [{self.checker}:{self.rule}] "
            f"{self.qualname}: {self.message}"
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "checker": self.checker,
            "rule": self.rule,
            "path": self.path,
            "line": self.lineno,
            "module": self.module,
            "qualname": self.qualname,
            "message": self.message,
            "key": self.suppression_key,
        }


def to_obligation_results(
    findings: Iterable[Finding], checkers_run: Iterable[str]
) -> List[ObligationResult]:
    """Group findings per checker into obligation-style results.

    Checkers that ran and found nothing yield a PASS entry, so a clean
    report still states what was checked.
    """
    by_checker: Dict[str, List[Finding]] = {c: [] for c in checkers_run}
    for finding in findings:
        by_checker.setdefault(finding.checker, []).append(finding)
    results = []
    for checker in sorted(by_checker):
        hits = sorted(by_checker[checker], key=lambda f: (f.path, f.lineno))
        results.append(
            ObligationResult(
                obligation_id=checker,
                title=CHECKERS.get(checker, checker),
                passed=not hits,
                violations=[
                    f"{f.location}: {f.message} [{f.rule}]" for f in hits
                ],
            )
        )
    return results

"""Parse the analyzed files into an indexed universe of modules.

The checkers never import the code under analysis -- they work on a
purely syntactic index built here: modules with derived dotted names,
classes with base-name links, functions with their AST bodies, and the
*state containers* of ``StateElement`` subclasses (the ``self.X``
attributes assigned container-valued expressions in ``__init__``, e.g.
``Cache._sets`` or ``Tlb._entries``).  Those containers are exactly the
state whose reads SC-1 requires to be ``touch()``-covered.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

#: Builtin callables whose result is a container.
_CONTAINER_BUILTINS = frozenset(
    {"list", "dict", "set", "frozenset", "defaultdict", "OrderedDict",
     "deque", "Counter"}
)

#: The root of the element class hierarchy, matched by base *name* so
#: fixture trees can declare their own stand-in base class.
ELEMENT_BASE_NAME = "StateElement"


def _is_container_expr(node: ast.AST) -> bool:
    """Is ``node`` syntactically a container-valued expression?"""
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in _CONTAINER_BUILTINS):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Mult, ast.Add)):
        # [0] * n, [..] + [..]
        return _is_container_expr(node.left) or _is_container_expr(node.right)
    return False


@dataclass
class FunctionInfo:
    """One function or method, with the syntactic facts checkers need."""

    name: str
    qualname: str            # "Cache.access" or "run_trial"
    module: str              # dotted module name
    path: str
    lineno: int
    node: ast.AST            # FunctionDef | AsyncFunctionDef
    class_name: Optional[str] = None
    #: Does the body contain a ``*.touch(...)`` / ``*._touch(...)`` call?
    touches: bool = field(default=False)

    @property
    def key(self) -> Tuple[str, str]:
        return (self.module, self.qualname)


@dataclass
class ClassInfo:
    name: str
    module: str
    path: str
    lineno: int
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)   # base names (last segment)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Container-valued ``self.X`` attributes assigned in ``__init__``.
    containers: Dict[str, int] = field(default_factory=dict)  # attr -> lineno


@dataclass
class ModuleInfo:
    path: str
    modname: str
    tree: ast.Module
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)

    @property
    def segments(self) -> Set[str]:
        return set(self.modname.split("."))


def derive_module_name(path: Path) -> str:
    """Dotted module name, walking up through ``__init__.py`` packages.

    ``src/repro/hardware/cache.py`` -> ``repro.hardware.cache``; a file
    outside any package is just its stem.
    """
    path = path.resolve()
    parts = [] if path.stem == "__init__" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists() and parent != parent.parent:
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts)) or path.stem


def _base_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _has_touch_call(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if (isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in ("touch", "_touch")):
            return True
    return False


def _collect_containers(init: ast.AST) -> Dict[str, int]:
    """``self.X = <container literal/call>`` assignments in ``__init__``."""
    containers: Dict[str, int] = {}
    for stmt in ast.walk(init):
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None or not _is_container_expr(value):
            continue
        for target in targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                containers.setdefault(target.attr, target.lineno)
    return containers


def _index_module(path: Path, modname: str, tree: ast.Module) -> ModuleInfo:
    info = ModuleInfo(path=str(path), modname=modname, tree=tree)
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions[node.name] = FunctionInfo(
                name=node.name,
                qualname=node.name,
                module=modname,
                path=str(path),
                lineno=node.lineno,
                node=node,
                touches=_has_touch_call(node),
            )
        elif isinstance(node, ast.ClassDef):
            cls = ClassInfo(
                name=node.name,
                module=modname,
                path=str(path),
                lineno=node.lineno,
                node=node,
                bases=[b for b in map(_base_name, node.bases) if b],
            )
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    cls.methods[item.name] = FunctionInfo(
                        name=item.name,
                        qualname=f"{node.name}.{item.name}",
                        module=modname,
                        path=str(path),
                        lineno=item.lineno,
                        node=item,
                        class_name=node.name,
                        touches=_has_touch_call(item),
                    )
            init = cls.methods.get("__init__")
            if init is not None:
                cls.containers = _collect_containers(init.node)
            info.classes[node.name] = cls
    return info


class Universe:
    """Every analyzed module, plus the cross-module indexes."""

    def __init__(self, modules: List[ModuleInfo]):
        self.modules = modules
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}
        self.methods_by_name: Dict[str, List[FunctionInfo]] = {}
        self.module_functions_by_name: Dict[str, List[FunctionInfo]] = {}
        for module in modules:
            for cls in module.classes.values():
                self.classes_by_name.setdefault(cls.name, []).append(cls)
                for method in cls.methods.values():
                    self.methods_by_name.setdefault(method.name, []).append(method)
            for func in module.functions.values():
                self.module_functions_by_name.setdefault(func.name, []).append(func)
        self.functions: Dict[Tuple[str, str], FunctionInfo] = {}
        for module in modules:
            for func in module.functions.values():
                self.functions[func.key] = func
            for cls in module.classes.values():
                for method in cls.methods.values():
                    self.functions[method.key] = method

    # -- element classes ---------------------------------------------------

    def element_classes(self) -> List[ClassInfo]:
        """``StateElement`` subclasses, resolved by base-name closure.

        The base itself is excluded; anything deriving (transitively,
        within the universe) from a class named ``StateElement`` is an
        element class.
        """
        element_names: Set[str] = {ELEMENT_BASE_NAME}
        changed = True
        while changed:
            changed = False
            for classes in self.classes_by_name.values():
                for cls in classes:
                    if cls.name in element_names:
                        continue
                    if any(base in element_names for base in cls.bases):
                        element_names.add(cls.name)
                        changed = True
        result = []
        for name in sorted(element_names - {ELEMENT_BASE_NAME}):
            result.extend(self.classes_by_name.get(name, []))
        return result

    def element_containers(self) -> Dict[str, Set[str]]:
        """Class name -> its registered state-container attribute names."""
        return {
            cls.name: set(cls.containers)
            for cls in self.element_classes()
            if cls.containers
        }

    def class_ancestry(self, cls: ClassInfo) -> List[ClassInfo]:
        """``cls`` plus its in-universe ancestors (method resolution)."""
        seen: Set[str] = set()
        order: List[ClassInfo] = []
        stack = [cls]
        while stack:
            current = stack.pop()
            if current.name in seen:
                continue
            seen.add(current.name)
            order.append(current)
            for base in current.bases:
                stack.extend(self.classes_by_name.get(base, []))
        return order


def _parse_one(path_str: str) -> ModuleInfo:
    """Parse and index a single file (top-level so it pickles to a
    process pool worker)."""
    path = Path(path_str)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=path_str)
    except SyntaxError as error:
        error.filename = path_str
        raise
    return _index_module(path, derive_module_name(path), tree)


def load_universe(files: List[Path], jobs: int = 1) -> Universe:
    """Parse ``files`` into a :class:`Universe`.

    Parsing and per-module indexing are embarrassingly parallel, so
    ``jobs > 1`` fans the files out over a process pool (AST nodes
    pickle); the cross-module indexes are built in-process afterwards.
    Raises ``SyntaxError`` (annotated with the offending path) if any
    file does not parse -- the runner maps that to exit code 2.
    """
    if jobs > 1 and len(files) > 1:
        from concurrent.futures import ProcessPoolExecutor
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            modules = list(pool.map(
                _parse_one, [str(p) for p in files], chunksize=8
            ))
    else:
        modules = [_parse_one(str(path)) for path in files]
    return Universe(modules)

"""Orchestration: walk paths, scope checkers, apply the baseline, render.

Scope is derived from dotted module names (walking up ``__init__.py``
packages), matching the ISSUE contract:

=====  =================================================  ==============
SC-1   modules with a ``hardware`` segment (R2 raw reads   footprint
       also cover kernel/core/campaign)
SC-2   ``hardware``/``kernel``/``core``/``campaign``       determinism
SC-3   ``hardware``/``core``                               registry
=====  =================================================  ==============

``all_scopes=True`` (used by fixture tests) applies every selected
checker to every analyzed module regardless of package name.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Set

from ..core.report import format_obligation_block
from .baseline import Baseline, BaselineError
from .determinism import check_determinism
from .findings import CHECKERS, Finding, to_obligation_results
from .footprint import check_footprint
from .registry_lint import check_registry
from .taint import check_taint
from .universe import Universe, load_universe

#: Default baseline filename, discovered upward from cwd / lint targets.
BASELINE_FILENAME = "statcheck.baseline.json"

_SCOPE_SEGMENTS = {
    "SC-1": {"hardware"},
    # The model checker is in SC-2 scope: fingerprints and exploration
    # order must be deterministic across processes (frontier sharding
    # hands states to fork workers by hash).  So is the synth search: an
    # unseeded RNG anywhere in the evolution loop silently breaks
    # same-seed reproducibility of discovered attacks.  And so is the
    # analysis package: ``capacity.mutual_information_from_samples`` is
    # the single estimator behind synth fitness *and* campaign reports,
    # so nondeterminism there breaks same-seed reproducibility of every
    # reported number.
    "SC-2": {"hardware", "kernel", "core", "campaign", "mc", "synth",
             "analysis"},
    # Synth is in SC-3 scope too: genome primitives observe hardware
    # through timed accesses, and any state element a genome-built
    # victim or spy constructs must be registered and enumerated.
    # Campaign rides along: the distributed service (campaign.service)
    # replays trials on remote workers, so any state element it were to
    # construct out-of-registry would desync fleet and pool runs.
    "SC-3": {"hardware", "core", "synth", "campaign"},
    # SC-4 secret-taint: everywhere secrets are handled -- victims and
    # trojans encode them, the kernel switches between their domains,
    # and core/ carries them through the secret-swap experiments.
    "SC-4": {"kernel", "hardware", "core", "attacks", "synth"},
}


class StatcheckError(Exception):
    """Internal analyzer error: the CLI maps this to exit code 2."""


@dataclass
class LintReport:
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    stale_suppressions: List[str] = field(default_factory=list)
    checkers_run: List[str] = field(default_factory=list)
    files_analyzed: int = 0
    baseline_path: str = ""
    #: The applied baseline object, exposed so callers (``--prune-
    #: baseline``) can rewrite the file with staleness already computed.
    baseline: Optional[Baseline] = None

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        return 0 if self.clean else 1


def collect_files(paths: Iterable[str]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise StatcheckError(f"no such path: {raw}")
        if path.is_dir():
            files.extend(
                p for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise StatcheckError(f"not a python file or directory: {raw}")
    if not files:
        raise StatcheckError("no python files to analyze")
    return files


def discover_baseline(paths: Iterable[str]) -> Optional[Path]:
    """Find ``statcheck.baseline.json`` near cwd or the lint targets."""
    candidates = [Path.cwd()]
    for raw in paths:
        candidates.extend(Path(raw).resolve().parents)
    for directory in candidates:
        candidate = directory / BASELINE_FILENAME
        if candidate.exists():
            return candidate
    return None


def _scoped(universe: Universe, checker: str, all_scopes: bool) -> Set[str]:
    if all_scopes:
        return {module.modname for module in universe.modules}
    segments = _SCOPE_SEGMENTS[checker]
    return {
        module.modname for module in universe.modules
        if module.segments & segments
    }


def run_lint(
    paths: Iterable[str],
    baseline_path: Optional[str] = None,
    checkers: Optional[Iterable[str]] = None,
    all_scopes: bool = False,
    jobs: int = 1,
) -> LintReport:
    """Run the selected checkers; raises ``BaselineError``/
    ``StatcheckError``/``SyntaxError`` for exit-code-2 conditions."""
    paths = list(paths)
    selected = sorted(checkers) if checkers else sorted(CHECKERS)
    for checker in selected:
        if checker not in CHECKERS:
            raise StatcheckError(
                f"unknown checker {checker!r}; known: {sorted(CHECKERS)}"
            )

    if baseline_path is not None:
        baseline = Baseline.load(Path(baseline_path))
    else:
        discovered = discover_baseline(paths)
        baseline = (
            Baseline.load(discovered) if discovered else Baseline.empty()
        )

    files = collect_files(paths)
    universe = load_universe(files, jobs=jobs)

    findings: List[Finding] = []
    if "SC-1" in selected:
        findings.extend(check_footprint(
            universe,
            scope_modules=_scoped(universe, "SC-1", all_scopes),
            raw_access_modules=_scoped(universe, "SC-2", all_scopes),
        ))
    if "SC-2" in selected:
        findings.extend(check_determinism(
            universe, scope_modules=_scoped(universe, "SC-2", all_scopes)
        ))
    if "SC-3" in selected:
        findings.extend(check_registry(
            universe, scope_modules=_scoped(universe, "SC-3", all_scopes)
        ))
    if "SC-4" in selected:
        findings.extend(check_taint(
            universe, scope_modules=_scoped(universe, "SC-4", all_scopes)
        ))

    kept, suppressed = baseline.apply(findings)
    kept.sort(key=lambda f: (f.path, f.lineno, f.checker, f.rule))
    return LintReport(
        findings=kept,
        suppressed=suppressed,
        stale_suppressions=baseline.stale_keys(),
        checkers_run=selected,
        files_analyzed=len(files),
        baseline_path=baseline.path,
        baseline=baseline,
    )


def render_text(report: LintReport) -> str:
    results = to_obligation_results(report.findings, report.checkers_run)
    notes = [
        f"{report.files_analyzed} file(s) analyzed; "
        f"{len(report.findings)} finding(s), "
        f"{len(report.suppressed)} suppressed by baseline"
        + (f" ({report.baseline_path})" if report.baseline_path else "")
    ]
    for key in report.stale_suppressions:
        notes.append(f"stale suppression (matched nothing): {key}")
    return format_obligation_block(
        "STATIC CONFORMANCE REPORT", results, notes=notes
    )


def render_json(report: LintReport) -> str:
    payload = {
        "clean": report.clean,
        "checkers": report.checkers_run,
        "files_analyzed": report.files_analyzed,
        "findings": [f.to_json() for f in report.findings],
        "suppressed": [f.to_json() for f in report.suppressed],
        "stale_suppressions": report.stale_suppressions,
        "summary": {
            checker: sum(1 for f in report.findings if f.checker == checker)
            for checker in report.checkers_run
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)

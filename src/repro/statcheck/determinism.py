"""SC-2: the simulator/kernel/checker stack must be deterministic.

Case 2a of the proof (and the two-run secret-swap bisimulation in
``core/noninterference.py``) is meaningless if two runs of the same
system can diverge for reasons other than the secret.  This checker
forbids the syntactic sources of divergence in the scoped packages:

``wall-clock``   reads of host time (``time.time``/``perf_counter``/
                 ``monotonic``/``datetime.now``...).  Simulated time is
                 ``CycleClock``; host time is nondeterministic input.
``entropy``      ``os.urandom``, ``secrets.*``, ``uuid.uuid1/4``,
                 ``random.SystemRandom``.
``global-rng``   draws from the process-global ``random`` module state
                 (or ``numpy.random.*``) and argless ``random.Random()``
                 -- experiment randomness must come from per-trial
                 seeded generator instances (``campaign/worker.py``'s
                 ``_seed_rngs`` idiom).  Explicit seeding calls are
                 allowed.
``hash-order``   ``id()`` / ``hash()`` feeding ``sorted``/``min``/
                 ``max``/``.sort`` -- address-dependent ordering varies
                 across runs under ASLR.  (``id()`` for set membership,
                 as in ``Machine.all_state_elements``, is fine.)
``set-order``    iterating a set into an ordering-sensitive sink
                 (append/extend/write/yield, or materializing via
                 ``list``/``tuple``/``join`` without ``sorted``).  Dict
                 iteration is insertion-ordered since 3.7 and is *not*
                 flagged.  The approved idiom is ``sorted(...)`` as in
                 ``core/timefn.py``.
``id-key``       dict/memo lookups keyed on ``id()`` -- ``d[id(x)]``,
                 ``d.get(id(x))``, ``d.setdefault(id(x))``.  Addresses
                 are reused after garbage collection, so a memo keyed on
                 ``id()`` can silently return a dead object's cached
                 value; key memo tables on stable identity (the element
                 name, a tuple of field values) instead.  Pure set
                 *membership* (``seen.add(id(e))``,
                 ``id(e) not in seen``) is fine: it never dereferences
                 through the address while other references are dropped.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from .findings import Finding
from .universe import ModuleInfo, Universe

_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns", "time.process_time",
    "time.process_time_ns", "time.thread_time", "time.thread_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

_ENTROPY = frozenset({
    "os.urandom", "os.getrandom", "secrets.token_bytes", "secrets.token_hex",
    "secrets.token_urlsafe", "secrets.randbits", "secrets.randbelow",
    "secrets.choice", "uuid.uuid1", "uuid.uuid4", "random.SystemRandom",
})

#: Draw functions on the process-global random state.
_GLOBAL_RNG_DRAWS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "triangular", "betavariate", "expovariate",
    "gammavariate", "gauss", "lognormvariate", "normalvariate",
    "vonmisesvariate", "paretovariate", "weibullvariate", "getrandbits",
    "randbytes", "binomialvariate",
})

#: numpy.random attributes that are fine *when given a seed argument*.
_NUMPY_RANDOM_SEEDED_OK = frozenset(
    {"seed", "RandomState", "Generator", "default_rng"}
)

#: Dict methods whose first argument is a lookup key.
_KEYED_LOOKUPS = frozenset({"get", "setdefault", "pop"})

_ORDER_SENSITIVE_SINKS = frozenset({"append", "extend", "write", "writelines"})
_MATERIALIZERS = frozenset({"list", "tuple"})
#: Callables whose consumption of an iterable is order-insensitive.
_ORDER_INSENSITIVE = frozenset({
    "sorted", "set", "frozenset", "sum", "len", "any", "all", "min", "max",
    "dict", "Counter",
})


def _dotted_name(node: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    """``np.random.rand`` -> ``numpy.random.rand`` (resolving aliases)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(aliases.get(node.id, node.id))
    return ".".join(reversed(parts))


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> the real dotted prefix it stands for."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.asname:
                    aliases[name.asname] = name.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for name in node.names:
                aliases[name.asname or name.name] = (
                    f"{node.module}.{name.name}"
                )
    return aliases


def _walk_scope(scope: ast.AST):
    """Walk ``scope`` without descending into nested function bodies."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack.extend(ast.iter_child_nodes(node))


class _SetNames:
    """Names bound to set-valued expressions, chained through scopes."""

    def __init__(self, parent: Optional["_SetNames"] = None) -> None:
        self.parent = parent
        self.names: Set[str] = set()

    def _known(self, name: str) -> bool:
        scope: Optional[_SetNames] = self
        while scope is not None:
            if name in scope.names:
                return True
            scope = scope.parent
        return False

    def is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if (isinstance(node.func, ast.Name)
                    and node.func.id in ("set", "frozenset")):
                return True
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("union", "intersection",
                                           "difference",
                                           "symmetric_difference")
                    and self.is_set_expr(node.func.value)):
                return True
            return False
        if isinstance(node, ast.Name):
            return self._known(node.id)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        return False

    def scan(self, scope: ast.AST) -> None:
        # Two passes so `a = {...}; b = a | other` resolves either order.
        for _ in range(2):
            for node in _walk_scope(scope):
                value, targets = None, []
                if isinstance(node, ast.Assign):
                    value, targets = node.value, node.targets
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    value, targets = node.value, [node.target]
                if value is not None and self.is_set_expr(value):
                    for target in targets:
                        if isinstance(target, ast.Name):
                            self.names.add(target.id)


class _DeterminismVisitor:
    """One top-down pass; tracks enclosing scope and comprehension context."""

    def __init__(self, module: ModuleInfo) -> None:
        self.module = module
        self.aliases = _import_aliases(module.tree)
        self.findings: List[Finding] = []
        self.name_stack: List[str] = []
        module_sets = _SetNames()
        module_sets.scan(module.tree)
        self.set_stack: List[_SetNames] = [module_sets]
        #: Comprehensions consumed by an order-insensitive call.
        self.exempt: Set[int] = set()

    # -- helpers -----------------------------------------------------------

    @property
    def qualname(self) -> str:
        return ".".join(self.name_stack) or "<module>"

    @property
    def sets(self) -> _SetNames:
        return self.set_stack[-1]

    def emit(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            checker="SC-2", rule=rule, path=self.module.path,
            lineno=getattr(node, "lineno", 1), module=self.module.modname,
            qualname=self.qualname, message=message,
        ))

    # -- traversal ---------------------------------------------------------

    def visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.name_stack.append(node.name)
            scope_sets = _SetNames(parent=self.sets)
            scope_sets.scan(node)
            self.set_stack.append(scope_sets)
            for child in ast.iter_child_nodes(node):
                self.visit(child)
            self.set_stack.pop()
            self.name_stack.pop()
            return
        if isinstance(node, ast.ClassDef):
            self.name_stack.append(node.name)
            for child in ast.iter_child_nodes(node):
                self.visit(child)
            self.name_stack.pop()
            return
        if isinstance(node, ast.Call):
            self.check_call(node)
        elif isinstance(node, ast.Subscript):
            if _is_id_call(node.slice):
                self.emit(
                    "id-key", node,
                    "subscripts a mapping with id(); addresses are reused "
                    "after GC, so an id()-keyed memo can alias dead "
                    "objects -- key on stable identity instead",
                )
        elif isinstance(node, ast.For):
            self.check_for_loop(node)
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            if (id(node) not in self.exempt and node.generators
                    and self.sets.is_set_expr(node.generators[0].iter)):
                self.emit(
                    "set-order", node,
                    "materializes an unordered set into a sequence; wrap "
                    "the iteration in sorted(...) (core/timefn.py idiom)",
                )
        for child in ast.iter_child_nodes(node):
            self.visit(child)

    # -- rules -------------------------------------------------------------

    def check_call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func, self.aliases)
        if dotted in _WALL_CLOCK:
            self.emit("wall-clock", node,
                      f"reads host wall-clock time via {dotted}(); "
                      f"simulated time must come from CycleClock")
        elif dotted in _ENTROPY:
            self.emit("entropy", node,
                      f"draws host entropy via {dotted}; runs must be "
                      f"reproducible from the trial seed")
        elif dotted is not None and _is_global_rng_draw(dotted, node):
            self.emit("global-rng", node,
                      f"{dotted}() draws from unseeded/global RNG state; "
                      f"use a per-trial seeded generator instance")

        func_name = node.func.id if isinstance(node.func, ast.Name) else None
        attr_name = (node.func.attr
                     if isinstance(node.func, ast.Attribute) else None)

        if (attr_name in _KEYED_LOOKUPS and node.args
                and _is_id_call(node.args[0])):
            self.emit(
                "id-key", node,
                f".{attr_name}(id(...)) looks a mapping up by object "
                f"address; addresses are reused after GC -- key on "
                f"stable identity instead",
            )

        if func_name in ("sorted", "min", "max") or attr_name == "sort":
            for sub in ast.walk(node):
                if (sub is not node and isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Name)
                        and sub.func.id in ("id", "hash")):
                    self.emit("hash-order", sub,
                              f"{sub.func.id}() used for ordering; object "
                              f"addresses/hashes vary across runs (ASLR)")
            for kw in node.keywords:
                if (kw.arg == "key" and isinstance(kw.value, ast.Name)
                        and kw.value.id in ("id", "hash")):
                    self.emit("hash-order", node,
                              f"key={kw.value.id} orders by object "
                              f"address/hash, which varies across runs")

        if func_name in _ORDER_INSENSITIVE:
            for arg in node.args:
                if isinstance(arg, (ast.ListComp, ast.GeneratorExp)):
                    self.exempt.add(id(arg))

        if (func_name in _MATERIALIZERS and node.args
                and self.sets.is_set_expr(node.args[0])):
            self.emit("set-order", node,
                      f"{func_name}() over an unordered set; wrap in "
                      f"sorted(...) first")
        if attr_name == "join" and node.args:
            arg = node.args[0]
            comp_over_set = (
                isinstance(arg, (ast.ListComp, ast.GeneratorExp))
                and arg.generators
                and self.sets.is_set_expr(arg.generators[0].iter)
            )
            if self.sets.is_set_expr(arg) or comp_over_set:
                self.emit("set-order", node,
                          "joins an unordered set into a string; sort first")
                if isinstance(arg, (ast.ListComp, ast.GeneratorExp)):
                    self.exempt.add(id(arg))

    def check_for_loop(self, node: ast.For) -> None:
        if not self.sets.is_set_expr(node.iter):
            return
        for sub in ast.walk(node):
            is_sink = (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _ORDER_SENSITIVE_SINKS
            ) or isinstance(sub, (ast.Yield, ast.YieldFrom)) or (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "print"
            )
            if is_sink:
                self.emit("set-order", sub,
                          "iterates an unordered set into an "
                          "ordering-sensitive sink; iterate sorted(...) "
                          "instead (core/timefn.py idiom)")
                break


def _is_id_call(node: ast.expr) -> bool:
    """True for a bare ``id(...)`` call expression."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
    )


def _is_global_rng_draw(dotted: str, node: ast.Call) -> bool:
    parts = dotted.split(".")
    if len(parts) == 2 and parts[0] == "random":
        if parts[1] in _GLOBAL_RNG_DRAWS:
            return True
        # random.Random() with no seed argument seeds itself from the OS.
        return parts[1] == "Random" and not node.args and not node.keywords
    if len(parts) == 3 and parts[0] == "numpy" and parts[1] == "random":
        if parts[2] in _NUMPY_RANDOM_SEEDED_OK:
            return (parts[2] in ("default_rng", "RandomState")
                    and not node.args and not node.keywords)
        return True
    return False


def check_determinism(
    universe: Universe, scope_modules: Set[str]
) -> List[Finding]:
    findings: List[Finding] = []
    for module in universe.modules:
        if module.modname not in scope_modules:
            continue
        visitor = _DeterminismVisitor(module)
        visitor.visit(module.tree)
        findings.extend(visitor.findings)
    return findings

"""CLI: prove, model-check, survey channels, inspect, campaigns, lint, bench.

Ten subcommands::

    repro-tp prove    [--machine M] [--tp T] [--secrets 1,7,23]
                      [--format text|json]
    repro-tp mc       [--machine M] [--tp T] [--depth N] [--secrets 0,1,2]
                      [--jobs N] [--max-states N] [--format text|json]
    repro-tp channels [--machine M] [--tp T] [--only e2,e4]
    repro-tp inspect  [--machine M]
    repro-tp campaign [--machines M1,M2] [--tps T1,T2] [--attacks A1,A2]
                      [--seeds 0,1] [--workers N] [--store results.jsonl]
                      [--instrumentation full|counting] [--genomes FILE]
                      [--engine scalar|batch]
                      [--serve | --distributed] [--host H] [--port P]
                      [--shard-size N] [--lease-ttl S] [--status-interval S]
    repro-tp work     --coordinator URL [--jobs N] [--engine scalar|batch]
                      [--name ID] [--flush-every N] [--max-failures N]
    repro-tp store    {info PATH | migrate SRC DST}
    repro-tp synth    [--machine M] [--tp T] [--victim V] [--generations N]
                      [--population N] [--seed N] [--jobs N] [--save FILE]
                      [--threshold BITS] [--engine scalar|batch]
                      [--format text|json]
    repro-tp lint     [paths ...] [--format text|json] [--baseline FILE]
                      [--jobs N] [--strict] [--prune-baseline]
    repro-tp bench    [--record | --compare] [--benches B1,B2]
                      [--repeats N] [--tolerance F] [--file PATH]
                      [--engine scalar|batch]

``prove`` runs the full Sect. 5 argument (obligations, case split,
unwinding, two-run noninterference) on a standard two-domain system and
prints the report.  ``mc`` exhaustively model-checks noninterference
over the reachable product state space of a small machine (``micro`` or
``tiny``): exit 0 when clean, 1 with a minimal replayable counterexample
otherwise.  ``channels`` measures the attack suite under the chosen
configuration.  ``inspect`` extracts and prints the abstract hardware
model (Sect. 5.1) of a machine.  ``campaign`` fans a whole (machine ×
tp × attack × seed) grid out over a worker pool, appends one JSONL
record per trial, resumes past completed trials on re-run, and prints
the (machine × tp) channel-capacity matrix; ``--genomes`` registers
evolved genomes from a saved file as extra attacks for the grid.  A
``--store`` path ending in ``.sqlite``/``.sqlite3``/``.db`` selects the
indexed sqlite backend instead of JSONL.  ``campaign --serve`` runs the
grid as a lease *coordinator* (workers attach with ``repro-tp work``)
with a live ``/status`` capacity view; ``campaign --distributed`` also
spawns the local worker fleet itself.  ``work`` is the worker half:
pull leases from a coordinator URL, run trials, stream results back.
``store`` inspects (``info``) or converts (``migrate``, either
direction, order-preserving) result stores.
``synth`` runs the evolutionary attack search against the chosen
machine/TP configuration: exit 0 when no channel above the threshold
was found (time protection held against the search), 1 when the search
discovered one.  ``lint`` runs the static
conformance analyzer (``repro.statcheck``) over the source tree: exit 0
clean, 1 findings, 2 internal/configuration error; ``--jobs`` parses in
a process pool, stale baseline waivers warn by default, fail (exit 2)
under ``--strict``, and ``--prune-baseline`` rewrites the baseline file
without them.  ``bench`` runs the
throughput scenarios: ``--record`` writes the per-host
``benchmarks/BENCH_<host>.json`` baseline, ``--compare`` fails (exit 1)
when any bench exceeds the baseline by more than the tolerance band.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from .campaign.registry import MACHINES, TP_CONFIGS
from .core import (
    AbstractHardwareModel,
    format_report,
    prove_time_protection,
)
from .hardware import Access, Compute, Halt, ReadTime, Syscall
from .kernel import Kernel, TimeProtectionConfig


def _hi_program(ctx):
    secret = ctx.params["secret"]
    for i in range(80):
        yield Access(
            ctx.data_base + (i * (secret + 1) * ctx.line_size) % ctx.data_size,
            write=True,
            value=i,
        )
        if i % 9 == 0:
            yield Syscall("nop")
    while True:
        yield Compute(15)


def _lo_program(ctx):
    for i in range(150):
        yield ReadTime()
        yield Access(ctx.data_base + (i * ctx.line_size) % ctx.data_size)
    yield Halt()


def _build_standard_system(machine_factory, tp, max_cycles):
    def build(secret):
        machine = machine_factory()
        kernel = Kernel(machine, tp)
        kernel.capture_footprints = True
        hi = kernel.create_domain("Hi", n_colours=2, slice_cycles=3000)
        lo = kernel.create_domain("Lo", n_colours=2, slice_cycles=3000)
        kernel.create_thread(hi, _hi_program, params={"secret": secret})
        kernel.create_thread(lo, _lo_program)
        kernel.set_schedule(0, [(hi, None), (lo, None)])
        kernel.run(max_cycles=max_cycles)
        return kernel

    return build


def cmd_prove(args) -> int:
    from .core import format_report_json

    machine_factory = MACHINES[args.machine]
    tp = TP_CONFIGS[args.tp]()
    secrets = [int(s) for s in args.secrets.split(",")]
    report = prove_time_protection(
        _build_standard_system(machine_factory, tp, args.max_cycles),
        secrets=secrets,
        observer="Lo",
    )
    if args.format == "json":
        print(format_report_json(report))
    else:
        print(format_report(report, verbose=True))
    return 0 if report.holds else 1


def cmd_mc(args) -> int:
    import time

    from .mc import McOptions, McSpec, ModelChecker, render_json, render_text

    try:
        secrets = tuple(int(s) for s in args.secrets.split(",") if s.strip())
        overrides = dict(
            secrets=secrets,
            depth=args.depth,
            max_states=args.max_states,
            irq_budget=args.irq_budget,
        )
        if args.irq_lines:
            overrides["irq_lines"] = tuple(
                int(line) for line in args.irq_lines.split(",") if line.strip()
            )
        spec = McSpec.for_machine(args.machine, args.tp, **overrides)
    except (KeyError, ValueError) as error:
        print(f"invalid mc spec: {error}", file=sys.stderr)
        return 2
    if len(spec.secrets) < 2:
        print("need at least two distinct secrets", file=sys.stderr)
        return 2
    from dataclasses import replace as _replace

    base = McOptions.exact() if args.exact else McOptions(
        por=args.por,
        incremental=args.incremental,
        fast_clone=args.fast_clone,
        batch_expand=args.batch_expand,
        batch_width=args.batch_width,
    )
    options = _replace(
        base,
        bitstate_mb=args.bitstate,
        spill_ram_states=args.spill_ram,
        spill_dir=args.spill_dir or None,
        profile=args.profile,
    )
    started = time.perf_counter()
    report = ModelChecker(spec, jobs=args.jobs, options=options).run()
    elapsed = time.perf_counter() - started
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
        rate = report.stats.states_visited / elapsed if elapsed > 0 else 0.0
        print(f"[{elapsed:.2f}s wall, {rate:.0f} states/s]")
    return 0 if report.passed else 1


def cmd_channels(args) -> int:
    from .attacks import (
        event_timing,
        flushreload,
        irq_channel,
        occupancy,
        primeprobe,
        switch_latency,
    )

    tp = TP_CONFIGS[args.tp]()
    machine_factory = MACHINES[args.machine]
    experiments = {
        "e1": lambda: event_timing.experiment(
            TP_CONFIGS[args.tp]() if args.tp != "full"
            else TimeProtectionConfig.full(padded_ipc=True),
            machine_factory,
        ),
        "e2": lambda: primeprobe.l1_experiment(
            tp, machine_factory, symbols=[2, 4, 6], rounds_per_run=6
        ),
        "e4": lambda: flushreload.experiment(tp, machine_factory),
        "e5": lambda: switch_latency.experiment(
            tp, machine_factory, symbols=[1, 10], rounds_per_run=6
        ),
        "e6": lambda: irq_channel.experiment(tp, machine_factory),
        "occupancy": lambda: occupancy.experiment(
            tp, machine_factory, symbols=[1, 8], rounds_per_run=5
        ),
    }
    selected = (
        [name.strip() for name in args.only.split(",")]
        if args.only
        else sorted(experiments)
    )
    print(f"channel survey on machine={args.machine!r}, tp={args.tp!r}:\n")
    worst = 0.0
    for name in selected:
        runner = experiments.get(name)
        if runner is None:
            print(f"  unknown experiment {name!r}; choices: {sorted(experiments)}")
            return 2
        result = runner()
        worst = max(worst, result.capacity_bits())
        print(f"  {result.summary()}")
    print(
        f"\nworst channel: {worst:.3f} bits/symbol "
        f"({'LEAKY' if worst > 1e-3 else 'all surveyed channels closed'})"
    )
    return 0


def cmd_inspect(args) -> int:
    machine = MACHINES[args.machine]()
    model = AbstractHardwareModel.from_machine(machine)
    summary = model.summary()
    print(f"abstract hardware model of machine {args.machine!r}:")
    for key in ("partitionable", "flushable", "unmanaged"):
        names = summary[key]
        print(f"  {key:14s} ({len(names)}): {', '.join(names) or '-'}")
    for element in model.elements:
        print(
            f"    {element.name:20s} declared={element.declared_category.value:14s} "
            f"effective={element.effective_category.value:14s} "
            f"partitions={element.n_partitions}"
        )
    print("  declared exclusions:")
    for exclusion in summary["exclusions"]:
        print(f"    * {exclusion}")
    verdict = "conforms to the aISA contract" if model.conforms_to_aisa() else (
        "VIOLATES the aISA contract: time protection cannot be proved"
    )
    print(f"  verdict: {verdict}")
    return 0 if model.conforms_to_aisa() else 1


def _campaign_serve(args, spec, trials, store) -> int:
    """``campaign --serve``: coordinator only; workers attach remotely."""
    from .campaign import ProgressReporter
    from .campaign.service import CoordinatorServer, LeaseTable, plan_payloads
    from .campaign.service import protocol
    from .campaign.service.coordinator import Coordinator
    from .campaign.service.status import format_status

    completed = store.completed_keys() if not args.fresh else set()
    todo = [trial for trial in trials if trial.key() not in completed]
    table = LeaseTable(
        plan_payloads(todo, timeout_s=args.timeout),
        shard_size=args.shard_size,
        lease_ttl_s=args.lease_ttl,
        max_retries=args.retries,
    )
    reporter = ProgressReporter(
        total=len(todo), label=f"{spec.name}/serve", enabled=not args.quiet
    )
    coordinator = Coordinator(
        table, store, campaign=spec.name, reporter=reporter
    )
    server = CoordinatorServer(coordinator, host=args.host, port=args.port)
    if not todo:
        print(f"campaign {spec.name!r}: all {len(trials)} trial(s) already "
              f"complete in {store.path}")
        return 0
    url = server.start()
    print(f"coordinator: {len(todo)} open trial(s) "
          f"({len(trials) - len(todo)} resumed) at {url}")
    print(f"attach workers with: repro-tp work --coordinator {url}")
    reporter.start(0, len(trials) - len(todo))
    interval = args.status_interval if args.status_interval > 0 else 30.0
    try:
        while not server.wait_done(timeout=interval):
            if args.status_interval > 0:
                print(format_status(coordinator.status()), flush=True)
    except KeyboardInterrupt:
        print("\ninterrupted; completed trials are resumable from the store",
              file=sys.stderr)
        return 1
    finally:
        import time as _time

        # Grace period: workers poll /lease every retry_after_s; keep
        # answering "done" long enough for them to exit cleanly instead
        # of burning their backoff budget against a closed socket.
        _time.sleep(3 * protocol.DEFAULT_RETRY_AFTER_S)
        server.stop()
        reporter.finish()
    print(format_status(coordinator.status()))
    return 0 if table.stats.failed == 0 else 1


def _campaign_distributed(args, spec, store) -> int:
    """``campaign --distributed``: coordinator + local worker fleet."""
    from .analysis.summary import capacity_matrix
    from .campaign import default_workers
    from .campaign.service import run_distributed_campaign

    report = run_distributed_campaign(
        spec,
        store,
        n_workers=args.workers if args.workers > 0 else default_workers(),
        shard_size=args.shard_size,
        lease_ttl_s=args.lease_ttl,
        timeout_s=args.timeout,
        max_retries=args.retries,
        resume=not args.fresh,
        quiet=args.quiet,
        host=args.host,
        port=args.port,
    )
    print(f"campaign {spec.name!r} (distributed): {report.summary()}")
    print(f"store: {store.path} ({len(store)} record(s))")
    if not args.no_summary:
        print()
        print(capacity_matrix(store.records()))
    return 0 if report.all_ok else 1


def cmd_campaign(args) -> int:
    from .analysis.summary import capacity_matrix
    from .campaign import (
        CampaignSpec,
        default_workers,
        open_store,
        run_campaign,
    )
    from .campaign.registry import ATTACKS

    genome_attacks = ()
    if args.genomes:
        from .synth import register_saved

        try:
            genome_attacks = tuple(register_saved(args.genomes))
        except (OSError, ValueError, KeyError) as error:
            print(f"cannot load genomes {args.genomes!r}: {error}",
                  file=sys.stderr)
            return 2

    if args.spec:
        try:
            spec = CampaignSpec.from_json_file(args.spec)
        except (OSError, ValueError, KeyError) as error:
            print(f"cannot load campaign spec {args.spec!r}: {error}",
                  file=sys.stderr)
            return 2
    else:
        attacks = tuple(a.strip() for a in args.attacks.split(",") if a.strip())
        # Evolved genomes sweep the same grid as the named attacks.
        attacks += tuple(a for a in genome_attacks if a not in attacks)
        spec = CampaignSpec(
            machines=tuple(m.strip() for m in args.machines.split(",") if m.strip()),
            tps=tuple(t.strip() for t in args.tps.split(",") if t.strip()),
            attacks=attacks,
            seeds=tuple(int(s) for s in args.seeds.split(",") if s.strip()),
            instrumentation=args.instrumentation,
            engine=args.engine,
        )
    try:
        trials = spec.trials()
    except KeyError as error:
        print(f"invalid campaign spec: {error}", file=sys.stderr)
        print(f"known attacks: {sorted(ATTACKS)}", file=sys.stderr)
        return 2
    if not trials:
        print("campaign spec expands to zero trials", file=sys.stderr)
        return 2

    store = open_store(args.store)
    if args.serve:
        return _campaign_serve(args, spec, trials, store)
    if args.distributed:
        return _campaign_distributed(args, spec, store)
    report = run_campaign(
        spec,
        store,
        n_workers=args.workers if args.workers > 0 else default_workers(),
        timeout_s=args.timeout,
        max_retries=args.retries,
        resume=not args.fresh,
        quiet=args.quiet,
    )
    print(f"campaign {spec.name!r}: {report.summary()}")
    print(f"store: {store.path} ({len(store)} record(s))")
    if not args.no_summary:
        print()
        print(capacity_matrix(store.records()))
    return 0 if report.all_ok else 1


def cmd_work(args) -> int:
    from .campaign.service import (
        BackoffPolicy,
        CoordinatorUnreachable,
        ServiceWorker,
    )
    from .campaign.service.fleet import _fleet_worker_main
    from .campaign.service.worker import _mp_context

    engine = args.engine or None
    if args.jobs > 1:
        ctx = _mp_context()
        processes = [
            ctx.Process(
                target=_fleet_worker_main,
                args=(
                    args.coordinator,
                    f"{args.name or 'w'}{index}",
                    args.seed + index,
                    engine,
                    args.flush_every,
                ),
            )
            for index in range(args.jobs)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join()
        codes = [process.exitcode for process in processes]
        print(f"{len(processes)} worker(s) exited: {codes}")
        return 0 if all(code == 0 for code in codes) else 1
    worker = ServiceWorker(
        args.coordinator,
        worker_id=args.name,
        engine=engine,
        flush_every=args.flush_every,
        max_failures=args.max_failures,
        backoff=BackoffPolicy(seed=args.seed),
        log=None if args.quiet else (
            lambda message: print(message, file=sys.stderr, flush=True)
        ),
    )
    try:
        stats = worker.run()
    except CoordinatorUnreachable as error:
        print(f"coordinator unreachable: {error}", file=sys.stderr)
        return 3
    except KeyboardInterrupt:
        print(f"interrupted: {worker.stats.summary()}", file=sys.stderr)
        return 1
    print(f"worker {worker.worker_id}: {stats.summary()}")
    return 0


def cmd_store(args) -> int:
    import json as _json

    from .campaign.store_sqlite import migrate_store, store_info

    if args.store_command == "info":
        try:
            print(_json.dumps(store_info(args.path), indent=2, sort_keys=True))
        except (OSError, ValueError) as error:
            print(f"cannot read store {args.path!r}: {error}", file=sys.stderr)
            return 2
        return 0
    # migrate
    try:
        migrated = migrate_store(args.src, args.dst)
    except (OSError, ValueError) as error:
        print(f"migrate failed: {error}", file=sys.stderr)
        return 2
    print(f"migrated {migrated} record(s): {args.src} -> {args.dst}")
    return 0


def cmd_synth(args) -> int:
    import json as _json

    from .synth import (
        CampaignEvaluator,
        ChannelGuessEnv,
        EvolutionSearch,
        SearchConfig,
        save_genomes,
    )

    symbols = tuple(
        int(s) for s in args.symbols.split(",") if s.strip()
    ) if args.symbols else None
    try:
        env = ChannelGuessEnv(
            machine=args.machine,
            tp=args.tp,
            victim=args.victim,
            symbols=symbols,
            rounds_per_run=args.rounds,
            sweep_rounds=args.sweep_rounds,
            seed=args.seed,
        )
    except KeyError as error:
        print(f"invalid synth environment: {error}", file=sys.stderr)
        return 2
    threshold = (
        args.threshold if args.threshold >= 0 else env.noise_floor_bits()
    )
    config = SearchConfig(
        generations=args.generations,
        population=args.population,
        target_bits=args.target_bits if args.target_bits > 0 else None,
    )
    evaluator = None
    if args.jobs > 1:
        evaluator = CampaignEvaluator(
            env, args.store, n_workers=args.jobs, seed=args.seed
        )
    elif args.engine == "batch":
        # One lockstep batch per generation; bit-identical scores to the
        # serial map (scalar fallback outside the batch envelope).
        evaluator = env.evaluate_population
    text = args.format == "text"
    log = print if text and not args.quiet else None
    search = EvolutionSearch(
        env, config, seed=args.seed, evaluator=evaluator, log=log
    )
    report = search.run()
    found = report.found_channel(threshold)

    if args.save:
        ranked = [report.champion] + [
            s for s in report.discovered if s.genome != report.champion.genome
        ]
        save_genomes(
            args.save, ranked, env=env,
            metadata={"seed": args.seed, "threshold_bits": threshold},
        )

    if text:
        champion = report.champion
        stats = champion.evaluation
        print(
            f"synth [{args.machine}/{args.tp}] victim={args.victim}: "
            f"{report.evaluations} evaluations, "
            f"{len(report.discovered)} genome(s) above the noise floor"
        )
        print(
            f"champion (gen {champion.generation}): "
            f"MI={stats.mutual_information_bits:.3f} bits, "
            f"capacity={stats.capacity_bits:.3f} bits, "
            f"accuracy={stats.accuracy:.2f}, "
            f"genes={[gene.kind for gene in champion.genome.ops]}"
        )
        verdict = (
            f"CHANNEL FOUND above {threshold:.3f} bits"
            if found
            else f"no channel above {threshold:.3f} bits"
        )
        print(f"verdict: {verdict}")
    else:
        print(_json.dumps({
            "env": env.spec(),
            "seed": args.seed,
            "threshold_bits": threshold,
            "found_channel": found,
            "report": report.to_record(),
        }, indent=2, sort_keys=True))
    return 1 if found else 0


def cmd_lint(args) -> int:
    from .statcheck import (
        BaselineError,
        StatcheckError,
        render_json,
        render_text,
        run_lint,
    )

    try:
        report = run_lint(
            paths=args.paths or ["src/repro"],
            baseline_path=args.baseline or None,
            jobs=args.jobs,
        )
    except (BaselineError, StatcheckError, SyntaxError) as error:
        print(f"lint error: {error}", file=sys.stderr)
        return 2
    render = render_json if args.format == "json" else render_text
    print(render(report))
    if report.stale_suppressions:
        if args.prune_baseline and report.baseline is not None:
            pruned = report.baseline.prune()
            print(
                f"pruned {len(pruned)} stale suppression(s) from "
                f"{report.baseline_path}",
                file=sys.stderr,
            )
        elif args.strict:
            print(
                f"lint error: {len(report.stale_suppressions)} stale "
                f"suppression(s) under --strict (run --prune-baseline)",
                file=sys.stderr,
            )
            return max(report.exit_code, 2)
    return report.exit_code


def cmd_bench(args) -> int:
    from pathlib import Path

    from .bench import (
        SCENARIOS,
        compare_results,
        default_baseline_path,
        load_baseline,
        run_benches,
        write_baseline,
    )

    from .hardware.machine import engine_override

    names = [b.strip() for b in args.benches.split(",") if b.strip()] or None
    try:
        with engine_override(args.engine if args.engine != "scalar" else None):
            results = run_benches(names, repeats=args.repeats)
    except KeyError as error:
        print(f"bench error: {error.args[0]}", file=sys.stderr)
        return 2

    bench_dir = Path(args.dir)
    path = Path(args.file) if args.file else default_baseline_path(bench_dir)

    if args.compare:
        try:
            baseline = load_baseline(path)
        except (OSError, ValueError) as error:
            print(f"cannot load baseline {path}: {error}", file=sys.stderr)
            print("record one first: repro-tp bench --record", file=sys.stderr)
            return 2
        report = compare_results(results, baseline, tolerance=args.tolerance)
        print(f"comparing against {path} (host={baseline.host}, "
              f"python={baseline.python}):")
        print(report.format())
        return 0 if report.passed else 1

    for result in results:
        print(f"  {result.name:<22} {result.ns_per_op:>10.1f} ns/op "
              f"({result.ops} steps, median of {len(result.runs_ns)})")
    if args.record:
        write_baseline(results, path, repeats=args.repeats)
        print(f"recorded baseline: {path}")
    else:
        print(f"(dry run; benches available: {', '.join(sorted(SCENARIOS))})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tp",
        description="Prove (or refute) time protection on a simulated system.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    prove = subparsers.add_parser("prove", help="run the full Sect. 5 proof")
    prove.add_argument("--machine", choices=sorted(MACHINES), default="tiny")
    prove.add_argument("--tp", choices=sorted(TP_CONFIGS), default="full")
    prove.add_argument("--secrets", default="1,7,23",
                       help="comma-separated Hi secrets to sweep")
    prove.add_argument("--max-cycles", type=int, default=400_000)
    prove.add_argument("--format", choices=("text", "json"), default="text")
    prove.set_defaults(func=cmd_prove)

    mc = subparsers.add_parser(
        "mc",
        help="exhaustively model-check noninterference on a small machine",
    )
    mc.add_argument("--machine", choices=sorted(MACHINES), default="micro")
    mc.add_argument("--tp", choices=sorted(TP_CONFIGS), default="full")
    mc.add_argument("--depth", type=int, default=400,
                    help="bound on product-path length (default well above "
                         "any reachable depth on micro/tiny)")
    mc.add_argument("--secrets", default="0,1,2",
                    help="comma-separated Hi secret domain (all pairs checked)")
    mc.add_argument("--jobs", type=int, default=1,
                    help="worker processes for frontier expansion (1 = serial)")
    mc.add_argument("--max-states", type=int, default=200_000,
                    help="visited-set memory bound")
    mc.add_argument("--format", choices=("text", "json"), default="text")
    mc.add_argument("--irq-lines", default="",
                    help="comma-separated IRQ lines the scheduler may raise "
                         "(default: the spec's, normally just line 1)")
    mc.add_argument("--irq-budget", type=int, default=1,
                    help="max IRQ injections per explored path")
    mc.add_argument("--profile", action="store_true",
                    help="report per-phase wall-clock breakdown "
                         "(clone/step/check/fingerprint/dedup)")
    mc.add_argument("--exact", action="store_true",
                    help="seed-equivalent exploration: POR, incremental "
                         "fingerprints, and fast clone all off")
    mc.add_argument("--no-por", dest="por", action="store_false",
                    help="disable symmetric-IRQ partial-order reduction")
    mc.add_argument("--no-incremental", dest="incremental",
                    action="store_false",
                    help="disable incremental (chain-digest) fingerprints")
    mc.add_argument("--no-fast-clone", dest="fast_clone",
                    action="store_false",
                    help="snapshot states with deepcopy instead of the "
                         "hand-rolled clone")
    mc.add_argument("--batch-expand", action="store_true",
                    help="expand frontier waves through the vectorized "
                         "batch engine (uncoloured configs only)")
    mc.add_argument("--batch-width", type=int, default=32,
                    help="max states per batched expansion wave")
    mc.add_argument("--bitstate", type=float, default=None, metavar="MB",
                    help="replace the exact visited set with a Bloom "
                         "bitstate of this many megabytes (verdicts become "
                         "probabilistic-complete)")
    mc.add_argument("--spill-ram", type=int, default=None, metavar="STATES",
                    help="keep at most this many frontier entries in RAM, "
                         "spilling the rest to disk")
    mc.add_argument("--spill-dir", default="",
                    help="directory for spilled frontier segments "
                         "(default: a temp dir)")
    mc.set_defaults(func=cmd_mc)

    channels = subparsers.add_parser("channels", help="measure the attack suite")
    channels.add_argument("--machine", choices=sorted(MACHINES), default="tiny")
    channels.add_argument("--tp", choices=sorted(TP_CONFIGS), default="full")
    channels.add_argument("--only", default="",
                          help="comma-separated experiment names (default: all)")
    channels.set_defaults(func=cmd_channels)

    inspect = subparsers.add_parser(
        "inspect", help="print a machine's abstract hardware model"
    )
    inspect.add_argument("--machine", choices=sorted(MACHINES), default="tiny")
    inspect.set_defaults(func=cmd_inspect)

    campaign = subparsers.add_parser(
        "campaign",
        help="run a (machine x tp x attack x seed) grid over a worker pool",
    )
    campaign.add_argument(
        "--spec", default="",
        help="JSON campaign spec file (overrides the grid flags)",
    )
    campaign.add_argument("--machines", default="tiny",
                          help="comma-separated machine presets")
    campaign.add_argument("--tps", default="full,none",
                          help="comma-separated TP configs")
    campaign.add_argument("--attacks", default="e5,occupancy",
                          help="comma-separated attack names")
    campaign.add_argument("--seeds", default="0",
                          help="comma-separated integer seeds")
    campaign.add_argument("--instrumentation", choices=("full", "counting"),
                          default="full",
                          help="touch instrumentation fidelity: 'counting' "
                               "trades proof-grade evidence for throughput")
    campaign.add_argument("--engine", choices=("scalar", "batch"),
                          default="scalar",
                          help="stepping engine for every trial; 'batch' "
                               "uses the lockstep numpy engine and falls "
                               "back to scalar per-trial outside its "
                               "envelope")
    campaign.add_argument("--workers", type=int, default=0,
                          help="worker processes (0 = one per available CPU)")
    campaign.add_argument("--store", default="campaign_results.jsonl",
                          help="result store path (resume target); a "
                               ".sqlite/.sqlite3/.db suffix selects the "
                               "indexed sqlite backend")
    mode = campaign.add_mutually_exclusive_group()
    mode.add_argument("--serve", action="store_true",
                      help="run as a lease coordinator over HTTP; workers "
                           "attach with 'repro-tp work'")
    mode.add_argument("--distributed", action="store_true",
                      help="run coordinator + local worker fleet instead of "
                           "the in-process pool")
    campaign.add_argument("--host", default="127.0.0.1",
                          help="coordinator bind address for --serve / "
                               "--distributed")
    campaign.add_argument("--port", type=int, default=0,
                          help="coordinator port (0 = pick a free one)")
    campaign.add_argument("--shard-size", type=int, default=8,
                          help="trials per lease shard")
    campaign.add_argument("--lease-ttl", type=float, default=30.0,
                          help="lease deadline in seconds; an expired lease "
                               "re-issues its unresolved trials")
    campaign.add_argument("--status-interval", type=float, default=0.0,
                          help="with --serve: print the /status capacity "
                               "view every S seconds (0 = only at the end)")
    campaign.add_argument("--timeout", type=float, default=0.0,
                          help="per-trial wall-clock budget in seconds (0 = off)")
    campaign.add_argument("--retries", type=int, default=1,
                          help="retry attempts per failed trial")
    campaign.add_argument("--fresh", action="store_true",
                          help="ignore existing records (disable resume)")
    campaign.add_argument("--no-summary", action="store_true",
                          help="skip the capacity-matrix summary table")
    campaign.add_argument("--quiet", action="store_true",
                          help="suppress per-trial progress lines")
    campaign.add_argument("--genomes", default="",
                          help="saved genome file (repro-tp synth --save); "
                               "registers each genome as an extra attack "
                               "and adds it to the grid")
    campaign.set_defaults(func=cmd_campaign)

    work = subparsers.add_parser(
        "work",
        help="pull trial leases from a campaign coordinator and run them",
    )
    work.add_argument("--coordinator", required=True,
                      help="coordinator base URL (printed by campaign --serve)")
    work.add_argument("--jobs", type=int, default=1,
                      help="worker processes to run against the coordinator")
    work.add_argument("--engine", choices=("", "scalar", "batch"), default="",
                      help="execute trials on this engine regardless of the "
                           "lease's label (records keep the lease identity; "
                           "batch is contract-tested bit-identical)")
    work.add_argument("--name", default="",
                      help="worker id prefix (default: host:pid)")
    work.add_argument("--seed", type=int, default=0,
                      help="backoff-jitter seed (worker index is added)")
    work.add_argument("--flush-every", type=int, default=1,
                      help="trials per result flush to the coordinator")
    work.add_argument("--max-failures", type=int, default=8,
                      help="consecutive coordinator failures before giving up")
    work.add_argument("--quiet", action="store_true",
                      help="suppress reconnect/progress log lines")
    work.set_defaults(func=cmd_work)

    store = subparsers.add_parser(
        "store", help="inspect or convert campaign result stores"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    info = store_sub.add_parser("info", help="summarize a result store")
    info.add_argument("path", help="store path (.jsonl or .sqlite)")
    migrate = store_sub.add_parser(
        "migrate",
        help="copy records between stores (JSONL <-> sqlite), preserving "
             "order and resume semantics",
    )
    migrate.add_argument("src", help="source store path")
    migrate.add_argument("dst", help="destination store path")
    store.set_defaults(func=cmd_store)

    synth = subparsers.add_parser(
        "synth",
        help="evolve attack programs that search the machine for channels",
    )
    synth.add_argument("--machine", choices=sorted(MACHINES), default="tiny")
    synth.add_argument("--tp", choices=sorted(TP_CONFIGS), default="full")
    synth.add_argument("--victim", default="set_hammer",
                       help="secret-dependent victim program (see "
                            "repro.synth.victims.VICTIMS)")
    synth.add_argument("--symbols", default="",
                       help="comma-separated symbol alphabet "
                            "(default: the victim's)")
    synth.add_argument("--generations", type=int, default=8)
    synth.add_argument("--population", type=int, default=16)
    synth.add_argument("--rounds", type=int, default=6,
                       help="spy rounds per run (samples per symbol)")
    synth.add_argument("--sweep-rounds", type=int, default=2,
                       help="full alphabet sweeps per evaluation")
    synth.add_argument("--seed", type=int, default=0)
    synth.add_argument("--jobs", type=int, default=1,
                       help="campaign-pool workers per generation "
                            "(1 = in-process serial)")
    synth.add_argument("--engine", choices=("scalar", "batch"),
                       default="scalar",
                       help="generation evaluator: 'batch' scores each "
                            "generation as one lockstep batch (ignored "
                            "when --jobs > 1)")
    synth.add_argument("--store", default="synth_fitness.jsonl",
                       help="JSONL fitness cache for --jobs > 1")
    synth.add_argument("--threshold", type=float, default=-1.0,
                       help="open-channel verdict threshold in bits "
                            "(default: the estimator noise floor)")
    synth.add_argument("--target-bits", type=float, default=0.0,
                       help="stop early once champion MI clears this "
                            "(0 = run all generations)")
    synth.add_argument("--save", default="",
                       help="write discovered genomes to this JSON file")
    synth.add_argument("--quiet", action="store_true",
                       help="suppress per-generation progress lines")
    synth.add_argument("--format", choices=("text", "json"), default="text")
    synth.set_defaults(func=cmd_synth)

    lint = subparsers.add_parser(
        "lint",
        help="run the static conformance analyzer (SC-1/SC-2/SC-3/SC-4)",
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files or directories to analyze (default: src/repro)",
    )
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument(
        "--baseline", default="",
        help="suppression file (default: discover statcheck.baseline.json)",
    )
    lint.add_argument(
        "--jobs", type=int, default=1,
        help="parse/index files in a process pool of this size",
    )
    lint.add_argument(
        "--strict", action="store_true",
        help="fail (exit 2) on stale baseline suppressions",
    )
    lint.add_argument(
        "--prune-baseline", action="store_true",
        help="rewrite the baseline file without stale suppressions",
    )
    lint.set_defaults(func=cmd_lint)

    bench = subparsers.add_parser(
        "bench",
        help="run throughput benches; record or compare a per-host baseline",
    )
    mode = bench.add_mutually_exclusive_group()
    mode.add_argument("--record", action="store_true",
                      help="write BENCH_<host>.json after running")
    mode.add_argument("--compare", action="store_true",
                      help="compare against the recorded baseline (exit 1 on "
                           "regression)")
    bench.add_argument("--benches", default="",
                       help="comma-separated bench names (default: all)")
    bench.add_argument("--repeats", type=int, default=3,
                       help="timed runs per bench (median is kept)")
    bench.add_argument("--engine", choices=("scalar", "batch"),
                       default="scalar",
                       help="force every machine a scenario builds onto "
                            "this stepping engine")
    bench.add_argument("--tolerance", type=float, default=1.0,
                       help="allowed slowdown fraction for --compare "
                            "(1.0 = fail only beyond 2x baseline)")
    bench.add_argument("--dir", default="benchmarks",
                       help="directory holding BENCH_<host>.json files")
    bench.add_argument("--file", default="",
                       help="explicit baseline path (overrides --dir/host)")
    bench.set_defaults(func=cmd_bench)
    return parser


def main(argv: List[str] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

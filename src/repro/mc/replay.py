"""Counterexample replay through the concrete two-run harness.

A counterexample is only evidence if it survives outside the checker:
the choice path is replayed as a deterministic builder-and-runner and
fed to ``core/noninterference.py``'s :func:`secret_swap_experiment`,
which must report a concrete :class:`Divergence` in Lo's observation
trace.  For counterexamples whose violating transition was a Lo-trace
divergence, the concrete divergence must land at the predicted index;
violations caught earlier (projection, case split, mechanism
invariants) predict no index, only that a divergence follows once the
run completes.
"""

from __future__ import annotations

from typing import Callable, Tuple

from ..core.noninterference import NonInterferenceResult, secret_swap_experiment
from ..kernel.kernel import Kernel
from .report import McCounterexample
from .spec import McSpec, apply_choice, build_system, run_to_terminal


def replay_build_and_run(
    spec: McSpec, path: Tuple[Tuple, ...],
) -> Callable[[int], Kernel]:
    """A ``build_and_run(secret)`` that replays ``path`` then runs out.

    The returned builder reconstructs one side of the product from
    scratch, applies the counterexample's choices (including any IRQ
    injections, at the same points), then drives the system to
    termination with plain steps -- exactly what the two-run harness
    expects, with the checker's nondeterminism resolved identically on
    both runs.
    """

    def build_and_run(secret: int) -> Kernel:
        kernel = build_system(spec, secret)
        for choice in path:
            apply_choice(kernel, choice, spec)
        run_to_terminal(kernel, spec)
        return kernel

    return build_and_run


def confirm_counterexample(
    spec: McSpec, counterexample: McCounterexample,
) -> NonInterferenceResult:
    """Replay a counterexample; the result must show a real divergence."""
    return secret_swap_experiment(
        replay_build_and_run(spec, counterexample.path),
        counterexample.secret_a,
        counterexample.secret_b,
        observer_domain="Lo",
        compare_hardware=False,
    )

"""Canonical state fingerprinting with symmetry reduction.

Two system states are the *same* model-checker state iff every future
behaviour agrees; the fingerprint is a stable digest of exactly the
state that future behaviour reads: clocks, scheduler positions, thread
and program state, every microarchitectural element's fingerprint,
memory contents, pending interrupts -- plus the accumulated Lo-relevant
evidence (observation traces, switch records, step classifications),
because the checker's prefix comparisons read those too.

Symmetry reduction operates on the *allocation metadata*: security
domains are relabelled by schedule order (the observer keeps a
distinguished label, so reductions never alias states that differ in
who is observing) and page-colour identifiers by first appearance, so
two systems that differ only in which concrete colour ids the allocator
happened to hand out collapse into one state.  Deep microarchitectural
state (cache tags, memory addresses) is digested raw: relabelling
physical addresses is not in general sound, and the builder allocates
deterministically, so raw comparison is exact there.

Digests use :mod:`hashlib` (BLAKE2b), never Python's per-process
randomised ``hash()`` -- fingerprints must agree across worker
processes (and lint clean under SC-2).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Tuple

from ..kernel.kernel import Kernel
from ..kernel.objects import ReplayableProgram

DIGEST_SIZE = 16


def _domain_order(kernel: Kernel) -> List:
    """Domains in schedule order (then creation order for the rest)."""
    order = []
    seen = set()
    for core_id in kernel.scheduler.scheduled_cores():
        for domain in kernel.scheduler.domains_on_core(core_id):
            if domain.name not in seen:
                seen.add(domain.name)
                order.append(domain)
    for domain in kernel.domains.values():
        if domain.name not in seen:
            seen.add(domain.name)
            order.append(domain)
    return order


def _role_labels(kernel: Kernel, observer: str) -> Dict[str, str]:
    """Domain name -> canonical role label, observer distinguished."""
    labels: Dict[str, str] = {}
    for position, domain in enumerate(_domain_order(kernel)):
        if domain.name == observer:
            labels[domain.name] = "obs"
        else:
            labels[domain.name] = f"d{position}"
    return labels


def _colour_map(kernel: Kernel) -> Dict[int, int]:
    """Concrete colour id -> canonical id by first appearance."""
    mapping: Dict[int, int] = {}
    for colour in sorted(kernel.allocator.kernel_colours):
        mapping.setdefault(colour, len(mapping))
    for domain in _domain_order(kernel):
        for colour in sorted(domain.colours):
            mapping.setdefault(colour, len(mapping))
    return mapping


def _relabel_context(context: str, labels: Dict[str, str]) -> str:
    """Instrumentation context with domain names replaced by role labels."""
    if context.startswith("@switch:"):
        pair = context[len("@switch:"):]
        from_name, _, to_name = pair.partition(">")
        return (
            f"@switch:{labels.get(from_name, from_name)}"
            f">{labels.get(to_name, to_name)}"
        )
    name, sep, mode = context.partition("/")
    return f"{labels.get(name, name)}{sep}{mode}"


def _relabel_colour_keys(fingerprints: Dict[int, Tuple],
                         colours: Dict[int, int]) -> Tuple:
    return tuple(
        (colours.get(colour, ("raw", colour)), entries)
        for colour, entries in sorted(fingerprints.items())
    )


def canonical_state(kernel: Kernel, observer: str = "Lo") -> Tuple:
    """The canonical (symmetry-reduced) structure the digest hashes."""
    labels = _role_labels(kernel, observer)
    colours = _colour_map(kernel)
    order = _domain_order(kernel)
    tcb_labels = {
        tcb.name: (labels[domain.name], position)
        for domain in order
        for position, tcb in enumerate(domain.threads)
    }

    cores = []
    for core_id in kernel.scheduler.scheduled_cores():
        core = kernel.machine.cores[core_id]
        state = kernel.scheduler.state(core_id)
        current = kernel.current_thread(core_id)
        cores.append((
            core_id,
            core.clock.now,
            state.position,
            state.slice_end,
            state.forced_switch_at,
            tcb_labels.get(current.name) if current is not None else None,
            core.irq.fingerprint(),
        ))

    domains = []
    for domain in order:
        threads = tuple(
            (
                tcb_labels[tcb.name],
                tcb.state.value,
                tcb.pc - tcb.code_base,
                tcb.steps_executed,
                # Program state *and* its parameters: params (e.g. the
                # secret) determine all future instructions, so omitting
                # them could alias states with different futures.
                (tcb.program.index, tcb.program.finished,
                 tuple(sorted(tcb.program.ctx.params.items())))
                if isinstance(tcb.program, ReplayableProgram)
                else ("opaque", tcb.steps_executed),
                (tcb.pending_obs.value, tcb.pending_obs.latency)
                if tcb.pending_obs is not None
                else None,
                tcb.wake_time,
                tcb.blocked_on_endpoint,
            )
            for tcb in domain.threads
        )
        domains.append((
            labels[domain.name],
            tuple(colours[c] for c in sorted(domain.colours)),
            domain.slice_cycles,
            domain.pad_cycles,
            tuple(sorted(domain.irq_lines)),
            threads,
            tuple(sorted(domain.rr_position.items())),
        ))

    observations = tuple(
        (
            labels[domain.name],
            tuple(
                (tcb_labels.get(thread, thread), value, latency)
                for thread, value, latency in
                kernel.observation_trace(domain.name)
            ),
        )
        for domain in order
    )

    switches = tuple(
        (
            record.core_id,
            labels.get(record.from_domain, record.from_domain),
            labels.get(record.to_domain, record.to_domain),
            record.scheduled_at,
            record.entered_at,
            record.finished_at,
            record.pad_target,
            record.released_at,
            record.flush_cycles,
            record.lines_written_back,
            tuple(sorted(record.post_flush_fingerprints.items())),
            _relabel_colour_keys(record.llc_colour_fingerprints, colours),
        )
        for record in kernel.switch_records
    )

    cases = tuple(
        (case, _relabel_context(context, labels))
        for case, context, _footprint in kernel.step_footprints
    )

    return (
        cores,
        tuple(domains),
        kernel.machine.fingerprint_all(),
        kernel.machine.memory.fingerprint(),
        observations,
        switches,
        cases,
        kernel.endpoints.n_endpoints,
    )


def state_fingerprint(kernel: Kernel, observer: str = "Lo") -> str:
    """Stable hex digest of the canonical state."""
    doc = repr(canonical_state(kernel, observer)).encode()
    return hashlib.blake2b(doc, digest_size=DIGEST_SIZE).hexdigest()


def product_fingerprint(fp_a: str, fp_b: str) -> str:
    """Digest of a product state; the pair is unordered (swap symmetry)."""
    low, high = (fp_a, fp_b) if fp_a <= fp_b else (fp_b, fp_a)
    return hashlib.blake2b(
        (low + ":" + high).encode(), digest_size=DIGEST_SIZE
    ).hexdigest()

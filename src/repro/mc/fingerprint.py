"""Canonical state fingerprinting with symmetry reduction.

Two system states are the *same* model-checker state iff every future
behaviour agrees; the fingerprint is a stable digest of exactly the
state that future behaviour reads: clocks, scheduler positions, thread
and program state, every microarchitectural element's fingerprint,
memory contents, pending interrupts -- plus the accumulated Lo-relevant
evidence (observation traces, switch records, step classifications),
because the checker's prefix comparisons read those too.

Symmetry reduction operates on the *allocation metadata*: security
domains are relabelled by schedule order (the observer keeps a
distinguished label, so reductions never alias states that differ in
who is observing) and page-colour identifiers by first appearance, so
two systems that differ only in which concrete colour ids the allocator
happened to hand out collapse into one state.  Deep microarchitectural
state (cache tags, memory addresses) is digested raw: relabelling
physical addresses is not in general sound, and the builder allocates
deterministically, so raw comparison is exact there.

Digests use :mod:`hashlib` (BLAKE2b), never Python's per-process
randomised ``hash()`` -- fingerprints must agree across worker
processes (and lint clean under SC-2).
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Dict, List, Tuple

_dumps = pickle.dumps

from ..kernel.kernel import Kernel
from ..kernel.objects import ReplayableProgram

DIGEST_SIZE = 16

#: Chain-digest seed; every incremental rolling digest starts from it.
_CHAIN_SEED = b"mcfp"


def case_trace(kernel: Kernel) -> Tuple[Tuple[str, str], ...]:
    """The (case, context) sequence of the Sect. 5.2 case split.

    Prefers the lightweight ``capture_cases`` log; systems still running
    with full footprint capture derive the same pairs from the footprint
    log, so either capture mode feeds the checker identically.
    """
    if kernel.capture_cases:
        return tuple(kernel.step_cases)
    return tuple(
        (case, context) for case, context, _footprint in kernel.step_footprints
    )


def _domain_order(kernel: Kernel) -> List:
    """Domains in schedule order (then creation order for the rest)."""
    order = []
    seen = set()
    for core_id in kernel.scheduler.scheduled_cores():
        for domain in kernel.scheduler.domains_on_core(core_id):
            if domain.name not in seen:
                seen.add(domain.name)
                order.append(domain)
    for domain in kernel.domains.values():
        if domain.name not in seen:
            seen.add(domain.name)
            order.append(domain)
    return order


def _role_labels(kernel: Kernel, observer: str) -> Dict[str, str]:
    """Domain name -> canonical role label, observer distinguished."""
    labels: Dict[str, str] = {}
    for position, domain in enumerate(_domain_order(kernel)):
        if domain.name == observer:
            labels[domain.name] = "obs"
        else:
            labels[domain.name] = f"d{position}"
    return labels


def _colour_map(kernel: Kernel) -> Dict[int, int]:
    """Concrete colour id -> canonical id by first appearance."""
    mapping: Dict[int, int] = {}
    for colour in sorted(kernel.allocator.kernel_colours):
        mapping.setdefault(colour, len(mapping))
    for domain in _domain_order(kernel):
        for colour in sorted(domain.colours):
            mapping.setdefault(colour, len(mapping))
    return mapping


def _relabel_context(context: str, labels: Dict[str, str]) -> str:
    """Instrumentation context with domain names replaced by role labels."""
    if context.startswith("@switch:"):
        pair = context[len("@switch:"):]
        from_name, _, to_name = pair.partition(">")
        return (
            f"@switch:{labels.get(from_name, from_name)}"
            f">{labels.get(to_name, to_name)}"
        )
    name, sep, mode = context.partition("/")
    return f"{labels.get(name, name)}{sep}{mode}"


def _relabel_colour_keys(fingerprints: Dict[int, Tuple],
                         colours: Dict[int, int]) -> Tuple:
    return tuple(
        (colours.get(colour, ("raw", colour)), entries)
        for colour, entries in sorted(fingerprints.items())
    )


def _tcb_labels(order, labels) -> Dict[str, Tuple[str, int]]:
    return {
        tcb.name: (labels[domain.name], position)
        for domain in order
        for position, tcb in enumerate(domain.threads)
    }


def _cores_component(kernel: Kernel, tcb_labels: Dict) -> List[Tuple]:
    cores = []
    for core_id in kernel.scheduler.scheduled_cores():
        core = kernel.machine.cores[core_id]
        state = kernel.scheduler.state(core_id)
        current = kernel.current_thread(core_id)
        cores.append((
            core_id,
            core.clock.now,
            state.position,
            state.slice_end,
            state.forced_switch_at,
            tcb_labels.get(current.name) if current is not None else None,
            core.irq.fingerprint(),
        ))
    return cores


def _domains_component(order, labels, colours, tcb_labels) -> List[Tuple]:
    domains = []
    for domain in order:
        threads = tuple(
            (
                tcb_labels[tcb.name],
                tcb.state.value,
                tcb.pc - tcb.code_base,
                tcb.steps_executed,
                # Program state *and* its parameters: params (e.g. the
                # secret) determine all future instructions, so omitting
                # them could alias states with different futures.
                (tcb.program.index, tcb.program.finished,
                 tuple(sorted(tcb.program.ctx.params.items())))
                if isinstance(tcb.program, ReplayableProgram)
                else ("opaque", tcb.steps_executed),
                (tcb.pending_obs.value, tcb.pending_obs.latency)
                if tcb.pending_obs is not None
                else None,
                tcb.wake_time,
                tcb.blocked_on_endpoint,
            )
            for tcb in domain.threads
        )
        domains.append((
            labels[domain.name],
            tuple(colours[c] for c in sorted(domain.colours)),
            domain.slice_cycles,
            domain.pad_cycles,
            tuple(sorted(domain.irq_lines)),
            threads,
            tuple(sorted(domain.rr_position.items())),
        ))
    return domains


def _observation_item(record, tcb_labels) -> Tuple:
    return (
        tcb_labels.get(record.thread, record.thread),
        record.value,
        record.latency,
    )


def _switch_item(record, labels, colours) -> Tuple:
    return (
        record.core_id,
        labels.get(record.from_domain, record.from_domain),
        labels.get(record.to_domain, record.to_domain),
        record.scheduled_at,
        record.entered_at,
        record.finished_at,
        record.pad_target,
        record.released_at,
        record.flush_cycles,
        record.lines_written_back,
        tuple(sorted(record.post_flush_fingerprints.items())),
        _relabel_colour_keys(record.llc_colour_fingerprints, colours),
    )


def canonical_state(kernel: Kernel, observer: str = "Lo") -> Tuple:
    """The canonical (symmetry-reduced) structure the digest hashes."""
    labels = _role_labels(kernel, observer)
    colours = _colour_map(kernel)
    order = _domain_order(kernel)
    tcb_labels = _tcb_labels(order, labels)

    cores = _cores_component(kernel, tcb_labels)
    domains = _domains_component(order, labels, colours, tcb_labels)

    observations = tuple(
        (
            labels[domain.name],
            tuple(
                _observation_item(record, tcb_labels)
                for record in kernel.observations[domain.name]
            ),
        )
        for domain in order
    )

    switches = tuple(
        _switch_item(record, labels, colours)
        for record in kernel.switch_records
    )

    cases = tuple(
        (case, _relabel_context(context, labels))
        for case, context in case_trace(kernel)
    )

    return (
        cores,
        tuple(domains),
        kernel.machine.fingerprint_all(),
        kernel.machine.memory.fingerprint(),
        observations,
        switches,
        cases,
        kernel.endpoints.n_endpoints,
    )


def state_fingerprint(kernel: Kernel, observer: str = "Lo") -> str:
    """Stable hex digest of the canonical state."""
    doc = repr(canonical_state(kernel, observer)).encode()
    return hashlib.blake2b(doc, digest_size=DIGEST_SIZE).hexdigest()


def _chain_digest(cache: Dict, key, items: List, encode) -> bytes:
    """Rolling digest of an append-only list, memoised on ``cache``.

    ``digest_n = H(digest_{n-1} || encode(items[n]))`` folded one item
    at a time, so the digest depends only on the item sequence -- two
    kernels whose lists grew by different increments still agree.  The
    cache entry is ``(length, digest)``; a shrink (never happens during
    exploration) falls back to recomputing from the seed.
    """
    length, digest = cache.get(key, (0, _CHAIN_SEED))
    if length > len(items):
        length, digest = 0, _CHAIN_SEED
    if length < len(items):
        for item in items[length:]:
            digest = hashlib.blake2b(
                digest + encode(item), digest_size=DIGEST_SIZE
            ).digest()
        cache[key] = (len(items), digest)
    return digest


def state_fingerprint_incremental(kernel: Kernel, observer: str = "Lo") -> str:
    """Digest equivalent to :func:`state_fingerprint`, computed lazily.

    Induces the *same equality partition* over kernel states (two states
    collide iff all canonical components agree, modulo the same 128-bit
    hash strength the full digest already has), but the digest *value*
    differs from the full one -- an exploration must use one mode
    throughout.  The accumulated evidence lists (observations, switch
    records, case log) are append-only during exploration, so they are
    folded into per-kernel rolling chain digests (cached on
    ``kernel._mc_fp_cache``, copied by both snapshot paths) and each
    transition pays only for the suffix it appended.  Relabelling maps
    are static after build -- domains and threads are never created
    mid-exploration -- which is what makes caching relabelled items
    sound.
    """
    cache = getattr(kernel, "_mc_fp_cache", None)
    if cache is None:
        cache = {}
        kernel._mc_fp_cache = cache
    # The relabelling maps are static after build, so compute them once
    # per exploration and cache by *name* (never by object reference:
    # the cache dict is shallow-copied into clones, whose domain objects
    # are fresh -- names are the only identity safe to carry across).
    static = cache.get(("static", observer))
    if static is None:
        labels = _role_labels(kernel, observer)
        colours = _colour_map(kernel)
        order = _domain_order(kernel)
        static = (
            labels, colours,
            tuple(domain.name for domain in order),
            _tcb_labels(order, labels),
        )
        cache[("static", observer)] = static
    labels, colours, order_names, tcb_labels = static
    order = [kernel.domains[name] for name in order_names]

    cores = _cores_component(kernel, tcb_labels)
    domains = _domains_component(order, labels, colours, tcb_labels)

    observations = tuple(
        (
            labels[name],
            _chain_digest(
                cache,
                ("obs", name),
                kernel.observations[name],
                lambda record: _dumps(
                    _observation_item(record, tcb_labels), 4
                ),
            ),
        )
        for name in order_names
    )
    switches = _chain_digest(
        cache,
        "switches",
        kernel.switch_records,
        lambda record: _dumps(_switch_item(record, labels, colours), 4),
    )
    case_items = (
        kernel.step_cases if kernel.capture_cases else kernel.step_footprints
    )
    cases = _chain_digest(
        cache,
        "cases",
        case_items,
        lambda item: _dumps(
            (item[0], _relabel_context(item[1], labels)), 4
        ),
    )

    # Constant-size per-element digests in place of the full
    # microarchitectural structures: equality-equivalent, but the final
    # document stays small no matter how much hardware state exists.
    doc = _dumps((
        cores,
        tuple(domains),
        kernel.machine.digest_all(),
        kernel.machine.memory.cached_digest(),
        observations,
        switches,
        cases,
        kernel.endpoints.n_endpoints,
    ), 4)
    return hashlib.blake2b(doc, digest_size=DIGEST_SIZE).hexdigest()


def product_fingerprint(fp_a: str, fp_b: str) -> str:
    """Digest of a product state; the pair is unordered (swap symmetry)."""
    low, high = (fp_a, fp_b) if fp_a <= fp_b else (fp_b, fp_a)
    return hashlib.blake2b(
        (low + ":" + high).encode(), digest_size=DIGEST_SIZE
    ).hexdigest()

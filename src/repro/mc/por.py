"""Partial-order reduction: symmetric-IRQ-line collapse.

The product's nondeterminism is the choice alphabet ``step`` /
``irq(line)``.  Injections do **not** commute with steps (an IRQ fires
at the stepped core's *current* clock, so ``irq;step`` and ``step;irq``
reach different clocks), which rules out classic sleep-set reductions --
and they would be unsound anyway combined with fingerprint dedup, which
already merges converging interleavings.  What *is* soundly reducible
is the choice between two **symmetric lines** in a single state:

The modelled hardware and kernel treat distinct IRQ lines identically
except through per-line state -- the controller's mask/pending/delivery
bookkeeping and the partition policy's ownership map.  The delivery
path itself is line-blind: ``Kernel._handle_irq`` touches the same
handler code lines and kernel data words whatever the line number (the
SC-1 footprint capture confirms this: case-"1"/"2a"/"2b" footprints
never contain a line-number-dependent address).  Hence if two lines
have identical *signatures* in a product state --

* the same owner under the IRQ partition policy (this fixes all future
  masking behaviour), and
* on both sides of the pair: the same masked status, the same pending
  status, and the same delivered count

-- then swapping the two line numbers is an automorphism of the product
transition system rooted at that state: it maps reachable states to
reachable states, preserves every Lo-visible observable and therefore
every violation, and preserves depths.  Exploring only the lowest line
of each signature class thus preserves the verdict, the minimal
counterexample depth, and exhaustiveness; only the visited-state count
shrinks (by exactly the collapsed siblings' subtrees).

On single-line specs (the default ``irq_lines=(1,)``) every class is a
singleton and the reduction is the identity -- state counts are
untouched, which the differential tests pin.
"""

from __future__ import annotations

from typing import List, Tuple

from .product import ProductState
from .spec import McSpec


def _line_signature(state: ProductState, line: int) -> Tuple:
    """Everything that distinguishes ``line`` from its siblings."""
    irq_a = state.kernel_a.machine.cores[0].irq
    irq_b = state.kernel_b.machine.cores[0].irq
    return (
        state.kernel_a.irq_policy.owner_of(line),
        line in irq_a._masked,
        line in irq_b._masked,
        any(pending.line == line for pending in irq_a._pending),
        any(pending.line == line for pending in irq_b._pending),
        irq_a.delivered_count.get(line, 0),
        irq_b.delivered_count.get(line, 0),
    )


def reduce_choices(
    state: ProductState, choices: List[Tuple], spec: McSpec,
) -> Tuple[List[Tuple], int]:
    """Collapse symmetric ``irq(line)`` choices; returns (kept, pruned).

    Keeps every non-IRQ choice, and for each signature class of lines
    the lowest-numbered representative.
    """
    if len(choices) <= 2:
        return choices, 0
    kept: List[Tuple] = []
    seen_signatures = set()
    pruned = 0
    for choice in choices:
        if choice[0] != "irq":
            kept.append(choice)
            continue
        signature = _line_signature(state, choice[1])
        if signature in seen_signatures:
            pruned += 1
            continue
        seen_signatures.add(signature)
        kept.append(choice)
    return kept, pruned

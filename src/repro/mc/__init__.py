"""Bounded explicit-state model checking of noninterference.

The checker exhaustively explores the reachable product state space of
a small machine (the ``micro`` and ``tiny`` presets): product states
are pairs of systems differing only in Hi's secret, stepped in lockstep
through the real kernel/hardware transition function, with Lo-visible
equivalence and the Sect. 5.2 mechanism invariants verified on every
transition.  Violations unwind into minimal, replayable counterexamples
that the concrete two-run harness (``core/noninterference.py``)
confirms independently.
"""

from .explorer import McNode, McOptions, ModelChecker, path_to
from .fingerprint import (
    canonical_state,
    product_fingerprint,
    state_fingerprint,
    state_fingerprint_incremental,
)
from .product import McViolation, ProductState
from .replay import confirm_counterexample, replay_build_and_run
from .report import McCounterexample, McReport, McStats, render_json, render_text
from .spec import McSpec, build_system, run_to_terminal

__all__ = [
    "McCounterexample",
    "McNode",
    "McOptions",
    "McReport",
    "McSpec",
    "McStats",
    "McViolation",
    "ModelChecker",
    "ProductState",
    "build_system",
    "canonical_state",
    "confirm_counterexample",
    "path_to",
    "product_fingerprint",
    "render_json",
    "render_text",
    "replay_build_and_run",
    "run_to_terminal",
    "state_fingerprint",
    "state_fingerprint_incremental",
]

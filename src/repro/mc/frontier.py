"""Scaled visited sets and frontiers: bitstate hashing, disk spill.

Two memory levers for explorations that outgrow RAM, both opt-in and
both orthogonal to the search logic in ``explorer.py``:

**Bitstate hashing** (Holzmann's supertrace): the visited set becomes a
Bloom filter of ``m`` bits probed by ``k`` double-hashed positions per
state, derived from the state's 128-bit canonical digest -- no stored
fingerprints at all.  A Bloom *false positive* makes the checker treat
a genuinely new state as visited, i.e. it can **omit** states, never
double-count them; verdicts therefore keep PASS soundness only
probabilistically, and the report carries the standard estimated
omission probability ``(1 - e^{-kn/m})^k`` for ``n`` inserted states.
False positives never *invent* violations: every violation is observed
on a concretely executed transition.

**Spill frontier**: a FIFO of (fingerprint, path, depth) entries that
keeps up to ``ram_states`` live product states in memory and overflows
the rest to chunked pickle files, storing only the replayable choice
path.  Popping a spilled entry rebuilds the product state by replaying
its path from the root (``ProductState.from_path``) -- the same
plain-data idiom the parallel explorer uses across the fork boundary --
so peak RAM is bounded by ``ram_states`` live systems regardless of
``spec.max_states``.
"""

from __future__ import annotations

import math
import os
import pickle
import tempfile
from collections import deque
from typing import Iterator, List, Optional, Tuple

from .product import ProductState
from .spec import McSpec

#: Frontier entry: (fingerprint, depth, choice path from the root).
Entry = Tuple[str, int, Tuple[Tuple, ...]]


class BitstateVisited:
    """Double-hashed Bloom filter over canonical state digests."""

    def __init__(self, mbytes: float, hashes: int = 2):
        self.n_bits = max(1024, int(mbytes * 8 * 1024 * 1024))
        self.hashes = hashes
        self._bits = bytearray((self.n_bits + 7) // 8)
        self.inserted = 0

    def _positions(self, fingerprint: str) -> Iterator[int]:
        # Kirsch-Mitzenmacher double hashing over the two 64-bit halves
        # of the hex digest; h2 is forced odd so probes cycle the table.
        h1 = int(fingerprint[:16], 16)
        h2 = int(fingerprint[16:32], 16) | 1
        for i in range(self.hashes):
            yield (h1 + i * h2) % self.n_bits

    def __contains__(self, fingerprint: str) -> bool:
        bits = self._bits
        for position in self._positions(fingerprint):
            if not bits[position >> 3] & (1 << (position & 7)):
                return False
        return True

    def add(self, fingerprint: str) -> None:
        bits = self._bits
        for position in self._positions(fingerprint):
            bits[position >> 3] |= 1 << (position & 7)
        self.inserted += 1

    def omission_probability(self) -> float:
        """Estimated per-state false-positive rate after all inserts."""
        if not self.inserted:
            return 0.0
        exponent = -self.hashes * self.inserted / self.n_bits
        return (1.0 - math.exp(exponent)) ** self.hashes


class SpillFrontier:
    """FIFO frontier with live states in RAM and paths on disk.

    Entries enter as (fingerprint, depth, path, state).  While the RAM
    deque is below ``ram_states`` and nothing is spilled, pops return
    the stored live state.  Beyond that, appends write (fp, depth, path)
    triples to pickle chunks; pops drain RAM first (preserving FIFO
    order -- spilled entries are strictly younger) and then load the
    oldest chunk, rebuilding each state by path replay on demand.
    """

    CHUNK_ENTRIES = 256

    def __init__(self, spec: McSpec, secret_a: int, secret_b: int,
                 ram_states: int = 512, spill_dir: Optional[str] = None):
        self.spec = spec
        self.secret_a = secret_a
        self.secret_b = secret_b
        self.ram_states = max(1, ram_states)
        self._ram: deque = deque()  # (fp, depth, path, state)
        self._chunks: deque = deque()  # file paths, oldest first
        self._pending: List[Entry] = []  # entries awaiting a chunk write
        self._loaded: deque = deque()  # entries from the oldest chunk
        self._dir = spill_dir
        self._owned_dir: Optional[tempfile.TemporaryDirectory] = None
        self._chunk_seq = 0
        self.spilled_total = 0

    def __len__(self) -> int:
        return (
            len(self._ram) + len(self._loaded) + len(self._pending)
            + len(self._chunks) * self.CHUNK_ENTRIES
        )

    def __bool__(self) -> bool:
        return bool(
            self._ram or self._loaded or self._pending or self._chunks
        )

    def _spill_dir(self) -> str:
        if self._dir is None:
            self._owned_dir = tempfile.TemporaryDirectory(prefix="mc-spill-")
            self._dir = self._owned_dir.name
        return self._dir

    def push(self, fingerprint: str, depth: int,
             path: Tuple[Tuple, ...], state: ProductState) -> None:
        if not self._spilling() and len(self._ram) < self.ram_states:
            self._ram.append((fingerprint, depth, path, state))
            return
        # Once spilling starts, all younger entries go to disk: FIFO
        # order across the RAM/disk boundary stays exact.
        self._pending.append((fingerprint, depth, path))
        self.spilled_total += 1
        if len(self._pending) >= self.CHUNK_ENTRIES:
            self._flush_chunk()

    def _spilling(self) -> bool:
        return bool(self._pending or self._chunks or self._loaded)

    def _flush_chunk(self) -> None:
        directory = self._spill_dir()
        path = os.path.join(directory, f"chunk-{self._chunk_seq:08d}.pkl")
        self._chunk_seq += 1
        with open(path, "wb") as handle:
            pickle.dump(self._pending, handle, protocol=pickle.HIGHEST_PROTOCOL)
        self._chunks.append(path)
        self._pending = []

    def peek_depth(self) -> int:
        """Depth of the next entry :meth:`pop` would return."""
        if self._ram:
            return self._ram[0][1]
        self._ensure_loaded()
        return self._loaded[0][1]

    def _ensure_loaded(self) -> None:
        if not self._loaded:
            if self._chunks:
                chunk = self._chunks.popleft()
                with open(chunk, "rb") as handle:
                    self._loaded.extend(pickle.load(handle))
                os.unlink(chunk)
            elif self._pending:
                self._loaded.extend(self._pending)
                self._pending = []

    def pop(self) -> Tuple[str, int, Tuple[Tuple, ...], ProductState]:
        if self._ram:
            return self._ram.popleft()
        self._ensure_loaded()
        fingerprint, depth, path = self._loaded.popleft()
        state = ProductState.from_path(
            self.spec, self.secret_a, self.secret_b, path
        )
        return fingerprint, depth, path, state

    def close(self) -> None:
        for chunk in self._chunks:
            try:
                os.unlink(chunk)
            except OSError:
                pass
        self._chunks.clear()
        if self._owned_dir is not None:
            self._owned_dir.cleanup()
            self._owned_dir = None

"""The product construction: lockstep pairs and per-transition checks.

A *product state* is a pair of whole systems built identically except
for Hi's secret.  Each abstract choice (a kernel step, or an IRQ raised
now) is concretised on both sides; noninterference says everything Lo
can observe must then stay equal across the pair forever.

The comparison is over **Lo-visible prefixes**, never raw step indices:
under full protection Hi legitimately executes a secret-dependent
*number* of instructions inside its slice, so position-by-position
global comparison would report false violations.  What must agree is

* (a) Lo's observation trace and the Lo-projection at every switch into
  Lo (``core/unwinding.py``'s projection, reused verbatim), compared on
  the common prefix;
* (b) the Sect. 5.2 case split restricted to Lo-attributed steps: the
  sequence of case labels ("1"/"2a"/"2b") Lo's execution produces must
  classify identically on both sides;
* (c) per-side mechanism invariants on every new switch record, gated on
  the mechanisms the TP config enables: flush-reset (PO-3),
  pad-to-constant release timestamps (PO-4/PO-5), and colour
  partitioning of every recorded touch (PO-2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.invariants import check_partition_touches
from ..core.noninterference import trace_divergence
from ..core.unwinding import lo_projection
from ..kernel.kernel import Kernel
from .fingerprint import product_fingerprint, state_fingerprint
from .spec import STEP, McSpec, apply_choice, build_system, is_terminal

OBSERVER = "Lo"


@dataclass(frozen=True)
class McViolation:
    """One noninterference/invariant violation found on a transition."""

    kind: str  # lo-trace | lo-projection | case-split | flush-reset |
               # pad-constant | partition
    detail: str
    side: str  # "pair" for cross-pair checks, else "a"/"b"
    divergence_index: Optional[int] = None

    def __str__(self) -> str:
        where = "" if self.side == "pair" else f" [side {self.side}]"
        return f"{self.kind}{where}: {self.detail}"


def _lo_case_trace(kernel: Kernel) -> Tuple[str, ...]:
    """Case labels of every Lo-attributed step, in execution order."""
    labels = []
    for case, context, _footprint in kernel.step_footprints:
        if (
            context == OBSERVER
            or context == f"{OBSERVER}/kernel"
            or (context.startswith("@switch:") and context.endswith(f">{OBSERVER}"))
        ):
            labels.append(case)
    return tuple(labels)


def _check_pair(kernel_a: Kernel, kernel_b: Kernel) -> List[McViolation]:
    """Cross-pair checks (a) and (b) over Lo-visible prefixes."""
    violations: List[McViolation] = []

    trace_a = kernel_a.observation_trace(OBSERVER)
    trace_b = kernel_b.observation_trace(OBSERVER)
    common = min(len(trace_a), len(trace_b))
    divergence = trace_divergence(trace_a[:common], trace_b[:common])
    if divergence is not None:
        violations.append(McViolation(
            kind="lo-trace",
            detail=str(divergence),
            side="pair",
            divergence_index=divergence.index,
        ))

    projection_a = lo_projection(kernel_a, OBSERVER)
    projection_b = lo_projection(kernel_b, OBSERVER)
    for index in range(min(len(projection_a), len(projection_b))):
        if projection_a[index] != projection_b[index]:
            violations.append(McViolation(
                kind="lo-projection",
                detail=(
                    f"Lo-projection differs at entry #{index} "
                    f"(release {projection_a[index][0]} vs "
                    f"{projection_b[index][0]})"
                ),
                side="pair",
                divergence_index=index,
            ))
            break

    cases_a = _lo_case_trace(kernel_a)
    cases_b = _lo_case_trace(kernel_b)
    for index in range(min(len(cases_a), len(cases_b))):
        if cases_a[index] != cases_b[index]:
            violations.append(McViolation(
                kind="case-split",
                detail=(
                    f"Lo step #{index} classified as case "
                    f"{cases_a[index]!r} vs {cases_b[index]!r}"
                ),
                side="pair",
                divergence_index=index,
            ))
            break

    return violations


def _check_side(kernel: Kernel, side: str,
                first_new_switch: int) -> List[McViolation]:
    """Per-side mechanism invariants (c) on newly produced switch records."""
    violations: List[McViolation] = []
    new_records = kernel.switch_records[first_new_switch:]

    if kernel.tp.flush_on_switch:
        for offset, record in enumerate(new_records):
            number = first_new_switch + offset
            expected = {
                element.name
                for element in
                kernel.machine.flushable_elements_of_core(record.core_id)
            }
            missing = expected - set(record.flushed_elements)
            if missing:
                violations.append(McViolation(
                    kind="flush-reset",
                    detail=(
                        f"switch #{number}: elements not flushed: "
                        f"{sorted(missing)}"
                    ),
                    side=side,
                ))
                continue
            for name in sorted(record.flushed_elements):
                post = record.post_flush_fingerprints.get(name)
                reset = record.reset_fingerprints.get(name)
                if post != reset:
                    violations.append(McViolation(
                        kind="flush-reset",
                        detail=f"switch #{number}: {name} not reset by flush",
                        side=side,
                    ))

    if kernel.tp.pad_switch:
        for offset, record in enumerate(new_records):
            number = first_new_switch + offset
            from_domain = kernel.domains.get(record.from_domain)
            expected_target = (
                record.scheduled_at + from_domain.pad_cycles
                if from_domain is not None else None
            )
            if record.pad_target != expected_target:
                violations.append(McViolation(
                    kind="pad-constant",
                    detail=(
                        f"switch #{number}: pad target {record.pad_target} "
                        f"!= schedule + pad {expected_target}"
                    ),
                    side=side,
                ))
            elif record.overrun or record.released_at != record.pad_target:
                violations.append(McViolation(
                    kind="pad-constant",
                    detail=(
                        f"switch #{number}: released at {record.released_at}, "
                        f"pad target {record.pad_target} (overrun: padding "
                        f"insufficient)"
                    ),
                    side=side,
                ))

    if kernel.tp.cache_colouring and new_records:
        # The touch log is cumulative; re-audit only when a switch just
        # happened (the boundary at which partitioning must hold).
        for violation in check_partition_touches(kernel):
            violations.append(McViolation(
                kind="partition", detail=str(violation), side=side,
            ))

    return violations


class ProductState:
    """A pair of systems, equal but for the secret, stepped in lockstep."""

    __slots__ = ("kernel_a", "kernel_b", "secret_a", "secret_b", "irq_budget")

    def __init__(self, kernel_a: Kernel, kernel_b: Kernel,
                 secret_a: int, secret_b: int, irq_budget: int):
        self.kernel_a = kernel_a
        self.kernel_b = kernel_b
        self.secret_a = secret_a
        self.secret_b = secret_b
        self.irq_budget = irq_budget

    @classmethod
    def initial(cls, spec: McSpec, secret_a: int, secret_b: int) -> "ProductState":
        return cls(
            kernel_a=build_system(spec, secret_a),
            kernel_b=build_system(spec, secret_b),
            secret_a=secret_a,
            secret_b=secret_b,
            irq_budget=spec.irq_budget,
        )

    @classmethod
    def from_path(cls, spec: McSpec, secret_a: int, secret_b: int,
                  path: Tuple[Tuple, ...]) -> "ProductState":
        """Rebuild a product state by replaying a choice path from the root."""
        state = cls.initial(spec, secret_a, secret_b)
        for choice in path:
            state.apply(choice, spec)
        return state

    def clone(self) -> "ProductState":
        return ProductState(
            kernel_a=self.kernel_a.snapshot(),
            kernel_b=self.kernel_b.snapshot(),
            secret_a=self.secret_a,
            secret_b=self.secret_b,
            irq_budget=self.irq_budget,
        )

    def terminal(self, spec: McSpec) -> bool:
        return is_terminal(self.kernel_a, spec) and is_terminal(self.kernel_b, spec)

    def available_choices(self, spec: McSpec) -> List[Tuple]:
        if self.terminal(spec):
            return []
        choices: List[Tuple] = [STEP]
        if self.irq_budget > 0:
            choices.extend(("irq", line) for line in spec.irq_lines)
        return choices

    def apply(self, choice: Tuple, spec: McSpec) -> List[McViolation]:
        """Concretise ``choice`` on both sides; return transition violations."""
        switches_a = len(self.kernel_a.switch_records)
        switches_b = len(self.kernel_b.switch_records)
        if not is_terminal(self.kernel_a, spec):
            apply_choice(self.kernel_a, choice, spec)
        if not is_terminal(self.kernel_b, spec):
            apply_choice(self.kernel_b, choice, spec)
        if choice[0] == "irq":
            self.irq_budget -= 1
        violations = _check_pair(self.kernel_a, self.kernel_b)
        violations.extend(_check_side(self.kernel_a, "a", switches_a))
        violations.extend(_check_side(self.kernel_b, "b", switches_b))
        return violations

    def fingerprint(self) -> str:
        return product_fingerprint(
            state_fingerprint(self.kernel_a, OBSERVER),
            state_fingerprint(self.kernel_b, OBSERVER),
        )

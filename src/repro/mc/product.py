"""The product construction: lockstep pairs and per-transition checks.

A *product state* is a pair of whole systems built identically except
for Hi's secret.  Each abstract choice (a kernel step, or an IRQ raised
now) is concretised on both sides; noninterference says everything Lo
can observe must then stay equal across the pair forever.

The comparison is over **Lo-visible prefixes**, never raw step indices:
under full protection Hi legitimately executes a secret-dependent
*number* of instructions inside its slice, so position-by-position
global comparison would report false violations.  What must agree is

* (a) Lo's observation trace and the Lo-projection at every switch into
  Lo (``core/unwinding.py``'s projection, reused verbatim), compared on
  the common prefix;
* (b) the Sect. 5.2 case split restricted to Lo-attributed steps: the
  sequence of case labels ("1"/"2a"/"2b") Lo's execution produces must
  classify identically on both sides;
* (c) per-side mechanism invariants on every new switch record, gated on
  the mechanisms the TP config enables: flush-reset (PO-3),
  pad-to-constant release timestamps (PO-4/PO-5), and colour
  partitioning of every recorded touch (PO-2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.invariants import check_partition_touches
from ..core.noninterference import trace_divergence
from ..core.unwinding import lo_projection, projection_entry
from ..kernel.kernel import Kernel
from .fingerprint import (
    case_trace,
    product_fingerprint,
    state_fingerprint,
    state_fingerprint_incremental,
)
from .spec import STEP, McSpec, apply_choice, build_system, is_terminal

OBSERVER = "Lo"


@dataclass(frozen=True)
class McViolation:
    """One noninterference/invariant violation found on a transition."""

    kind: str  # lo-trace | lo-projection | case-split | flush-reset |
               # pad-constant | partition
    detail: str
    side: str  # "pair" for cross-pair checks, else "a"/"b"
    divergence_index: Optional[int] = None

    def __str__(self) -> str:
        where = "" if self.side == "pair" else f" [side {self.side}]"
        return f"{self.kind}{where}: {self.detail}"


def _lo_case_trace(kernel: Kernel) -> Tuple[str, ...]:
    """Case labels of every Lo-attributed step, in execution order."""
    labels = []
    for case, context in case_trace(kernel):
        if (
            context == OBSERVER
            or context == f"{OBSERVER}/kernel"
            or (context.startswith("@switch:") and context.endswith(f">{OBSERVER}"))
        ):
            labels.append(case)
    return tuple(labels)


def _trace_cache(kernel: Kernel) -> dict:
    """The kernel's fingerprint/trace memo dict (created on demand).

    Shared with the incremental fingerprint; ``clone_for_mc`` copies it
    shallowly, so a clone inherits its parent's built prefixes and only
    pays for what it appends itself.
    """
    cache = getattr(kernel, "_mc_fp_cache", None)
    if cache is None:
        cache = {}
        kernel._mc_fp_cache = cache
    return cache


def _cached_obs_trace(kernel: Kernel) -> Tuple:
    """``kernel.observation_trace(OBSERVER)`` with prefix memoisation.

    The observation log is append-only during exploration, so the built
    tuple is cached as ``(source_length, items)`` and extended by the
    new suffix only -- identical items to the full rebuild.
    """
    cache = _trace_cache(kernel)
    records = kernel.observations[OBSERVER]
    length, acc = cache.get("lo_obs", (0, ()))
    if length > len(records):
        length, acc = 0, ()
    if length < len(records):
        acc = acc + tuple(
            (record.thread, record.value, record.latency)
            for record in records[length:]
        )
        cache["lo_obs"] = (len(records), acc)
    return acc


def _cached_projection(kernel: Kernel) -> Tuple:
    """``lo_projection(kernel, OBSERVER)`` with prefix memoisation.

    Entries come from the same :func:`projection_entry` builder the
    exact path uses, so both modes produce identical projections; the
    consumed length counts *switch records* (the filtered source), not
    entries.  The colour lists are static after build and cached as
    plain ints, safe to share across clones.
    """
    cache = _trace_cache(kernel)
    records = kernel.switch_records
    statics = cache.get("lo_proj_static")
    if statics is None:
        statics = (
            sorted(kernel.domains[OBSERVER].colours),
            sorted(kernel.allocator.kernel_colours),
            kernel.tp.way_partitioning,
        )
        cache["lo_proj_static"] = statics
    colours, kernel_colours, way_partitioned = statics
    length, acc = cache.get("lo_proj", (0, ()))
    if length > len(records):
        length, acc = 0, ()
    if length < len(records):
        new = []
        for record in records[length:]:
            entry = projection_entry(
                record, OBSERVER, colours, kernel_colours, way_partitioned
            )
            if entry is not None:
                new.append(entry)
        acc = acc + tuple(new)
        cache["lo_proj"] = (len(records), acc)
    return acc


def _cached_lo_cases(kernel: Kernel) -> Tuple[str, ...]:
    """``_lo_case_trace(kernel)`` with prefix memoisation.

    Reads the same underlying log ``case_trace`` reads (items are
    ``(case, context, ...)`` in either capture mode) and applies the
    same Lo-attribution filter, consuming only the appended suffix.
    """
    cache = _trace_cache(kernel)
    source = (
        kernel.step_cases if kernel.capture_cases else kernel.step_footprints
    )
    length, acc = cache.get("lo_cases", (0, ()))
    if length > len(source):
        length, acc = 0, ()
    if length < len(source):
        kernel_context = f"{OBSERVER}/kernel"
        switch_suffix = f">{OBSERVER}"
        new = []
        for item in source[length:]:
            context = item[1]
            if (
                context == OBSERVER
                or context == kernel_context
                or (context.startswith("@switch:")
                    and context.endswith(switch_suffix))
            ):
                new.append(item[0])
        acc = acc + tuple(new)
        cache["lo_cases"] = (len(source), acc)
    return acc


def _check_pair(
    kernel_a: Kernel,
    kernel_b: Kernel,
    cursors: Optional[List[int]] = None,
) -> List[McViolation]:
    """Cross-pair checks (a) and (b) over Lo-visible prefixes.

    ``cursors`` is the product state's [obs, projection, cases] prefix
    progress: every entry below a cursor was compared equal on an
    earlier transition of this very execution (the lists are append-only
    and every ancestor state ran this check), so only the new common
    suffix needs comparing.  ``None`` compares full prefixes (the exact,
    cursor-free mode the differential tests pin against).  Reported
    divergence indices are absolute either way.
    """
    violations: List[McViolation] = []
    obs_from, proj_from, case_from = cursors if cursors is not None else (0, 0, 0)

    if cursors is not None:
        # Cursor mode also memoises the *built* traces per kernel: the
        # logs are append-only, so each transition pays only for its
        # appended suffix instead of rebuilding O(path)-long lists.
        trace_a = _cached_obs_trace(kernel_a)
        trace_b = _cached_obs_trace(kernel_b)
    else:
        trace_a = kernel_a.observation_trace(OBSERVER)
        trace_b = kernel_b.observation_trace(OBSERVER)
    common = min(len(trace_a), len(trace_b))
    divergence = trace_divergence(
        trace_a[obs_from:common], trace_b[obs_from:common]
    )
    if divergence is not None and obs_from:
        # Recompute over the full prefix so the violation detail (which
        # embeds the index) is bit-identical to the exact mode's.
        divergence = trace_divergence(trace_a[:common], trace_b[:common])
    if divergence is not None:
        violations.append(McViolation(
            kind="lo-trace",
            detail=str(divergence),
            side="pair",
            divergence_index=divergence.index,
        ))
    elif cursors is not None:
        cursors[0] = common

    if cursors is not None:
        projection_a = _cached_projection(kernel_a)
        projection_b = _cached_projection(kernel_b)
    else:
        projection_a = lo_projection(kernel_a, OBSERVER)
        projection_b = lo_projection(kernel_b, OBSERVER)
    proj_common = min(len(projection_a), len(projection_b))
    for index in range(proj_from, proj_common):
        if projection_a[index] != projection_b[index]:
            violations.append(McViolation(
                kind="lo-projection",
                detail=(
                    f"Lo-projection differs at entry #{index} "
                    f"(release {projection_a[index][0]} vs "
                    f"{projection_b[index][0]})"
                ),
                side="pair",
                divergence_index=index,
            ))
            break
    else:
        if cursors is not None:
            cursors[1] = proj_common

    if cursors is not None:
        cases_a = _cached_lo_cases(kernel_a)
        cases_b = _cached_lo_cases(kernel_b)
    else:
        cases_a = _lo_case_trace(kernel_a)
        cases_b = _lo_case_trace(kernel_b)
    case_common = min(len(cases_a), len(cases_b))
    for index in range(case_from, case_common):
        if cases_a[index] != cases_b[index]:
            violations.append(McViolation(
                kind="case-split",
                detail=(
                    f"Lo step #{index} classified as case "
                    f"{cases_a[index]!r} vs {cases_b[index]!r}"
                ),
                side="pair",
                divergence_index=index,
            ))
            break
    else:
        if cursors is not None:
            cursors[2] = case_common

    return violations


def _check_side(kernel: Kernel, side: str,
                first_new_switch: int) -> List[McViolation]:
    """Per-side mechanism invariants (c) on newly produced switch records."""
    violations: List[McViolation] = []
    new_records = kernel.switch_records[first_new_switch:]

    if kernel.tp.flush_on_switch:
        for offset, record in enumerate(new_records):
            number = first_new_switch + offset
            expected = {
                element.name
                for element in
                kernel.machine.flushable_elements_of_core(record.core_id)
            }
            missing = expected - set(record.flushed_elements)
            if missing:
                violations.append(McViolation(
                    kind="flush-reset",
                    detail=(
                        f"switch #{number}: elements not flushed: "
                        f"{sorted(missing)}"
                    ),
                    side=side,
                ))
                continue
            for name in sorted(record.flushed_elements):
                post = record.post_flush_fingerprints.get(name)
                reset = record.reset_fingerprints.get(name)
                if post != reset:
                    violations.append(McViolation(
                        kind="flush-reset",
                        detail=f"switch #{number}: {name} not reset by flush",
                        side=side,
                    ))

    if kernel.tp.pad_switch:
        for offset, record in enumerate(new_records):
            number = first_new_switch + offset
            from_domain = kernel.domains.get(record.from_domain)
            expected_target = (
                record.scheduled_at + from_domain.pad_cycles
                if from_domain is not None else None
            )
            if record.pad_target != expected_target:
                violations.append(McViolation(
                    kind="pad-constant",
                    detail=(
                        f"switch #{number}: pad target {record.pad_target} "
                        f"!= schedule + pad {expected_target}"
                    ),
                    side=side,
                ))
            elif record.overrun or record.released_at != record.pad_target:
                violations.append(McViolation(
                    kind="pad-constant",
                    detail=(
                        f"switch #{number}: released at {record.released_at}, "
                        f"pad target {record.pad_target} (overrun: padding "
                        f"insufficient)"
                    ),
                    side=side,
                ))

    if kernel.tp.cache_colouring and new_records:
        # The touch log is cumulative; re-audit only when a switch just
        # happened (the boundary at which partitioning must hold).
        for violation in check_partition_touches(kernel):
            violations.append(McViolation(
                kind="partition", detail=str(violation), side=side,
            ))

    return violations


class ProductState:
    """A pair of systems, equal but for the secret, stepped in lockstep."""

    __slots__ = ("kernel_a", "kernel_b", "secret_a", "secret_b", "irq_budget",
                 "check_cursors")

    def __init__(self, kernel_a: Kernel, kernel_b: Kernel,
                 secret_a: int, secret_b: int, irq_budget: int,
                 check_cursors: Optional[List[int]] = None):
        self.kernel_a = kernel_a
        self.kernel_b = kernel_b
        self.secret_a = secret_a
        self.secret_b = secret_b
        self.irq_budget = irq_budget
        # Checked-prefix positions [observations, projection, lo-cases];
        # see _check_pair.  Inherited by clones: a clone's history *is*
        # its parent's history.
        self.check_cursors = (
            check_cursors if check_cursors is not None else [0, 0, 0]
        )

    @classmethod
    def initial(cls, spec: McSpec, secret_a: int, secret_b: int) -> "ProductState":
        return cls(
            kernel_a=build_system(spec, secret_a),
            kernel_b=build_system(spec, secret_b),
            secret_a=secret_a,
            secret_b=secret_b,
            irq_budget=spec.irq_budget,
        )

    @classmethod
    def from_path(cls, spec: McSpec, secret_a: int, secret_b: int,
                  path: Tuple[Tuple, ...]) -> "ProductState":
        """Rebuild a product state by replaying a choice path from the root."""
        state = cls.initial(spec, secret_a, secret_b)
        for choice in path:
            state.apply(choice, spec)
        return state

    def clone(self, fast: bool = True) -> "ProductState":
        """An independent copy; ``fast`` uses the hand-rolled deep copy.

        ``Kernel.clone_for_mc`` covers exactly the systems the checker
        builds (plain instrumentation, no SMT, ReplayableProgram
        threads); anything outside that envelope raises ``TypeError``
        and falls back to the deepcopy snapshot, so ``fast=True`` is
        always safe.
        """
        if fast:
            try:
                kernel_a = self.kernel_a.clone_for_mc()
                kernel_b = self.kernel_b.clone_for_mc()
            except TypeError:
                fast = False
        if not fast:
            kernel_a = self.kernel_a.snapshot()
            kernel_b = self.kernel_b.snapshot()
        return ProductState(
            kernel_a=kernel_a,
            kernel_b=kernel_b,
            secret_a=self.secret_a,
            secret_b=self.secret_b,
            irq_budget=self.irq_budget,
            check_cursors=list(self.check_cursors),
        )

    def terminal(self, spec: McSpec) -> bool:
        return is_terminal(self.kernel_a, spec) and is_terminal(self.kernel_b, spec)

    def available_choices(self, spec: McSpec) -> List[Tuple]:
        if self.terminal(spec):
            return []
        choices: List[Tuple] = [STEP]
        if self.irq_budget > 0:
            choices.extend(("irq", line) for line in spec.irq_lines)
        return choices

    def apply(self, choice: Tuple, spec: McSpec,
              incremental: bool = True) -> List[McViolation]:
        """Concretise ``choice`` on both sides; return transition violations.

        ``incremental`` compares only the evidence appended since the
        last check on this execution (sound because the compared lists
        are append-only and every ancestor ran the same check); ``False``
        recompares full prefixes -- the differential tests pin both modes
        to identical verdicts.
        """
        marks = self.begin_apply()
        if not is_terminal(self.kernel_a, spec):
            apply_choice(self.kernel_a, choice, spec)
        if not is_terminal(self.kernel_b, spec):
            apply_choice(self.kernel_b, choice, spec)
        return self.finish_apply(choice, marks, incremental)

    def begin_apply(self) -> Tuple[int, int]:
        """Pre-transition marks (switch-record counts) for finish_apply.

        ``begin_apply`` / step-the-kernels / ``finish_apply`` is the
        decomposed form of :meth:`apply`; the batched frontier expansion
        uses it to step many states' kernels through the lockstep batch
        engine between the two halves.
        """
        return (
            len(self.kernel_a.switch_records),
            len(self.kernel_b.switch_records),
        )

    def finish_apply(self, choice: Tuple, marks: Tuple[int, int],
                     incremental: bool = True) -> List[McViolation]:
        """Post-transition bookkeeping and checks; see :meth:`begin_apply`."""
        if choice[0] == "irq":
            self.irq_budget -= 1
        cursors = self.check_cursors if incremental else None
        violations = _check_pair(self.kernel_a, self.kernel_b, cursors)
        violations.extend(_check_side(self.kernel_a, "a", marks[0]))
        violations.extend(_check_side(self.kernel_b, "b", marks[1]))
        return violations

    def fingerprint(self, incremental: bool = False) -> str:
        fp = state_fingerprint_incremental if incremental else state_fingerprint
        return product_fingerprint(
            fp(self.kernel_a, OBSERVER),
            fp(self.kernel_b, OBSERVER),
        )

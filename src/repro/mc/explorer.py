"""Bounded explicit-state exploration of the noninterference product.

Breadth-first search over product states, deduplicated by canonical
fingerprint; frontier entries carry their full choice path from the
root, so a violating transition *is* a minimal counterexample path (BFS
discovers states in depth order, so the first violating depth is the
minimal one; every violation at that depth is collected, deeper ones
are provably redundant and the search stops).

The frontier holds live product states: expanding a state clones it
once per choice except the last, which consumes the parent in place --
snapshots are a dominant cost, so a k-way branch costs k-1 copies, not
k+1.  Violating children are recorded (for dedup) but never expanded:
everything after a violation is more of the same divergence.

Exploration scale is governed by :class:`McOptions`, four compounding
and independently toggleable levers (all proven verdict-identical to
the exact explorer by the differential test suite):

* ``por`` -- partial-order reduction collapsing symmetric ``irq(line)``
  choices (``por.py``; identity on single-line specs);
* ``incremental`` -- memoised canonical fingerprints plus
  checked-prefix cursors for the pair comparisons (``fingerprint.py``,
  ``product.py``);
* ``fast_clone`` -- the hand-rolled ``Kernel.clone_for_mc`` deep copy
  instead of ``copy.deepcopy`` (falls back automatically outside its
  envelope);
* ``batch_expand`` -- step-choice children of a BFS level advanced
  through the vectorized lockstep batch engine (``batch_expand.py``).

Memory scale: ``bitstate_mb`` swaps the visited set for a Bloom filter
(non-exhaustive "bitstate" verdict with an estimated omission
probability in the report) and ``spill_ram_states`` bounds live product
states in RAM by spilling frontier overflow to disk as replayable
paths.  Without them the verdict semantics are exactly the seed
explorer's: *exhaustive* only when every secret pair's frontier drained
with neither bound cutting anything off.
"""

from __future__ import annotations

import gc
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .batch_expand import batch_eligible, step_states_batched
from .frontier import BitstateVisited, SpillFrontier
from .por import reduce_choices
from .product import ProductState
from .report import McCounterexample, McReport, McStats
from .spec import STEP, McSpec, apply_choice, is_terminal

#: Stop-reason precedence: a violation verdict outranks a memory cut,
#: which outranks a depth cut, which outranks a clean full drain.
_STOP_PRECEDENCE = ("violation", "state-bound", "depth-bound", "exhausted")

#: The --profile phase keys, in render order.
PROFILE_PHASES = ("clone", "step", "check", "fingerprint", "dedup")


@dataclass(frozen=True)
class McOptions:
    """Exploration levers; defaults match the acceptance configuration."""

    por: bool = True
    incremental: bool = True
    fast_clone: bool = True
    batch_expand: bool = False
    batch_width: int = 32
    bitstate_mb: Optional[float] = None
    spill_ram_states: Optional[int] = None
    spill_dir: Optional[str] = None
    profile: bool = False

    @classmethod
    def exact(cls) -> "McOptions":
        """The seed explorer's behaviour: every lever off."""
        return cls(por=False, incremental=False, fast_clone=False)


@dataclass
class McNode:
    """Predecessor link for one visited product state (kept for
    compatibility with external consumers; the explorer itself now
    carries full paths on frontier entries)."""

    depth: int
    parent: Optional[str]  # fingerprint, None for the root
    choice: Optional[Tuple]


def path_to(visited: Dict[str, McNode], fingerprint: str) -> Tuple[Tuple, ...]:
    """The choice path from the root to ``fingerprint``, via parent links."""
    path: List[Tuple] = []
    node = visited[fingerprint]
    while node.parent is not None:
        path.append(node.choice)
        node = visited[node.parent]
    return tuple(reversed(path))


class _Profile:
    """Per-phase wall-clock accumulator; a no-op unless enabled."""

    def __init__(self, enabled: bool):
        self.enabled = enabled
        self.seconds: Dict[str, float] = {phase: 0.0 for phase in PROFILE_PHASES}

    def add(self, phase: str, elapsed: float) -> None:
        self.seconds[phase] += elapsed

    def to_json(self) -> Dict[str, float]:
        return {phase: round(self.seconds[phase], 6) for phase in PROFILE_PHASES}


class ModelChecker:
    """Exhaustive (bounded) noninterference check of one :class:`McSpec`."""

    def __init__(self, spec: McSpec, jobs: int = 1,
                 options: Optional[McOptions] = None):
        self.spec = spec
        self.jobs = max(1, jobs)
        self.options = options if options is not None else McOptions()

    def run(self) -> McReport:
        # Exploration allocates kernel snapshots at a rate that makes
        # the cyclic GC's generation scans a measurable fraction of the
        # wall clock (~20%); nothing in the hot loop relies on prompt
        # cycle collection, so pause the collector and sweep once at
        # the end.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            return self._run()
        finally:
            if gc_was_enabled:
                gc.enable()
                gc.collect()

    def _run(self) -> McReport:
        options = self.options
        stats = McStats()
        counterexamples: List[McCounterexample] = []
        cuts: List[str] = []
        profile = _Profile(options.profile)
        bitstate_inserted = 0
        bitstate_probability = 0.0
        if self.jobs > 1:
            from .parallel import explore_pair_parallel
            with _fork_pool(self.jobs) as pool:
                for secret_a, secret_b in self.spec.secret_pairs():
                    pair_cexs, cut = explore_pair_parallel(
                        self.spec, secret_a, secret_b, stats, pool, self.jobs,
                        options,
                    )
                    counterexamples.extend(pair_cexs)
                    if cut is not None:
                        cuts.append(cut)
        else:
            for secret_a, secret_b in self.spec.secret_pairs():
                pair_cexs, cut, bloom = self._explore_pair(
                    secret_a, secret_b, stats, profile,
                )
                counterexamples.extend(pair_cexs)
                if cut is not None:
                    cuts.append(cut)
                if bloom is not None:
                    bitstate_inserted += bloom.inserted
                    bitstate_probability = max(
                        bitstate_probability, bloom.omission_probability()
                    )

        counterexamples.sort(
            key=lambda cex: (cex.depth, cex.secret_a, cex.secret_b))
        if counterexamples:
            stop_reason = "violation"
        elif "state-bound" in cuts:
            stop_reason = "state-bound"
        elif "depth-bound" in cuts:
            stop_reason = "depth-bound"
        else:
            stop_reason = "exhausted"
        bitstate = None
        if options.bitstate_mb:
            # A Bloom false positive can silently omit states, so a
            # bitstate run is never exhaustive, whatever the drain said.
            bitstate = {
                "mbytes": options.bitstate_mb,
                "inserted": bitstate_inserted,
                "est_omission_probability": round(bitstate_probability, 9),
            }
        return McReport(
            spec=self.spec,
            passed=not counterexamples,
            exhaustive=stop_reason == "exhausted" and bitstate is None,
            stop_reason=stop_reason,
            stats=stats,
            counterexamples=counterexamples,
            jobs=self.jobs,
            bitstate=bitstate,
            profile=profile.to_json() if options.profile else None,
        )

    def _explore_pair(
        self, secret_a: int, secret_b: int, stats: McStats, profile: _Profile,
    ) -> Tuple[List[McCounterexample], Optional[str],
               Optional[BitstateVisited]]:
        """Serial BFS over the product rooted at one secret pair."""
        spec = self.spec
        options = self.options
        timed = profile.enabled
        clock = time.perf_counter
        incremental = options.incremental

        root = ProductState.initial(spec, secret_a, secret_b)
        root_fp = root.fingerprint(incremental)
        bloom: Optional[BitstateVisited] = None
        if options.bitstate_mb:
            bloom = BitstateVisited(options.bitstate_mb)
            visited = bloom
        else:
            visited = set()
        visited.add(root_fp)
        stats.states_visited += 1
        if options.spill_ram_states is not None:
            frontier = SpillFrontier(
                spec, secret_a, secret_b,
                ram_states=options.spill_ram_states,
                spill_dir=options.spill_dir,
            )
        else:
            frontier = deque()
        _push, _pop = _frontier_ops(frontier)
        _push(root_fp, 0, (), root)
        # Peak frontier is the widest BFS level (states enqueued at one
        # depth) -- a raw frontier-length reading would mix two depths
        # and disagree with the level-synchronous parallel explorer.
        level_width: Dict[int, int] = {0: 1}
        stats.peak_frontier = max(stats.peak_frontier, 1)
        counterexamples: List[McCounterexample] = []
        violation_depth: Optional[int] = None
        cut: Optional[str] = None
        batch_width = max(1, options.batch_width) if options.batch_expand else 1

        try:
            while frontier:
                block = [_pop()]
                depth = block[0][1]
                # BFS pops in depth order, so widths of shallower levels
                # are final: prune them (the seed explorer leaked every
                # level's width for the whole exploration).
                for stale in [d for d in level_width if d < depth]:
                    del level_width[stale]
                while (
                    len(block) < batch_width
                    and frontier
                    and _peek_depth(frontier) == depth
                ):
                    block.append(_pop())

                if violation_depth is not None and depth + 1 > violation_depth:
                    # Every remaining expansion is deeper than the
                    # minimal violation already in hand.
                    break

                # Phase 1: choices and children for the whole block.
                jobs: List[Tuple] = []  # (path, choice, child, marks)
                for fingerprint, _depth, path, state in block:
                    choices = state.available_choices(spec)
                    if not choices:
                        stats.terminal_states += 1
                        continue
                    if depth >= spec.depth:
                        cut = "depth-bound"
                        continue
                    if options.por:
                        choices, pruned = reduce_choices(state, choices, spec)
                        stats.por_pruned += pruned
                    for position, choice in enumerate(choices):
                        if position == len(choices) - 1:
                            child = state
                        else:
                            start = clock() if timed else 0.0
                            child = state.clone(options.fast_clone)
                            if timed:
                                profile.add("clone", clock() - start)
                        jobs.append((path, choice, child, child.begin_apply()))

                # Phase 2: step every child's kernels; batch the
                # step-choice children that fit the lockstep envelope.
                start = clock() if timed else 0.0
                batchable: List[ProductState] = []
                if options.batch_expand:
                    batchable = [
                        child for _path, choice, child, _marks in jobs
                        if choice == STEP and batch_eligible(child, spec)
                    ]
                batched = set()
                if len(batchable) > 1:
                    if step_states_batched(batchable, spec):
                        batched = {id(child) for child in batchable}
                for _path, choice, child, _marks in jobs:
                    if id(child) in batched:
                        continue
                    if not is_terminal(child.kernel_a, spec):
                        apply_choice(child.kernel_a, choice, spec)
                    if not is_terminal(child.kernel_b, spec):
                        apply_choice(child.kernel_b, choice, spec)
                if timed:
                    profile.add("step", clock() - start)

                # Phase 3: checks, fingerprint, dedup, enqueue -- in
                # creation order, so visited-set insertion order (and
                # with it every statistic and counterexample) is
                # identical to the one-state-at-a-time explorer.
                child_depth = depth + 1
                for path, choice, child, marks in jobs:
                    start = clock() if timed else 0.0
                    violations = child.finish_apply(choice, marks, incremental)
                    if timed:
                        now = clock()
                        profile.add("check", now - start)
                        start = now
                    stats.transitions += 1
                    stats.max_depth = max(stats.max_depth, child_depth)
                    child_fp = child.fingerprint(incremental)
                    if timed:
                        now = clock()
                        profile.add("fingerprint", now - start)
                        start = now
                    known = child_fp in visited
                    if known:
                        stats.deduped += 1
                    elif stats.states_visited < spec.max_states:
                        visited.add(child_fp)
                        stats.states_visited += 1
                    else:
                        cut = "state-bound"
                    if timed:
                        profile.add("dedup", clock() - start)
                    if violations:
                        if not known:
                            if violation_depth is None:
                                violation_depth = child_depth
                            if child_depth <= violation_depth:
                                counterexamples.append(McCounterexample(
                                    secret_a=secret_a,
                                    secret_b=secret_b,
                                    path=path + (choice,),
                                    depth=child_depth,
                                    violations=tuple(violations),
                                ))
                        continue
                    if not known and cut != "state-bound":
                        _push(child_fp, child_depth, path + (choice,), child)
                        level_width[child_depth] = (
                            level_width.get(child_depth, 0) + 1)
                        stats.peak_frontier = max(
                            stats.peak_frontier, level_width[child_depth])
                if cut == "state-bound":
                    break
        finally:
            if isinstance(frontier, SpillFrontier):
                frontier.close()
        return counterexamples, cut, bloom


def _frontier_ops(frontier):
    """(push, pop) closures over either frontier representation."""
    if isinstance(frontier, SpillFrontier):
        return frontier.push, frontier.pop

    def push(fingerprint, depth, path, state):
        frontier.append((fingerprint, depth, path, state))

    return push, frontier.popleft


def _peek_depth(frontier) -> int:
    if isinstance(frontier, SpillFrontier):
        return frontier.peek_depth()
    return frontier[0][1]


def _fork_pool(jobs: int):
    """A fork-context pool (same rationale as the campaign executor)."""
    import multiprocessing

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        context = multiprocessing.get_context()
    return context.Pool(processes=jobs)

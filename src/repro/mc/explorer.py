"""Bounded explicit-state exploration of the noninterference product.

Breadth-first search over product states, deduplicated by canonical
fingerprint, with predecessor links so a violating transition unwinds
into a *minimal* counterexample path (BFS discovers states in depth
order, so the first violating depth is the minimal one; every violation
at that depth is collected, deeper ones are provably redundant and the
search stops).

The frontier holds live product states: expanding a state clones it
once per choice except the last, which consumes the parent in place --
snapshots are the dominant cost, so a k-way branch costs k-1 deep
copies, not k+1.  Violating children are recorded (for dedup) but never
expanded: everything after a violation is more of the same divergence.

Memory is bounded by ``spec.max_states``; depth by ``spec.depth``.  The
verdict is *exhaustive* only when every secret pair's frontier drained
with neither bound cutting anything off -- then ``states_visited`` is
exactly the number of reachable product states.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .product import ProductState
from .report import McCounterexample, McReport, McStats
from .spec import McSpec

#: Stop-reason precedence: a violation verdict outranks a memory cut,
#: which outranks a depth cut, which outranks a clean full drain.
_STOP_PRECEDENCE = ("violation", "state-bound", "depth-bound", "exhausted")


@dataclass
class McNode:
    """Predecessor link for one visited product state."""

    depth: int
    parent: Optional[str]  # fingerprint, None for the root
    choice: Optional[Tuple]


def path_to(visited: Dict[str, McNode], fingerprint: str) -> Tuple[Tuple, ...]:
    """The choice path from the root to ``fingerprint``, via parent links."""
    path: List[Tuple] = []
    node = visited[fingerprint]
    while node.parent is not None:
        path.append(node.choice)
        node = visited[node.parent]
    return tuple(reversed(path))


class ModelChecker:
    """Exhaustive (bounded) noninterference check of one :class:`McSpec`."""

    def __init__(self, spec: McSpec, jobs: int = 1):
        self.spec = spec
        self.jobs = max(1, jobs)

    def run(self) -> McReport:
        stats = McStats()
        counterexamples: List[McCounterexample] = []
        cuts: List[str] = []
        if self.jobs > 1:
            from .parallel import explore_pair_parallel
            with _fork_pool(self.jobs) as pool:
                for secret_a, secret_b in self.spec.secret_pairs():
                    pair_cexs, cut = explore_pair_parallel(
                        self.spec, secret_a, secret_b, stats, pool, self.jobs,
                    )
                    counterexamples.extend(pair_cexs)
                    if cut is not None:
                        cuts.append(cut)
        else:
            for secret_a, secret_b in self.spec.secret_pairs():
                pair_cexs, cut = self._explore_pair(secret_a, secret_b, stats)
                counterexamples.extend(pair_cexs)
                if cut is not None:
                    cuts.append(cut)

        counterexamples.sort(
            key=lambda cex: (cex.depth, cex.secret_a, cex.secret_b))
        if counterexamples:
            stop_reason = "violation"
        elif "state-bound" in cuts:
            stop_reason = "state-bound"
        elif "depth-bound" in cuts:
            stop_reason = "depth-bound"
        else:
            stop_reason = "exhausted"
        return McReport(
            spec=self.spec,
            passed=not counterexamples,
            exhaustive=stop_reason == "exhausted",
            stop_reason=stop_reason,
            stats=stats,
            counterexamples=counterexamples,
            jobs=self.jobs,
        )

    def _explore_pair(
        self, secret_a: int, secret_b: int, stats: McStats,
    ) -> Tuple[List[McCounterexample], Optional[str]]:
        """Serial BFS over the product rooted at one secret pair."""
        spec = self.spec
        root = ProductState.initial(spec, secret_a, secret_b)
        root_fp = root.fingerprint()
        visited: Dict[str, McNode] = {root_fp: McNode(0, None, None)}
        stats.states_visited += 1
        frontier = deque([(root_fp, root)])
        # Peak frontier is the widest BFS level (states enqueued at one
        # depth) -- a deque-length reading would mix two depths and
        # disagree with the level-synchronous parallel explorer.
        level_width: Dict[int, int] = {0: 1}
        stats.peak_frontier = max(stats.peak_frontier, 1)
        counterexamples: List[McCounterexample] = []
        violation_depth: Optional[int] = None
        cut: Optional[str] = None

        while frontier:
            fingerprint, state = frontier.popleft()
            node = visited[fingerprint]
            if violation_depth is not None and node.depth + 1 > violation_depth:
                # BFS pops in depth order: every remaining expansion is
                # deeper than the minimal violation already in hand.
                break
            choices = state.available_choices(spec)
            if not choices:
                stats.terminal_states += 1
                continue
            if node.depth >= spec.depth:
                cut = "depth-bound"
                continue
            child_depth = node.depth + 1
            for position, choice in enumerate(choices):
                child = state if position == len(choices) - 1 else state.clone()
                violations = child.apply(choice, spec)
                stats.transitions += 1
                stats.max_depth = max(stats.max_depth, child_depth)
                child_fp = child.fingerprint()
                known = child_fp in visited
                if known:
                    stats.deduped += 1
                elif stats.states_visited < spec.max_states:
                    visited[child_fp] = McNode(child_depth, fingerprint, choice)
                    stats.states_visited += 1
                else:
                    cut = "state-bound"
                if violations:
                    if not known:
                        if violation_depth is None:
                            violation_depth = child_depth
                        if child_depth <= violation_depth:
                            counterexamples.append(McCounterexample(
                                secret_a=secret_a,
                                secret_b=secret_b,
                                path=path_to(visited, fingerprint) + (choice,),
                                depth=child_depth,
                                violations=tuple(violations),
                            ))
                    continue
                if not known and cut != "state-bound":
                    frontier.append((child_fp, child))
                    level_width[child_depth] = (
                        level_width.get(child_depth, 0) + 1)
                    stats.peak_frontier = max(
                        stats.peak_frontier, level_width[child_depth])
            if cut == "state-bound":
                break
        return counterexamples, cut


def _fork_pool(jobs: int):
    """A fork-context pool (same rationale as the campaign executor)."""
    import multiprocessing

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        context = multiprocessing.get_context()
    return context.Pool(processes=jobs)

"""Level-synchronous parallel frontier expansion.

With ``--jobs N`` the BFS runs level by level: the frontier at depth d
is sharded by state hash (``int(fingerprint, 16) % jobs``) across a
fork pool, each worker rebuilds its product states from the root by
replaying the choice path (live kernel pairs do not cross the pickle
boundary; a spec plus a path rebuilds them deterministically -- the
same plain-data idiom as the campaign executor), expands them, and
ships back plain-data successor descriptors.  The parent merges results
in original frontier order, so visited-set insertion order, dedup
counts, counterexample selection and the final verdict are identical to
the serial explorer.

The one intentional divergence from the serial explorer is at the depth
bound itself: a level sitting exactly at ``spec.depth`` is cut without
being dispatched, so terminal states *at* the bound are not counted
(the serial loop counts them).  Verdicts are unaffected.
"""

from __future__ import annotations

from itertools import chain
from typing import Dict, List, Optional, Tuple

from .product import McViolation, ProductState
from .report import McCounterexample, McStats
from .spec import McSpec

#: Worker result: (frontier index, POR-pruned count, expansions); each
#: expansion is (choice, child fingerprint, violations).
_Expansion = Tuple[Tuple, str, Tuple[McViolation, ...]]


def _expand_items(payload) -> List[Tuple[int, int, List[_Expansion]]]:
    """Worker: rebuild each product state by path replay and expand it."""
    spec, secret_a, secret_b, items, options = payload
    from .por import reduce_choices

    results = []
    for index, path in items:
        state = ProductState.from_path(spec, secret_a, secret_b, path)
        expansions: List[_Expansion] = []
        choices = state.available_choices(spec)
        pruned = 0
        if options.por and choices:
            choices, pruned = reduce_choices(state, choices, spec)
        for position, choice in enumerate(choices):
            child = (
                state if position == len(choices) - 1
                else state.clone(options.fast_clone)
            )
            violations = child.apply(choice, spec, options.incremental)
            expansions.append((
                choice,
                child.fingerprint(options.incremental),
                tuple(violations),
            ))
        results.append((index, pruned, expansions))
    return results


def explore_pair_parallel(
    spec: McSpec,
    secret_a: int,
    secret_b: int,
    stats: McStats,
    pool,
    jobs: int,
    options=None,
) -> Tuple[List[McCounterexample], Optional[str]]:
    """Level-synchronous BFS over the product rooted at one secret pair.

    Honours the ``por``, ``incremental`` and ``fast_clone`` levers of
    :class:`~repro.mc.explorer.McOptions` inside each worker; the
    memory-scale levers (bitstate, spill, batch expansion) are
    serial-explorer-only.
    """
    if options is None:
        from .explorer import McOptions

        options = McOptions()
    root_fp = ProductState.initial(spec, secret_a, secret_b).fingerprint(
        options.incremental
    )
    visited: Dict[str, int] = {root_fp: 0}
    stats.states_visited += 1
    # Frontier entries carry their full path so workers can replay them.
    level: List[Tuple[str, Tuple[Tuple, ...]]] = [(root_fp, ())]
    stats.peak_frontier = max(stats.peak_frontier, len(level))
    counterexamples: List[McCounterexample] = []
    cut: Optional[str] = None
    depth = 0

    while level:
        if depth >= spec.depth:
            cut = "depth-bound"
            break
        shards: List[List[Tuple[int, Tuple[Tuple, ...]]]] = [
            [] for _ in range(jobs)
        ]
        for index, (fingerprint, path) in enumerate(level):
            shards[int(fingerprint, 16) % jobs].append((index, path))
        payloads = [
            (spec, secret_a, secret_b, shard, options)
            for shard in shards if shard
        ]
        merged = sorted(chain.from_iterable(pool.map(_expand_items, payloads)))

        child_depth = depth + 1
        next_level: List[Tuple[str, Tuple[Tuple, ...]]] = []
        violated = False
        for index, pruned, expansions in merged:
            stats.por_pruned += pruned
            parent_fp, parent_path = level[index]
            if not expansions:
                stats.terminal_states += 1
                continue
            for choice, child_fp, violations in expansions:
                stats.transitions += 1
                stats.max_depth = max(stats.max_depth, child_depth)
                known = child_fp in visited
                if known:
                    stats.deduped += 1
                elif stats.states_visited < spec.max_states:
                    visited[child_fp] = child_depth
                    stats.states_visited += 1
                else:
                    cut = "state-bound"
                if violations:
                    if not known:
                        violated = True
                        counterexamples.append(McCounterexample(
                            secret_a=secret_a,
                            secret_b=secret_b,
                            path=parent_path + (choice,),
                            depth=child_depth,
                            violations=violations,
                        ))
                    continue
                if not known and cut != "state-bound":
                    next_level.append((child_fp, parent_path + (choice,)))
        if violated or cut == "state-bound":
            break
        level = next_level
        stats.peak_frontier = max(stats.peak_frontier, len(level))
        depth = child_depth
    return counterexamples, cut

"""Batched frontier expansion through the vectorized lockstep engine.

Expanding a BFS level means stepping many independent kernels by exactly
one transition each -- precisely the shape the batch engine
(``repro.hardware.batch``) vectorises.  Each product state contributes
its two lanes (kernel A and kernel B) to one ``run_lockstep`` call with
``max_steps=1``; lanes are independent, so each kernel evolves
bit-identically to a scalar ``Kernel.step`` (the batch engine's standing
differential guarantee, extended in this change to record the
``capture_cases`` log).

The expansion is admitted per state, conservatively:

* the ``step`` choice only (an injection leaves a pending IRQ, which the
  batch envelope rejects);
* colouring **off** on both sides: the per-transition partition audit
  reads the per-touch instrumentation summary, which batch runs skip;
  with colouring off the audit is statically skipped, so the missing
  summary can never change a verdict.  (This is exactly the boundary at
  which skipping instrumentation is sound, not merely fast.)
* both sides non-terminal, no pending IRQs, no blocked threads --
  mirroring ``check_batchable``'s run-time envelope so the up-front
  check never trips mid-exploration.

Anything else falls back to the scalar path, state by state.
"""

from __future__ import annotations

from typing import List

from ..hardware.batch import BatchUnsupported, check_batchable, run_lockstep
from ..kernel.objects import ThreadState
from .product import ProductState
from .spec import McSpec, is_terminal


def batch_eligible(state: ProductState, spec: McSpec) -> bool:
    """Per-state envelope: may this state's step-child be batch-stepped?"""
    for kernel in (state.kernel_a, state.kernel_b):
        if kernel.tp.cache_colouring:
            return False
        if is_terminal(kernel, spec):
            return False
        if kernel.machine.cores[0].irq._pending:
            return False
        for domain in kernel.domains.values():
            for tcb in domain.threads:
                if tcb.state is ThreadState.BLOCKED:
                    return False
    return True


def step_states_batched(states: List[ProductState], spec: McSpec) -> bool:
    """Advance every state's kernels one transition via the batch engine.

    Returns ``False`` (nothing mutated; caller must step scalar) when
    the kernels fall outside the batch envelope's *shape* checks.  The
    shape is validated up front, before any lane state is lifted, so a
    rejection is always a clean fallback.
    """
    kernels = []
    for state in states:
        kernels.append(state.kernel_a)
        kernels.append(state.kernel_b)
    try:
        check_batchable(kernels)
    except BatchUnsupported:
        return False
    run_lockstep(kernels, spec.max_cycles, max_steps=1)
    return True

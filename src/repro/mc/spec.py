"""Model-checked system specifications and their fixed workloads.

The checker explores *small, closed* systems: a Hi domain whose program
depends on a secret, a Lo domain running a fixed timing-probe program,
one core, a static two-slot schedule.  Everything here is plain data
(:class:`McSpec` is a frozen dataclass of names and integers) so a spec
can cross a ``multiprocessing`` pickle boundary and be rebuilt
deterministically inside a worker -- the same idiom as
``repro.campaign.registry``.

The workload is chosen so each mechanism failure is *reachable*:

* Hi dirties ``secret + 1`` cache lines, so the flush latency at the
  switch out of Hi -- and, without colouring, the shared-cache residue --
  is a function of the secret;
* Lo interleaves ``ReadTime`` with a fixed probe sweep, so both release
  timestamps and inherited cache state are architecturally visible to it.

Nondeterminism is explicit: a *choice* is either ``("step",)`` -- one
kernel scheduler step -- or ``("irq", line)`` -- a device raises ``line``
now (scheduled at the stepped core's current clock), then the kernel
steps.  A path of choices fully determines an execution, which is what
makes counterexamples replayable through the concrete two-run harness.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from ..campaign.registry import MACHINES, TP_CONFIGS
from ..hardware.isa import Access, Compute, Halt, ReadTime
from ..kernel.kernel import Kernel
from ..kernel.objects import ReplayableProgram, ThreadState

#: The abstract choice alphabet: one kernel step, or an IRQ injection.
STEP = ("step",)


def hi_step(ctx, index, observation):
    """Hi's program: dirty ``secret + 1`` lines, compute briefly, stop."""
    secret = ctx.params["secret"]
    writes = secret + 1
    if index < writes:
        return Access(
            ctx.data_base + (index * ctx.line_size) % ctx.data_size,
            write=True,
            value=secret,
        )
    if index < writes + 2:
        return Compute(20)
    return None


def lo_step(ctx, index, observation):
    """Lo's program: rounds of ReadTime plus a fixed probe sweep, then halt."""
    probes = ctx.params["probes"]
    rounds = ctx.params["rounds"]
    per_round = 1 + probes
    if index >= rounds * per_round:
        return Halt()
    phase = index % per_round
    if phase == 0:
        return ReadTime()
    return Access(
        ctx.data_base + ((phase - 1) * ctx.line_size) % ctx.data_size
    )


@dataclass(frozen=True)
class McSpec:
    """Everything needed to rebuild a model-checked system by name."""

    machine: str
    tp: str
    secrets: Tuple[int, ...] = (0, 1, 2)
    depth: int = 400
    max_states: int = 200_000
    #: IRQ lines the environment may raise (owned by Hi; line 0 is the
    #: preemption timer and cannot be injected).
    irq_lines: Tuple[int, ...] = (1,)
    #: How many injections one path may contain.
    irq_budget: int = 1
    #: Safety horizon: a state whose clock passed this is terminal.  The
    #: workloads halt well before it (pad cycles dominate: each domain
    #: switch costs ~14k cycles on micro), so ordinary paths end by
    #: thread completion, never by the horizon.
    max_cycles: int = 150_000
    slice_cycles: int = 400
    kernel_image_pages: Optional[int] = None
    #: Two rounds are the minimum that observes anything: round one
    #: primes (compulsory misses, a timestamp), round two measures
    #: (hits unless evicted by residue; a second timestamp that catches
    #: accumulated timing drift).
    lo_probes: int = 2
    lo_rounds: int = 2

    @classmethod
    def for_machine(cls, machine: str, tp: str, **overrides) -> "McSpec":
        """Per-machine defaults (image sizing, slice length), overridable."""
        if machine not in MACHINES:
            raise KeyError(f"unknown machine preset {machine!r}")
        if tp not in TP_CONFIGS:
            raise KeyError(f"unknown tp config {tp!r}")
        spec = cls(machine=machine, tp=tp)
        if machine == "micro":
            # 8 pages x 4 lines/page = 32 text lines: enough for both
            # switch-code sides; handler offsets wrap modulo the image.
            spec = replace(spec, kernel_image_pages=8, slice_cycles=400)
        else:
            spec = replace(spec, slice_cycles=600)
        return replace(spec, **overrides)

    def secret_pairs(self) -> Tuple[Tuple[int, int], ...]:
        """All unordered pairs of distinct secrets (product-state roots)."""
        ordered = sorted(set(self.secrets))
        return tuple(
            (ordered[i], ordered[j])
            for i in range(len(ordered))
            for j in range(i + 1, len(ordered))
        )


def build_system(spec: McSpec, secret: int) -> Kernel:
    """Construct (but do not run) the model-checked system for a secret."""
    machine = MACHINES[spec.machine]()
    tp = TP_CONFIGS[spec.tp]()
    kernel = Kernel(machine, tp, kernel_image_pages=spec.kernel_image_pages)
    # The checker needs the case-split labels, not per-touch footprints:
    # capture_cases records exactly the (case, context) pairs the product
    # comparison reads.  Summary instrumentation is likewise narrowed to
    # the LLC -- the only element the per-transition partition audit
    # (check_partition_touches) examines -- which removes the dominant
    # per-touch bookkeeping cost from every explored transition.
    kernel.capture_cases = True
    machine.instrumentation.summary_elements = frozenset({"llc"})
    hi = kernel.create_domain(
        "Hi", n_colours=1, slice_cycles=spec.slice_cycles,
        irq_lines=spec.irq_lines,
    )
    lo = kernel.create_domain("Lo", n_colours=1, slice_cycles=spec.slice_cycles)
    kernel.create_thread(
        hi, ReplayableProgram.factory(hi_step),
        data_pages=2, code_pages=1, params={"secret": secret},
    )
    kernel.create_thread(
        lo, ReplayableProgram.factory(lo_step),
        data_pages=2, code_pages=1,
        params={"probes": spec.lo_probes, "rounds": spec.lo_rounds},
    )
    kernel.set_schedule(0, [(hi, None), (lo, None)])
    return kernel


def is_terminal(kernel: Kernel, spec: McSpec) -> bool:
    """All threads finished (or the safety horizon was crossed)."""
    if kernel.machine.cores[0].clock.now >= spec.max_cycles:
        return True
    threads = kernel.all_threads()
    return bool(threads) and all(
        tcb.state in (ThreadState.DONE, ThreadState.FAULTED)
        for tcb in threads
    )


def apply_choice(kernel: Kernel, choice: Tuple, spec: McSpec) -> None:
    """Concretise one abstract choice on one side of the product."""
    if choice[0] == "irq":
        core = kernel.machine.cores[0]
        core.irq.schedule(choice[1], fire_time=core.clock.now)
    kernel.step(core_id=0, max_cycles=spec.max_cycles)


def run_to_terminal(kernel: Kernel, spec: McSpec, max_steps: int = 5000) -> None:
    """Drive a side with plain steps until it terminates (replay tail)."""
    steps = 0
    while not is_terminal(kernel, spec) and steps < max_steps:
        kernel.step(core_id=0, max_cycles=spec.max_cycles)
        steps += 1

"""Model-checking verdicts: statistics, counterexamples, rendering.

An :class:`McReport` is the checker's complete answer: the verdict
(clean or violated), whether exploration was *exhaustive* (the frontier
drained with no depth or memory cut -- only then do the state counts
mean "all reachable states"), the statistics, and the minimal
counterexamples with their replayable choice paths.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.report import banner
from .product import McViolation
from .spec import McSpec


@dataclass
class McCounterexample:
    """A minimal violating path through the product transition system."""

    secret_a: int
    secret_b: int
    path: Tuple[Tuple, ...]
    depth: int
    violations: Tuple[McViolation, ...]

    @property
    def predicted_divergence_index(self) -> Optional[int]:
        """Observation-trace index the two-run harness should diverge at.

        Taken from the ``lo-trace`` violation when one fired on the
        violating transition; ``None`` for counterexamples caught
        earlier (projection/case-split/mechanism), where the concrete
        divergence index follows later in the run.
        """
        for violation in self.violations:
            if violation.kind == "lo-trace":
                return violation.divergence_index
        return None

    def to_json(self) -> dict:
        return {
            "secret_a": self.secret_a,
            "secret_b": self.secret_b,
            "path": [list(choice) for choice in self.path],
            "depth": self.depth,
            "predicted_divergence_index": self.predicted_divergence_index,
            "violations": [
                {
                    "kind": violation.kind,
                    "detail": violation.detail,
                    "side": violation.side,
                    "divergence_index": violation.divergence_index,
                }
                for violation in self.violations
            ],
        }


@dataclass
class McStats:
    """Exploration statistics, aggregated across all secret pairs."""

    states_visited: int = 0
    transitions: int = 0
    terminal_states: int = 0
    deduped: int = 0
    peak_frontier: int = 0
    max_depth: int = 0
    #: Choices dropped by partial-order reduction (symmetric IRQ lines).
    por_pruned: int = 0

    def to_json(self) -> dict:
        return {
            "states_visited": self.states_visited,
            "transitions": self.transitions,
            "terminal_states": self.terminal_states,
            "deduped": self.deduped,
            "peak_frontier": self.peak_frontier,
            "max_depth": self.max_depth,
            "por_pruned": self.por_pruned,
        }


@dataclass
class McReport:
    """The checker's complete verdict for one spec."""

    spec: McSpec
    passed: bool
    exhaustive: bool
    stop_reason: str  # "exhausted" | "violation" | "depth-bound" | "state-bound"
    stats: McStats = field(default_factory=McStats)
    counterexamples: List[McCounterexample] = field(default_factory=list)
    jobs: int = 1
    #: Bitstate-mode metadata ({mbytes, inserted,
    #: est_omission_probability}); None for exact visited sets.
    bitstate: Optional[dict] = None
    #: --profile per-phase wall-clock seconds; None unless profiled.
    profile: Optional[dict] = None

    def minimal_counterexample(self) -> Optional[McCounterexample]:
        if not self.counterexamples:
            return None
        return min(self.counterexamples,
                   key=lambda cex: (cex.depth, cex.secret_a, cex.secret_b))

    def to_json(self) -> dict:
        return {
            "machine": self.spec.machine,
            "tp": self.spec.tp,
            "secrets": list(self.spec.secrets),
            "depth_bound": self.spec.depth,
            "max_states": self.spec.max_states,
            "irq_lines": list(self.spec.irq_lines),
            "irq_budget": self.spec.irq_budget,
            "jobs": self.jobs,
            "passed": self.passed,
            "exhaustive": self.exhaustive,
            "stop_reason": self.stop_reason,
            "stats": self.stats.to_json(),
            "counterexamples": [cex.to_json() for cex in self.counterexamples],
            "bitstate": self.bitstate,
            "profile": self.profile,
        }


def render_json(report: McReport) -> str:
    return json.dumps(report.to_json(), indent=2, sort_keys=True)


def _format_choice(choice: Tuple) -> str:
    if choice[0] == "irq":
        return f"irq({choice[1]})"
    return "step"


def render_text(report: McReport) -> str:
    spec = report.spec
    lines = [banner(
        f"MODEL CHECK  machine={spec.machine}  tp={spec.tp}  "
        f"secrets={list(spec.secrets)}"
    )]
    verdict = "PASS" if report.passed else "FAIL"
    if report.exhaustive:
        coverage = "exhaustive over the reachable state space"
    elif report.bitstate is not None and report.stop_reason == "exhausted":
        coverage = (
            "bitstate (est. omission probability "
            f"{report.bitstate['est_omission_probability']:.2e})"
        )
    else:
        coverage = f"bounded ({report.stop_reason})"
    lines.append(f"verdict: {verdict}  [{coverage}]")
    stats = report.stats
    dedup_line = (
        f"states: {stats.states_visited} visited, "
        f"{stats.transitions} transitions, "
        f"{stats.terminal_states} terminal, "
        f"{stats.deduped} deduplicated"
    )
    if stats.por_pruned:
        dedup_line += f", {stats.por_pruned} POR-pruned"
    lines.append(dedup_line)
    lines.append(
        f"search: max depth {stats.max_depth} (bound {spec.depth}), "
        f"peak frontier {stats.peak_frontier}, jobs {report.jobs}"
    )
    if report.profile is not None:
        total = sum(report.profile.values())
        breakdown = "  ".join(
            f"{phase} {seconds:.3f}s"
            for phase, seconds in report.profile.items()
        )
        lines.append(f"profile: {breakdown}  (phases {total:.3f}s)")
    if report.counterexamples:
        lines.append("")
        lines.append(
            f"{len(report.counterexamples)} minimal counterexample(s), "
            f"one per violating secret pair:"
        )
        for cex in report.counterexamples:
            lines.append(
                f"  secrets ({cex.secret_a}, {cex.secret_b})  depth {cex.depth}  "
                f"path: {' '.join(_format_choice(c) for c in cex.path)}"
            )
            for violation in cex.violations:
                lines.append(f"    - {violation}")
            predicted = cex.predicted_divergence_index
            if predicted is not None:
                lines.append(
                    f"    predicted Lo-trace divergence at index {predicted}"
                )
    return "\n".join(lines)

"""Victim and load-generator programs used by experiments and examples."""

from .background import branchy_compute, cache_churner, syscall_churner
from .downgrader import encryption_engine, network_stack, web_server
from .modexp import (
    MULTIPLY_CYCLES,
    SQUARE_CYCLES,
    exponent_work_cycles,
    modexp_victim,
)
from .table_crypto import key_dependent_line, sbox_victim

__all__ = [
    "MULTIPLY_CYCLES",
    "SQUARE_CYCLES",
    "branchy_compute",
    "cache_churner",
    "encryption_engine",
    "exponent_work_cycles",
    "key_dependent_line",
    "modexp_victim",
    "network_stack",
    "sbox_victim",
    "syscall_churner",
    "web_server",
]

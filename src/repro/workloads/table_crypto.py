"""An AES-like table-lookup cipher victim.

The canonical prime-and-probe *side-channel* victim (Osvik et al. [2006],
Gullasch et al. [2011]): a cipher whose inner loop indexes a lookup table
with secret-derived values.  The cache set touched by each lookup is a
function of the key byte, so an attacker resolving per-set residency
recovers key material -- no Trojan required, the leak is implicit in
normal execution (Sect. 3.1: "e.g. via a secret-derived array index").
"""

from __future__ import annotations

from typing import List

from ..hardware.isa import Access, Compute, ProgramContext, Syscall


def sbox_victim(ctx: ProgramContext):
    """Encrypt blocks forever, indexing the table by key-mixed state.

    Params:
        key: list of small integers (the secret key bytes).
        table_pages: pages of the lookup table inside the data buffer.
        blocks_per_slice: encryptions between yields to the kernel.
        fixed_plaintext: if set, every block encrypts this plaintext --
            the chosen-plaintext setting of the classic attacks, where
            the first-round lookup line is a pure function of the key.
    """
    key: List[int] = ctx.params["key"]
    table_pages = ctx.params.get("table_pages", 2)
    blocks = ctx.params.get("blocks_per_slice", 4)
    fixed_plaintext = ctx.params.get("fixed_plaintext")
    lines_per_page = ctx.page_size // ctx.line_size
    plaintext = fixed_plaintext if fixed_plaintext is not None else 0
    while True:
        for _block in range(blocks):
            state = plaintext
            for round_index, key_byte in enumerate(key):
                # The table row -- and therefore the cache line touched --
                # depends on the secret key byte.  As with AES T-tables,
                # each round reads the same row of *every* table, so the
                # whole row's cache set lights up.
                row = (state ^ key_byte) % lines_per_page
                for table in range(table_pages):
                    yield Access(
                        ctx.data_base + table * ctx.page_size + row * ctx.line_size
                    )
                state = (state * 5 + key_byte + round_index) & 0xFF
                yield Compute(3)
            if fixed_plaintext is None:
                plaintext = (plaintext + 1) & 0xFF
        yield Syscall("yield")


def key_dependent_line(key_byte: int, plaintext: int, table_rows: int) -> int:
    """The table row the first round of :func:`sbox_victim` touches.

    Exposed so tests and benches can compute the expected leak target
    (the row is also the L1 set index when a table page spans the L1).
    """
    return (plaintext ^ key_byte) % table_rows

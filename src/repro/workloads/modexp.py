"""Square-and-multiply modular exponentiation: the algorithmic channel.

Sect. 4.3's target: a crypto implementation whose *control flow* depends
on the secret -- classic square-and-multiply runs an extra multiply for
every 1-bit of the exponent, so its total execution time (and its branch
pattern) encodes the secret's Hamming weight, and finer-grained probes
recover individual bits.  Time protection cannot rewrite the algorithm,
but padding the component's execution to an upper bound (padded IPC
delivery with min-exec above the WCET) hides the duration.
"""

from __future__ import annotations

from ..hardware.isa import Access, Branch, Compute, ProgramContext, Syscall

SQUARE_CYCLES = 60
MULTIPLY_CYCLES = 90


def exponent_work_cycles(exponent: int, bits: int) -> int:
    """Analytic execution time of one exponentiation (for tests/WCET)."""
    ones = bin(exponent & ((1 << bits) - 1)).count("1")
    return bits * SQUARE_CYCLES + ones * MULTIPLY_CYCLES


def modexp_victim(ctx: ProgramContext):
    """Exponentiate once per activation, then hand the result to Lo.

    Params:
        exponent: the secret exponent.
        bits: exponent width.
        endpoint_id: where to send the "ciphertext" (a synchronous call).
        messages: how many exponentiations to perform.
    """
    exponent = ctx.params["exponent"]
    bits = ctx.params.get("bits", 8)
    endpoint = ctx.params["endpoint_id"]
    messages = ctx.params.get("messages", 4)
    for message in range(messages):
        for bit_index in range(bits - 1, -1, -1):
            yield Compute(SQUARE_CYCLES)
            bit = (exponent >> bit_index) & 1
            # The branch itself is secret-dependent: predictor state and
            # the taken path both leak.
            yield Branch(taken=bool(bit))
            if bit:
                yield Compute(MULTIPLY_CYCLES)
            yield Access(ctx.data_base + (bit_index % 8) * ctx.line_size, write=True,
                         value=bit_index)
        yield Syscall("call", (endpoint, 0xE0 + message))
    while True:
        yield Compute(100)

"""The Figure 1 pipeline: web server -> encryption -> network stack.

The paper's motivating downgrader scenario as a three-stage workload: a
Hi web server produces secret-bearing requests, a Hi encryption component
"encrypts" them (with optionally secret-dependent latency) and
declassifies the result to the Lo network stack via a synchronous call.
Used by example applications and the E1 bench.
"""

from __future__ import annotations

from typing import List

from ..hardware.isa import Access, Compute, ProgramContext, ReadTime, Syscall


def web_server(ctx: ProgramContext):
    """Produce one request per activation on the server->crypto endpoint."""
    endpoint = ctx.params["endpoint_id"]
    secrets: List[int] = ctx.params["secrets"]
    for secret in secrets:
        for line in range(4):  # build the request in the buffer
            yield Access(ctx.data_base + line * ctx.line_size, write=True, value=secret)
        yield Syscall("send", (endpoint, secret))
        yield Syscall("sleep", (ctx.params.get("request_gap", 20000),))
    while True:
        yield Compute(200)


def encryption_engine(ctx: ProgramContext):
    """Encrypt requests; running time depends on the secret unless fixed.

    Params:
        in_endpoint_id / out_endpoint_id: pipeline plumbing.
        cycles_per_unit: secret-dependent work factor (the algorithmic
            channel); 0 models a constant-time implementation.
        base_cycles: fixed part of the "encryption".
        messages: how many to process.
    """
    inbox = ctx.params["in_endpoint_id"]
    outbox = ctx.params["out_endpoint_id"]
    per_unit = ctx.params.get("cycles_per_unit", 300)
    base = ctx.params.get("base_cycles", 2000)
    messages = ctx.params.get("messages", 4)
    for _message in range(messages):
        received = yield Syscall("recv", (inbox,))
        secret = received.value if received.value is not None else 0
        yield Compute(base + per_unit * secret)
        for line in range(4):  # write the ciphertext
            yield Access(
                ctx.data_base + line * ctx.line_size, write=True, value=secret ^ 0x5A
            )
        yield Syscall("call", (outbox, (secret ^ 0x5A) & 0xFF))
    while True:
        yield Compute(100)


def network_stack(ctx: ProgramContext):
    """Receive ciphertexts; record arrival timestamps (the observer)."""
    inbox = ctx.params["in_endpoint_id"]
    arrivals: List[int] = ctx.params["arrivals"]
    messages = ctx.params.get("messages", 4)
    for _message in range(messages):
        yield Syscall("recv", (inbox,))
        stamp = yield ReadTime()
        arrivals.append(stamp.value)

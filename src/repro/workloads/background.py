"""Background load generators: cache churn, syscall churn, pure compute.

Used to populate extra domains in multi-domain experiments and to stress
determinism: a noisy-but-deterministic neighbour must not perturb a
protected observer.
"""

from __future__ import annotations

from ..hardware.isa import Access, Branch, Compute, ProgramContext, Syscall


def cache_churner(ctx: ProgramContext):
    """Walk the whole data buffer with writes, forever."""
    lines_per_page = ctx.page_size // ctx.line_size
    n_pages = ctx.data_size // ctx.page_size
    stride = ctx.params.get("stride_lines", 1)
    value = 0
    while True:
        for page in range(n_pages):
            for line in range(0, lines_per_page, stride):
                yield Access(
                    ctx.data_base + page * ctx.page_size + line * ctx.line_size,
                    write=True,
                    value=value,
                )
                value += 1


def syscall_churner(ctx: ProgramContext):
    """Trap into the kernel continuously (exercises kernel-text caching)."""
    while True:
        yield Syscall("nop")
        yield Compute(ctx.params.get("gap_cycles", 50))


def branchy_compute(ctx: ProgramContext):
    """Deterministic branch-heavy compute (trains the predictor)."""
    pattern = ctx.params.get("pattern", (1, 0, 1, 1, 0))
    while True:
        for taken in pattern:
            yield Branch(taken=bool(taken))
            yield Compute(7)

"""repro: an executable reproduction of "Can We Prove Time Protection?"

(Heiser, Klein, Murray -- HotOS 2019, arXiv:1901.08338)

The package is layered exactly as the paper's argument is:

* :mod:`repro.hardware`  -- a deterministic microarchitectural timing
  simulator: caches, TLBs, branch predictors, prefetchers, interconnect,
  interrupt lines, cycle clocks.  Every piece of timing-relevant state is
  a tagged *state element* (partitionable / flushable / unmanaged).
* :mod:`repro.kernel`    -- an seL4-like microkernel with the time
  protection mechanisms of Sect. 4.2: cache colouring, kernel clone,
  flush-on-switch, switch-latency padding, interrupt partitioning and
  padded IPC delivery, each independently switchable.
* :mod:`repro.core`      -- the paper's contribution made executable:
  the abstract hardware model, the proof obligations PO-1..PO-7, the
  Sect. 5.2 case split, unwinding conditions, and two-run
  noninterference experiments, assembled into
  :class:`~repro.core.TimeProtectionProof`.
* :mod:`repro.attacks`   -- the channels of Sects. 2-4 (prime+probe,
  flush+reload, occupancy, event timing, interrupts, switch latency,
  interconnect bandwidth) as adaptive programs.
* :mod:`repro.analysis`  -- channel matrices, Shannon capacity, mutual
  information, bandwidth (the Cock et al. [2014] methodology).
* :mod:`repro.workloads` -- victims: table-lookup crypto, square-and-
  multiply modexp, the Figure 1 downgrader pipeline, background load.

Quickstart::

    from repro import presets, Kernel, TimeProtectionConfig
    from repro.core import prove_time_protection, format_report

    # build a system builder (see examples/quickstart.py), then:
    report = prove_time_protection(build_and_run, secrets=[1, 7], observer="Lo")
    print(format_report(report))
"""

from .hardware import (
    Access,
    Branch,
    CacheGeometry,
    Compute,
    FlushLine,
    Halt,
    Machine,
    MachineConfig,
    Observation,
    ProgramContext,
    ReadTime,
    Syscall,
    presets,
)
from .kernel import Domain, Kernel, SwitchRecord, Tcb, TimeProtectionConfig
from .core import (
    ProofReport,
    TimeProtectionProof,
    format_report,
    prove_time_protection,
)

__version__ = "1.0.0"

__all__ = [
    "Access",
    "Branch",
    "CacheGeometry",
    "Compute",
    "Domain",
    "FlushLine",
    "Halt",
    "Kernel",
    "Machine",
    "MachineConfig",
    "Observation",
    "ProgramContext",
    "ProofReport",
    "ReadTime",
    "SwitchRecord",
    "Syscall",
    "Tcb",
    "TimeProtectionConfig",
    "TimeProtectionProof",
    "format_report",
    "presets",
    "prove_time_protection",
    "__version__",
]

"""Array-of-lanes microarchitectural state for the batch engine.

One :class:`BatchHardware` holds, for every lane (= one whole scalar
:class:`~repro.hardware.machine.Machine`), the data-plane state the hot
path reads and writes millions of times: cache tag/stamp/dirty matrices
per level, the TLB, the stride-prefetcher table and the interconnect
bus.  All of it is numpy arrays with a leading lane axis, so one wave of
the engine updates every lane with a handful of vector operations.

The control plane (scheduler, TCBs, programs, endpoints, branch
predictor, memory words) stays on the scalar Python objects -- see
``engine.py`` for why.

Equivalence to the scalar model is structural, not approximate:

* victim selection is min-stamp over valid slots (scalar keeps compact
  lists and picks the min-stamp index; stamps are unique, so both pick
  the same *line* even though the slot layout differs);
* slot order inside a set is unobservable in the scalar model (all
  fingerprints sort, probes scan, victims are stamp-unique minima), so
  ``lift``/``sync_back`` round-trips through slot arrays are exact;
* ticks, stamps and latency constants follow the scalar code paths
  line for line -- every divergence is a bug the differential golden
  suite is designed to catch.

Hot-path encoding: instead of a separate validity matrix, empty slots
carry sentinel keys (tag/region/asid ``-1``, unreachable because real
addresses are non-negative) and *slot-ordered negative stamps*
(``-_STAMP_INF + slot``).  Matching then needs no mask, and one
``argmin`` over stamps picks the scalar victim exactly: any empty slot
sorts below every real stamp (lowest slot first, the scalar append
order), and a full set falls through to the true min-stamp line --
stamps are unique, so there are no ties to break.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..cache import Cache, CacheLine
from ..prefetcher import StridePrefetcher, StreamEntry
from ..tlb import Tlb, TlbEntry

_INT = np.int64
# Larger than any reachable stamp; empty slots hold -_STAMP_INF + slot.
_STAMP_INF = np.int64(1) << 62
# TLB match keys fuse (asid, vpage) into one word; vpage stays far below
# 2**40 for every supported page size and address-space span.
_ASID_SHIFT = 40


def _invalid_stamps(n_slots: int):
    """The slot-ordered empty-slot stamp encoding (see module docstring)."""
    return -_STAMP_INF + np.arange(n_slots, dtype=_INT)


class CacheArrays:
    """One cache level across all lanes: [lanes, sets, ways] matrices."""

    __slots__ = (
        "sets", "ways", "offset_bits", "index_mask", "tag_shift",
        "hit_cycles", "wb_cycles", "flush_base", "is_lru", "broken",
        "tags", "dirty", "stamps", "tick", "_broken_clear", "_empty_stamps",
    )

    def __init__(self, n_lanes: int, template: Cache):
        geometry = template.geometry
        self.sets = geometry.sets
        self.ways = geometry.ways
        self.offset_bits = geometry.offset_bits
        self.index_mask = geometry.index_mask
        self.tag_shift = geometry.tag_shift
        self.hit_cycles = template.latency.hit_cycles
        self.wb_cycles = template.latency.writeback_cycles_per_line
        self.flush_base = template.latency.flush_base_cycles
        self.is_lru = template._is_lru
        self.broken = template.flush_is_broken
        shape = (n_lanes, self.sets, self.ways)
        self._empty_stamps = _invalid_stamps(self.ways)
        self.tags = np.full(shape, -1, _INT)
        self.dirty = np.zeros(shape, bool)
        self.stamps = np.broadcast_to(self._empty_stamps, shape).copy()
        self.tick = np.zeros(n_lanes, _INT)
        # A broken flush clears only sets whose index % 4 != 0.
        self._broken_clear = (np.arange(self.sets) % 4) != 0

    # -- scalar object interop -----------------------------------------

    def lift(self, lane_index: int, cache: Cache) -> None:
        self.tick[lane_index] = cache._tick
        tags = self.tags[lane_index]
        dirty = self.dirty[lane_index]
        stamps = self.stamps[lane_index]
        for set_index, lines in enumerate(cache.audit_lines()):
            for way, line in enumerate(lines):
                tags[set_index, way] = line.tag
                dirty[set_index, way] = line.dirty
                stamps[set_index, way] = line.stamp

    def sync_back(self, lane_index: int, cache: Cache) -> None:
        cache._tick = int(self.tick[lane_index])
        tags = self.tags[lane_index].tolist()
        dirty = self.dirty[lane_index].tolist()
        stamps = self.stamps[lane_index].tolist()
        new_sets: List[List[CacheLine]] = []
        for set_index in range(self.sets):
            t_row = tags[set_index]
            d_row = dirty[set_index]
            s_row = stamps[set_index]
            new_sets.append(
                [
                    CacheLine(t_row[way], d_row[way], s_row[way], None)
                    for way in range(self.ways)
                    if t_row[way] != -1
                ]
            )
        cache._sets = new_sets
        # Direct-write sync bypasses the mutation hooks that maintain the
        # memoised fingerprint; invalidate it explicitly.
        cache._fp_version += 1

    # -- hot path -------------------------------------------------------

    def access(self, lanes, paddr, write):
        """Vectorized ``Cache.access``: returns (miss_idx, writeback_idx).

        ``lanes`` is an int64 array of lane indices, ``paddr`` the
        matching addresses, ``write`` a bool array or None (all reads).
        ``miss_idx`` holds the positions (in call order) that missed;
        ``writeback_idx`` the positions whose fill evicted a dirty line,
        or ``None`` when there were none (the common case, so callers
        skip the charge without touching another array).
        """
        set_index = (paddr >> self.offset_bits) & self.index_mask
        tag = paddr >> self.tag_shift
        tick = self.tick[lanes] + 1
        self.tick[lanes] = tick
        match = self.tags[lanes, set_index] == tag[:, None]
        hit = match.any(axis=1)
        n = len(lanes)
        miss_idx = np.nonzero(~hit)[0]
        n_miss = miss_idx.size
        writeback = None
        if n_miss != n:
            ways = match.argmax(axis=1)
            if n_miss:
                hit_idx = np.nonzero(hit)[0]
                h_lanes = lanes[hit_idx]
                h_sets = set_index[hit_idx]
                h_ways = ways[hit_idx]
                h_tick = tick[hit_idx]
            else:
                h_lanes = lanes
                h_sets = set_index
                h_ways = ways
                h_tick = tick
            if self.is_lru:
                self.stamps[h_lanes, h_sets, h_ways] = h_tick
            if write is not None:
                w_idx = np.nonzero(write if n_miss == 0 else write & hit)[0]
                if w_idx.size:
                    self.dirty[
                        lanes[w_idx], set_index[w_idx], ways[w_idx]
                    ] = True
        if n_miss:
            if n_miss != n:
                m_lanes = lanes[miss_idx]
                m_sets = set_index[miss_idx]
                m_tag = tag[miss_idx]
                m_tick = tick[miss_idx]
                m_write = write[miss_idx] if write is not None else False
            else:
                m_lanes = lanes
                m_sets = set_index
                m_tag = tag
                m_tick = tick
                m_write = write if write is not None else False
            # Empty slots sort below every real stamp (slot order), so
            # one argmin is both "first free slot" and "min-stamp
            # victim"; invalid slots always have dirty == False, so an
            # evicting fill is the only source of a dirty write-back.
            victim = self.stamps[m_lanes, m_sets].argmin(axis=1)
            wb = self.dirty[m_lanes, m_sets, victim]
            if wb.any():
                writeback = miss_idx[np.nonzero(wb)[0]]
            self.tags[m_lanes, m_sets, victim] = m_tag
            self.dirty[m_lanes, m_sets, victim] = m_write
            self.stamps[m_lanes, m_sets, victim] = m_tick
        return miss_idx, writeback

    def invalidate(self, lanes, paddr) -> None:
        """Vectorized ``invalidate_line`` (at most one match per set)."""
        set_index = (paddr >> self.offset_bits) & self.index_mask
        tag = paddr >> self.tag_shift
        rows = self.tags[lanes, set_index]
        match = rows == tag[:, None]
        if match.any():
            self.tags[lanes, set_index] = np.where(match, -1, rows)
            self.dirty[lanes, set_index] &= ~match
            self.stamps[lanes, set_index] = np.where(
                match, self._empty_stamps, self.stamps[lanes, set_index]
            )

    def flush(self, lanes):
        """Vectorized ``Cache.flush``: returns (cycles, lines_written_back)."""
        # dirty implies resident (fills set it, invalidation clears it),
        # so the write-back count is a straight sum.
        written_back = self.dirty[lanes].reshape(len(lanes), -1).sum(axis=1)
        cycles = self.flush_base + written_back * self.wb_cycles
        if self.broken:
            tags = self.tags[lanes]
            tags[:, self._broken_clear, :] = -1
            self.tags[lanes] = tags
            stamps = self.stamps[lanes]
            stamps[:, self._broken_clear, :] = self._empty_stamps
            self.stamps[lanes] = stamps
        else:
            self.tags[lanes] = -1
            self.stamps[lanes] = self._empty_stamps
        self.dirty[lanes] = False
        return cycles, written_back

    # -- evidence -------------------------------------------------------

    def fingerprint_of(self, lane_index: int):
        """Scalar ``Cache.fingerprint()`` for one lane."""
        tags = self.tags[lane_index].tolist()
        dirty = self.dirty[lane_index].tolist()
        occupancy = []
        for set_index in range(self.sets):
            t_row = tags[set_index]
            lines = [
                (t_row[way], dirty[set_index][way])
                for way in range(self.ways)
                if t_row[way] != -1
            ]
            if lines:
                occupancy.append((set_index, tuple(sorted(lines))))
        return (tuple(occupancy), ())

    def colour_fingerprints_of(self, lane_index: int, sets_per_colour: int,
                               n_colours: int, colours=None):
        """Scalar ``SwitchPath.llc_fingerprints_by_colour`` for one lane.

        ``colours``, when given, restricts the walk to those colours'
        sets (the evidence-trim fast path); ``None`` walks every set.
        """
        tags = self.tags[lane_index].tolist()
        by_colour = {}
        if colours is not None and n_colours > 1:
            sets_iter = [
                set_index
                for colour in sorted(colours)
                for set_index in range(
                    colour * sets_per_colour, (colour + 1) * sets_per_colour
                )
            ]
        else:
            sets_iter = range(self.sets)
        for set_index in sets_iter:
            colour = set_index // sets_per_colour if n_colours > 1 else 0
            t_row = tags[set_index]
            resident = tuple(
                sorted(t for t in t_row if t != -1)
            )
            by_colour.setdefault(colour, []).append((set_index, resident))
        return {colour: tuple(entries) for colour, entries in by_colour.items()}


class TlbArrays:
    """The fully-associative ASID-tagged TLB across lanes: [lanes, entries]."""

    __slots__ = (
        "entries", "flush_cycles", "key", "asid", "vpage", "frame",
        "writable", "generation", "stamp", "tick", "_empty_stamps",
    )

    def __init__(self, n_lanes: int, template: Tlb):
        self.entries = template.geometry.entries
        self.flush_cycles = template.flush_latency_cycles
        shape = (n_lanes, self.entries)
        self._empty_stamps = _invalid_stamps(self.entries)
        # key fuses (asid, vpage) for one-compare matching; -1 is empty.
        self.key = np.full(shape, -1, _INT)
        self.asid = np.full(shape, -1, _INT)
        self.vpage = np.full(shape, -1, _INT)
        self.frame = np.zeros(shape, _INT)
        self.writable = np.zeros(shape, bool)
        self.generation = np.zeros(shape, _INT)
        self.stamp = np.broadcast_to(self._empty_stamps, shape).copy()
        self.tick = np.zeros(n_lanes, _INT)

    def lift(self, lane_index: int, tlb: Tlb) -> None:
        self.tick[lane_index] = tlb._tick
        for slot, entry in enumerate(tlb.audit_entries()):
            self.key[lane_index, slot] = (
                (entry.asid << _ASID_SHIFT) | entry.vpage
            )
            self.asid[lane_index, slot] = entry.asid
            self.vpage[lane_index, slot] = entry.vpage
            self.frame[lane_index, slot] = entry.frame_number
            self.writable[lane_index, slot] = entry.writable
            self.generation[lane_index, slot] = entry.generation
            self.stamp[lane_index, slot] = entry.stamp

    def sync_back(self, lane_index: int, tlb: Tlb) -> None:
        tlb._tick = int(self.tick[lane_index])
        entries = {}
        keys = self.key[lane_index].tolist()
        for slot in range(self.entries):
            if keys[slot] == -1:
                continue
            asid = int(self.asid[lane_index, slot])
            vpage = int(self.vpage[lane_index, slot])
            entries[(asid, vpage)] = TlbEntry(
                asid=asid,
                vpage=vpage,
                frame_number=int(self.frame[lane_index, slot]),
                writable=bool(self.writable[lane_index, slot]),
                stamp=int(self.stamp[lane_index, slot]),
                generation=int(self.generation[lane_index, slot]),
            )
        tlb._entries = entries
        tlb._fp_version += 1

    def lookup(self, lanes, key):
        """Vectorized ``Tlb.lookup`` on fused (asid, vpage) match keys.

        Returns ``(None, frame)`` when every lane hit (the common case:
        one fewer pass over the hit mask for callers), else
        ``(hit, frame[hit])``.
        """
        tick = self.tick[lanes] + 1
        self.tick[lanes] = tick
        match = self.key[lanes] == key[:, None]
        hit = match.any(axis=1)
        if hit.all():
            slot = match.argmax(axis=1)
            self.stamp[lanes, slot] = tick
            return None, self.frame[lanes, slot]
        hit_idx = np.nonzero(hit)[0]
        h_lanes = lanes[hit_idx]
        h_slots = match.argmax(axis=1)[hit_idx]
        self.stamp[h_lanes, h_slots] = tick[hit_idx]
        return hit, self.frame[h_lanes, h_slots]

    def fill(self, lanes, key, vpage, frame, writable, generation) -> None:
        """Vectorized ``Tlb.fill`` (evict min-stamp when full)."""
        tick = self.tick[lanes] + 1
        self.tick[lanes] = tick
        slot = self.stamp[lanes].argmin(axis=1)
        self.key[lanes, slot] = key
        self.asid[lanes, slot] = key >> _ASID_SHIFT
        self.vpage[lanes, slot] = vpage
        self.frame[lanes, slot] = frame
        self.writable[lanes, slot] = writable
        self.generation[lanes, slot] = generation
        self.stamp[lanes, slot] = tick

    def flush(self, lanes) -> None:
        self.key[lanes] = -1
        self.asid[lanes] = -1
        self.stamp[lanes] = self._empty_stamps

    def fingerprint_of(self, lane_index: int):
        keys = self.key[lane_index].tolist()
        rows = []
        for slot in range(self.entries):
            if keys[slot] != -1:
                rows.append(
                    (
                        int(self.asid[lane_index, slot]),
                        int(self.vpage[lane_index, slot]),
                        int(self.frame[lane_index, slot]),
                        bool(self.writable[lane_index, slot]),
                    )
                )
        return tuple(sorted(rows))


class PrefetcherArrays:
    """Stride-prefetcher stream tables across lanes: [lanes, table_entries]."""

    __slots__ = (
        "table_entries", "region_bits", "degree", "flush_cycles", "flushable",
        "region", "last", "stride", "confidence", "stamp", "tick",
        "_empty_stamps",
    )

    def __init__(self, n_lanes: int, template: StridePrefetcher):
        self.table_entries = template.table_entries
        self.region_bits = template.region_bits
        self.degree = template.degree
        self.flush_cycles = template.flush_latency_cycles
        self.flushable = template.flushable_in_hardware
        shape = (n_lanes, self.table_entries)
        self._empty_stamps = _invalid_stamps(self.table_entries)
        self.region = np.full(shape, -1, _INT)
        self.last = np.zeros(shape, _INT)
        self.stride = np.zeros(shape, _INT)
        self.confidence = np.zeros(shape, _INT)
        self.stamp = np.broadcast_to(self._empty_stamps, shape).copy()
        self.tick = np.zeros(n_lanes, _INT)

    def lift(self, lane_index: int, prefetcher: StridePrefetcher) -> None:
        self.tick[lane_index] = prefetcher._tick
        for slot, (region, entry) in enumerate(prefetcher.audit_streams()):
            self.region[lane_index, slot] = region
            self.last[lane_index, slot] = entry.last_addr
            self.stride[lane_index, slot] = entry.stride
            self.confidence[lane_index, slot] = entry.confidence
            self.stamp[lane_index, slot] = entry.stamp

    def sync_back(self, lane_index: int, prefetcher: StridePrefetcher) -> None:
        prefetcher._tick = int(self.tick[lane_index])
        table = {}
        regions = self.region[lane_index].tolist()
        for slot in range(self.table_entries):
            if regions[slot] == -1:
                continue
            table[regions[slot]] = StreamEntry(
                last_addr=int(self.last[lane_index, slot]),
                stride=int(self.stride[lane_index, slot]),
                confidence=int(self.confidence[lane_index, slot]),
                stamp=int(self.stamp[lane_index, slot]),
            )
        prefetcher._table = table
        prefetcher._fp_version += 1

    def observe(self, lanes, paddr):
        """Vectorized ``StridePrefetcher.observe``.

        Returns (emit, prefetch_base, stride): ``emit`` marks the lanes
        that issue prefetches; their addresses are
        ``prefetch_base + stride * step`` for step in 1..degree.
        """
        tick = self.tick[lanes] + 1
        self.tick[lanes] = tick
        region = paddr >> self.region_bits
        match = self.region[lanes] == region[:, None]
        found = match.any(axis=1)
        emit = np.zeros(len(lanes), bool)
        stride_out = np.zeros(len(lanes), _INT)
        new_idx = np.nonzero(~found)[0]
        if new_idx.size:
            n_lanes = lanes[new_idx]
            n_slot = self.stamp[n_lanes].argmin(axis=1)
            self.region[n_lanes, n_slot] = region[new_idx]
            self.last[n_lanes, n_slot] = paddr[new_idx]
            self.stride[n_lanes, n_slot] = 0
            self.confidence[n_lanes, n_slot] = 0
            self.stamp[n_lanes, n_slot] = tick[new_idx]
        if new_idx.size != len(lanes):
            found_idx = np.nonzero(found)[0]
            f_lanes = lanes[found_idx]
            f_slots = match.argmax(axis=1)[found_idx]
            f_paddr = paddr[found_idx]
            stride = f_paddr - self.last[f_lanes, f_slots]
            confident = (
                (stride != 0) & (stride == self.stride[f_lanes, f_slots])
            )
            confidence = self.confidence[f_lanes, f_slots]
            confidence = np.where(
                confident,
                np.minimum(3, confidence + 1),
                np.maximum(0, confidence - 1),
            )
            self.confidence[f_lanes, f_slots] = confidence
            self.stride[f_lanes, f_slots] = stride
            self.last[f_lanes, f_slots] = f_paddr
            self.stamp[f_lanes, f_slots] = tick[found_idx]
            emit[found_idx] = (confidence >= 2) & (stride != 0)
            stride_out[found_idx] = stride
        return emit, paddr, stride_out

    def flush(self, lanes) -> None:
        if self.flushable:
            self.region[lanes] = -1
            self.stamp[lanes] = self._empty_stamps

    def fingerprint_of(self, lane_index: int):
        regions = self.region[lane_index].tolist()
        rows = []
        for slot in range(self.table_entries):
            if regions[slot] != -1:
                rows.append(
                    (
                        regions[slot],
                        int(self.last[lane_index, slot]),
                        int(self.stride[lane_index, slot]),
                        int(self.confidence[lane_index, slot]),
                    )
                )
        return tuple(sorted(rows))


class InterconnectArrays:
    """One serial bus per lane (lanes are whole independent machines)."""

    __slots__ = ("transfer_cycles", "busy_until", "total", "per_core", "had_key")

    def __init__(self, n_lanes: int, transfer_cycles: int):
        self.transfer_cycles = transfer_cycles
        self.busy_until = np.zeros(n_lanes, _INT)
        self.total = np.zeros(n_lanes, _INT)
        self.per_core = np.zeros(n_lanes, _INT)
        self.had_key = [False] * n_lanes

    def lift(self, lane_index: int, interconnect, core_id: int) -> None:
        self.busy_until[lane_index] = interconnect._busy_until
        self.total[lane_index] = interconnect.total_transfers
        self.per_core[lane_index] = interconnect.per_core_transfers.get(core_id, 0)
        self.had_key[lane_index] = core_id in interconnect.per_core_transfers

    def sync_back(self, lane_index: int, interconnect, core_id: int) -> None:
        interconnect._busy_until = int(self.busy_until[lane_index])
        interconnect.total_transfers = int(self.total[lane_index])
        count = int(self.per_core[lane_index])
        if count or self.had_key[lane_index]:
            interconnect.per_core_transfers[core_id] = count

    def request(self, lanes, now):
        """Vectorized ``Interconnect.request``: returns total_cycles."""
        start = np.maximum(now, self.busy_until[lanes])
        self.busy_until[lanes] = start + self.transfer_cycles
        self.total[lanes] += 1
        self.per_core[lanes] += 1
        return (start - now) + self.transfer_cycles


class BatchHardware:
    """All array state of one batch, plus the vectorized access chain."""

    def __init__(self, n_lanes: int, template_core, template_machine):
        self.n_lanes = n_lanes
        self.l1i = CacheArrays(n_lanes, template_core.l1i)
        self.l1d = CacheArrays(n_lanes, template_core.l1d)
        self.l2 = CacheArrays(n_lanes, template_core.l2)
        self.llc = CacheArrays(n_lanes, template_core.llc)
        self.tlb = TlbArrays(n_lanes, template_core.tlb)
        self.prefetcher = PrefetcherArrays(n_lanes, template_core.prefetcher)
        self.interconnect = InterconnectArrays(
            n_lanes, template_machine.config.interconnect_transfer_cycles
        )
        latency = template_core.latency
        self.base_cycles = latency.base_cycles
        self.dram_cycles = latency.dram_cycles
        self.tlb_hit_cycles = latency.tlb_hit_cycles
        self.walk_base_cycles = latency.tlb_walk_base_cycles
        self.mispredict_cycles = latency.mispredict_penalty_cycles
        self.readtime_cycles = latency.readtime_cycles
        self.flush_line_cycles = latency.flush_line_cycles
        self.trap_entry_cycles = latency.trap_entry_cycles
        page_size = template_machine.page_size
        self.page_size = page_size
        self.page_shift = page_size.bit_length() - 1
        self.page_mask = page_size - 1
        llc_geometry = template_machine.config.llc_geometry
        self.llc_n_colours = llc_geometry.n_colours(page_size)
        self.llc_sets_per_colour = llc_geometry.sets_per_colour(page_size)
        # Per-lane pre-shifted ASID for fused TLB keys (engine-maintained).
        self.asid_key = np.zeros(n_lanes, _INT)
        # Wave-membership cache for the lane-index gather array.
        self.prev_ordered = None
        self.prev_g = None

    # -- scalar interop -------------------------------------------------

    def lift(self, lane_index: int, core, machine) -> None:
        self.l1i.lift(lane_index, core.l1i)
        self.l1d.lift(lane_index, core.l1d)
        self.l2.lift(lane_index, core.l2)
        self.llc.lift(lane_index, machine.llc)
        self.tlb.lift(lane_index, core.tlb)
        self.prefetcher.lift(lane_index, core.prefetcher)
        self.interconnect.lift(lane_index, machine.interconnect, core.core_id)

    def sync_back(self, lane_index: int, core, machine) -> None:
        self.l1i.sync_back(lane_index, core.l1i)
        self.l1d.sync_back(lane_index, core.l1d)
        self.l2.sync_back(lane_index, core.l2)
        self.llc.sync_back(lane_index, machine.llc)
        self.tlb.sync_back(lane_index, core.tlb)
        self.prefetcher.sync_back(lane_index, core.prefetcher)
        self.interconnect.sync_back(lane_index, machine.interconnect, core.core_id)

    # -- the hierarchy chain --------------------------------------------

    def chain(self, lanes, paddr, write, fetch: bool, now):
        """Vectorized ``Core.cached_access``: latency per lane.

        Returns the per-lane latency array -- or a plain Python int when
        every lane hit L1 (one shared constant; callers in the hot path
        skip array arithmetic entirely on such waves).

        ``now`` is each lane's clock at the start of the *architectural
        step* containing this access: the scalar code computes
        interconnect request times as ``clock.now + cycles`` where
        ``cycles`` is the latency accumulated inside this one
        ``cached_access`` call only (the clock itself only advances at
        step end), and the chain reproduces that exactly.
        """
        l1 = self.l1i if fetch else self.l1d
        miss_idx, writeback = l1.access(lanes, paddr, write)
        if miss_idx.size == 0:
            # All-hit, and an L1 hit never writes back.
            return l1.hit_cycles
        cycles = np.full(len(lanes), l1.hit_cycles, _INT)
        if writeback is not None:
            cycles[writeback] += l1.wb_cycles
        if miss_idx.size == len(lanes):
            m_lanes = lanes
            m_paddr = paddr
            m_cycles = cycles
            m_now = now
        else:
            m_lanes = lanes[miss_idx]
            m_paddr = paddr[miss_idx]
            m_cycles = cycles[miss_idx]
            m_now = now[miss_idx]
        if not fetch:
            # Demand miss trains the prefetcher; confident streams fill
            # L2 off the critical path (no latency charged), in stride
            # order, before the demand fill -- exactly the scalar order.
            emit, base, stride = self.prefetcher.observe(m_lanes, m_paddr)
            e_idx = np.nonzero(emit)[0]
            if e_idx.size:
                e_lanes = m_lanes[e_idx]
                e_base = base[e_idx]
                e_stride = stride[e_idx]
                for step in range(1, self.prefetcher.degree + 1):
                    self.l2.access(e_lanes, e_base + e_stride * step, None)
        l2m_idx, l2_writeback = self.l2.access(m_lanes, m_paddr, None)
        m_cycles += self.l2.hit_cycles
        if l2_writeback is not None:
            m_cycles[l2_writeback] += self.l2.wb_cycles
        if l2m_idx.size:
            if l2m_idx.size == len(m_lanes):
                d_lanes = m_lanes
                d_paddr = m_paddr
                d_cycles = m_cycles
                d_now = m_now
            else:
                d_lanes = m_lanes[l2m_idx]
                d_paddr = m_paddr[l2m_idx]
                d_cycles = m_cycles[l2m_idx]
                d_now = m_now[l2m_idx]
            llcm_idx, llc_writeback = self.llc.access(d_lanes, d_paddr, None)
            d_cycles += self.llc.hit_cycles
            if llc_writeback is not None:
                d_cycles[llc_writeback] += self.interconnect.request(
                    d_lanes[llc_writeback],
                    d_now[llc_writeback] + d_cycles[llc_writeback],
                )
            if llcm_idx.size:
                d_cycles[llcm_idx] += (
                    self.interconnect.request(
                        d_lanes[llcm_idx], d_now[llcm_idx] + d_cycles[llcm_idx]
                    )
                    + self.dram_cycles
                )
            if l2m_idx.size != len(m_lanes):
                m_cycles[l2m_idx] = d_cycles
        if miss_idx.size != len(lanes):
            cycles[miss_idx] = m_cycles
        return cycles

"""The vectorized batch machine engine.

Steps a batch of independent machines in lockstep over numpy state
arrays, bit-identical to the scalar engine (enforced by the differential
golden suite).  Select it with ``MachineConfig(engine="batch")``, the
``engine_override`` context manager, or the batch presets in
``repro.hardware.presets``; drive a batch directly with
:func:`run_lockstep` or through a :class:`BatchMachine`.
"""

from .engine import BatchMachine, run_lockstep
from .support import BatchUnsupported, check_batchable

__all__ = [
    "BatchMachine",
    "BatchUnsupported",
    "check_batchable",
    "run_lockstep",
]

"""The lockstep batch engine: many machines, one wave at a time.

``run_lockstep(kernels, ...)`` runs N independent (kernel, machine)
pairs to completion with the exact observable behaviour of calling
``kernel.run(...)`` on each -- observation traces, switch records,
clocks, and every microarchitectural fingerprint are bit-identical (the
differential golden suite in ``tests/integration`` enforces this).

Design: a hybrid data-plane/control-plane split.

* The *data plane* -- cache tags/stamps, TLB, prefetcher table,
  interconnect bus -- lives in numpy arrays with a lane axis
  (:class:`~repro.hardware.batch.state.BatchHardware`).  One wave
  resolves the fetch translation, instruction fetch, data translation
  and data access of every lane with a handful of vector operations on
  shrinking miss subsets.
* The *control plane* -- scheduler, TCBs, generator programs, endpoint
  tables, memory words, branch predictor dictionaries -- stays on the
  per-lane scalar Python objects, mutated in place.  Programs are
  arbitrary Python generators; there is nothing to vectorize there, and
  keeping the real objects means evidence consumers (observation
  traces, switch records, ``machine.fingerprint_all()``) read the same
  structures scalar runs produce.

Lockstep is in *step count*, not in time: lanes are fully independent
machines, so their clocks diverge freely and no cross-lane ordering is
needed.  The one divergence-handling rule is for domain switches, whose
48-line kernel walk is only worth vectorizing across lanes: a lane that
reaches its switch point parks in a pending set, and the set switches
as one vector group once no unparked lane remains in the wave.  Under
padded schedules every lane reaches the same deterministic switch
point, so parking turns per-lane switch dribble into full-width vector
groups -- nothing couples lanes, so any grouping is legal and
bit-identical.
Lift at entry / sync-back at exit make the engine a drop-in
replacement mid-lifetime: state built by scalar runs is continued
exactly, and scalar code can resume after the batch returns.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ...kernel.kernel import ObservationRecord, _TIMER_TICK_CYCLES
from ...kernel.objects import ThreadState
from ...kernel.switch import SWITCH_CODE_LINES, SwitchRecord
from ...kernel.syscalls import _HANDLER_BASE_CYCLES, _OP_COSTS, UnknownSyscall
from ..isa import (
    Access,
    Branch,
    Compute,
    FlushLine,
    Halt,
    Observation,
    ReadTime,
    Syscall,
)
from ..machine import Machine, MachineConfig
from .state import _ASID_SHIFT, BatchHardware
from .support import BatchUnsupported, check_batchable

_INT = np.int64
_EMPTY_OBS = Observation()
_READY = ThreadState.READY
_DONE = ThreadState.DONE
_FAULTED = ThreadState.FAULTED

# Triage verdicts.
_RETIRE, _STALL, _STEPPED, _EXEC = range(4)

# Syscalls whose semantics need scalar-only machinery (blocked receivers,
# IRQ scheduling).
_UNSUPPORTED_OPS = frozenset({"recv", "io_submit"})


class _Lane:
    """Per-lane control state: one kernel/machine pair in the batch."""

    __slots__ = (
        "kernel", "machine", "core", "core_id", "idx", "sched",
        "clock", "steps", "max_steps", "max_cycles", "switch_at",
        "guard", "domain",
        "current", "finish_needed", "pending_switch",
        "cur_space", "cur_asid", "trans",
        "bcounters", "btb", "btb_order", "bhist", "bhmask", "btable",
        "bbtb_max", "bflush_cycles",
        "words", "observations", "record_obs", "capture_cases", "cases",
        "images", "kdata",
        "flush_on", "pad_on", "record_fp",
        "instr", "pc", "fcyc", "dcyc", "dpaddr", "fault",
    )

    def __init__(self, kernel, idx: int, max_cycles: int, max_steps: int):
        self.kernel = kernel
        machine = kernel.machine
        self.machine = machine
        core_id = kernel.scheduler.scheduled_cores()[0]
        self.core_id = core_id
        core = machine.cores[core_id]
        self.core = core
        self.idx = idx
        self.sched = kernel.scheduler.state(core_id)
        self.clock = core.clock.now
        self.steps = 0
        self.max_cycles = max_cycles
        self.max_steps = max_steps
        self.current = kernel._current_tcb.get(core_id)
        self.cur_space = None
        self.cur_asid = 0
        if self.current is not None:
            self.cur_space = self.current.space
            self.cur_asid = self.current.space.asid
        self.finish_needed = True
        self.pending_switch = None
        self.trans = {}
        branch = core.branch
        self.bcounters, self.btb, self.btb_order, self.bhist = (
            branch.audit_state()
        )
        self.bhmask = branch.history_mask
        self.btable = branch.table_size
        self.bbtb_max = branch.btb_entries
        self.bflush_cycles = branch.flush_latency_cycles
        self.words = machine.memory._words
        self.observations = kernel.observations
        self.record_obs = kernel.record_observations
        self.capture_cases = kernel.capture_cases
        self.cases = kernel.step_cases
        self.images = {
            name: [
                domain.kernel_image.line_paddr(line)
                for line in range(kernel.KERNEL_TEXT_LINES)
            ]
            for name, domain in kernel.domains.items()
        }
        self.kdata = list(kernel.kernel_data_paddrs)
        self.flush_on = kernel.tp.flush_on_switch
        self.pad_on = kernel.tp.pad_switch
        self.record_fp = kernel.switch_path.record_fingerprints
        self.instr = None
        self.pc = 0
        self.fcyc = 0
        self.dcyc = 0
        self.dpaddr = 0
        self.fault = False
        _refresh_switch_at(self)

    def sync_back(self, hw: BatchHardware) -> None:
        hw.sync_back(self.idx, self.core, self.machine)
        self.core.clock.now = self.clock
        branch = self.core.branch
        branch._counters = self.bcounters
        branch._btb = self.btb
        branch._btb_order = self.btb_order
        branch._history = self.bhist
        # Direct-write syncs bypass the mutation hooks that maintain the
        # memoised fingerprints; invalidate them explicitly.  The word
        # store is aliased and mutated in place during the wave, so the
        # memory fingerprint is stale too.
        branch._fp_version += 1
        self.machine.memory._fp_version += 1
        kernel = self.kernel
        kernel._current_tcb[self.core_id] = self.current
        kernel._finish_check_needed = self.finish_needed
        kernel.total_steps += self.steps


def _refresh_switch_at(lane: _Lane) -> None:
    state = lane.sched
    forced = state.forced_switch_at
    slice_end = state.slice_end
    switch_at = (
        slice_end if forced is None or forced >= slice_end else forced
    )
    lane.switch_at = switch_at
    # One fused bound for the hot triage path: below it there is no
    # switch and no horizon retire.  (The schedule position is stable
    # between refreshes, so the current domain is cached here too.)
    max_cycles = lane.max_cycles
    lane.guard = switch_at if switch_at < max_cycles else max_cycles
    lane.domain = state.entries[state.position][0]


def _idle(lane: _Lane, domain, now: int) -> None:
    """Replica of ``Kernel._idle`` inside the envelope (no IRQs, no
    blocked receivers)."""
    switch_at = lane.switch_at
    targets = [switch_at]
    wake = domain.earliest_wake(lane.core_id, now)
    if wake is not None:
        targets.append(wake)
    future = [t for t in targets if t > now]
    target = min(future) if future else switch_at
    target = min(target, switch_at)
    if target > now:
        lane.clock = target
    if lane.clock <= now:
        lane.clock = now + 1


def _triage(lane: _Lane, groups: Dict, hw: BatchHardware) -> int:
    """One scalar run-loop iteration up to the instruction dispatch."""
    clock = lane.clock
    if lane.steps >= lane.max_steps:
        return _RETIRE
    if clock >= lane.guard:
        # Slow path: at the horizon or at a switch point (guard is the
        # minimum of the two; the scalar loop checks in this order).
        if clock >= lane.max_cycles:
            return _RETIRE
        if lane.finish_needed:
            if lane.kernel._all_threads_finished():
                return _RETIRE
            lane.finish_needed = False
        state = lane.sched
        entries = state.entries
        from_domain = entries[state.position][0]
        forced = state.forced_next
        to_domain = (
            forced
            if forced is not None
            else entries[(state.position + 1) % len(entries)][0]
        )
        if from_domain is to_domain:
            # Intra-domain slice rollover: timer tick only, no flush,
            # no padding, current thread kept.
            lane.clock = clock + _TIMER_TICK_CYCLES
            lane.kernel.scheduler.advance(
                lane.core_id, release_time=lane.clock
            )
            _refresh_switch_at(lane)
            lane.steps += 1
            return _STEPPED
        lane.pending_switch = (from_domain, to_domain, lane.switch_at)
        return _STALL
    if lane.finish_needed:
        if lane.kernel._all_threads_finished():
            return _RETIRE
        lane.finish_needed = False
    # No IRQ delivery and no blocked receivers inside the envelope.
    tcb = lane.current
    if not (
        tcb is not None
        and tcb.domain is lane.domain
        and tcb.state is _READY
        and (tcb.wake_time is None or clock >= tcb.wake_time)
    ):
        tcb = lane.domain.next_runnable(lane.core_id, clock)
        lane.current = tcb
        if tcb is not None:
            space = tcb.space
            lane.cur_space = space
            lane.cur_asid = space.asid
            hw.asid_key[lane.idx] = space.asid << _ASID_SHIFT
    if tcb is None:
        _idle(lane, lane.domain, clock)
        lane.steps += 1
        return _STEPPED
    delivered = tcb.pending_obs
    tcb.pending_obs = None
    try:
        if tcb.started:
            instruction = tcb.program.send(
                delivered if delivered is not None else _EMPTY_OBS
            )
        else:
            instruction = next(tcb.program)
            tcb.started = True
    except StopIteration:
        tcb.state = _DONE
        lane.finish_needed = True
        lane.current = None
        lane.clock = clock + 1
        lane.steps += 1
        return _STEPPED
    code_size = tcb.code_size
    pc = tcb.pc
    if code_size > 0:
        rel = pc - tcb.code_base
        if rel < 0 or rel >= code_size:
            pc = tcb.code_base + rel % code_size
            tcb.pc = pc
    lane.pc = pc
    lane.instr = instruction
    lane.fault = False
    bucket = groups.get(instruction.__class__)
    if bucket is None:
        raise TypeError(f"unknown instruction {instruction!r}")
    bucket.append(lane)
    return _EXEC


def _fault_lane(lane: _Lane, cycles_so_far: int, trap_entry: int) -> None:
    lane.clock += cycles_so_far + trap_entry
    tcb = lane.current
    # new_pc == pc for faults; pc was already normalised in place.
    tcb.steps_executed += 1
    if lane.capture_cases:
        lane.cases.append(("2a", tcb.domain.name))
    tcb.state = _FAULTED
    lane.finish_needed = True
    lane.current = None
    lane.fault = True
    lane.steps += 1


def _translate(hw: BatchHardware, lanes: List[_Lane], g, vaddr, now):
    """Vectorized ``Core.translate``: returns (cycles, paddr, fault).

    TLB hits are one gather; misses resolve through a per-lane static
    translation cache (address spaces do not change during a run) and
    charge the page-table walk through the data hierarchy exactly as the
    scalar walk does -- including for addresses that turn out to be
    unmapped (the scalar walk runs before the fault is raised).  The
    returned ``fault`` is ``None`` when no lane faulted (the common
    case), so callers skip per-lane fault triage entirely.
    """
    n = len(lanes)
    vpage = vaddr >> hw.page_shift
    key = hw.asid_key[g] | vpage
    hit, frame = hw.tlb.lookup(g, key)
    if hit is None:
        paddr = frame * hw.page_size + (vaddr & hw.page_mask)
        return hw.tlb_hit_cycles, paddr, None
    idxs = np.nonzero(~hit)[0]
    cycles = np.full(n, hw.tlb_hit_cycles, _INT)
    paddr = np.zeros(n, _INT)
    hit_idx = np.nonzero(hit)[0]
    if hit_idx.size:
        paddr[hit_idx] = frame * hw.page_size + (vaddr[hit_idx] & hw.page_mask)
    k = len(idxs)
    frame_m = np.empty(k, _INT)
    base_m = np.empty(k, _INT)
    writable_m = np.empty(k, bool)
    gen_m = np.empty(k, _INT)
    walk0 = np.empty(k, _INT)
    walk1 = np.empty(k, _INT)
    fault_m = np.zeros(k, bool)
    any_fault = False
    vpage_list = vpage[idxs].tolist()
    vaddr_list = vaddr[idxs].tolist()
    for j, i in enumerate(idxs.tolist()):
        lane = lanes[i]
        vp = vpage_list[j]
        tkey = (lane.cur_asid, vp)
        entry = lane.trans.get(tkey)
        if entry is None:
            space = lane.cur_space
            walk = space.walk_addresses(vaddr_list[j])
            mapping = space._mappings.get(vp)
            if mapping is None:
                entry = (None, 0, False, 0, walk[0], walk[1])
            else:
                entry = (
                    mapping.frame.number,
                    mapping.frame.base_paddr(space.page_size),
                    mapping.writable,
                    space.generation,
                    walk[0],
                    walk[1],
                )
            lane.trans[tkey] = entry
        if entry[0] is None:
            any_fault = True
            fault_m[j] = True
            frame_m[j] = 0
            base_m[j] = 0
            writable_m[j] = False
            gen_m[j] = 0
        else:
            frame_m[j] = entry[0]
            base_m[j] = entry[1]
            writable_m[j] = entry[2]
            gen_m[j] = entry[3]
        walk0[j] = entry[4]
        walk1[j] = entry[5]
    g_m = g[idxs]
    now_m = now[idxs]
    walk_cycles = np.full(k, hw.walk_base_cycles, _INT)
    walk_cycles += hw.chain(g_m, walk0, None, False, now_m)
    walk_cycles += hw.chain(g_m, walk1, None, False, now_m)
    if any_fault:
        ok = ~fault_m
        if ok.any():
            hw.tlb.fill(
                g_m[ok],
                key[idxs][ok],
                vpage[idxs][ok],
                frame_m[ok],
                writable_m[ok],
                gen_m[ok],
            )
            paddr[idxs[ok]] = base_m[ok] + (vaddr[idxs][ok] & hw.page_mask)
        fault = np.zeros(n, bool)
        fault[idxs] = fault_m
    else:
        hw.tlb.fill(
            g_m, key[idxs], vpage[idxs], frame_m, writable_m, gen_m
        )
        paddr[idxs] = base_m + (vaddr[idxs] & hw.page_mask)
        fault = None
    cycles[idxs] = walk_cycles
    return cycles, paddr, fault


def _finish_step(lane: _Lane, total: int, value, new_pc: int) -> None:
    """Non-trap epilogue: clock, pc, observation, trace record."""
    lane.clock += total
    tcb = lane.current
    tcb.pc = new_pc
    tcb.steps_executed += 1
    tcb.pending_obs = Observation(value, total)
    if lane.record_obs:
        lane.observations[tcb.domain.name].append(
            ObservationRecord(tcb.name, value, total)
        )
    if lane.capture_cases:
        lane.cases.append(("1", tcb.domain.name))
    lane.steps += 1


def _execute_wave(hw: BatchHardware, kmat, groups: Dict) -> None:
    """Phase B: run every dispatched instruction, vectorized by kind.

    ``ordered`` starts with the Access then FlushLine groups, so the
    data-side lane subsets are prefix *views* of the wave arrays (free)
    whenever no lane faulted -- the per-lane fault filtering only runs
    on waves that actually contain a fault.
    """
    accesses = groups[Access]
    flush_group = groups[FlushLine]
    ordered = (
        accesses + flush_group + groups[Compute]
        + groups[ReadTime] + groups[Branch] + groups[Syscall] + groups[Halt]
    )
    if not ordered:
        return
    n = len(ordered)
    if ordered == hw.prev_ordered:
        # Wave membership repeats for long stretches (every lane in the
        # same program phase); the lane-index gather array is identical
        # then, so reuse it instead of rebuilding.
        g = hw.prev_g
    else:
        g = np.array([lane.idx for lane in ordered], _INT)
        hw.prev_ordered = ordered
        hw.prev_g = g
    now = np.array([lane.clock for lane in ordered], _INT)
    pcs = np.array([lane.pc for lane in ordered], _INT)
    # Instruction fetch: translate pc, then the I-side hierarchy.
    tcyc, fetch_paddr, ffault = _translate(hw, ordered, g, pcs, now)
    faulted = ffault is not None
    if faulted:
        ok_idx = np.nonzero(~ffault)[0]
        icyc_full = np.zeros(n, _INT)
        if ok_idx.size:
            icyc_full[ok_idx] = hw.chain(
                g[ok_idx], fetch_paddr[ok_idx], None, True, now[ok_idx]
            )
        fcyc = (hw.base_cycles + tcyc + icyc_full).tolist()
        ffault_list = ffault.tolist()
        for i, lane in enumerate(ordered):
            if ffault_list[i]:
                # Fetch fault: only the base cycle accrued before the trap.
                _fault_lane(lane, hw.base_cycles, hw.trap_entry_cycles)
            else:
                lane.fcyc = fcyc[i]
    else:
        icyc = hw.chain(g, fetch_paddr, None, True, now)
        total = hw.base_cycles + tcyc + icyc
        if isinstance(total, int):
            # Uniform wave: every lane TLB-hit and L1I-hit.
            for lane in ordered:
                lane.fcyc = total
        else:
            fcyc = total.tolist()
            for i, lane in enumerate(ordered):
                lane.fcyc = fcyc[i]

    # Data-side translation for memory-touching kinds.
    n_data = len(accesses) + len(flush_group)
    if n_data:
        if faulted:
            data_lanes = [
                lane
                for lane in accesses + flush_group
                if not lane.fault
            ]
            g_d = np.array([lane.idx for lane in data_lanes], _INT)
            now_d = np.array([lane.clock for lane in data_lanes], _INT)
        else:
            data_lanes = ordered[:n_data] if n_data != n else ordered
            g_d = g[:n_data]
            now_d = now[:n_data]
        if data_lanes:
            vaddr = np.array(
                [lane.instr.vaddr for lane in data_lanes], _INT
            )
            dcyc, dpaddr, dfault = _translate(
                hw, data_lanes, g_d, vaddr, now_d
            )
            dpaddr_list = dpaddr.tolist()
            if dfault is None:
                if isinstance(dcyc, int):
                    for i, lane in enumerate(data_lanes):
                        lane.dcyc = dcyc
                        lane.dpaddr = dpaddr_list[i]
                else:
                    dcyc_list = dcyc.tolist()
                    for i, lane in enumerate(data_lanes):
                        lane.dcyc = dcyc_list[i]
                        lane.dpaddr = dpaddr_list[i]
            else:
                dcyc_list = dcyc.tolist()
                faulted = True
                dfault_list = dfault.tolist()
                for i, lane in enumerate(data_lanes):
                    if dfault_list[i]:
                        # The walk ran, but its latency is discarded by
                        # the trap (the scalar translate raises before
                        # returning cycles).
                        _fault_lane(lane, lane.fcyc, hw.trap_entry_cycles)
                    else:
                        lane.dcyc = dcyc_list[i]
                        lane.dpaddr = dpaddr_list[i]

    if accesses:
        if faulted:
            accesses = [lane for lane in accesses if not lane.fault]
        if accesses:
            n_acc = len(accesses)
            if faulted:
                g_a = np.array([lane.idx for lane in accesses], _INT)
                now_a = np.array([lane.clock for lane in accesses], _INT)
            else:
                g_a = g[:n_acc]
                now_a = now[:n_acc]
            paddr = np.array([lane.dpaddr for lane in accesses], _INT)
            instrs = [lane.instr for lane in accesses]
            write = np.array([ins.write for ins in instrs], bool)
            if not write.any():
                write = None
            cyc = hw.chain(g_a, paddr, write, False, now_a)
            cyc_list = None if isinstance(cyc, int) else cyc.tolist()
            for i, lane in enumerate(accesses):
                instruction = instrs[i]
                total = lane.fcyc + lane.dcyc + (
                    cyc if cyc_list is None else cyc_list[i]
                )
                address = lane.dpaddr
                if instruction.write:
                    lane.words[address] = instruction.value
                    value = instruction.value
                else:
                    value = lane.words.get(address, 0)
                _finish_step(lane, total, value, lane.pc + 4)

    if flush_group:
        flushes = (
            [lane for lane in flush_group if not lane.fault]
            if faulted
            else flush_group
        )
        if flushes:
            g_f = np.array([lane.idx for lane in flushes], _INT)
            paddr = np.array([lane.dpaddr for lane in flushes], _INT)
            hw.l1d.invalidate(g_f, paddr)
            hw.l1i.invalidate(g_f, paddr)
            hw.l2.invalidate(g_f, paddr)
            hw.llc.invalidate(g_f, paddr)
            for lane in flushes:
                total = lane.fcyc + lane.dcyc + hw.flush_line_cycles
                _finish_step(lane, total, None, lane.pc + 4)

    for lane in groups[Compute]:
        if lane.fault:
            continue
        total = lane.fcyc + max(0, lane.instr.cycles)
        _finish_step(lane, total, None, lane.pc + 4)

    for lane in groups[ReadTime]:
        if lane.fault:
            continue
        # The observed value is the *post-advance* clock.
        total = lane.fcyc + hw.readtime_cycles
        lane.clock += total
        tcb = lane.current
        tcb.pc = lane.pc + 4
        tcb.steps_executed += 1
        tcb.pending_obs = Observation(lane.clock, total)
        if lane.record_obs:
            lane.observations[tcb.domain.name].append(
                ObservationRecord(tcb.name, lane.clock, total)
            )
        if lane.capture_cases:
            lane.cases.append(("1", tcb.domain.name))
        lane.steps += 1

    for lane in groups[Branch]:
        if lane.fault:
            continue
        instruction = lane.instr
        pc = lane.pc
        taken = instruction.taken
        target = (
            instruction.target
            if instruction.target is not None
            else pc + 8
        )
        index = (pc ^ lane.bhist) % lane.btable
        counter = lane.bcounters.get(index, 1)
        predicted_taken = counter >= 2
        predicted_target = lane.btb.get(pc)
        mispredicted = predicted_taken != taken or (
            taken and predicted_target != target
        )
        lane.bcounters[index] = (
            min(3, counter + 1) if taken else max(0, counter - 1)
        )
        if taken:
            if pc not in lane.btb and len(lane.btb) >= lane.bbtb_max:
                victim = lane.btb_order.pop(0)
                del lane.btb[victim]
            if pc not in lane.btb:
                lane.btb_order.append(pc)
            lane.btb[pc] = target
        lane.bhist = ((lane.bhist << 1) | (1 if taken else 0)) & lane.bhmask
        total = lane.fcyc + (hw.mispredict_cycles if mispredicted else 0)
        _finish_step(lane, total, None, target if taken else pc + 4)

    syscalls = [lane for lane in groups[Syscall] if not lane.fault]
    if syscalls:
        _execute_syscalls(hw, kmat, syscalls)

    for lane in groups[Halt]:
        if lane.fault:
            continue
        lane.clock += lane.fcyc
        tcb = lane.current
        tcb.steps_executed += 1  # new_pc == pc; no observation
        tcb.state = _DONE
        lane.finish_needed = True
        lane.current = None
        lane.steps += 1


def _execute_syscalls(hw: BatchHardware, kmat, lanes: List[_Lane]) -> None:
    by_op: Dict[str, List[_Lane]] = {}
    for lane in lanes:
        op = lane.instr.op
        if op in _UNSUPPORTED_OPS:
            raise BatchUnsupported(
                f"syscall {op!r} needs the scalar engine (blocked receivers "
                "/ IRQ scheduling are outside the batch envelope)"
            )
        if op not in _OP_COSTS:
            raise UnknownSyscall(f"unknown syscall {op!r}")
        # User-side trap: base + fetch + trap entry, advanced before the
        # kernel path (the scalar execute_user returns here).
        user_latency = lane.fcyc + hw.trap_entry_cycles
        lane.clock += user_latency
        lane.fcyc = user_latency  # reused as the user part of the latency
        tcb = lane.current
        tcb.pc = lane.pc + 4
        tcb.steps_executed += 1
        by_op.setdefault(op, []).append(lane)
    for op, group in by_op.items():
        line_offset, n_lines, n_data = _OP_COSTS[op]
        n = len(group)
        # Post-user-advance clocks.
        g = np.array([lane.idx for lane in group], _INT)
        now = np.array([lane.clock for lane in group], _INT)
        images = [
            lane.images[lane.current.domain.name] for lane in group
        ]
        cycles = np.full(n, _HANDLER_BASE_CYCLES, _INT)
        for line in range(n_lines):
            column = np.array(
                [image[line_offset + line] for image in images], _INT
            )
            cycles += hw.chain(g, column, None, True, now)
        for word in range(min(n_data, kmat.shape[1])):
            cycles += hw.chain(g, kmat[g, word], None, False, now)
        cycles_list = cycles.tolist()
        for i, lane in enumerate(group):
            lane.clock += cycles_list[i]
            core = lane.core
            core.clock.now = lane.clock  # _dispatch reads core.clock.now
            tcb = lane.current
            outcome = lane.kernel.syscalls._dispatch(
                core, tcb.domain, tcb, lane.instr
            )
            kernel_latency = cycles_list[i] + lane.fcyc
            tcb.pending_obs = Observation(outcome.retval, kernel_latency)
            if lane.record_obs:
                lane.observations[tcb.domain.name].append(
                    ObservationRecord(tcb.name, outcome.retval, kernel_latency)
                )
            if outcome.yielded:
                lane.current = None
            if lane.capture_cases:
                lane.cases.append(("2a", tcb.domain.name))
            _refresh_switch_at(lane)  # "call" may have forced a switch
            lane.steps += 1


def _process_switches(
    hw: BatchHardware,
    kmat,
    group: List[_Lane],
    llc_fingerprint_colours,
) -> None:
    """Vectorized ``SwitchPath.execute`` over a pending group.

    Mirrors the scalar phase structure exactly: from-side switch code,
    flush, to-side switch code, kernel-data sweep (or scheduler touch),
    pad.  The clock advances at the same four points; within each phase
    every line access charges the interconnect at phase-start clock plus
    its own intra-access latency, as the scalar code does.
    """
    n = len(group)
    g = np.array([lane.idx for lane in group], _INT)
    entered = [lane.clock for lane in group]
    scheduled = [lane.pending_switch[2] for lane in group]
    from_domains = [lane.pending_switch[0] for lane in group]
    to_domains = [lane.pending_switch[1] for lane in group]
    from_images = [
        lane.images[domain.name] for lane, domain in zip(group, from_domains)
    ]
    to_images = [
        lane.images[domain.name] for lane, domain in zip(group, to_domains)
    ]
    flush_mask = np.array([lane.flush_on for lane in group], bool)

    # Phase 1: from-side switch code through the I-side hierarchy.
    now = np.array([lane.clock for lane in group], _INT)
    side_cycles = np.zeros(n, _INT)
    for line in range(SWITCH_CODE_LINES):
        column = np.array([image[line] for image in from_images], _INT)
        side_cycles += hw.chain(g, column, None, True, now)
    work = side_cycles.copy()
    for i, lane in enumerate(group):
        lane.clock += int(side_cycles[i])

    # Phase 2: flush every core-local flushable element (flush lanes).
    flush_cycles = np.zeros(n, _INT)
    written_back = np.zeros(n, _INT)
    post_flush = [{} for _ in range(n)]
    reset_fps = [{} for _ in range(n)]
    flushed_names: List[tuple] = [() for _ in range(n)]
    if flush_mask.any():
        f_pos = np.nonzero(flush_mask)[0]
        f_lanes = g[f_pos]
        for arrays, attribute in (
            (hw.l1i, "l1i"),
            (hw.l1d, "l1d"),
            (hw.l2, "l2"),
        ):
            cycles, dirty = arrays.flush(f_lanes)
            flush_cycles[f_pos] += cycles
            written_back[f_pos] += dirty
            for i in f_pos.tolist():
                lane = group[i]
                name = getattr(lane.core, attribute).name
                post_flush[i][name] = (
                    arrays.fingerprint_of(lane.idx)
                    if arrays.broken
                    else ((), ())
                )
                reset_fps[i][name] = ((), ())
        hw.tlb.flush(f_lanes)
        flush_cycles[f_pos] += hw.tlb.flush_cycles
        for i in f_pos.tolist():
            lane = group[i]
            name = lane.core.tlb.name
            post_flush[i][name] = ()
            reset_fps[i][name] = ()
            # Branch predictor: pure-Python per-lane state.
            lane.bcounters.clear()
            lane.btb.clear()
            lane.btb_order.clear()
            lane.bhist = 0
            bname = lane.core.branch.name
            post_flush[i][bname] = ((), (), 0)
            reset_fps[i][bname] = ((), (), 0)
            flush_cycles[i] += lane.bflush_cycles
        hw.prefetcher.flush(f_lanes)
        flush_cycles[f_pos] += hw.prefetcher.flush_cycles
        for i in f_pos.tolist():
            lane = group[i]
            name = lane.core.prefetcher.name
            post_flush[i][name] = (
                ()
                if hw.prefetcher.flushable
                else hw.prefetcher.fingerprint_of(lane.idx)
            )
            reset_fps[i][name] = ()
            flushed_names[i] = (
                lane.core.l1i.name, lane.core.l1d.name, lane.core.l2.name,
                lane.core.tlb.name, lane.core.branch.name,
                lane.core.prefetcher.name,
            )
    for i, lane in enumerate(group):
        lane.clock += int(flush_cycles[i])

    # Phase 3: to-side switch code, then the kernel-data accesses.
    now = np.array([lane.clock for lane in group], _INT)
    side_cycles = np.zeros(n, _INT)
    for line in range(SWITCH_CODE_LINES):
        column = np.array(
            [image[SWITCH_CODE_LINES + line] for image in to_images], _INT
        )
        side_cycles += hw.chain(g, column, None, True, now)
    work += side_cycles
    for i, lane in enumerate(group):
        lane.clock += int(side_cycles[i])

    now = np.array([lane.clock for lane in group], _INT)
    data_cycles = np.zeros(n, _INT)
    n_kdata = kmat.shape[1]
    if flush_mask.any():
        f_pos = np.nonzero(flush_mask)[0]
        f_lanes = g[f_pos]
        for word in range(n_kdata):
            data_cycles[f_pos] += hw.chain(
                f_lanes, kmat[f_lanes, word], None, False, now[f_pos]
            )
    touch_mask = ~flush_mask
    if touch_mask.any():
        t_pos = np.nonzero(touch_mask)[0]
        t_lanes = g[t_pos]
        for word in range(min(4, n_kdata)):
            data_cycles[t_pos] += hw.chain(
                t_lanes, kmat[t_lanes, word], None, False, now[t_pos]
            )
    work += data_cycles
    for i, lane in enumerate(group):
        lane.clock += int(data_cycles[i])

    # Phase 4: pad to the deterministic release point; emit evidence.
    flush_list = flush_cycles.tolist()
    wb_list = written_back.tolist()
    work_list = work.tolist()
    for i, lane in enumerate(group):
        finished_at = lane.clock
        pad_target: Optional[int] = None
        overrun = False
        if lane.pad_on:
            pad_target = scheduled[i] + from_domains[i].pad_cycles
            overrun = finished_at > pad_target
            if pad_target > lane.clock:
                lane.clock = pad_target
        released_at = lane.clock
        if lane.record_fp:
            colour_fps = hw.llc.colour_fingerprints_of(
                lane.idx, hw.llc_sets_per_colour, hw.llc_n_colours,
                colours=llc_fingerprint_colours,
            )
        else:
            colour_fps = {}
        lane.kernel.switch_path.records.append(
            SwitchRecord(
                core_id=lane.core_id,
                from_domain=from_domains[i].name,
                to_domain=to_domains[i].name,
                scheduled_at=scheduled[i],
                entered_at=entered[i],
                flush_cycles=flush_list[i],
                lines_written_back=wb_list[i],
                work_cycles=work_list[i],
                finished_at=finished_at,
                pad_target=pad_target,
                released_at=released_at,
                overrun=overrun,
                post_flush_fingerprints=post_flush[i],
                reset_fingerprints=reset_fps[i],
                flushed_elements=flushed_names[i],
                llc_colour_fingerprints=colour_fps,
                llc_owner_fingerprints={},
            )
        )
        if lane.capture_cases:
            lane.cases.append(
                ("2b", f"@switch:{from_domains[i].name}>{to_domains[i].name}")
            )
        lane.kernel.scheduler.advance(lane.core_id, release_time=released_at)
        lane.kernel.irq_policy.apply_masks(lane.core.irq, to_domains[i])
        lane.current = None
        lane.pending_switch = None
        _refresh_switch_at(lane)
        lane.steps += 1


def run_lockstep(
    kernels: Sequence,
    max_cycles: Union[int, Sequence[int]],
    max_steps: int = 50_000_000,
    llc_fingerprint_colours=None,
) -> None:
    """Run every kernel to its horizon, batched; scalar-equivalent.

    ``max_cycles`` is one horizon for all lanes or a per-lane sequence.
    ``llc_fingerprint_colours``, when given, restricts the per-switch
    LLC colour fingerprints to those colours (an opt-in evidence trim
    for consumers that only audit the observer's colours); ``None``
    keeps full scalar parity.
    """
    kernels = list(kernels)
    check_batchable(kernels)
    if isinstance(max_cycles, int):
        horizons = [max_cycles] * len(kernels)
    else:
        horizons = [int(h) for h in max_cycles]
        if len(horizons) != len(kernels):
            raise ValueError("need one max_cycles horizon per kernel")
    lanes = [
        _Lane(kernel, idx, horizon, max_steps)
        for idx, (kernel, horizon) in enumerate(zip(kernels, horizons))
    ]
    hw = BatchHardware(len(lanes), lanes[0].core, lanes[0].machine)
    for lane in lanes:
        hw.lift(lane.idx, lane.core, lane.machine)
        hw.asid_key[lane.idx] = lane.cur_asid << _ASID_SHIFT
    kmat = np.array([lane.kdata for lane in lanes], _INT)
    groups: Dict = {
        Access: [], FlushLine: [], Compute: [], ReadTime: [],
        Branch: [], Syscall: [], Halt: [],
    }
    active = list(lanes)
    pending: List[_Lane] = []
    try:
        while active or pending:
            next_active = []
            for bucket in groups.values():
                bucket.clear()
            for lane in active:
                verdict = _triage(lane, groups, hw)
                if verdict == _RETIRE:
                    continue
                if verdict == _STALL:
                    pending.append(lane)
                    continue
                next_active.append(lane)
            _execute_wave(hw, kmat, groups)
            if pending and not next_active:
                # Park switchers until the wave drains: under padded
                # schedules every lane reaches the same switch point
                # within a few waves, so waiting turns many tiny switch
                # groups into one full-width vector group.  Lanes are
                # independent, so any grouping is bit-identical.
                _process_switches(hw, kmat, pending, llc_fingerprint_colours)
                next_active.extend(pending)
                pending.clear()
            active = next_active
    finally:
        for lane in lanes:
            lane.sync_back(hw)


class BatchMachine:
    """A batch of identically-configured machines behind the Machine API.

    Each lane is a full scalar :class:`Machine` (with ``engine="batch"``
    so kernels booted on it route ``run()`` through the batch engine);
    per-lane views are therefore Machine-compatible by construction --
    experiment code builds kernels on ``batch[i]`` exactly as it would
    on a preset machine, then ``run_all`` steps every lane in lockstep.
    """

    def __init__(self, config: MachineConfig, n_lanes: int):
        if n_lanes < 1:
            raise ValueError("need at least one lane")
        if config.engine != "batch":
            config = dataclasses.replace(config, engine="batch")
        self.config = config
        self.lanes = [Machine(config) for _ in range(n_lanes)]

    def __len__(self) -> int:
        return len(self.lanes)

    def __getitem__(self, lane_index: int) -> Machine:
        return self.lanes[lane_index]

    def __iter__(self):
        return iter(self.lanes)

    def run_all(
        self,
        kernels: Sequence,
        max_cycles: Union[int, Sequence[int]],
        max_steps: int = 50_000_000,
    ) -> None:
        """Run one kernel per lane to its horizon, in lockstep waves."""
        run_lockstep(kernels, max_cycles, max_steps=max_steps)

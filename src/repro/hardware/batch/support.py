"""Batch-engine envelope checks.

The batch engine (``repro.hardware.batch.engine``) replicates the scalar
semantics of :class:`repro.hardware.cpu.Core` and the kernel run loop
bit-for-bit -- but only inside a declared envelope.  Everything outside
it raises :class:`BatchUnsupported` so callers can fall back to the
scalar engine instead of silently diverging.

Envelope (checked up front by :func:`check_batchable`):

* exactly one scheduled core per kernel (the common case; the scalar
  multi-core interleaving loop has cross-core clock coupling the
  lockstep waves do not model);
* identical machine *shape* across lanes: geometries, page size (a power
  of two), TLB size, latency constants, replacement policy, history
  bits, interconnect transfer time, and the contract-violation knobs.
  Time-protection configs may differ per lane -- that is the point of
  batching secret-swap and ablation sweeps;
* LRU or FIFO replacement (no PLRU tree bits in the array model);
* no SMT sharing, no MBA throttling, no CAT-style way quotas;
* no pending device interrupts, and (enforced at run time) no ``recv``
  or ``io_submit`` syscalls -- blocked receivers and IRQ delivery stay
  scalar-only for now.

Instrumentation is the one *deliberate* envelope cut that is not an
error: batch runs skip per-touch instrumentation entirely.  Channel
observables, switch records and state fingerprints are bit-identical to
scalar runs; per-touch proof evidence is not produced.  Runs that need
it (``prove``, footprint capture) must use the scalar engine --
``capture_footprints`` therefore *is* rejected.
"""

from __future__ import annotations

from typing import List, Tuple

from ...kernel.objects import ThreadState
from ..cache import ReplacementPolicy


class BatchUnsupported(RuntimeError):
    """The workload steps outside the batch engine's envelope."""


def _machine_signature(kernel) -> Tuple:
    """The shape every lane must share for lockstep array stepping."""
    config = kernel.machine.config
    latency = config.latency
    geoms = tuple(
        (g.sets, g.ways, g.line_size)
        for g in (
            config.l1i_geometry,
            config.l1d_geometry,
            config.l2_geometry,
            config.llc_geometry,
        )
    )
    cache_lat = tuple(
        (p.hit_cycles, p.flush_base_cycles, p.writeback_cycles_per_line)
        for p in (
            config.l1i_latency,
            config.l1d_latency,
            config.l2_latency,
            config.llc_latency,
        )
    )
    return (
        config.page_size,
        geoms,
        cache_lat,
        config.tlb_entries,
        (
            latency.base_cycles,
            latency.dram_cycles,
            latency.tlb_hit_cycles,
            latency.tlb_walk_base_cycles,
            latency.mispredict_penalty_cycles,
            latency.readtime_cycles,
            latency.flush_line_cycles,
            latency.trap_entry_cycles,
        ),
        config.replacement,
        config.branch_history_bits,
        config.interconnect_transfer_cycles,
        config.prefetcher_flushable,
        config.broken_l1d_flush,
        len(kernel.kernel_data_paddrs),
    )


def check_batchable(kernels: List) -> None:
    """Raise :class:`BatchUnsupported` unless every kernel fits the envelope."""
    if not kernels:
        raise BatchUnsupported("empty batch")
    signatures = []
    for position, kernel in enumerate(kernels):
        machine = kernel.machine
        config = machine.config
        where = f"lane {position}"
        scheduled = kernel.scheduler.scheduled_cores()
        if len(scheduled) != 1:
            raise BatchUnsupported(
                f"{where}: batch engine needs exactly one scheduled core, "
                f"got {len(scheduled)}"
            )
        if config.smt:
            raise BatchUnsupported(f"{where}: SMT state sharing is scalar-only")
        if config.mba is not None:
            raise BatchUnsupported(f"{where}: MBA throttling is scalar-only")
        if config.replacement is ReplacementPolicy.PLRU:
            raise BatchUnsupported(
                f"{where}: PLRU tree bits are not array-modelled (LRU/FIFO only)"
            )
        if machine.llc.way_quota or kernel.tp.way_partitioning:
            raise BatchUnsupported(
                f"{where}: CAT-style way quotas are scalar-only"
            )
        if kernel.capture_footprints:
            raise BatchUnsupported(
                f"{where}: footprint capture needs per-touch instrumentation; "
                "batch runs skip it"
            )
        if config.page_size & (config.page_size - 1):
            raise BatchUnsupported(
                f"{where}: page size {config.page_size} is not a power of two"
            )
        core = machine.cores[scheduled[0]]
        if core.irq._pending:
            raise BatchUnsupported(
                f"{where}: pending device interrupts are scalar-only"
            )
        for domain in kernel.domains.values():
            if domain.kernel_image is None:
                raise BatchUnsupported(
                    f"{where}: domain {domain.name!r} has no kernel image"
                )
            for tcb in domain.threads:
                # The batch loop never runs the blocked-receiver wakeup
                # scan (recv is rejected at dispatch), so a thread that
                # is already BLOCKED at entry would sleep forever.
                if tcb.state is ThreadState.BLOCKED:
                    raise BatchUnsupported(
                        f"{where}: thread {tcb.name!r} is blocked on an "
                        "endpoint; blocked receivers are scalar-only"
                    )
        signatures.append(_machine_signature(kernel))
    first = signatures[0]
    for position, signature in enumerate(signatures[1:], start=1):
        if signature != first:
            raise BatchUnsupported(
                f"lane {position} machine shape differs from lane 0; "
                "all lanes of a batch must share one machine configuration"
            )

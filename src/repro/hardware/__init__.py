"""Microarchitectural timing simulator: the hardware substrate.

This subpackage stands in for the physical processors of the paper's
setting.  It models exactly the state the paper's argument is about --
caches, TLBs, branch predictors, prefetchers, the shared interconnect,
interrupt lines and cycle clocks -- with deterministic latencies so the
proof layer can reason about *dependence* rather than absolute time.
"""

from .branch import BranchPredictor, PredictResult
from .cache import AccessResult, Cache, CacheLine, LatencyParams, ReplacementPolicy
from .clock import CycleClock
from .cpu import Core, LatencyConfig, StepResult, Trap, TrapKind, INSTRUCTION_BYTES
from .geometry import CacheGeometry, TlbGeometry, colour_of_frame
from .interconnect import Interconnect, MbaConfig, TransferResult
from .interrupts import InterruptController, PendingInterrupt, PREEMPTION_TIMER_IRQ
from .isa import (
    Access,
    Branch,
    Compute,
    FlushLine,
    Halt,
    Instruction,
    Observation,
    Program,
    ProgramContext,
    ReadTime,
    Syscall,
)
from .machine import Machine, MachineConfig
from .memory import Frame, PhysicalMemory
from .mmu import AddressSpace, AddressSpaceManager, Mapping, TranslationFault
from .prefetcher import StridePrefetcher
from .state import (
    FlushResult,
    Instrumentation,
    InstrumentationMode,
    Scope,
    StateCategory,
    StateElement,
    Touch,
    TouchKind,
)
from .tlb import Tlb, TlbEntry, TlbLookupResult

from . import presets

__all__ = [
    "Access",
    "AccessResult",
    "AddressSpace",
    "AddressSpaceManager",
    "Branch",
    "BranchPredictor",
    "Cache",
    "CacheGeometry",
    "CacheLine",
    "Compute",
    "Core",
    "CycleClock",
    "FlushLine",
    "FlushResult",
    "Frame",
    "Halt",
    "Instruction",
    "Instrumentation",
    "InstrumentationMode",
    "Interconnect",
    "InterruptController",
    "INSTRUCTION_BYTES",
    "LatencyConfig",
    "LatencyParams",
    "Machine",
    "MachineConfig",
    "Mapping",
    "MbaConfig",
    "Observation",
    "PendingInterrupt",
    "PhysicalMemory",
    "PredictResult",
    "PREEMPTION_TIMER_IRQ",
    "Program",
    "ProgramContext",
    "ReadTime",
    "ReplacementPolicy",
    "Scope",
    "StateCategory",
    "StateElement",
    "StepResult",
    "StridePrefetcher",
    "Syscall",
    "Tlb",
    "TlbEntry",
    "TlbGeometry",
    "TlbLookupResult",
    "Touch",
    "TouchKind",
    "TransferResult",
    "TranslationFault",
    "Trap",
    "TrapKind",
    "colour_of_frame",
    "presets",
]

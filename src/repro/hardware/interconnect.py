"""The shared memory interconnect: finite bandwidth, no history.

Sect. 2 of the paper deliberately *excludes* covert channels through
stateless interconnects: their finite bandwidth is observable under
concurrent access, but they hold no addressable state, so they cannot be
partitioned or flushed by the OS on any contemporary hardware.  We model
the interconnect as a single serial resource with a per-transfer occupancy
cost; concurrent requests queue, so one core's traffic measurably delays
another core's misses.  Experiment E7 demonstrates that this channel
survives full time protection, exactly as the paper concedes.

The footnote on Intel MBA (memory bandwidth allocation) is reproduced by
an optional *approximate* per-core throttle: cores exceeding a request
budget within a coarse accounting window are penalised.  Because the
enforcement is approximate and windowed, modulation remains visible and
the covert channel persists -- "not sufficient for preventing covert
channels".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class MbaConfig:
    """Approximate per-core bandwidth throttling (Intel MBA-style)."""

    window_cycles: int = 2000
    requests_per_window: int = 16
    throttle_delay_cycles: int = 40


@dataclass
class TransferResult:
    wait_cycles: int
    transfer_cycles: int

    @property
    def total_cycles(self) -> int:
        return self.wait_cycles + self.transfer_cycles


class Interconnect:
    """A serial shared bus between the LLC and memory.

    Not a :class:`~repro.hardware.state.StateElement`: it is *stateless*
    in the paper's sense (no secret-addressable residue), yet it is a
    timing-relevant shared resource.  The abstract-model extraction lists
    it as a declared exclusion rather than as managed state.
    """

    name = "interconnect"

    def __init__(
        self,
        transfer_cycles: int = 24,
        mba: Optional[MbaConfig] = None,
    ):
        self.transfer_cycles = transfer_cycles
        self.mba = mba
        self._busy_until = 0
        self._window_start: Dict[int, int] = {}
        self._window_count: Dict[int, int] = {}
        self.total_transfers = 0
        self.per_core_transfers: Dict[int, int] = {}

    def clone_for_mc(self) -> "Interconnect":
        """Independent copy sharing the (frozen-by-convention) config."""
        other = Interconnect.__new__(Interconnect)
        other.transfer_cycles = self.transfer_cycles
        other.mba = self.mba
        other._busy_until = self._busy_until
        other._window_start = dict(self._window_start)
        other._window_count = dict(self._window_count)
        other.total_transfers = self.total_transfers
        other.per_core_transfers = dict(self.per_core_transfers)
        return other

    def request(self, core: int, now: int) -> TransferResult:
        """Serve one memory transfer for ``core`` starting at ``now``.

        Returns the queueing delay (contention from other cores' traffic)
        and the transfer occupancy itself.
        """
        start = max(now, self._busy_until)
        throttle = self._mba_penalty(core, start)
        start += throttle
        self._busy_until = start + self.transfer_cycles
        self.total_transfers += 1
        self.per_core_transfers[core] = self.per_core_transfers.get(core, 0) + 1
        return TransferResult(
            wait_cycles=(start - now), transfer_cycles=self.transfer_cycles
        )

    def _mba_penalty(self, core: int, now: int) -> int:
        if self.mba is None:
            return 0
        window_start = self._window_start.get(core, 0)
        if now - window_start >= self.mba.window_cycles:
            self._window_start[core] = now
            self._window_count[core] = 0
        count = self._window_count.get(core, 0) + 1
        self._window_count[core] = count
        if count > self.mba.requests_per_window:
            return self.mba.throttle_delay_cycles
        return 0

    def utilisation_since(self, transfers_before: int) -> int:
        """Transfers served since a recorded ``total_transfers`` value."""
        return self.total_transfers - transfers_before

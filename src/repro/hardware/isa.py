"""The abstract ISA and the user-program protocol.

User programs are Python generators over a tiny abstract instruction set:
they ``yield`` instructions and receive back an :class:`Observation`
carrying the architecturally visible result (a loaded value, a timestamp,
a syscall return).  This makes attackers naturally *adaptive* -- a
prime-and-probe spy can branch on the probe latencies it just measured --
while keeping the hardware/software boundary explicit: the only things a
program can observe are the values the ISA hands back, and the only clock
it can read is the hardware cycle counter via :class:`ReadTime` (the
``rdtsc`` of this machine).

The ISA deliberately abstracts *computation* (a :class:`Compute` burns
cycles) but models *interaction with shared microarchitectural state*
precisely: memory accesses, branches, cache-line flushes, traps.  That is
the paper's level of abstraction: which state an instruction touches, not
what it computes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional, Tuple, Union


@dataclass(frozen=True, slots=True)
class Access:
    """Load (``write=False``) or store (``write=True``) at ``vaddr``.

    The observation of a load carries the word read; stores echo the value
    written.
    """

    vaddr: int
    write: bool = False
    value: int = 0


@dataclass(frozen=True, slots=True)
class Compute:
    """Pure computation taking ``cycles`` cycles (no state touched)."""

    cycles: int = 1


@dataclass(frozen=True, slots=True)
class Branch:
    """A conditional branch at the current pc.

    ``taken`` is the actual outcome; ``target`` the taken-path virtual
    address (defaults to a skip of two instruction slots).  Exercises the
    branch predictor; a misprediction costs a fixed penalty.
    """

    taken: bool
    target: Optional[int] = None


@dataclass(frozen=True, slots=True)
class ReadTime:
    """Read the hardware cycle counter (user-level ``rdtsc``)."""


@dataclass(frozen=True, slots=True)
class FlushLine:
    """User-level ``clflush``: evict ``vaddr``'s line from all levels."""

    vaddr: int


@dataclass(frozen=True, slots=True)
class Syscall:
    """Trap into the kernel (Case 2a of Sect. 5.2).

    Operations understood by the kernel model:

    * ``("send", endpoint_id, value)``    -- enqueue a message.
    * ``("recv", endpoint_id)``           -- block until a message is visible.
    * ``("poll", endpoint_id)``           -- non-blocking receive (-1 if none).
    * ``("io_submit", line, delay, payload)`` -- device completion IRQ in
      ``delay`` cycles on IRQ ``line``.
    * ``("yield",)``                      -- yield to the next thread in the
      domain.
    * ``("nop",)``                        -- trap and return (pure kernel
      round-trip; used to exercise the kernel-text channel).
    """

    op: str
    args: Tuple[int, ...] = ()


@dataclass(frozen=True, slots=True)
class Halt:
    """Terminate the issuing thread."""


Instruction = Union[Access, Compute, Branch, ReadTime, FlushLine, Syscall, Halt]


@dataclass(frozen=True, slots=True)
class Observation:
    """What a program sees after an instruction completes.

    ``value`` is the architectural result (load data, timestamp, syscall
    return; ``None`` where there is none).  ``latency`` is provided as a
    simulator convenience for tests; faithful attackers measure latency
    themselves by bracketing accesses with :class:`ReadTime`.
    """

    value: Optional[int] = None
    latency: int = 0


Program = Generator[Instruction, Observation, None]


@dataclass
class ProgramContext:
    """Per-thread memory layout and parameters handed to program factories.

    Attributes:
        data_base: virtual address of the thread's private data buffer.
        data_size: size of that buffer in bytes.
        code_base: virtual address the thread's code is fetched from.
        shared_text_base: virtual address where (possibly cloned) kernel
            text is mapped read-only, or ``None`` when not mapped.
        page_size: machine page size.
        line_size: LLC line size (for attack stride arithmetic).
        params: free-form parameters from the experiment (secrets, knobs).
    """

    data_base: int
    data_size: int
    code_base: int
    page_size: int
    line_size: int
    shared_text_base: Optional[int] = None
    shared_text_size: int = 0
    # LLC page colour of each data page, in page order.  A cooperating
    # Trojan legitimately knows its own physical layout; a spy can learn
    # it with standard eviction-set construction, so exposing it models
    # the standard attacker capability without re-implementing that step.
    page_colours: Tuple[int, ...] = ()
    params: dict = field(default_factory=dict)

"""Physical memory: frames, frame allocation, and page colours.

Physical frames are the unit the OS hands to domains; the *colour* of a
frame (which LLC sets its lines land in) is what the colour-aware
allocator in ``repro.kernel.colour_alloc`` partitions.  Memory contents
are modelled word-by-word in a sparse dict -- enough for message passing
and for secret-dependent table lookups, without simulating real data
paths.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from .geometry import colour_of_frame


@dataclass(frozen=True)
class Frame:
    """One physical memory frame."""

    number: int
    colour: int

    def base_paddr(self, page_size: int) -> int:
        return self.number * page_size


class PhysicalMemory:
    """Flat physical memory split into colourable frames."""

    def __init__(self, total_frames: int, page_size: int, n_colours: int):
        if total_frames < 1:
            raise ValueError("total_frames must be >= 1")
        if n_colours < 1:
            raise ValueError("n_colours must be >= 1")
        self.page_size = page_size
        self.n_colours = n_colours
        self.frames: List[Frame] = [
            Frame(number=n, colour=colour_of_frame(n, n_colours))
            for n in range(total_frames)
        ]
        self._free: List[Frame] = list(self.frames)
        self._words: Dict[int, int] = {}
        # Fingerprint memoisation (see StateElement.cached_fingerprint):
        # bumped on every mutation of words or the free list.
        self._fp_version = 0
        self._fp_cache: Optional[tuple] = None
        self._fp_digest: Optional[tuple] = None

    @property
    def size_bytes(self) -> int:
        return len(self.frames) * self.page_size

    # ------------------------------------------------------------------
    # Frame allocation
    # ------------------------------------------------------------------

    def free_frames(self, colours: Optional[Set[int]] = None) -> int:
        """Number of free frames, optionally restricted to ``colours``."""
        if colours is None:
            return len(self._free)
        return sum(1 for frame in self._free if frame.colour in colours)

    def alloc_frame(self, colours: Optional[Set[int]] = None) -> Frame:
        """Allocate the lowest-numbered free frame of an allowed colour.

        Raises:
            MemoryError: if no free frame of an allowed colour exists.
        """
        for position, frame in enumerate(self._free):
            if colours is None or frame.colour in colours:
                self._fp_version += 1
                return self._free.pop(position)
        raise MemoryError(
            f"out of physical frames for colours {sorted(colours or set())}"
        )

    def alloc_frames(self, count: int, colours: Optional[Set[int]] = None) -> List[Frame]:
        return [self.alloc_frame(colours) for _ in range(count)]

    def release(self, frames: Iterable[Frame]) -> None:
        """Return frames to the free pool (kept sorted for determinism)."""
        self._free.extend(frames)
        self._free.sort(key=lambda frame: frame.number)
        self._fp_version += 1

    # ------------------------------------------------------------------
    # Data plane (word granularity; addresses are byte addresses)
    # ------------------------------------------------------------------

    def read_word(self, paddr: int) -> int:
        return self._words.get(paddr, 0)

    def write_word(self, paddr: int, value: int) -> None:
        self._words[paddr] = value
        self._fp_version += 1

    def cached_fingerprint(self) -> tuple:
        """``fingerprint()``, memoised against the mutation version."""
        cache = self._fp_cache
        if cache is not None and cache[0] == self._fp_version:
            return cache[1]
        fp = self.fingerprint()
        self._fp_cache = (self._fp_version, fp)
        return fp

    def cached_digest(self) -> bytes:
        """BLAKE2b digest of ``fingerprint()``, memoised the same way."""
        cache = self._fp_digest
        if cache is not None and cache[0] == self._fp_version:
            return cache[1]
        digest = hashlib.blake2b(
            pickle.dumps(self.cached_fingerprint(), protocol=4),
            digest_size=16,
        ).digest()
        self._fp_digest = (self._fp_version, digest)
        return digest

    def clone_for_mc(self) -> "PhysicalMemory":
        """Independent copy sharing the (frozen) Frame objects."""
        other = PhysicalMemory.__new__(PhysicalMemory)
        other.page_size = self.page_size
        other.n_colours = self.n_colours
        other.frames = self.frames
        other._free = list(self._free)
        other._words = dict(self._words)
        other._fp_version = self._fp_version
        other._fp_cache = self._fp_cache
        other._fp_digest = self._fp_digest
        return other

    def fingerprint(self) -> tuple:
        """Canonical memory state: written words plus the free-frame set.

        A model-checker state hook: two memories fingerprint equal iff
        every written word and the allocation state agree.
        """
        return (
            tuple(sorted(self._words.items())),
            tuple(frame.number for frame in self._free),
        )

"""Interrupt controller: IRQ lines, masking, and pending delivery.

Sect. 4.2: "interrupts could also be used as a channel, if the Trojan
triggers an I/O such that its completion interrupt fires during Lo's
execution".  The kernel's defence is to partition IRQ lines between
domains and keep every line masked whose owner is not currently running
(the preemption timer excepted).  The controller below provides exactly
the mechanism surface that policy needs: per-line masks, scheduled
completion times (the device model), and a query for the earliest
deliverable interrupt at a given time.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple


PREEMPTION_TIMER_IRQ = 0


@dataclass(frozen=True)
class PendingInterrupt:
    fire_time: int
    line: int
    payload: int = 0


class InterruptController:
    """Per-core interrupt controller with line masking."""

    def __init__(self, n_lines: int = 16):
        if n_lines < 1:
            raise ValueError("need at least one IRQ line")
        self.n_lines = n_lines
        self._masked: Set[int] = set()
        self._pending: List[Tuple[int, int, int, int]] = []  # heap
        self._seq = 0
        self.delivered_count: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Masking
    # ------------------------------------------------------------------

    def mask(self, line: int) -> None:
        self._check_line(line)
        self._masked.add(line)

    def unmask(self, line: int) -> None:
        self._check_line(line)
        self._masked.discard(line)

    def is_masked(self, line: int) -> bool:
        return line in self._masked

    def set_mask_all_except(self, allowed: Set[int]) -> None:
        """Mask every line not in ``allowed`` (IRQ partitioning)."""
        for line in range(self.n_lines):
            if line in allowed:
                self._masked.discard(line)
            else:
                self._masked.add(line)

    # ------------------------------------------------------------------
    # Device side: schedule completions
    # ------------------------------------------------------------------

    def schedule(self, line: int, fire_time: int, payload: int = 0) -> None:
        """A device will raise ``line`` at absolute time ``fire_time``."""
        self._check_line(line)
        heapq.heappush(self._pending, (fire_time, self._seq, line, payload))
        self._seq += 1

    # ------------------------------------------------------------------
    # CPU side: poll for deliverable interrupts
    # ------------------------------------------------------------------

    def deliverable(self, now: int) -> Optional[PendingInterrupt]:
        """Earliest unmasked interrupt with ``fire_time <= now``, if any.

        Masked interrupts stay pending (level-triggered): they deliver
        once their line is unmasked -- i.e. once their owner domain runs
        again, which is what makes partitioning close the channel rather
        than merely delaying it into the Trojan's own slice.
        """
        pending = self._pending
        if not pending or pending[0][0] > now:
            # Nothing scheduled, or the earliest completion is still in
            # the future: the heap walk below would keep everything.
            return None
        deliverable = None
        kept: List[Tuple[int, int, int, int]] = []
        while self._pending:
            fire_time, seq, line, payload = heapq.heappop(self._pending)
            if fire_time > now:
                kept.append((fire_time, seq, line, payload))
                break
            if line in self._masked:
                kept.append((fire_time, seq, line, payload))
                continue
            deliverable = PendingInterrupt(fire_time=fire_time, line=line, payload=payload)
            break
        for item in kept:
            heapq.heappush(self._pending, item)
        if deliverable is not None:
            self.delivered_count[deliverable.line] = (
                self.delivered_count.get(deliverable.line, 0) + 1
            )
        return deliverable

    def clone_for_mc(self) -> "InterruptController":
        """Independent copy (heap entries are immutable tuples)."""
        other = InterruptController.__new__(InterruptController)
        other.n_lines = self.n_lines
        other._masked = set(self._masked)
        other._pending = list(self._pending)
        other._seq = self._seq
        other.delivered_count = dict(self.delivered_count)
        return other

    def next_unmasked_fire_time(self) -> Optional[int]:
        """Earliest fire time among pending interrupts on unmasked lines."""
        times = [
            fire_time
            for fire_time, _seq, line, _payload in self._pending
            if line not in self._masked
        ]
        return min(times) if times else None

    def next_fire_time(self, line: Optional[int] = None) -> Optional[int]:
        """Earliest scheduled fire time (optionally for one line)."""
        times = [
            fire_time
            for fire_time, _seq, pending_line, _payload in self._pending
            if line is None or pending_line == line
        ]
        return min(times) if times else None

    def pending_lines(self) -> Set[int]:
        return {line for _t, _s, line, _p in self._pending}

    def fingerprint(self) -> Tuple:
        """Canonical controller state: mask set plus pending completions.

        A model-checker state hook: delivery behaviour is fully
        determined by which lines are masked and what is pending (the
        delivery-count statistics are audit evidence, not state).
        """
        return (
            tuple(sorted(self._masked)),
            tuple(sorted(
                (fire_time, line, payload)
                for fire_time, _seq, line, payload in self._pending
            )),
        )

    def _check_line(self, line: int) -> None:
        if not 0 <= line < self.n_lines:
            raise ValueError(f"IRQ line {line} out of range 0..{self.n_lines - 1}")

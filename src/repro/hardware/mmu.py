"""Address spaces, page tables and virtual-to-physical translation.

Each security domain's threads run in address spaces identified by an
ASID.  Page tables live in physical memory frames, so page-table walks on
TLB misses are themselves cached memory accesses -- which is why the TLB
and the walk both appear in the time model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .memory import Frame, PhysicalMemory


class TranslationFault(Exception):
    """Raised when a virtual address has no mapping (a trap, Case 2a)."""

    def __init__(self, asid: int, vaddr: int):
        super().__init__(f"translation fault: asid={asid} vaddr={vaddr:#x}")
        self.asid = asid
        self.vaddr = vaddr


@dataclass
class Mapping:
    """One virtual page -> physical frame mapping."""

    vpage: int
    frame: Frame
    writable: bool = True


class AddressSpace:
    """A page table rooted in a physical frame, tagged by ASID."""

    def __init__(self, asid: int, page_size: int, root_frame: Frame):
        self.asid = asid
        self.page_size = page_size
        self.root_frame = root_frame
        self._mappings: Dict[int, Mapping] = {}
        self.generation = 0  # bumped on every modification (TLB shootdown)

    def map(self, vaddr: int, frame: Frame, writable: bool = True) -> None:
        """Install a mapping for the page containing ``vaddr``."""
        vpage = vaddr // self.page_size
        self._mappings[vpage] = Mapping(vpage=vpage, frame=frame, writable=writable)
        self.generation += 1

    def unmap(self, vaddr: int) -> None:
        vpage = vaddr // self.page_size
        if vpage in self._mappings:
            del self._mappings[vpage]
            self.generation += 1

    def lookup(self, vaddr: int) -> Mapping:
        """Translate; raises :class:`TranslationFault` if unmapped."""
        vpage = vaddr // self.page_size
        mapping = self._mappings.get(vpage)
        if mapping is None:
            raise TranslationFault(self.asid, vaddr)
        return mapping

    def translate(self, vaddr: int) -> int:
        """Physical address for ``vaddr``."""
        mapping = self.lookup(vaddr)
        offset = vaddr % self.page_size
        return mapping.frame.base_paddr(self.page_size) + offset

    def walk_addresses(self, vaddr: int, levels: int = 2) -> List[int]:
        """Physical addresses a hardware page-table walk would read.

        The walk touches one word per level inside the page-table frames;
        these reads go through the data cache, so walk latency depends on
        cache state like any other access.  We model a radix walk rooted
        at ``root_frame`` whose per-level entry offset is derived from the
        virtual page number.
        """
        vpage = vaddr // self.page_size
        addresses = []
        base = self.root_frame.base_paddr(self.page_size)
        for level in range(levels):
            entry_index = (vpage >> (8 * (levels - 1 - level))) & 0xFF
            addresses.append(base + (entry_index * 8) % self.page_size)
        return addresses

    def mapped_pages(self) -> List[int]:
        return sorted(self._mappings)

    def frames(self) -> List[Frame]:
        """All frames mapped in this address space (plus the root)."""
        result = [self.root_frame]
        result.extend(m.frame for m in self._mappings.values())
        return result


class AddressSpaceManager:
    """Allocates ASIDs and page-table root frames."""

    def __init__(self, memory: PhysicalMemory):
        self._memory = memory
        self._next_asid = 1
        self.spaces: Dict[int, AddressSpace] = {}

    def create(self, colours: Optional[set] = None) -> AddressSpace:
        root = self._memory.alloc_frame(colours)
        space = AddressSpace(
            asid=self._next_asid, page_size=self._memory.page_size, root_frame=root
        )
        self._next_asid += 1
        self.spaces[space.asid] = space
        return space

"""Branch-prediction state: gshare direction predictor, BTB, return stack.

Branch predictors are core-local, history-accumulating structures -- a
classic flushable resource (Sect. 4.1) and the substrate of the Spectre
family the paper's introduction cites.  Direction prediction uses a
gshare-style table of 2-bit saturating counters indexed by
``pc xor global_history``; target prediction uses a small BTB.  A
mispredicted branch costs a fixed penalty, so predictor state left behind
by one domain measurably perturbs the next domain's timing unless the
predictor is flushed on domain switch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional

from .state import (
    FlushResult,
    Instrumentation,
    Scope,
    StateCategory,
    StateElement,
    TouchKind,
)


@dataclass
class PredictResult:
    predicted_taken: bool
    predicted_target: Optional[int]
    mispredicted: bool


class BranchPredictor(StateElement):
    """gshare + BTB + global history register."""

    def __init__(
        self,
        name: str,
        table_bits: int = 10,
        btb_entries: int = 64,
        history_bits: int = 8,
        instrumentation: Optional[Instrumentation] = None,
        flush_latency_cycles: int = 10,
    ):
        super().__init__(
            name, StateCategory.FLUSHABLE, Scope.CORE_LOCAL, instrumentation
        )
        self.table_size = 1 << table_bits
        self.btb_entries = btb_entries
        self.history_mask = (1 << history_bits) - 1
        self.flush_latency_cycles = flush_latency_cycles
        self._counters: Dict[int, int] = {}  # index -> 2-bit counter (0..3)
        self._btb: Dict[int, int] = {}  # pc -> target
        self._btb_order: list = []  # FIFO replacement for the BTB
        self._history = 0

    def _table_index(self, pc: int) -> int:
        return (pc ^ self._history) % self.table_size

    def predict_and_update(self, pc: int, taken: bool, target: int) -> PredictResult:
        """Predict branch at ``pc``, then train on the actual outcome."""
        self._fp_version += 1
        index = self._table_index(pc)
        self._touch(index, TouchKind.PREDICT)
        counter = self._counters.get(index, 1)  # weakly not-taken reset state
        predicted_taken = counter >= 2
        predicted_target = self._btb.get(pc)
        mispredicted = predicted_taken != taken or (
            taken and predicted_target != target
        )
        # Train the direction counter.
        if taken:
            counter = min(3, counter + 1)
        else:
            counter = max(0, counter - 1)
        self._counters[index] = counter
        self._touch(index, TouchKind.UPDATE)
        # Train the BTB for taken branches.
        if taken:
            if pc not in self._btb and len(self._btb) >= self.btb_entries:
                victim = self._btb_order.pop(0)
                del self._btb[victim]
            if pc not in self._btb:
                self._btb_order.append(pc)
            self._btb[pc] = target
        # Shift the global history register.
        self._history = ((self._history << 1) | (1 if taken else 0)) & self.history_mask
        return PredictResult(
            predicted_taken=predicted_taken,
            predicted_target=predicted_target,
            mispredicted=mispredicted,
        )

    # ------------------------------------------------------------------
    # StateElement protocol
    # ------------------------------------------------------------------

    def flush(self) -> FlushResult:
        self._counters.clear()
        self._btb.clear()
        self._btb_order.clear()
        self._history = 0
        self._fp_version += 1
        return FlushResult(cycles=self.flush_latency_cycles)

    def clone_for_mc(self, instrumentation) -> "BranchPredictor":
        """Independent copy sharing only immutable configuration."""
        other = BranchPredictor.__new__(BranchPredictor)
        other.name = self.name
        other.category = self.category
        other.scope = self.scope
        other.instr = instrumentation
        other.concurrently_shared = self.concurrently_shared
        other._fp_version = self._fp_version
        other._fp_cache = self._fp_cache
        other._fp_digest = self._fp_digest
        other.table_size = self.table_size
        other.btb_entries = self.btb_entries
        other.history_mask = self.history_mask
        other.flush_latency_cycles = self.flush_latency_cycles
        other._counters = dict(self._counters)
        other._btb = dict(self._btb)
        other._btb_order = list(self._btb_order)
        other._history = self._history
        return other

    def audit_state(self):
        """Copies of the counter table, BTB, BTB fill order and history
        register (audit accessor).  BTB eviction is FIFO over the fill
        order, which the sorted :meth:`fingerprint` discards; consumers
        replicating prediction behaviour (the batch engine's lift
        boundary) need it.  Read-only, no touch.
        """
        return (
            dict(self._counters),
            dict(self._btb),
            list(self._btb_order),
            self._history,
        )

    def fingerprint(self) -> Hashable:
        return (
            tuple(sorted(self._counters.items())),
            tuple(sorted(self._btb.items())),
            self._history,
        )

    def reset_fingerprint(self) -> Hashable:
        return ((), (), 0)

"""An abstract in-order core and its memory access paths.

The core composes every latency from the state elements an instruction
consults: instruction fetch through the I-cache, address translation
through the TLB (with page-table walks through the data hierarchy),
loads/stores through L1D -> L2 -> LLC -> interconnect -> memory, branch
resolution through the predictor.  The resulting per-instruction latency
is the concrete instance of the paper's "deterministic yet unspecified
function of the microarchitectural state" (Sect. 5.1): deterministic
because the simulator is; unspecified because nothing above this module
ever depends on the constants, only on the dependence structure, which is
recorded in the instrumentation footprint.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .branch import BranchPredictor
from .cache import Cache
from .clock import CycleClock
from .interconnect import Interconnect
from .interrupts import InterruptController
from .isa import (
    Access,
    Branch,
    Compute,
    FlushLine,
    Halt,
    Instruction,
    ReadTime,
    Syscall,
)
from .memory import PhysicalMemory
from .mmu import AddressSpace, TranslationFault
from .prefetcher import StridePrefetcher
from .tlb import Tlb


INSTRUCTION_BYTES = 4


@dataclass(frozen=True)
class LatencyConfig:
    """Global latency constants outside the per-cache parameters."""

    base_cycles: int = 1
    dram_cycles: int = 60
    tlb_hit_cycles: int = 1
    tlb_walk_base_cycles: int = 8
    mispredict_penalty_cycles: int = 18
    readtime_cycles: int = 8
    flush_line_cycles: int = 24
    trap_entry_cycles: int = 20


class TrapKind(enum.Enum):
    SYSCALL = "syscall"
    FAULT = "fault"
    HALT = "halt"


@dataclass(slots=True)
class Trap:
    kind: TrapKind
    syscall: Optional[Syscall] = None
    fault_vaddr: Optional[int] = None


@dataclass(slots=True)
class StepResult:
    """Outcome of executing one user instruction."""

    latency: int
    value: Optional[int]
    new_pc: int
    trap: Optional[Trap] = None


class Core:
    """One hardware thread: private state plus handles to shared levels."""

    def __init__(
        self,
        core_id: int,
        clock: CycleClock,
        l1i: Cache,
        l1d: Cache,
        l2: Cache,
        llc: Cache,
        tlb: Tlb,
        branch: BranchPredictor,
        prefetcher: StridePrefetcher,
        irq: InterruptController,
        interconnect: Interconnect,
        memory: PhysicalMemory,
        latency: LatencyConfig,
    ):
        self.core_id = core_id
        self.clock = clock
        self.l1i = l1i
        self.l1d = l1d
        self.l2 = l2
        self.llc = llc
        self.tlb = tlb
        self.branch = branch
        self.prefetcher = prefetcher
        self.irq = irq
        self.interconnect = interconnect
        self.memory = memory
        self.latency = latency
        # The latency function is deterministic and fixed at construction
        # (LatencyConfig is frozen), so its constants are snapshotted into
        # locals-friendly attributes instead of being re-read through two
        # attribute hops on every simulated instruction.
        self._base_cycles = latency.base_cycles
        self._dram_cycles = latency.dram_cycles
        self._tlb_hit_cycles = latency.tlb_hit_cycles
        self._tlb_walk_base_cycles = latency.tlb_walk_base_cycles
        self._mispredict_cycles = latency.mispredict_penalty_cycles
        self._readtime_cycles = latency.readtime_cycles
        self._flush_line_cycles = latency.flush_line_cycles
        self._trap_entry_cycles = latency.trap_entry_cycles

    # ------------------------------------------------------------------
    # Cached physical access paths
    # ------------------------------------------------------------------

    def cached_access(self, paddr: int, write: bool = False, fetch: bool = False) -> int:
        """Access ``paddr`` through the hierarchy; returns latency in cycles.

        L1 (I or D) -> unified private L2 -> shared LLC -> interconnect ->
        DRAM.  Dirty evictions add write-back cost; LLC misses and LLC
        dirty evictions occupy the shared interconnect, which is where
        cross-core contention (the excluded stateless-interconnect
        channel) physically lives.
        """
        l1 = self.l1i if fetch else self.l1d
        cycles = l1.hit_cycles
        result = l1.access(paddr, write)
        if result.dirty_writeback:
            cycles += l1.writeback_cycles_per_line
        if result.hit:
            return cycles
        l2 = self.l2
        if not fetch:
            for prefetch_addr in self.prefetcher.observe(paddr):
                # Prefetches fill L2 off the critical path (no latency
                # charged) but perturb future hit/miss behaviour.
                l2.access(prefetch_addr, False)
        l2_result = l2.access(paddr, False)
        cycles += l2.hit_cycles
        if l2_result.dirty_writeback:
            cycles += l2.writeback_cycles_per_line
        if l2_result.hit:
            return cycles
        llc = self.llc
        llc_result = llc.access(paddr, False)
        cycles += llc.hit_cycles
        if llc_result.dirty_writeback:
            transfer = self.interconnect.request(self.core_id, self.clock.now + cycles)
            cycles += transfer.total_cycles
        if llc_result.hit:
            return cycles
        transfer = self.interconnect.request(self.core_id, self.clock.now + cycles)
        cycles += transfer.total_cycles + self._dram_cycles
        return cycles

    def translate(self, space: AddressSpace, vaddr: int) -> Tuple[int, int]:
        """Translate ``vaddr`` via the TLB; returns (latency, paddr).

        A TLB miss performs a page-table walk whose reads go through the
        data hierarchy, then refills the TLB.  Raises
        :class:`TranslationFault` for unmapped addresses.
        """
        page_size = space.page_size
        vpage = vaddr // page_size
        lookup = self.tlb.lookup(space.asid, vpage)
        if lookup.hit:
            paddr = lookup.frame_number * page_size + vaddr % page_size
            return self._tlb_hit_cycles, paddr
        cycles = self._tlb_walk_base_cycles
        for walk_paddr in space.walk_addresses(vaddr):
            cycles += self.cached_access(walk_paddr, write=False)
        mapping = space.lookup(vaddr)  # may raise TranslationFault
        self.tlb.fill(
            asid=space.asid,
            vpage=vpage,
            frame_number=mapping.frame.number,
            writable=mapping.writable,
            generation=space.generation,
        )
        paddr = mapping.frame.base_paddr(space.page_size) + vaddr % space.page_size
        return cycles, paddr

    def flush_line_everywhere(self, paddr: int) -> int:
        """User-level ``clflush``: drop the line from every level."""
        self.l1d.invalidate_line(paddr)
        self.l1i.invalidate_line(paddr)
        self.l2.invalidate_line(paddr)
        self.llc.invalidate_line(paddr)
        return self._flush_line_cycles

    # ------------------------------------------------------------------
    # Instruction execution
    # ------------------------------------------------------------------

    def execute_user(
        self, space: AddressSpace, pc: int, instr: Instruction
    ) -> StepResult:
        """Execute one user instruction; advances this core's clock.

        Returns a :class:`StepResult`; ``trap`` is set for syscalls,
        translation faults and halts, which the kernel model handles.
        """
        cycles = self._base_cycles
        # Instruction fetch through the I-cache (translated pc).
        try:
            fetch_latency, fetch_paddr = self.translate(space, pc)
        except TranslationFault:
            self.clock.advance(cycles + self._trap_entry_cycles)
            return StepResult(
                latency=cycles,
                value=None,
                new_pc=pc,
                trap=Trap(kind=TrapKind.FAULT, fault_vaddr=pc),
            )
        cycles += fetch_latency
        cycles += self.cached_access(fetch_paddr, False, True)
        value: Optional[int] = None
        new_pc = pc + INSTRUCTION_BYTES

        # Dispatch in descending dynamic frequency: memory accesses
        # dominate every attack workload, then fixed-cost compute/timer
        # steps.  The instruction classes are unrelated types, so the
        # order changes nothing observable.
        if isinstance(instr, Access):
            try:
                translate_latency, paddr = self.translate(space, instr.vaddr)
            except TranslationFault:
                self.clock.advance(cycles + self._trap_entry_cycles)
                return StepResult(
                    latency=cycles,
                    value=None,
                    new_pc=pc,
                    trap=Trap(kind=TrapKind.FAULT, fault_vaddr=instr.vaddr),
                )
            cycles += translate_latency
            cycles += self.cached_access(paddr, instr.write)
            if instr.write:
                self.memory.write_word(paddr, instr.value)
                value = instr.value
            else:
                value = self.memory.read_word(paddr)
        elif isinstance(instr, Compute):
            cycles += max(0, instr.cycles)
        elif isinstance(instr, ReadTime):
            cycles += self._readtime_cycles
            self.clock.advance(cycles)
            return StepResult(cycles, self.clock.now, new_pc)
        elif isinstance(instr, Syscall):
            cycles += self._trap_entry_cycles
            self.clock.advance(cycles)
            return StepResult(
                latency=cycles,
                value=None,
                new_pc=new_pc,
                trap=Trap(kind=TrapKind.SYSCALL, syscall=instr),
            )
        elif isinstance(instr, Branch):
            target = (
                instr.target
                if instr.target is not None
                else pc + 2 * INSTRUCTION_BYTES
            )
            prediction = self.branch.predict_and_update(pc, instr.taken, target)
            if prediction.mispredicted:
                cycles += self._mispredict_cycles
            new_pc = target if instr.taken else pc + INSTRUCTION_BYTES
        elif isinstance(instr, FlushLine):
            try:
                translate_latency, paddr = self.translate(space, instr.vaddr)
            except TranslationFault:
                self.clock.advance(cycles + self._trap_entry_cycles)
                return StepResult(
                    latency=cycles,
                    value=None,
                    new_pc=pc,
                    trap=Trap(kind=TrapKind.FAULT, fault_vaddr=instr.vaddr),
                )
            cycles += translate_latency
            cycles += self.flush_line_everywhere(paddr)
        elif isinstance(instr, Halt):
            self.clock.advance(cycles)
            return StepResult(
                latency=cycles, value=None, new_pc=pc, trap=Trap(kind=TrapKind.HALT)
            )
        else:
            raise TypeError(f"unknown instruction {instr!r}")

        self.clock.advance(cycles)
        return StepResult(cycles, value, new_pc)

    # ------------------------------------------------------------------
    # State-element enumeration (consumed by the abstract model)
    # ------------------------------------------------------------------

    def private_elements(self) -> List:
        """This core's time-multiplexed (flush-candidate) state elements."""
        return [
            self.l1i,
            self.l1d,
            self.l2,
            self.tlb,
            self.branch,
            self.prefetcher,
        ]

"""Set-associative write-back caches with deterministic replacement.

Caches are the canonical shared hardware resource behind
microarchitectural timing channels (Sect. 3.1): a domain's hit/miss
pattern -- and therefore its execution time -- depends on what earlier (or
concurrent) occupants left in each set.  The simulator models this
faithfully at the granularity the paper's argument needs: per-set
occupancy, dirty lines (whose write-back makes *flush latency itself*
history dependent, motivating padding, Sect. 4.2), and deterministic
replacement so that whole-system runs are reproducible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from .geometry import CacheGeometry
from .state import (
    FlushResult,
    Instrumentation,
    Scope,
    StateCategory,
    StateElement,
    TouchKind,
)


class ReplacementPolicy(enum.Enum):
    LRU = "lru"
    FIFO = "fifo"
    PLRU = "plru"


# Hot-path aliases: enum attribute lookups cost a class-dict hash per
# access, and ``Cache.access`` runs millions of times per experiment.
_READ = TouchKind.READ
_WRITE = TouchKind.WRITE
_EVICT = TouchKind.EVICT
_FILL = TouchKind.FILL


@dataclass(slots=True)
class CacheLine:
    """One cache line: tag plus replacement/coherence metadata."""

    tag: int
    dirty: bool = False
    stamp: int = 0  # LRU: last-use order; FIFO: fill order.
    # Owning partition tag under way partitioning (None = shared pool).
    owner: Optional[str] = None


@dataclass(slots=True)
class AccessResult:
    """Outcome of a single cache lookup."""

    hit: bool
    set_index: int
    dirty_writeback: bool = False
    evicted_tag: Optional[int] = None


@dataclass
class LatencyParams:
    """Deterministic latency constants for one cache level.

    These constants instantiate the paper's "deterministic yet unspecified
    function" from microarchitectural state to elapsed time: nothing in
    the proof layer depends on their values, only on *which* state the
    resulting latency reads.
    """

    hit_cycles: int
    flush_base_cycles: int = 8
    writeback_cycles_per_line: int = 6


class Cache(StateElement):
    """A set-associative, write-back, write-allocate cache.

    Args:
        name: unique element name (e.g. ``"core0.l1d"``).
        geometry: set/way/line-size description.
        category: how the OS may manage this cache (PARTITIONABLE for a
            shared, physically-indexed LLC; FLUSHABLE for core-private
            levels).
        scope: CORE_LOCAL or SHARED.
        latency: latency constants for this level.
        page_size: machine page size, used for colour arithmetic.
        policy: replacement policy (deterministic variants only).
        instrumentation: shared touch recorder.
        flush_is_broken: if True, ``flush()`` claims success but leaves a
            fraction of lines resident -- a contract-violating machine for
            experiment E9.
    """

    def __init__(
        self,
        name: str,
        geometry: CacheGeometry,
        category: StateCategory,
        scope: Scope,
        latency: LatencyParams,
        page_size: int,
        policy: ReplacementPolicy = ReplacementPolicy.LRU,
        instrumentation: Optional[Instrumentation] = None,
        flush_is_broken: bool = False,
    ):
        super().__init__(name, category, scope, instrumentation)
        self.geometry = geometry
        self.latency = latency
        self.page_size = page_size
        self.policy = policy
        self.flush_is_broken = flush_is_broken
        # Hot-path constants, precomputed once: address-slicing masks from
        # the (frozen) geometry, policy dispatch flags, and the latency
        # constants the hierarchy reads on every access.
        self._offset_bits = geometry.offset_bits
        self._index_mask = geometry.index_mask
        self._tag_shift = geometry.tag_shift
        self._ways = geometry.ways
        self._is_lru = policy is ReplacementPolicy.LRU
        self._is_plru = policy is ReplacementPolicy.PLRU
        self._n_colours = geometry.n_colours(page_size)
        self._sets_per_colour = geometry.sets_per_colour(page_size)
        self.hit_cycles = latency.hit_cycles
        self.writeback_cycles_per_line = latency.writeback_cycles_per_line
        self._sets: List[List[CacheLine]] = [[] for _ in range(geometry.sets)]
        self._tick = 0  # monotonic stamp source for LRU/FIFO ordering
        # Tree-PLRU direction bits, one vector per set (ways-1 internal
        # nodes of a binary tree over the ways).
        self._plru_bits: List[int] = [0] * geometry.sets
        # Intel CAT-style way partitioning: per-partition-tag quota of
        # lines per set.  Empty dict = way partitioning off.  Quotas are
        # enforced on every fill; a fill that would have to steal from
        # another partition's quota is logged as a violation (it can only
        # happen if the configured quotas over-commit the associativity).
        self.way_quota: Dict[str, int] = {}
        self.quota_violations: List[str] = []

    def clone_for_mc(self, instrumentation) -> "Cache":
        """An independent copy sharing only immutable configuration.

        Geometry, latency params and precomputed masks are frozen or
        write-once, so the clone aliases them; per-line state is rebuilt
        with fresh :class:`CacheLine` objects.
        """
        other = Cache.__new__(Cache)
        other.name = self.name
        other.category = self.category
        other.scope = self.scope
        other.instr = instrumentation
        other.concurrently_shared = self.concurrently_shared
        other._fp_version = self._fp_version
        other._fp_cache = self._fp_cache
        other._fp_digest = self._fp_digest
        other.geometry = self.geometry
        other.latency = self.latency
        other.page_size = self.page_size
        other.policy = self.policy
        other.flush_is_broken = self.flush_is_broken
        other._offset_bits = self._offset_bits
        other._index_mask = self._index_mask
        other._tag_shift = self._tag_shift
        other._ways = self._ways
        other._is_lru = self._is_lru
        other._is_plru = self._is_plru
        other._n_colours = self._n_colours
        other._sets_per_colour = self._sets_per_colour
        other.hit_cycles = self.hit_cycles
        other.writeback_cycles_per_line = self.writeback_cycles_per_line
        other._sets = [
            [
                CacheLine(line.tag, line.dirty, line.stamp, line.owner)
                for line in lines
            ]
            for lines in self._sets
        ]
        other._tick = self._tick
        other._plru_bits = list(self._plru_bits)
        other.way_quota = dict(self.way_quota)
        other.quota_violations = list(self.quota_violations)
        return other

    # ------------------------------------------------------------------
    # Lookup / fill
    # ------------------------------------------------------------------

    def access(self, paddr: int, write: bool = False) -> AccessResult:
        """Look up ``paddr``; on miss, allocate (evicting deterministically).

        Returns an :class:`AccessResult`; the caller (the cache hierarchy)
        composes latencies and propagates misses to the next level.
        """
        set_index = (paddr >> self._offset_bits) & self._index_mask
        tag = paddr >> self._tag_shift
        instr = self.instr
        name = self.name
        instr.touch(name, set_index, _WRITE if write else _READ)
        lines = self._sets[set_index]
        self._tick += 1
        tick = self._tick
        if self._is_lru:
            # LRU (the default policy) needs no way index on a hit, so it
            # skips the enumerate machinery of the general loop below.
            # A read hit only refreshes the LRU stamp, which the
            # fingerprint does not observe, so the fingerprint version is
            # bumped only when a hit dirties a clean line.
            for line in lines:
                if line.tag == tag:
                    line.stamp = tick
                    if write and not line.dirty:
                        line.dirty = True
                        self._fp_version += 1
                    return AccessResult(True, set_index)
        else:
            for way, line in enumerate(lines):
                if line.tag == tag:
                    if self._is_plru:
                        self._plru_point_away(set_index, way)
                        self._fp_version += 1
                    if write and not line.dirty:
                        line.dirty = True
                        self._fp_version += 1
                    return AccessResult(True, set_index)
        # Miss: fill, possibly evicting the replacement victim.
        self._fp_version += 1
        owner = self._owner_tag() if self.way_quota else None
        dirty_writeback = False
        evicted_tag = None
        victim_way = self._fill_victim(set_index, lines, owner)
        if victim_way is not None:
            victim = lines.pop(victim_way)
            evicted_tag = victim.tag
            dirty_writeback = victim.dirty
            instr.touch(name, set_index, _EVICT)
            lines.insert(victim_way, CacheLine(tag, write, tick, owner))
            if self._is_plru:
                self._plru_point_away(set_index, victim_way)
        else:
            lines.append(CacheLine(tag, write, tick, owner))
            if self._is_plru:
                self._plru_point_away(set_index, len(lines) - 1)
        instr.touch(name, set_index, _FILL)
        return AccessResult(False, set_index, dirty_writeback, evicted_tag)

    def _owner_tag(self) -> Optional[str]:
        """Partition tag of the current execution context.

        User execution and kernel-on-behalf both charge the domain's way
        quota (kernel text is domain-cloned memory); the switch path's
        shared-kernel accesses charge the reserved ``@kernel`` quota.
        """
        context = self.instr.current_domain
        if context is None:
            return None
        if context.startswith("@switch"):
            return "@kernel"
        return context.partition("/")[0]

    def _fill_victim(
        self, set_index: int, lines: List[CacheLine], owner: Optional[str]
    ) -> Optional[int]:
        """Way to evict for a fill, or None to append into a free way.

        Without way quotas this is plain capacity eviction.  With quotas
        (CAT-style), a fill first recycles the owner's own lines once its
        quota is reached, then free ways, then the unowned shared pool --
        and never steals another partition's quota'd lines unless the
        configuration over-committed the associativity (logged as a
        violation).
        """
        quota = self.way_quota.get(owner) if owner is not None else None
        if quota is not None:
            own = [i for i, line in enumerate(lines) if line.owner == owner]
            if len(own) >= quota:
                return min(own, key=lambda i: lines[i].stamp)
        if len(lines) < self._ways:
            return None
        if not self.way_quota:
            return self._select_victim(set_index, lines)
        shared = [
            i
            for i, line in enumerate(lines)
            if line.owner is None or line.owner not in self.way_quota
        ]
        if shared:
            return min(shared, key=lambda i: lines[i].stamp)
        own = [i for i, line in enumerate(lines) if line.owner == owner]
        if own:
            return min(own, key=lambda i: lines[i].stamp)
        self.quota_violations.append(
            f"set {set_index}: fill by {owner!r} had to steal a quota'd line "
            f"(over-committed way allocation)"
        )
        return self._select_victim(set_index, lines)

    def _select_victim(self, set_index: int, lines: List[CacheLine]) -> int:
        """Index of the way to evict from a full set (deterministic)."""
        if self.policy is ReplacementPolicy.PLRU:
            return self._plru_victim(set_index)
        # LRU and FIFO both evict the minimum stamp: LRU refreshes the
        # stamp on every hit, FIFO stamps only at fill time.
        oldest_way = 0
        for way, line in enumerate(lines):
            if line.stamp < lines[oldest_way].stamp:
                oldest_way = way
        return oldest_way

    # ------------------------------------------------------------------
    # Tree-PLRU helpers (ways must be a power of two for PLRU)
    # ------------------------------------------------------------------

    def _plru_victim(self, set_index: int) -> int:
        ways = self.geometry.ways
        bits = self._plru_bits[set_index]
        node = 1
        while node < ways:
            direction = (bits >> node) & 1
            node = 2 * node + direction
        return node - ways

    def _plru_point_away(self, set_index: int, way: int) -> None:
        """Set tree bits so the next victim walk avoids ``way``."""
        ways = self.geometry.ways
        if ways & (ways - 1):  # PLRU needs a power-of-two associativity
            return
        bits = self._plru_bits[set_index]
        node = 1
        depth = ways.bit_length() - 2
        while node < ways:
            direction = (way >> depth) & 1
            # Point the bit at the *other* subtree.
            if direction == 0:
                bits |= 1 << node
            else:
                bits &= ~(1 << node)
            node = 2 * node + direction
            depth -= 1
        self._plru_bits[set_index] = bits

    def probe(self, paddr: int) -> bool:
        """Non-allocating presence check (no state change, no touch)."""
        set_index = (paddr >> self._offset_bits) & self._index_mask
        tag = paddr >> self._tag_shift
        return any(line.tag == tag for line in self._sets[set_index])

    def invalidate_line(self, paddr: int) -> bool:
        """Evict the line holding ``paddr`` (a ``clflush``-style primitive)."""
        set_index = (paddr >> self._offset_bits) & self._index_mask
        tag = paddr >> self._tag_shift
        lines = self._sets[set_index]
        for line in lines:
            if line.tag == tag:
                lines.remove(line)
                self._fp_version += 1
                self.instr.touch(self.name, set_index, TouchKind.EVICT)
                return True
        return False

    # ------------------------------------------------------------------
    # Occupancy inspection (read-only; used by checkers and tests)
    # ------------------------------------------------------------------

    def occupancy(self, set_index: int) -> int:
        """Number of valid lines in ``set_index``."""
        return len(self._sets[set_index])

    def dirty_line_count(self) -> int:
        """Total number of dirty lines (determines flush latency)."""
        return sum(
            1 for lines in self._sets for line in lines if line.dirty
        )

    def resident_tags(self, set_index: int) -> Tuple[int, ...]:
        """Tags currently resident in ``set_index`` (sorted)."""
        tags = [line.tag for line in self._sets[set_index]]
        if len(tags) > 1:
            tags.sort()
        return tuple(tags)

    def audit_lines(self) -> Tuple[Tuple["CacheLine", ...], ...]:
        """Every set's lines in residency order (audit accessor).

        Unlike :meth:`resident_lines` this is *unsorted*: min-stamp
        victim selection breaks ties by residency order, so consumers
        that reconstruct replacement behaviour (the batch engine's
        lift boundary) need the raw ordering.  Read-only, no touch.
        """
        return tuple(tuple(lines) for lines in self._sets)

    def resident_lines(self, set_index: int) -> Tuple[Tuple[int, str], ...]:
        """(tag, owner) pairs resident in ``set_index`` (sorted).

        Audit accessor for checkers that need per-owner occupancy (e.g.
        the switch path's way-partition fingerprints): read-only, no
        touch recorded, so it never perturbs the footprint evidence.
        """
        return tuple(
            sorted(
                (line.tag, line.owner if line.owner is not None else "@shared")
                for line in self._sets[set_index]
            )
        )

    # ------------------------------------------------------------------
    # StateElement protocol
    # ------------------------------------------------------------------

    def flush(self) -> FlushResult:
        """Write back dirty lines and invalidate everything.

        The latency depends on execution history (number of dirty lines),
        which is exactly the channel that switch-latency padding closes.
        A ``flush_is_broken`` cache leaves every fourth set resident,
        modelling hardware whose flush operation does not actually reset
        all state (an aISA violation).
        """
        dirty = self.dirty_line_count()
        cycles = (
            self.latency.flush_base_cycles
            + dirty * self.latency.writeback_cycles_per_line
        )
        self._fp_version += 1
        if self.flush_is_broken:
            for set_index, lines in enumerate(self._sets):
                if set_index % 4 != 0:
                    self._sets[set_index] = []
                else:
                    for line in lines:
                        line.dirty = False
        else:
            self._sets = [[] for _ in range(self.geometry.sets)]
            self._plru_bits = [0] * self.geometry.sets
        return FlushResult(cycles=cycles, lines_written_back=dirty)

    def fingerprint(self) -> Hashable:
        occupancy = []
        for set_index, lines in enumerate(self._sets):
            if lines:
                pairs = [(line.tag, line.dirty) for line in lines]
                if len(pairs) > 1:
                    pairs.sort()
                occupancy.append((set_index, tuple(pairs)))
        if any(self._plru_bits):
            plru = tuple(
                (set_index, bits)
                for set_index, bits in enumerate(self._plru_bits)
                if bits
            )
        else:
            plru = ()
        return (tuple(occupancy), plru)

    def reset_fingerprint(self) -> Hashable:
        return ((), ())

    def partition_of_index(self, index: Hashable) -> Hashable:
        if self._n_colours == 1:
            return 0
        return int(index) // self._sets_per_colour

    @property
    def n_partitions(self) -> int:
        """Colour partitions, or way-quota partitions when CAT-style
        allocation is configured (either mechanism satisfies Sect. 4.1's
        partitioning requirement)."""
        colours = self.geometry.n_colours(self.page_size)
        if self.way_quota:
            return max(colours, len(self.way_quota))
        return colours

    def set_way_quotas(self, quotas: Dict[str, int]) -> None:
        """Install CAT-style per-partition way quotas (lines per set).

        Way quotas partition *capacity*, not addresses: a lookup hits on
        whichever way holds the line, whoever filled it (as on real CAT
        hardware).  Isolation therefore additionally requires that
        partitions never share physical frames -- which the kernel's
        colour allocator and clone mechanism already guarantee.

        Raises:
            ValueError: if the quotas over-commit the associativity.
        """
        total = sum(quotas.values())
        if total > self.geometry.ways:
            raise ValueError(
                f"way quotas total {total} exceed associativity "
                f"{self.geometry.ways}"
            )
        self.way_quota = dict(quotas)

    def occupancy_by_owner(self, set_index: int) -> Dict[Optional[str], int]:
        """Lines per owner in one set (for quota auditing)."""
        result: Dict[Optional[str], int] = {}
        for line in self._sets[set_index]:
            result[line.owner] = result.get(line.owner, 0) + 1
        return result

    def quotas_respected(self) -> bool:
        """True iff no set holds more lines of a partition than its quota."""
        if not self.way_quota:
            return True
        for set_index in range(self.geometry.sets):
            for owner, count in self.occupancy_by_owner(set_index).items():
                quota = self.way_quota.get(owner)
                if quota is not None and count > quota:
                    return False
        return True

"""An ASID-tagged TLB in the style of Syeda & Klein [2018].

Sect. 5.3 of the paper points at the Syeda & Klein ITP'18 TLB model as the
template for the kind of abstraction it wants for timing state: a
high-level model in which one can show that page-table modifications under
one ASID do not affect TLB *consistency* for any other ASID.  Our TLB
mirrors that structure -- entries are (ASID, vpage) -> frame with explicit
invalidation operations -- and additionally participates in the time
model: hits and misses have different costs, and a miss triggers a
page-table walk through the data cache.

The TLB is core-local, so time protection treats it as FLUSHABLE; the
ASID-partitioning theorem of E12 is checked on top via instrumentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

from .geometry import TlbGeometry
from .state import (
    FlushResult,
    Instrumentation,
    Scope,
    StateCategory,
    StateElement,
    TouchKind,
)

# Hot-path alias: ``lookup`` runs twice per simulated memory instruction.
_READ = TouchKind.READ


@dataclass(slots=True)
class TlbEntry:
    asid: int
    vpage: int
    frame_number: int
    writable: bool
    stamp: int
    generation: int  # address-space generation at fill time


@dataclass(slots=True)
class TlbLookupResult:
    hit: bool
    frame_number: Optional[int] = None
    writable: bool = True


class Tlb(StateElement):
    """Fully-associative, LRU, ASID-tagged TLB."""

    def __init__(
        self,
        name: str,
        geometry: TlbGeometry,
        instrumentation: Optional[Instrumentation] = None,
        flush_latency_cycles: int = 12,
    ):
        super().__init__(
            name, StateCategory.FLUSHABLE, Scope.CORE_LOCAL, instrumentation
        )
        self.geometry = geometry
        self.flush_latency_cycles = flush_latency_cycles
        self._entries: Dict[Tuple[int, int], TlbEntry] = {}
        self._tick = 0

    def clone_for_mc(self, instrumentation) -> "Tlb":
        """Independent copy; entries are rebuilt (mutable stamps)."""
        other = Tlb.__new__(Tlb)
        other.name = self.name
        other.category = self.category
        other.scope = self.scope
        other.instr = instrumentation
        other.concurrently_shared = self.concurrently_shared
        other._fp_version = self._fp_version
        other._fp_cache = self._fp_cache
        other._fp_digest = self._fp_digest
        other.geometry = self.geometry
        other.flush_latency_cycles = self.flush_latency_cycles
        other._entries = {
            key: TlbEntry(
                asid=entry.asid,
                vpage=entry.vpage,
                frame_number=entry.frame_number,
                writable=entry.writable,
                stamp=entry.stamp,
                generation=entry.generation,
            )
            for key, entry in self._entries.items()
        }
        other._tick = self._tick
        return other

    # ------------------------------------------------------------------
    # Lookup / fill / invalidate
    # ------------------------------------------------------------------

    def lookup(self, asid: int, vpage: int) -> TlbLookupResult:
        self._tick += 1
        key = (asid, vpage)
        self.instr.touch(self.name, key, _READ)
        entry = self._entries.get(key)
        if entry is None:
            return TlbLookupResult(False)
        entry.stamp = self._tick
        return TlbLookupResult(True, entry.frame_number, entry.writable)

    def fill(
        self,
        asid: int,
        vpage: int,
        frame_number: int,
        writable: bool,
        generation: int,
    ) -> None:
        """Install a translation, evicting the LRU entry when full."""
        self._tick += 1
        self._fp_version += 1
        if len(self._entries) >= self.geometry.entries:
            victim_key = min(self._entries, key=lambda k: self._entries[k].stamp)
            self._touch(victim_key, TouchKind.EVICT)
            del self._entries[victim_key]
        self._entries[(asid, vpage)] = TlbEntry(
            asid=asid,
            vpage=vpage,
            frame_number=frame_number,
            writable=writable,
            stamp=self._tick,
            generation=generation,
        )
        self._touch((asid, vpage), TouchKind.FILL)

    def invalidate_asid(self, asid: int) -> int:
        """Drop all entries of one ASID; returns the number removed."""
        victims = [key for key in self._entries if key[0] == asid]
        for key in victims:
            del self._entries[key]
        if victims:
            self._fp_version += 1
        return len(victims)

    def invalidate_page(self, asid: int, vpage: int) -> bool:
        if self._entries.pop((asid, vpage), None) is not None:
            self._fp_version += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Consistency predicates (the Syeda & Klein-style theorem surface)
    # ------------------------------------------------------------------

    def entries_for_asid(self, asid: int) -> Dict[int, TlbEntry]:
        """Snapshot of this ASID's entries, keyed by virtual page."""
        return {
            vpage: entry
            for (entry_asid, vpage), entry in self._entries.items()
            if entry_asid == asid
        }

    def audit_entries(self) -> Tuple[TlbEntry, ...]:
        """All cached entries in fill order (audit accessor).

        Min-stamp eviction breaks stamp ties by fill order, so
        consumers reconstructing replacement behaviour (the batch
        engine's lift boundary) need the unsorted view the sorted
        :meth:`fingerprint` discards.  Read-only, no touch.
        """
        return tuple(self._entries.values())

    def consistent_with(self, asid: int, space) -> bool:
        """True iff every cached entry of ``asid`` matches ``space``.

        ``space`` is an :class:`repro.hardware.mmu.AddressSpace`.  An entry
        is consistent if the address space still maps the page to the same
        frame.  The E12 partitioning theorem states that mutating *another*
        ASID's address space never invalidates this predicate.
        """
        for vpage, entry in self.entries_for_asid(asid).items():
            try:
                mapping = space.lookup(vpage * space.page_size)
            except Exception:
                return False
            if mapping.frame.number != entry.frame_number:
                return False
        return True

    # ------------------------------------------------------------------
    # StateElement protocol
    # ------------------------------------------------------------------

    def flush(self) -> FlushResult:
        self._entries.clear()
        self._fp_version += 1
        return FlushResult(cycles=self.flush_latency_cycles)

    def fingerprint(self) -> Hashable:
        return tuple(
            sorted(
                (asid, vpage, entry.frame_number, entry.writable)
                for (asid, vpage), entry in self._entries.items()
            )
        )

    def reset_fingerprint(self) -> Hashable:
        return ()

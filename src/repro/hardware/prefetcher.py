"""A stride prefetcher state machine.

Prefetchers are among the "pre-fetcher state machines" Sect. 3.1 lists as
stateful shared resources.  This one tracks recent access streams in a
small table; once a stream shows a stable stride it issues prefetches into
the data cache, changing future hit/miss behaviour -- i.e. prefetcher
state trained by one domain alters another domain's timing unless it is
flushed (or, on contract-violating hardware, cannot be -- the
``unflushable`` preset of experiment E9 marks exactly this element
UNMANAGED).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from .state import (
    FlushResult,
    Instrumentation,
    Scope,
    StateCategory,
    StateElement,
    TouchKind,
)


@dataclass
class StreamEntry:
    last_addr: int
    stride: int
    confidence: int  # saturates at 3; >= 2 issues prefetches
    stamp: int


class StridePrefetcher(StateElement):
    """Table-based stride prefetcher keyed by address-stream region."""

    def __init__(
        self,
        name: str,
        table_entries: int = 8,
        region_bits: int = 12,
        degree: int = 2,
        instrumentation: Optional[Instrumentation] = None,
        flush_latency_cycles: int = 4,
        category: StateCategory = StateCategory.FLUSHABLE,
        flushable_in_hardware: bool = True,
    ):
        super().__init__(name, category, Scope.CORE_LOCAL, instrumentation)
        self.table_entries = table_entries
        self.region_bits = region_bits
        self.degree = degree
        self.flush_latency_cycles = flush_latency_cycles
        self.flushable_in_hardware = flushable_in_hardware
        self._table: Dict[int, StreamEntry] = {}
        self._tick = 0

    def _region(self, paddr: int) -> int:
        return paddr >> self.region_bits

    def observe(self, paddr: int) -> List[int]:
        """Record a demand access; return addresses to prefetch (if any)."""
        self._tick += 1
        self._fp_version += 1
        region = self._region(paddr)
        self._touch(region, TouchKind.UPDATE)
        entry = self._table.get(region)
        prefetches: List[int] = []
        if entry is None:
            if len(self._table) >= self.table_entries:
                victim = min(self._table, key=lambda r: self._table[r].stamp)
                del self._table[victim]
            self._table[region] = StreamEntry(
                last_addr=paddr, stride=0, confidence=0, stamp=self._tick
            )
            return prefetches
        stride = paddr - entry.last_addr
        if stride != 0 and stride == entry.stride:
            entry.confidence = min(3, entry.confidence + 1)
        else:
            entry.confidence = max(0, entry.confidence - 1)
            entry.stride = stride
        entry.last_addr = paddr
        entry.stamp = self._tick
        if entry.confidence >= 2 and entry.stride != 0:
            prefetches = [
                paddr + entry.stride * step for step in range(1, self.degree + 1)
            ]
        return prefetches

    # ------------------------------------------------------------------
    # StateElement protocol
    # ------------------------------------------------------------------

    def flush(self) -> FlushResult:
        """Reset the stream table -- unless the hardware cannot.

        ``flushable_in_hardware=False`` models a processor that offers no
        architected way to clear prefetcher state: the flush is a no-op
        and the element fails the aISA completeness obligation (PO-1).
        """
        if self.flushable_in_hardware:
            self._table.clear()
            self._fp_version += 1
        return FlushResult(cycles=self.flush_latency_cycles)

    def clone_for_mc(self, instrumentation) -> "StridePrefetcher":
        """Independent copy; stream entries are rebuilt (mutable)."""
        other = StridePrefetcher.__new__(StridePrefetcher)
        other.name = self.name
        other.category = self.category
        other.scope = self.scope
        other.instr = instrumentation
        other.concurrently_shared = self.concurrently_shared
        other._fp_version = self._fp_version
        other._fp_cache = self._fp_cache
        other._fp_digest = self._fp_digest
        other.table_entries = self.table_entries
        other.region_bits = self.region_bits
        other.degree = self.degree
        other.flush_latency_cycles = self.flush_latency_cycles
        other.flushable_in_hardware = self.flushable_in_hardware
        other._table = {
            region: StreamEntry(
                last_addr=entry.last_addr,
                stride=entry.stride,
                confidence=entry.confidence,
                stamp=entry.stamp,
            )
            for region, entry in self._table.items()
        }
        other._tick = self._tick
        return other

    def audit_streams(self) -> Tuple[Tuple[int, "StreamEntry"], ...]:
        """``(region, entry)`` pairs in allocation order (audit accessor).

        Min-stamp eviction breaks ties by allocation order, so
        consumers reconstructing replacement behaviour (the batch
        engine's lift boundary) need the unsorted view.  Read-only,
        no touch.
        """
        return tuple(self._table.items())

    def fingerprint(self) -> Hashable:
        return tuple(
            sorted(
                (region, e.last_addr, e.stride, e.confidence)
                for region, e in self._table.items()
            )
        )

    def reset_fingerprint(self) -> Hashable:
        return ()

    def effective_category(self) -> StateCategory:
        if not self.flushable_in_hardware:
            return StateCategory.UNMANAGED
        return super().effective_category()

"""Whole-machine assembly: cores, cache hierarchy, interconnect, memory.

A :class:`Machine` is the hardware the kernel model boots on.  Its
configuration determines whether the machine *can* honour the
security-oriented hardware-software contract (the aISA of Ge et al.
[2018a]): SMT pairs make "private" state concurrently shared, an
unflushable prefetcher leaves state unmanaged, a broken flush fails to
reset, and an LLC no larger per way than a page offers a single colour.
The abstract-model extraction in ``repro.core.absmodel`` reads these
properties off the built machine, never off the configuration -- the
proof examines the hardware it actually got.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from .branch import BranchPredictor
from .cache import Cache, LatencyParams, ReplacementPolicy
from .clock import CycleClock
from .cpu import Core, LatencyConfig
from .geometry import CacheGeometry, TlbGeometry
from .interconnect import Interconnect, MbaConfig
from .interrupts import InterruptController
from .memory import PhysicalMemory
from .prefetcher import StridePrefetcher
from .state import (
    CountingInstrumentation,
    Instrumentation,
    InstrumentationMode,
    Scope,
    StateCategory,
)
from .tlb import Tlb


@dataclass
class MachineConfig:
    """Everything needed to build a machine."""

    n_cores: int = 1
    page_size: int = 256
    total_frames: int = 512
    l1i_geometry: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(sets=8, ways=2, line_size=32)
    )
    l1d_geometry: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(sets=8, ways=2, line_size=32)
    )
    l2_geometry: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(sets=32, ways=4, line_size=32)
    )
    llc_geometry: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(sets=64, ways=8, line_size=32)
    )
    tlb_entries: int = 16
    latency: LatencyConfig = field(default_factory=LatencyConfig)
    l1i_latency: LatencyParams = field(default_factory=lambda: LatencyParams(hit_cycles=1))
    l1d_latency: LatencyParams = field(default_factory=lambda: LatencyParams(hit_cycles=4))
    l2_latency: LatencyParams = field(default_factory=lambda: LatencyParams(hit_cycles=12))
    llc_latency: LatencyParams = field(default_factory=lambda: LatencyParams(hit_cycles=40))
    replacement: ReplacementPolicy = ReplacementPolicy.LRU
    # Branch predictor global-history width.  8 = gshare; 0 = a classic
    # bimodal (pc-indexed) predictor, whose cross-domain training channel
    # is the simplest to demonstrate.
    branch_history_bits: int = 8
    interconnect_transfer_cycles: int = 24
    mba: Optional[MbaConfig] = None
    irq_lines: int = 16
    # Contract-violation knobs (experiment E9):
    smt: bool = False  # pair cores share all "private" state concurrently
    prefetcher_flushable: bool = True
    broken_l1d_flush: bool = False
    # Which stepping engine kernels on this machine should use:
    # "scalar" steps one machine at a time through the object model;
    # "batch" routes Kernel.run through repro.hardware.batch, which
    # steps many machines in lockstep over numpy state arrays (and for a
    # single kernel simply runs it as a batch of one).
    engine: str = "scalar"

    def n_llc_colours(self) -> int:
        return self.llc_geometry.n_colours(self.page_size)


# Process-wide engine override (see engine_override()).  Consulted once
# per Machine construction, never on the hot path.
_ENGINE_OVERRIDE: Optional[str] = None


@contextlib.contextmanager
def engine_override(engine: Optional[str]) -> Iterator[None]:
    """Force every Machine built inside the context onto ``engine``.

    The CLI/campaign plumbing uses this to steer experiment code that
    builds its machines through preset factories, without threading an
    engine parameter through every experiment signature.  ``None`` is a
    no-op context.
    """
    global _ENGINE_OVERRIDE
    previous = _ENGINE_OVERRIDE
    _ENGINE_OVERRIDE = engine if engine is not None else previous
    try:
        yield
    finally:
        _ENGINE_OVERRIDE = previous


class Machine:
    """The built hardware: shared levels plus per-core private state."""

    def __init__(self, config: MachineConfig):
        if config.n_cores < 1:
            raise ValueError("need at least one core")
        if config.smt and config.n_cores % 2:
            raise ValueError("SMT machines need an even number of cores")
        self.config = config
        # Resolved engine lives on the machine, not the (shared, possibly
        # frozen-by-convention) config: an engine_override() in force at
        # construction time wins over the config field.
        self.engine = _ENGINE_OVERRIDE if _ENGINE_OVERRIDE is not None else config.engine
        self.instrumentation = Instrumentation(InstrumentationMode.SUMMARY)
        self.memory = PhysicalMemory(
            total_frames=config.total_frames,
            page_size=config.page_size,
            n_colours=config.n_llc_colours(),
        )
        self.interconnect = Interconnect(
            transfer_cycles=config.interconnect_transfer_cycles, mba=config.mba
        )
        self.llc = Cache(
            name="llc",
            geometry=config.llc_geometry,
            category=StateCategory.PARTITIONABLE,
            scope=Scope.SHARED,
            latency=config.llc_latency,
            page_size=config.page_size,
            policy=config.replacement,
            instrumentation=self.instrumentation,
        )
        self.cores: List[Core] = []
        for core_id in range(config.n_cores):
            if config.smt and core_id % 2 == 1:
                # The second hardware thread of an SMT pair shares every
                # "private" structure with its sibling, concurrently.
                sibling = self.cores[core_id - 1]
                private = dict(
                    l1i=sibling.l1i,
                    l1d=sibling.l1d,
                    l2=sibling.l2,
                    tlb=sibling.tlb,
                    branch=sibling.branch,
                    prefetcher=sibling.prefetcher,
                )
                for element in private.values():
                    element.concurrently_shared = True
            else:
                thread_tag = f"core{core_id}"
                private = dict(
                    l1i=self._build_cache(f"{thread_tag}.l1i", config.l1i_geometry,
                                          config.l1i_latency, broken=False),
                    l1d=self._build_cache(f"{thread_tag}.l1d", config.l1d_geometry,
                                          config.l1d_latency,
                                          broken=config.broken_l1d_flush),
                    l2=self._build_cache(f"{thread_tag}.l2", config.l2_geometry,
                                         config.l2_latency, broken=False),
                    tlb=Tlb(
                        name=f"{thread_tag}.tlb",
                        geometry=TlbGeometry(entries=config.tlb_entries),
                        instrumentation=self.instrumentation,
                    ),
                    branch=BranchPredictor(
                        name=f"{thread_tag}.branch",
                        history_bits=config.branch_history_bits,
                        instrumentation=self.instrumentation,
                    ),
                    prefetcher=StridePrefetcher(
                        name=f"{thread_tag}.prefetcher",
                        instrumentation=self.instrumentation,
                        flushable_in_hardware=config.prefetcher_flushable,
                    ),
                )
            core = Core(
                core_id=core_id,
                clock=CycleClock(),
                llc=self.llc,
                irq=InterruptController(n_lines=config.irq_lines),
                interconnect=self.interconnect,
                memory=self.memory,
                latency=config.latency,
                **private,
            )
            self.cores.append(core)

    def _build_cache(
        self,
        name: str,
        geometry: CacheGeometry,
        latency: LatencyParams,
        broken: bool,
    ) -> Cache:
        return Cache(
            name=name,
            geometry=geometry,
            category=StateCategory.FLUSHABLE,
            scope=Scope.CORE_LOCAL,
            latency=latency,
            page_size=self.config.page_size,
            policy=self.config.replacement,
            instrumentation=self.instrumentation,
            flush_is_broken=broken,
        )

    def clone_for_mc(self) -> "Machine":
        """A hand-rolled deep copy for model-checker snapshots.

        Behaviourally identical to ``copy.deepcopy`` but ~10x faster:
        immutable configuration (config, geometries, latency tables,
        Frame objects) is shared, mutable state is copied field by
        field.  Scalar-engine, non-SMT machines only -- SMT element
        sharing and counting instrumentation fall back to deepcopy in
        ``Kernel.snapshot``-based callers.
        """
        if self.config.smt:
            raise TypeError("clone_for_mc does not support SMT machines")
        if type(self.instrumentation) is not Instrumentation:
            raise TypeError(
                "clone_for_mc needs plain Instrumentation "
                f"(got {type(self.instrumentation).__name__})"
            )
        other = Machine.__new__(Machine)
        other.config = self.config
        other.engine = self.engine
        other.instrumentation = self.instrumentation.clone()
        other.memory = self.memory.clone_for_mc()
        other.interconnect = self.interconnect.clone_for_mc()
        other.llc = self.llc.clone_for_mc(other.instrumentation)
        other.cores = []
        for core in self.cores:
            clone = Core(
                core_id=core.core_id,
                clock=CycleClock(core.clock.now),
                l1i=core.l1i.clone_for_mc(other.instrumentation),
                l1d=core.l1d.clone_for_mc(other.instrumentation),
                l2=core.l2.clone_for_mc(other.instrumentation),
                llc=other.llc,
                tlb=core.tlb.clone_for_mc(other.instrumentation),
                branch=core.branch.clone_for_mc(other.instrumentation),
                prefetcher=core.prefetcher.clone_for_mc(other.instrumentation),
                irq=core.irq.clone_for_mc(),
                interconnect=other.interconnect,
                memory=other.memory,
                latency=self.config.latency,
            )
            other.cores.append(clone)
        return other

    def use_counting_instrumentation(self) -> CountingInstrumentation:
        """Swap in aggregate-count instrumentation (campaign fast path).

        Rewires every state element to a fresh
        :class:`CountingInstrumentation`, which records per-(domain,
        element) touch counts but none of the per-index evidence the
        proof layer audits.  Must be called before a kernel is booted on
        this machine: kernel subsystems capture the instrumentation
        reference at construction time.
        """
        counting = CountingInstrumentation()
        self.instrumentation = counting
        for element in self.all_state_elements():
            element.instr = counting
        return counting

    # ------------------------------------------------------------------
    # Enumeration for the abstract model and the kernel
    # ------------------------------------------------------------------

    @property
    def page_size(self) -> int:
        return self.config.page_size

    @property
    def n_colours(self) -> int:
        return self.config.n_llc_colours()

    def all_state_elements(self) -> List:
        """Every microarchitectural state element, deduplicated.

        SMT siblings share objects; each shared object appears once.
        The element population is fixed at construction, so the list is
        computed once per machine instance (deepcopy maps the cached
        list onto the copied elements; ``clone_for_mc`` starts from a
        bare instance and rebuilds it lazily).
        """
        elements = getattr(self, "_elements_list", None)
        if elements is not None:
            return elements
        seen = set()
        elements = [self.llc]
        seen.add(id(self.llc))
        for core in self.cores:
            for element in core.private_elements():
                if id(element) not in seen:
                    seen.add(id(element))
                    elements.append(element)
        self._elements_list = elements
        return elements

    def flushable_elements_of_core(self, core_id: int) -> List:
        """Elements the kernel flushes when switching domains on a core."""
        return self.cores[core_id].private_elements()

    def fingerprint_all(self):
        """Fingerprints of every state element (for two-run comparison).

        Uses the version-memoised accessor: elements recompute their
        canonical digest only when they actually mutated since the last
        call (the model checker calls this after every transition).
        """
        return tuple(
            (element.name, element.cached_fingerprint())
            for element in self.all_state_elements()
        )

    def digest_all(self) -> tuple:
        """16-byte digest per state element, version-memoised.

        Equality-equivalent to :meth:`fingerprint_all` (two machines
        digest equal iff every element fingerprint agrees, modulo
        BLAKE2b collisions) but constant-size per element, so hashing a
        whole machine state costs O(elements) instead of O(state).
        """
        return tuple(
            (element.name, element.cached_digest())
            for element in self.all_state_elements()
        )

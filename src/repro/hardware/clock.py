"""The time model: per-core cycle clocks.

Sect. 5.1 of the paper defines the time model as a clock whose advance on
each execution step is "a deterministic yet unspecified function of the
microarchitectural state".  The simulator instantiates that function
concretely (hit/miss costs, write-back costs, mispredict penalties), but
the proof layer treats it as opaque: it only ever *compares* timestamps
(for the padding obligation) and checks *which state the latency read*
(via instrumentation footprints), never the constants themselves.
"""

from __future__ import annotations


class CycleClock:
    """A monotonic per-core cycle counter.

    ``now`` is a plain attribute rather than a property: it is read on
    every simulated step by the kernel run loop and by timestamp-taking
    instructions, and only the two advance methods below ever write it.
    """

    __slots__ = ("now",)

    def __init__(self, start: int = 0):
        self.now = int(start)

    def advance(self, cycles: int) -> int:
        """Advance by ``cycles`` (>= 0); returns the new time."""
        if cycles < 0:
            raise ValueError(f"cannot advance clock by {cycles} cycles")
        self.now += cycles
        return self.now

    def advance_to(self, target: int) -> int:
        """Busy-wait until ``target`` (no-op if already past).

        This is the padding primitive: the kernel pads the domain-switch
        latency by spinning until a pre-computed release time, turning a
        history-dependent latency into a constant one (Sect. 4.2).
        """
        if target > self.now:
            self.now = target
        return self.now

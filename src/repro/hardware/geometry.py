"""Cache and TLB geometry descriptions and page-colour arithmetic.

Page colouring (Kessler & Hill [1992], Lynch et al. [1992], Liedtke et
al. [1997]) exploits the fact that the set-associative lookup of a
physically-indexed cache forces all lines of a physical page into a fixed,
page-determined subset of the cache sets.  Two pages compete for cache
space only if they have the same *colour*.  The number of distinct colours
of a cache is::

    n_colours = sets * line_size / page_size

(1 when a single page covers every set, as for typical L1 caches, in which
case the cache cannot be partitioned by the OS and must be flushed
instead -- exactly the distinction Sect. 4.1 of the paper draws.)

Address slicing runs on every simulated memory access, so the bit
widths, masks and shifts are computed once at construction (the geometry
is frozen) rather than re-derived per call.
"""

from __future__ import annotations

from dataclasses import dataclass


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def _log2(value: int) -> int:
    if not _is_power_of_two(value):
        raise ValueError(f"{value} is not a power of two")
    return value.bit_length() - 1


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of a set-associative cache.

    Attributes:
        sets: number of cache sets (power of two).
        ways: associativity (lines per set).
        line_size: bytes per cache line (power of two).

    Derived slicing attributes (``offset_bits``, ``index_bits``,
    ``index_mask``, ``line_mask``, ``tag_shift``) are precomputed at
    construction; equality and hashing still use only the three declared
    fields.
    """

    sets: int
    ways: int
    line_size: int

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.sets):
            raise ValueError(f"sets must be a power of two, got {self.sets}")
        if not _is_power_of_two(self.line_size):
            raise ValueError(
                f"line_size must be a power of two, got {self.line_size}"
            )
        if self.ways < 1:
            raise ValueError(f"ways must be >= 1, got {self.ways}")
        # Precomputed address-slicing constants (the dataclass is frozen,
        # so plain attribute assignment is unavailable).
        object.__setattr__(self, "offset_bits", _log2(self.line_size))
        object.__setattr__(self, "index_bits", _log2(self.sets))
        object.__setattr__(self, "index_mask", self.sets - 1)
        object.__setattr__(self, "line_mask", ~(self.line_size - 1))
        object.__setattr__(
            self, "tag_shift", _log2(self.line_size) + _log2(self.sets)
        )

    @property
    def size_bytes(self) -> int:
        """Total capacity of the cache in bytes."""
        return self.sets * self.ways * self.line_size

    def set_index(self, paddr: int) -> int:
        """Cache set that physical address ``paddr`` maps to."""
        return (paddr >> self.offset_bits) & self.index_mask

    def line_address(self, paddr: int) -> int:
        """Address of the start of the line containing ``paddr``."""
        return paddr & self.line_mask

    def tag(self, paddr: int) -> int:
        """Tag portion of ``paddr`` (everything above the set index)."""
        return paddr >> self.tag_shift

    def n_colours(self, page_size: int) -> int:
        """Number of page colours this cache supports.

        A cache whose per-way capacity does not exceed the page size has a
        single colour and cannot be partitioned by page allocation.
        """
        if not _is_power_of_two(page_size):
            raise ValueError(f"page_size must be a power of two, got {page_size}")
        colours = self.sets * self.line_size // page_size
        return max(1, colours)

    def sets_per_colour(self, page_size: int) -> int:
        """Number of consecutive sets that belong to one colour."""
        n = self.n_colours(page_size)
        return self.sets // n if n > 1 else self.sets

    def colour_of_set(self, set_index: int, page_size: int) -> int:
        """Colour that cache set ``set_index`` belongs to."""
        n = self.n_colours(page_size)
        if n == 1:
            return 0
        return set_index // self.sets_per_colour(page_size)

    def colour_of_paddr(self, paddr: int, page_size: int) -> int:
        """Colour of the physical page containing ``paddr``."""
        return self.colour_of_set(self.set_index(paddr), page_size)


def colour_of_frame(frame_number: int, n_colours: int) -> int:
    """Colour of physical frame ``frame_number`` for an ``n_colours`` cache.

    Frames cycle through colours: consecutive frames get consecutive
    colours, so ``frame % n_colours`` is the page colour.  This matches
    :meth:`CacheGeometry.colour_of_paddr` for physically-indexed caches
    whose index bits extend ``log2(n_colours)`` bits above the page offset.
    """
    if n_colours < 1:
        raise ValueError(f"n_colours must be >= 1, got {n_colours}")
    return frame_number % n_colours


@dataclass(frozen=True)
class TlbGeometry:
    """Geometry of a (fully-associative, ASID-tagged) TLB."""

    entries: int

    def __post_init__(self) -> None:
        if self.entries < 1:
            raise ValueError(f"entries must be >= 1, got {self.entries}")

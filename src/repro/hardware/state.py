"""Microarchitectural state elements and touch instrumentation.

This module implements the hardware side of the paper's central
abstraction (Sect. 5.1): all microarchitectural state that influences
execution time is modelled as a collection of named *state elements*, each
of which must be either

* ``PARTITIONABLE`` -- spatially divisible between security domains (a
  physically-indexed shared cache, via page colouring), or
* ``FLUSHABLE`` -- resettable to a defined, history-independent state
  between time-multiplexed accesses (core-private caches, TLBs, branch
  predictors, prefetchers),

and any element that is neither is ``UNMANAGED``: a violation of the
security-oriented hardware-software contract (the aISA of Ge et al.
[2018a]) under which the paper's proof becomes possible.

Every element reports *touches* -- (element, index) pairs consulted or
modified by an execution step -- to a shared :class:`Instrumentation`
recorder.  The proof layer (``repro.core``) consumes these records to
discharge the partitioning and flushing obligations without ever reasoning
about concrete latencies, exactly as the paper proposes.
"""

from __future__ import annotations

import abc
import enum
import hashlib
import pickle
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple


class StateCategory(enum.Enum):
    """How a state element can be managed by the OS (Sect. 4.1)."""

    PARTITIONABLE = "partitionable"
    FLUSHABLE = "flushable"
    UNMANAGED = "unmanaged"


class Scope(enum.Enum):
    """Whether an element is private to one execution stream.

    Flushing is only a valid defence for ``CORE_LOCAL`` state: resetting
    "only works for resources that are private to an execution stream"
    (Sect. 4.1).  Concurrently shared state must be partitioned.
    """

    CORE_LOCAL = "core_local"
    SHARED = "shared"


class TouchKind(enum.Enum):
    """Why a state element index was touched."""

    READ = "read"
    WRITE = "write"
    FILL = "fill"
    EVICT = "evict"
    PREDICT = "predict"
    UPDATE = "update"


@dataclass(frozen=True, slots=True)
class Touch:
    """One recorded access to microarchitectural state."""

    element: str
    index: Hashable
    kind: TouchKind
    domain: Optional[str]
    core: int
    cycle: int


class InstrumentationMode(enum.Enum):
    OFF = "off"
    COUNTING = "counting"
    SUMMARY = "summary"
    FULL = "full"


class Instrumentation:
    """Records which state each domain touches, and when.

    ``SUMMARY`` mode keeps, per (domain, element), the set of touched
    indices -- sufficient for the partitioning obligation (PO-2).
    ``FULL`` mode additionally keeps the ordered event list, which the
    case-split audit (Sect. 5.2) and the kernel-determinism obligation
    (PO-7) need.  ``OFF`` disables recording for high-volume benchmark
    runs.  ``COUNTING`` (see :class:`CountingInstrumentation`) keeps only
    aggregate per-(domain, element) touch counts: cheap enough for
    campaign sweeps, but useless for proofs -- ``from_machine()`` refuses
    to build proof obligations from a counting-mode run.

    ``touch()`` runs on every simulated state access, so the recorder
    keeps the current domain's ``element -> index set`` buckets in a flat
    dict (switched in ``set_context``) instead of re-hashing a (domain,
    element) tuple per touch; the buckets alias the entries of
    ``summary``, whose shape the proof layer reads directly.
    """

    def __init__(self, mode: InstrumentationMode = InstrumentationMode.SUMMARY):
        self.summary: Dict[Tuple[Optional[str], str], Set[Hashable]] = {}
        self.events: List[Touch] = []
        # Mutable execution context, maintained by the machine.
        self.current_domain: Optional[str] = None
        self.current_core: int = 0
        self.current_cycle: int = 0
        # Per-step latency dependency footprint (the paper's "unspecified
        # deterministic function" argument list); reset by the CPU at each
        # instruction boundary when footprint tracking is enabled.
        self.track_footprint = False
        self.footprint: List[Tuple[str, Hashable, TouchKind]] = []
        # Optional element whitelist: when set, SUMMARY recording keeps
        # per-index sets only for these element names.  Consumers that
        # audit a single element (the model checker's partitioning check
        # reads only the LLC) install the filter so every other element's
        # touches cost one early return instead of a set insertion.
        self.summary_elements: Optional[frozenset] = None
        # Per-domain bucket cache; ``_buckets`` is the current domain's.
        self._domain_buckets: Dict[Optional[str], Dict[str, Set[Hashable]]] = {}
        self._buckets: Dict[str, Set[Hashable]] = self._domain_buckets.setdefault(
            None, {}
        )
        self.mode = mode

    @property
    def mode(self) -> InstrumentationMode:
        return self._mode

    @mode.setter
    def mode(self, value: InstrumentationMode) -> None:
        # Mode is settable at runtime (the proof layer raises SUMMARY to
        # FULL); the dispatch flags below keep ``touch()`` off the enum.
        self._mode = value
        self._recording = value in (
            InstrumentationMode.SUMMARY, InstrumentationMode.FULL
        )
        self._full = value is InstrumentationMode.FULL

    def set_context(self, domain: Optional[str], core: int, cycle: int) -> None:
        if domain != self.current_domain:
            self.current_domain = domain
            buckets = self._domain_buckets.get(domain)
            if buckets is None:
                buckets = {}
                self._domain_buckets[domain] = buckets
            self._buckets = buckets
        self.current_core = core
        self.current_cycle = cycle

    def touch(self, element: str, index: Hashable, kind: TouchKind) -> None:
        if self.track_footprint:
            self.footprint.append((element, index, kind))
        if not self._recording:
            return
        only = self.summary_elements
        if only is not None and element not in only:
            return
        bucket = self._buckets.get(element)
        if bucket is None:
            bucket = set()
            self._buckets[element] = bucket
            self.summary[(self.current_domain, element)] = bucket
        bucket.add(index)
        if self._full:
            self.events.append(
                Touch(
                    element,
                    index,
                    kind,
                    self.current_domain,
                    self.current_core,
                    self.current_cycle,
                )
            )

    def reset_footprint(self) -> None:
        self.footprint = []

    def clone(self) -> "Instrumentation":
        """An independent copy (for the model checker's fast snapshot).

        Rebuilds the ``summary`` / ``_domain_buckets`` aliasing from
        scratch so the copy's buckets are its own sets that still alias
        its own summary entries, exactly as ``touch()`` maintains them.
        """
        other = Instrumentation.__new__(Instrumentation)
        other.summary = {}
        other._domain_buckets = {}
        for (domain, element), indices in self.summary.items():
            fresh = set(indices)
            other.summary[(domain, element)] = fresh
            other._domain_buckets.setdefault(domain, {})[element] = fresh
        other.events = list(self.events)
        other.current_domain = self.current_domain
        other.current_core = self.current_core
        other.current_cycle = self.current_cycle
        other.track_footprint = self.track_footprint
        other.footprint = list(self.footprint)
        other.summary_elements = self.summary_elements
        other._buckets = other._domain_buckets.setdefault(
            self.current_domain, {}
        )
        other.mode = self._mode
        return other

    def touched_indices(self, domain: Optional[str], element: str) -> Set[Hashable]:
        """Set of indices of ``element`` touched while ``domain`` ran."""
        return set(self.summary.get((domain, element), set()))

    def clear(self) -> None:
        self.summary.clear()
        self.events.clear()
        self.footprint = []
        self._domain_buckets.clear()
        self._buckets = self._domain_buckets.setdefault(self.current_domain, {})


class CountingInstrumentation(Instrumentation):
    """Aggregate touch counters: the campaign-sweep fast path.

    Keeps one integer per (domain, element) instead of per-index sets and
    ordered events.  This preserves every *observable* of a channel
    measurement (latencies are computed from concrete state, not from the
    recorder) while shedding the per-touch set insertions that dominate
    full instrumentation.  It records nothing the proof layer could audit
    -- ``summary`` stays empty -- which is why
    ``AbstractHardwareModel.from_machine`` rejects machines running in
    this mode.
    """

    def __init__(self) -> None:
        super().__init__(InstrumentationMode.COUNTING)
        self._domain_counts: Dict[Optional[str], Dict[str, int]] = {}
        self._counts: Dict[str, int] = self._domain_counts.setdefault(None, {})

    def set_context(self, domain: Optional[str], core: int, cycle: int) -> None:
        if domain != self.current_domain:
            self.current_domain = domain
            counts = self._domain_counts.get(domain)
            if counts is None:
                counts = {}
                self._domain_counts[domain] = counts
            self._counts = counts
        self.current_core = core
        self.current_cycle = cycle

    def touch(self, element: str, index: Hashable, kind: TouchKind) -> None:
        if self.track_footprint:
            self.footprint.append((element, index, kind))
        counts = self._counts
        counts[element] = counts.get(element, 0) + 1

    def touch_counts(self) -> Dict[Tuple[Optional[str], str], int]:
        """Aggregate touch counts as one plain (domain, element) -> n dict."""
        return {
            (domain, element): count
            for domain, counts in self._domain_counts.items()
            for element, count in counts.items()
        }

    def clear(self) -> None:
        super().clear()
        self._domain_counts.clear()
        self._counts = self._domain_counts.setdefault(self.current_domain, {})


@dataclass
class FlushResult:
    """Outcome of flushing a state element.

    The latency is *history dependent* (e.g. proportional to the number of
    dirty lines written back) -- which is precisely why the domain-switch
    latency must be padded to a constant (Sect. 4.2).
    """

    cycles: int
    lines_written_back: int = 0


class StateElement(abc.ABC):
    """Base class for every piece of timing-relevant hardware state."""

    def __init__(
        self,
        name: str,
        category: StateCategory,
        scope: Scope,
        instrumentation: Optional[Instrumentation] = None,
    ):
        self.name = name
        self.category = category
        self.scope = scope
        self.instr = instrumentation if instrumentation is not None else Instrumentation(
            InstrumentationMode.OFF
        )
        # Set to True by the machine when two hardware threads share this
        # element concurrently (SMT); flushing is then ineffective and the
        # abstract-model extraction reclassifies the element as UNMANAGED.
        self.concurrently_shared = scope is Scope.SHARED
        # Fingerprint memoisation: subclasses bump ``_fp_version`` on any
        # mutation that can change ``fingerprint()`` (stamp-only updates
        # are exempt).  ``cached_fingerprint`` then recomputes only when
        # the element actually changed -- the model checker fingerprints
        # every element after every transition, but a single transition
        # mutates only the few elements it touched.
        self._fp_version = 0
        self._fp_cache: Optional[tuple] = None
        self._fp_digest: Optional[tuple] = None

    def _touch(self, index: Hashable, kind: TouchKind) -> None:
        self.instr.touch(self.name, index, kind)

    def cached_fingerprint(self) -> Hashable:
        """``fingerprint()``, memoised against ``_fp_version``."""
        cache = self._fp_cache
        if cache is not None and cache[0] == self._fp_version:
            return cache[1]
        fp = self.fingerprint()
        self._fp_cache = (self._fp_version, fp)
        return fp

    def cached_digest(self) -> bytes:
        """BLAKE2b digest of ``fingerprint()``, memoised like it.

        Lets callers that only need *equality* (the model checker's
        incremental state hash) fold a fixed 16-byte digest per element
        instead of re-serialising the full fingerprint structure on
        every comparison.  Serialisation is ``pickle`` at a pinned
        protocol: fingerprints are freshly built nested tuples of
        scalars, for which equal values pickle to equal bytes, and the
        C encoder is several times faster than ``repr`` on them.
        """
        cache = self._fp_digest
        if cache is not None and cache[0] == self._fp_version:
            return cache[1]
        digest = hashlib.blake2b(
            pickle.dumps(self.cached_fingerprint(), protocol=4),
            digest_size=16,
        ).digest()
        self._fp_digest = (self._fp_version, digest)
        return digest

    @abc.abstractmethod
    def flush(self) -> FlushResult:
        """Reset to the defined, history-independent state."""

    @abc.abstractmethod
    def fingerprint(self) -> Hashable:
        """Canonical digest of the element's full state.

        Used by the flush obligation (state after flush must equal the
        reset state) and by the unwinding checker (Lo-equivalence of
        hardware state across two runs).
        """

    @abc.abstractmethod
    def reset_fingerprint(self) -> Hashable:
        """Fingerprint of the post-flush (history-independent) state."""

    def partition_of_index(self, index: Hashable) -> Hashable:
        """Partition that a touch index belongs to.

        For colour-partitioned caches this is the page colour of the set;
        elements that are not partitionable map everything to partition 0.
        """
        return 0

    @property
    def n_partitions(self) -> int:
        """Number of distinct partitions this element supports."""
        return 1

    def effective_category(self) -> StateCategory:
        """Category after accounting for concurrent sharing.

        A FLUSHABLE element that is concurrently shared (e.g. an L1 cache
        shared by two hyperthreads of different domains) cannot actually
        be separated in time, so flushing it is ineffective: the abstract
        model must treat it as UNMANAGED.  A PARTITIONABLE element with a
        single partition likewise offers no separation.
        """
        if self.category is StateCategory.FLUSHABLE and self.concurrently_shared:
            return StateCategory.UNMANAGED
        if self.category is StateCategory.PARTITIONABLE and self.n_partitions < 2:
            return StateCategory.UNMANAGED
        return self.category

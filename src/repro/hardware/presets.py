"""Named machine configurations.

``tiny`` machines keep experiments fast for tests; ``desktop`` is sized
like a small x86 part for the benchmark harness.  The remaining presets
deliberately violate the security-oriented hardware-software contract in
one specific way each, so experiment E9 can show the proof failing for
the *right* reason on each of them:

* ``tiny_smt``       -- hyperthreading: private state concurrently shared
                        ("hyperthreading is fundamentally insecure", Sect. 4.1).
* ``tiny_unflushable`` -- a prefetcher with no architected flush.
* ``tiny_broken_flush`` -- an L1D whose flush does not reset all lines.
* ``tiny_nocolour``  -- an LLC with a single page colour: a shared cache
                        the OS cannot partition.
"""

from __future__ import annotations

from .cache import ReplacementPolicy
from .geometry import CacheGeometry
from .interconnect import MbaConfig
from .machine import Machine, MachineConfig


def tiny_config(n_cores: int = 1) -> MachineConfig:
    """Small, fast machine: 256 B pages, 8-colour LLC."""
    return MachineConfig(n_cores=n_cores)


def tiny_machine(n_cores: int = 1) -> Machine:
    return Machine(tiny_config(n_cores=n_cores))


def micro_config(n_cores: int = 1) -> MachineConfig:
    """The model checker's machine: the smallest contract-conforming part.

    128 B pages over a 4-colour, 1 KiB LLC; direct-mapped 4-set L1s, a
    4-entry TLB and a bimodal predictor.  Every structure is sized so the
    exhaustive product-construction check (``repro.mc``) can enumerate
    reachable states quickly while still exercising colouring (4 > 1
    colour), flushing (dirty-line-dependent latency) and padding.
    """
    return MachineConfig(
        n_cores=n_cores,
        page_size=128,
        total_frames=96,
        l1i_geometry=CacheGeometry(sets=4, ways=1, line_size=32),
        l1d_geometry=CacheGeometry(sets=4, ways=1, line_size=32),
        l2_geometry=CacheGeometry(sets=8, ways=2, line_size=32),
        llc_geometry=CacheGeometry(sets=16, ways=2, line_size=32),
        tlb_entries=4,
        branch_history_bits=0,
        irq_lines=4,
    )


def micro_machine(n_cores: int = 1) -> Machine:
    return Machine(micro_config(n_cores=n_cores))


def pocket_config(n_cores: int = 1) -> MachineConfig:
    """Between tiny and desktop: 256 B pages over a 16-colour 32 KiB LLC.

    Doubles every structure tiny has (L1/L2/LLC sets, TLB reach, frame
    count) without leaving the envelope the exhaustive model checker can
    drain: the first preset larger than ``tiny`` with a complete
    reachable-state-space PASS on record (EXPERIMENTS.md E19).
    """
    return MachineConfig(
        n_cores=n_cores,
        total_frames=1024,
        l1i_geometry=CacheGeometry(sets=16, ways=2, line_size=32),
        l1d_geometry=CacheGeometry(sets=16, ways=2, line_size=32),
        l2_geometry=CacheGeometry(sets=64, ways=4, line_size=32),
        llc_geometry=CacheGeometry(sets=128, ways=8, line_size=32),
        tlb_entries=32,
    )


def pocket_machine(n_cores: int = 1) -> Machine:
    return Machine(pocket_config(n_cores=n_cores))


def desktop_config(n_cores: int = 2, mba: bool = False) -> MachineConfig:
    """A small x86-like part: 4 KiB pages, 64-colour 4 MiB LLC."""
    return MachineConfig(
        n_cores=n_cores,
        page_size=4096,
        total_frames=4096,
        l1i_geometry=CacheGeometry(sets=64, ways=8, line_size=64),
        l1d_geometry=CacheGeometry(sets=64, ways=8, line_size=64),
        l2_geometry=CacheGeometry(sets=512, ways=8, line_size=64),
        llc_geometry=CacheGeometry(sets=4096, ways=16, line_size=64),
        tlb_entries=64,
        replacement=ReplacementPolicy.LRU,
        mba=MbaConfig() if mba else None,
    )


def desktop_machine(n_cores: int = 2, mba: bool = False) -> Machine:
    return Machine(desktop_config(n_cores=n_cores, mba=mba))


def tiny_bimodal_machine(n_cores: int = 1) -> Machine:
    """Tiny machine with a bimodal (pc-indexed, history-free) predictor.

    Bimodal predictors make the cross-domain direction-training channel
    directly visible: one domain's training is consulted verbatim by the
    next domain's branches at aliasing pcs.
    """
    config = tiny_config(n_cores=n_cores)
    config.branch_history_bits = 0
    return Machine(config)


def contended_machine(n_cores: int = 2, mba: bool = False) -> Machine:
    """A machine whose memory interconnect has little headroom.

    The stateless-interconnect covert channel (Sect. 2) lives on the
    *finite bandwidth* of the bus; with the default overprovisioned bus a
    single in-order core cannot saturate it.  This preset models the
    bandwidth-constrained case (slow transfers relative to core demand),
    where the Trojan's modulation is plainly visible to a concurrent spy.
    """
    config = tiny_config(n_cores=n_cores)
    # Two cores issuing back-to-back misses must (together) exceed the
    # bus: each miss costs ~120 cycles of core time plus the transfer, so
    # a 180-cycle transfer puts one core at ~60% occupancy and two
    # saturating cores at ~120% demand -- queueing is then unavoidable.
    config.interconnect_transfer_cycles = 180
    if mba:
        config.mba = MbaConfig(
            window_cycles=4000, requests_per_window=12, throttle_delay_cycles=120
        )
    return Machine(config)


def tiny_smt_machine() -> Machine:
    """Two hardware threads sharing all core-private state concurrently."""
    config = tiny_config(n_cores=2)
    config.smt = True
    return Machine(config)


def tiny_unflushable_machine(n_cores: int = 1) -> Machine:
    """Prefetcher state the OS has no instruction to clear."""
    config = tiny_config(n_cores=n_cores)
    config.prefetcher_flushable = False
    return Machine(config)


def tiny_broken_flush_machine(n_cores: int = 1) -> Machine:
    """An L1D flush that silently leaves residue behind."""
    config = tiny_config(n_cores=n_cores)
    config.broken_l1d_flush = True
    return Machine(config)


def tiny_nocolour_machine(n_cores: int = 2) -> Machine:
    """An LLC whose per-way capacity equals the page size: one colour."""
    config = tiny_config(n_cores=n_cores)
    config.llc_geometry = CacheGeometry(sets=8, ways=16, line_size=32)
    return Machine(config)


# ----------------------------------------------------------------------
# Batch-engine presets
# ----------------------------------------------------------------------
# A BatchMachine steps N identically-configured lanes in lockstep over
# the vectorized engine (repro.hardware.batch), bit-identical to N
# scalar runs.  Imports are deferred so merely importing presets never
# pulls in numpy-backed engine state.


def batch_machine(config: MachineConfig, n_lanes: int = 8):
    """A lockstep batch of machines sharing ``config``'s shape."""
    from .batch import BatchMachine

    return BatchMachine(config, n_lanes)


def tiny_batch(n_lanes: int = 8):
    """A batch of ``tiny`` machines (the secret-sweep workhorse)."""
    return batch_machine(tiny_config(), n_lanes)


def micro_batch(n_lanes: int = 8):
    """A batch of ``micro`` machines (fast exhaustive-ish sweeps)."""
    return batch_machine(micro_config(), n_lanes)

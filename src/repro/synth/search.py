"""Seeded evolutionary search over attack genomes.

Mutate-and-select with tournament parent selection, elitism, one-point
crossover and primitive-level mutation.  An epsilon-greedy bandit over
primitive *families* (touch/timed/flush/text/branch/wait) learns which
kinds of probes are paying off on the current target and biases new
gene material towards them -- on a flush+reload target the bandit
quickly concentrates on ``flush``/``text``, on prime+probe targets on
``touch``/``timed``.

Everything is driven by one ``random.Random(seed)``: same seed, same
env, same evaluator => bit-identical search trajectory (the determinism
test in ``tests/synth/test_search.py`` holds this).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .env import ChannelGuessEnv, EpisodeEvaluation, fitness_from_stats
from .genome import (
    FAMILIES,
    Genome,
    classify,
    crossover,
    mutate,
    random_genome,
)

__all__ = [
    "EvolutionSearch",
    "FamilyBandit",
    "SearchConfig",
    "SearchReport",
    "ScoredGenome",
    "fitness_from_stats",
]


class FamilyBandit:
    """Epsilon-greedy bandit over primitive families.

    Arms are the gene families; pulls pick the family new gene material
    is drawn from; rewards are the fitness delta a mutation touching
    that family produced.  Running means start optimistic (0.0, above
    typical negative deltas) so every family gets explored early.
    """

    def __init__(self, rng: random.Random, epsilon: float = 0.25) -> None:
        self._rng = rng
        self.epsilon = epsilon
        self.pulls: Dict[str, int] = {family: 0 for family in FAMILIES}
        self.means: Dict[str, float] = {family: 0.0 for family in FAMILIES}

    def pick(self) -> str:
        if self._rng.random() < self.epsilon:
            return self._rng.choice(FAMILIES)
        best = max(self.means.values())
        # Deterministic tie-break: FAMILIES order, not dict/hash order.
        leaders = [f for f in FAMILIES if self.means[f] == best]
        return self._rng.choice(leaders)

    def update(self, family: str, reward: float) -> None:
        self.pulls[family] += 1
        n = self.pulls[family]
        self.means[family] += (reward - self.means[family]) / n

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        return {
            family: {"pulls": self.pulls[family], "mean": self.means[family]}
            for family in FAMILIES
        }


@dataclass(frozen=True)
class SearchConfig:
    """Knobs for one evolutionary run (all deterministic given seed)."""

    generations: int = 8
    population: int = 16
    elite: int = 2
    tournament_k: int = 3
    crossover_rate: float = 0.3
    seed_genomes: Tuple[Genome, ...] = ()
    min_ops: int = 2
    max_ops: int = 6
    bandit_epsilon: float = 0.25
    #: Stop early once the champion's MI clears this many bits.
    target_bits: Optional[float] = None

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ValueError("population must be >= 2")
        if not 0 <= self.elite < self.population:
            raise ValueError("elite must be in [0, population)")


@dataclass
class ScoredGenome:
    genome: Genome
    evaluation: EpisodeEvaluation
    generation: int

    @property
    def fitness(self) -> float:
        return self.evaluation.fitness

    def to_record(self) -> dict:
        return {
            "genome": self.genome.to_dict(),
            "classes": list(classify(self.genome)),
            "generation": self.generation,
            "fitness": self.evaluation.fitness,
            "mutual_information_bits": self.evaluation.mutual_information_bits,
            "capacity_bits": self.evaluation.capacity_bits,
            "accuracy": self.evaluation.accuracy,
        }


@dataclass
class SearchReport:
    """Everything a run produced: champion, per-generation history,
    genomes that cleared the discovery threshold, bandit state."""

    champion: ScoredGenome
    discovered: List[ScoredGenome]
    history: List[dict]
    bandit: Dict[str, Dict[str, float]]
    evaluations: int
    noise_floor_bits: float

    def found_channel(self, threshold_bits: Optional[float] = None) -> bool:
        limit = self.noise_floor_bits if threshold_bits is None else threshold_bits
        # bool(): MI may be a numpy float and ">" would leak numpy.bool_
        # into JSON reports.
        return bool(self.champion.evaluation.mutual_information_bits > limit)

    def to_record(self) -> dict:
        return {
            "champion": self.champion.to_record(),
            "discovered": [s.to_record() for s in self.discovered],
            "history": self.history,
            "bandit": self.bandit,
            "evaluations": self.evaluations,
            "noise_floor_bits": self.noise_floor_bits,
        }


#: Evaluator contract: genomes -> evaluations, order-preserving.  The
#: in-process default maps ``env.evaluate``; the campaign bridge fans
#: the same call across the worker pool.
BatchEvaluator = Callable[[Sequence[Genome]], List[EpisodeEvaluation]]


class EvolutionSearch:
    """Mutate-and-select loop over :class:`ChannelGuessEnv`."""

    def __init__(
        self,
        env: ChannelGuessEnv,
        config: SearchConfig = SearchConfig(),
        seed: int = 0,
        evaluator: Optional[BatchEvaluator] = None,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.env = env
        self.config = config
        self.rng = random.Random(seed)
        self.bandit = FamilyBandit(self.rng, epsilon=config.bandit_epsilon)
        self.evaluator = evaluator or self._evaluate_serial
        self._log = log or (lambda message: None)
        self.evaluations = 0

    # -- internals -------------------------------------------------------

    def _evaluate_serial(self, genomes: Sequence[Genome]) -> List[EpisodeEvaluation]:
        return [self.env.evaluate(genome) for genome in genomes]

    def _initial_population(self) -> List[Genome]:
        population = list(self.config.seed_genomes[: self.config.population])
        while len(population) < self.config.population:
            population.append(
                random_genome(
                    self.rng,
                    min_ops=self.config.min_ops,
                    max_ops=self.config.max_ops,
                )
            )
        return population

    def _tournament(self, scored: List[ScoredGenome]) -> ScoredGenome:
        k = min(self.config.tournament_k, len(scored))
        contestants = [self.rng.randrange(len(scored)) for _ in range(k)]
        return max((scored[i] for i in contestants), key=lambda s: s.fitness)

    def _offspring(self, scored: List[ScoredGenome]) -> List[Tuple[Genome, Optional[str], float]]:
        """Produce the next generation's non-elite individuals as
        ``(child, family_touched, parent_fitness)`` for bandit credit."""
        children: List[Tuple[Genome, Optional[str], float]] = []
        needed = self.config.population - self.config.elite
        for _ in range(needed):
            parent = self._tournament(scored)
            if (
                self.rng.random() < self.config.crossover_rate
                and len(scored) > 1
            ):
                other = self._tournament(scored)
                base = crossover(parent.genome, other.genome, self.rng)
                parent_fitness = max(parent.fitness, other.fitness)
            else:
                base = parent.genome
                parent_fitness = parent.fitness
            family = self.bandit.pick()
            child, touched = mutate(base, self.rng, family=family)
            children.append((child, touched, parent_fitness))
        return children

    def _score(
        self, genomes: Sequence[Genome], generation: int
    ) -> List[ScoredGenome]:
        evaluations = self.evaluator(genomes)
        self.evaluations += len(genomes)
        return [
            ScoredGenome(genome=g, evaluation=e, generation=generation)
            for g, e in zip(genomes, evaluations)
        ]

    # -- the loop --------------------------------------------------------

    def run(self) -> SearchReport:
        config = self.config
        floor = self.env.noise_floor_bits()
        target = config.target_bits
        population = self._initial_population()
        scored = self._score(population, generation=0)
        scored.sort(key=lambda s: s.fitness, reverse=True)
        history: List[dict] = []
        best = scored[0]
        discovered: Dict[str, ScoredGenome] = {}

        for generation in range(config.generations):
            self._record_generation(history, generation, scored, floor, discovered)
            best = max(best, scored[0], key=lambda s: s.fitness)
            if target is not None and best.evaluation.mutual_information_bits >= target:
                self._log(
                    f"gen {generation}: target {target:.3f} bits reached, stopping"
                )
                break
            elites = scored[: config.elite]
            offspring = self._offspring(scored)
            children = self._score(
                [child for child, _family, _pf in offspring],
                generation=generation + 1,
            )
            for scored_child, (_child, family, parent_fitness) in zip(
                children, offspring
            ):
                if family is not None:
                    self.bandit.update(
                        family, scored_child.fitness - parent_fitness
                    )
            scored = elites + children
            scored.sort(key=lambda s: s.fitness, reverse=True)
            best = max(best, scored[0], key=lambda s: s.fitness)
        self._record_generation(
            history, len(history), scored, floor, discovered
        )

        return SearchReport(
            champion=best,
            discovered=sorted(
                discovered.values(), key=lambda s: s.fitness, reverse=True
            ),
            history=history,
            bandit=self.bandit.snapshot(),
            evaluations=self.evaluations,
            noise_floor_bits=floor,
        )

    def _record_generation(
        self,
        history: List[dict],
        generation: int,
        scored: List[ScoredGenome],
        floor: float,
        discovered: Dict[str, ScoredGenome],
    ) -> None:
        for individual in scored:
            if individual.evaluation.mutual_information_bits > floor:
                key = repr(individual.genome.to_dict())
                existing = discovered.get(key)
                if existing is None or individual.fitness > existing.fitness:
                    discovered[key] = individual
        fitnesses = [s.fitness for s in scored]
        entry = {
            "generation": generation,
            "best_fitness": max(fitnesses),
            "mean_fitness": sum(fitnesses) / len(fitnesses),
            "best_mi_bits": max(
                s.evaluation.mutual_information_bits for s in scored
            ),
            "above_floor": sum(
                1
                for s in scored
                if s.evaluation.mutual_information_bits > floor
            ),
        }
        history.append(entry)
        self._log(
            "gen {generation}: best={best_fitness:.3f} "
            "mi={best_mi_bits:.3f} above_floor={above_floor}".format(**entry)
        )

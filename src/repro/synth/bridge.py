"""Bridge between the evolutionary search and the campaign machinery.

Two directions:

* **Search -> pool.**  :class:`CampaignEvaluator` is a drop-in
  ``BatchEvaluator`` for :class:`~repro.synth.search.EvolutionSearch`
  that fans each generation's genome evaluations across the PR-1
  multiprocessing pool instead of running them serially.  Every genome
  evaluation is an ordinary campaign trial of the ``synth`` attack whose
  params carry the genome dict, so the JSONL store doubles as a
  *fitness cache*: a genome's trial key fingerprints its params, and
  ``resume=True`` answers previously-seen genomes from disk for free.

* **Search -> registry.**  Winning genomes are saved as plain JSON and
  re-registered as first-class named attacks
  (:func:`register_discovered` / :func:`register_saved`), after which
  ordinary campaign grids sweep them across machines and TP ablations
  exactly like the hand-written suite.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence, Union

from ..campaign.executor import run_campaign
from ..campaign.registry import register_attack
from ..campaign.spec import TrialSpec
from ..campaign.store import STATUS_OK, ResultStore
from .env import ChannelGuessEnv, EpisodeEvaluation, fitness_from_stats
from .genome import Genome, classify

#: Registry name of the generic evolved-genome attack (see
#: ``repro.campaign.registry``); its params carry the genome itself.
SYNTH_ATTACK = "synth"

GENOME_FILE_VERSION = 1


class CampaignEvaluator:
    """Evaluate genome batches on the campaign worker pool.

    Order-preserving: result ``i`` belongs to genome ``i``.  Failed or
    timed-out trials evaluate to fitness 0 rather than raising, so one
    pathological genome cannot abort a whole generation.
    """

    def __init__(
        self,
        env: ChannelGuessEnv,
        store: Union[ResultStore, str],
        n_workers: int = 2,
        timeout_s: float = 0.0,
        max_retries: int = 0,
        resume: bool = True,
        seed: int = 0,
    ) -> None:
        self.env = env
        self.store = store if isinstance(store, ResultStore) else ResultStore(store)
        self.n_workers = max(1, int(n_workers))
        self.timeout_s = float(timeout_s)
        self.max_retries = max_retries
        self.resume = resume
        self.seed = seed

    def trial_for(self, genome: Union[Genome, dict]) -> TrialSpec:
        genome_dict = genome.to_dict() if isinstance(genome, Genome) else dict(genome)
        return TrialSpec(
            machine=self.env.machine,
            tp=self.env.tp,
            attack=SYNTH_ATTACK,
            seed=self.seed,
            params={
                "genome": genome_dict,
                "victim": self.env.victim,
                "symbols": list(self.env.symbols),
                "rounds_per_run": self.env.rounds_per_run,
                "sweep_rounds": self.env.sweep_rounds,
                **self.env.runner_kwargs,
            },
        )

    def __call__(
        self, genomes: Sequence[Union[Genome, dict]]
    ) -> List[EpisodeEvaluation]:
        trials = [self.trial_for(genome) for genome in genomes]
        # Duplicate genomes share a trial key; the pool collapses them
        # and the store answers every copy below.
        run_campaign(
            trials,
            store=self.store,
            n_workers=self.n_workers,
            timeout_s=self.timeout_s,
            max_retries=self.max_retries,
            resume=self.resume,
            quiet=True,
        )
        latest = self.store.latest_by_key(status=None)
        evaluations: List[EpisodeEvaluation] = []
        for genome, trial in zip(genomes, trials):
            n_ops = len(
                genome.ops if isinstance(genome, Genome) else genome["ops"]
            )
            record = latest.get(trial.key())
            stats = None
            error = "trial missing from store"
            if record is not None:
                error = record.get("error") or ""
                result = record.get("result")
                if record.get("status") == STATUS_OK and result:
                    stats = result.get("stats")
            evaluations.append(
                EpisodeEvaluation(
                    result=None,
                    fitness=fitness_from_stats(stats, n_ops),
                    mutual_information_bits=(
                        stats["mutual_information_bits"] if stats else 0.0
                    ),
                    capacity_bits=stats["capacity_bits"] if stats else 0.0,
                    accuracy=stats["decode_accuracy"] if stats else 0.0,
                    error="" if stats else error,
                )
            )
        return evaluations


# ----------------------------------------------------------------------
# Genome persistence
# ----------------------------------------------------------------------


def _as_record(item: Union[Genome, dict]) -> Dict[str, Any]:
    if isinstance(item, Genome):
        return {
            "genome": item.to_dict(),
            "classes": list(classify(item)),
        }
    if hasattr(item, "to_record"):  # ScoredGenome quacks
        return item.to_record()
    record = dict(item)
    if "genome" not in record:
        # A bare genome dict rather than a record around one.
        record = {"genome": Genome.from_dict(record).to_dict()}
    Genome.from_dict(record["genome"])  # validate
    record.setdefault(
        "classes", list(classify(Genome.from_dict(record["genome"])))
    )
    return record


def save_genomes(
    path: str,
    items: Sequence[Union[Genome, dict, Any]],
    env: Optional[ChannelGuessEnv] = None,
    metadata: Optional[Dict[str, Any]] = None,
) -> None:
    """Write discovered genomes (plus the env they were scored in) as JSON."""
    document = {
        "version": GENOME_FILE_VERSION,
        "env": env.spec() if env is not None else None,
        "metadata": dict(metadata or {}),
        "genomes": [_as_record(item) for item in items],
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_genomes(path: str) -> List[Dict[str, Any]]:
    """Load genome records saved by :func:`save_genomes` (validated)."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("version") != GENOME_FILE_VERSION:
        raise ValueError(
            f"unsupported genome file version {document.get('version')!r}"
        )
    records = [_as_record(record) for record in document.get("genomes", [])]
    for record in records:
        record["env"] = document.get("env")
    return records


# ----------------------------------------------------------------------
# Registry promotion
# ----------------------------------------------------------------------


def register_discovered(
    name: str,
    genome: Union[Genome, dict],
    victim: str = "set_hammer",
    symbols: Optional[Sequence[int]] = None,
    rounds_per_run: int = 4,
    description: str = "",
    runner_kwargs: Optional[Dict[str, Any]] = None,
):
    """Register one evolved genome as a named campaign attack.

    After this, ``CampaignSpec(attacks=(name,), ...)`` sweeps the genome
    across machines/TP configs like any hand-written experiment.
    """
    genome_obj = genome if isinstance(genome, Genome) else Genome.from_dict(genome)
    defaults: Dict[str, Any] = {
        "genome": genome_obj.to_dict(),
        "victim": victim,
        "rounds_per_run": rounds_per_run,
        **(runner_kwargs or {}),
    }
    if symbols is not None:
        defaults["symbols"] = tuple(symbols)
    return register_attack(
        name,
        _synth_attack_runner,
        defaults=defaults,
        description=description
        or f"evolved {'+'.join(classify(genome_obj))} genome vs {victim}",
    )


def register_saved(path: str, prefix: str = "synth") -> List[str]:
    """Register every genome in a saved file as ``{prefix}-{i}``."""
    names: List[str] = []
    for i, record in enumerate(load_genomes(path)):
        env_spec = record.get("env") or {}
        name = f"{prefix}-{i}"
        register_discovered(
            name,
            record["genome"],
            victim=env_spec.get("victim", "set_hammer"),
            symbols=env_spec.get("symbols"),
            rounds_per_run=int(env_spec.get("rounds_per_run", 4)),
            runner_kwargs=env_spec.get("runner_kwargs") or None,
        )
        names.append(name)
    return names


def _synth_attack_runner(tp, machine_factory, **params):
    # Imported lazily: the campaign registry owns the static ``synth``
    # entry and must stay importable without the synth package loaded.
    from .runner import experiment

    return experiment(tp, machine_factory, **params)

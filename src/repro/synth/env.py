"""``ChannelGuessEnv``: the covert channel as a gym-style guessing game.

One episode: the env draws a hidden secret from the symbol alphabet, Hi
runs the victim transmitting it, the agent (Lo) executes an attack
genome and observes its decoded timing features, then guesses the
secret.  Reward is guess accuracy (1.0/0.0); ``info["secret"]`` reveals
the answer after the guess so agents can learn decoders online.

The evolutionary search does not play episodes one secret at a time --
:meth:`ChannelGuessEnv.evaluate` sweeps the whole alphabet through the
shared experiment runner and scores the genome with the *same* mutual
-information estimator the campaign reports use
(:func:`repro.analysis.mutual_information_from_samples` via
``ChannelResult``), so env fitness and campaign numbers cannot
disagree.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, Union

from ..analysis import estimator_bias_bits
from ..attacks.harness import ChannelResult
from ..campaign.registry import MACHINES, TP_CONFIGS
from .genome import Genome
from .runner import experiment
from .victims import DEFAULT_SYMBOLS, VICTIMS


@dataclass
class EpisodeEvaluation:
    """One genome's sweep-based evaluation: the fitness signal."""

    result: ChannelResult
    fitness: float
    mutual_information_bits: float
    capacity_bits: float
    accuracy: float
    error: str = ""

    def stats(self) -> dict:
        return {
            **(self.result.stats() if self.result is not None else {}),
            "fitness": self.fitness,
        }


@dataclass
class ChannelGuessEnv:
    """Gym-style environment over the existing ``Machine``/``Kernel``.

    Names resolve through the campaign registries, so an env spec is
    plain data (strings + ints) and crosses process boundaries freely.
    """

    machine: str = "tiny"
    tp: str = "none"
    victim: str = "set_hammer"
    symbols: Optional[Tuple[int, ...]] = None
    rounds_per_run: int = 4
    sweep_rounds: int = 1
    seed: int = 0
    #: Extra keyword arguments for the experiment runner (plain data:
    #: ``victim_params``, ``data_pages``, ``hi_data_pages``, ...), for
    #: victims tuned against a specific allocation layout.
    runner_kwargs: Dict[str, object] = field(default_factory=dict)
    _rng: random.Random = field(init=False, repr=False)
    _secret: Optional[int] = field(init=False, default=None, repr=False)
    _observed: bool = field(init=False, default=False, repr=False)

    def __post_init__(self) -> None:
        if self.machine not in MACHINES:
            raise KeyError(f"unknown machine {self.machine!r}")
        if self.tp not in TP_CONFIGS:
            raise KeyError(f"unknown tp config {self.tp!r}")
        if self.victim not in VICTIMS:
            raise KeyError(f"unknown victim {self.victim!r}")
        if self.symbols is None:
            self.symbols = tuple(DEFAULT_SYMBOLS[self.victim])
        else:
            self.symbols = tuple(self.symbols)
        self._rng = random.Random(self.seed)

    # -- gym protocol ----------------------------------------------------

    def reset(self):
        """Start an episode: draw a fresh hidden secret.  Returns None
        (the agent observes nothing until it runs a genome)."""
        self._secret = self._rng.choice(self.symbols)
        self._observed = False
        return None

    def step(self, action):
        """``("run", genome)`` observes; ``("guess", symbol)`` ends.

        Returns the gym 4-tuple ``(observation, reward, done, info)``.
        Running the genome yields the tuple of its per-round decoded
        features as the observation; guessing yields reward 1.0/0.0 and
        reveals the secret in ``info`` for decoder training.
        """
        if self._secret is None:
            raise RuntimeError("call reset() before step()")
        verb, payload = action
        if verb == "run":
            observation = tuple(self._run_episode(payload, self._secret))
            self._observed = True
            return observation, 0.0, False, {}
        if verb == "guess":
            reward = 1.0 if payload == self._secret else 0.0
            info = {"secret": self._secret, "observed": self._observed}
            self._secret = None
            return None, reward, True, info
        raise ValueError(f"unknown action verb {verb!r}")

    def _run_episode(self, genome: Union[Genome, dict], secret: int):
        result = experiment(
            TP_CONFIGS[self.tp](),
            MACHINES[self.machine],
            genome,
            victim=self.victim,
            symbols=(secret,),
            rounds_per_run=self.rounds_per_run,
            **self.runner_kwargs,
        )
        return [observation for _symbol, observation in result.samples]

    # -- batch fitness (what the search consumes) ------------------------

    def evaluate(
        self, genome: Union[Genome, dict], on_kernel=None
    ) -> EpisodeEvaluation:
        """Sweep the full alphabet and score the genome.

        Fitness is the shared-estimator mutual information plus an
        accuracy shaping term, minus a small complexity penalty; a
        genome that produces no samples (e.g. it sleeps through its
        entire budget) scores 0.
        """
        n_ops = len(genome.ops) if isinstance(genome, Genome) else len(genome["ops"])
        try:
            result = experiment(
                TP_CONFIGS[self.tp](),
                MACHINES[self.machine],
                genome,
                victim=self.victim,
                symbols=self.symbols,
                rounds_per_run=self.rounds_per_run,
                sweep_rounds=self.sweep_rounds,
                on_kernel=on_kernel,
                **self.runner_kwargs,
            )
        except RuntimeError as error:
            return EpisodeEvaluation(
                result=None,
                fitness=0.0,
                mutual_information_bits=0.0,
                capacity_bits=0.0,
                accuracy=0.0,
                error=str(error),
            )
        stats = result.stats()
        return EpisodeEvaluation(
            result=result,
            fitness=fitness_from_stats(stats, n_ops),
            mutual_information_bits=stats["mutual_information_bits"],
            capacity_bits=stats["capacity_bits"],
            accuracy=stats["decode_accuracy"],
            error="",
        )

    def evaluate_population(
        self, genomes: Sequence[Union[Genome, dict]], on_kernel=None
    ) -> "list[EpisodeEvaluation]":
        """Score a whole generation as one lockstep batch.

        One lane per (genome, round, symbol), all stepped together by
        the vectorized batch engine; scores are bit-identical to mapping
        :meth:`evaluate` over ``genomes`` (the differential tests hold
        this).  Falls back to the serial map when the workload leaves
        the batch envelope, so this is a drop-in
        :data:`~repro.synth.search.BatchEvaluator`.
        """
        from ..hardware.batch import BatchUnsupported
        from .runner import batched_experiment

        try:
            results = batched_experiment(
                TP_CONFIGS[self.tp](),
                MACHINES[self.machine],
                list(genomes),
                victim=self.victim,
                symbols=self.symbols,
                rounds_per_run=self.rounds_per_run,
                sweep_rounds=self.sweep_rounds,
                on_kernel=on_kernel,
                **self.runner_kwargs,
            )
        except BatchUnsupported:
            return [self.evaluate(genome) for genome in genomes]
        evaluations = []
        for genome, result in zip(genomes, results):
            n_ops = (
                len(genome.ops) if isinstance(genome, Genome) else len(genome["ops"])
            )
            if result is None:
                # Same zero-fitness outcome (and message) the scalar
                # path derives from run_symbol_sweep's RuntimeError.
                evaluations.append(
                    EpisodeEvaluation(
                        result=None,
                        fitness=0.0,
                        mutual_information_bits=0.0,
                        capacity_bits=0.0,
                        accuracy=0.0,
                        error=(
                            f"experiment {f'synth[{self.victim}]'!r} "
                            "produced no samples"
                        ),
                    )
                )
                continue
            stats = result.stats()
            evaluations.append(
                EpisodeEvaluation(
                    result=result,
                    fitness=fitness_from_stats(stats, n_ops),
                    mutual_information_bits=stats["mutual_information_bits"],
                    capacity_bits=stats["capacity_bits"],
                    accuracy=stats["decode_accuracy"],
                    error="",
                )
            )
        return evaluations

    def noise_floor_bits(self) -> float:
        """Miller-Madow bias floor for this env's sample budget."""
        samples_per_symbol = max(1, (self.rounds_per_run - 1) * self.sweep_rounds)
        return estimator_bias_bits(samples_per_symbol, len(self.symbols))

    def spec(self) -> Dict[str, object]:
        """Plain-data description (what the campaign bridge pickles)."""
        return {
            "machine": self.machine,
            "tp": self.tp,
            "victim": self.victim,
            "symbols": list(self.symbols),
            "rounds_per_run": self.rounds_per_run,
            "sweep_rounds": self.sweep_rounds,
            "runner_kwargs": dict(self.runner_kwargs),
        }


def fitness_from_stats(stats: Optional[dict], n_ops: int) -> float:
    """The scalar the search maximises, from plain ``ChannelResult`` stats.

    Shared between the in-process evaluator and the campaign bridge
    (which only sees JSONL stats dicts), so both rank genomes
    identically: mutual information dominates, decode accuracy above
    chance breaks ties, and a tiny per-gene penalty prefers shorter
    programs among equals.
    """
    if not stats:
        return 0.0
    shaping = 0.25 * max(0.0, stats["decode_accuracy"] - stats["chance_accuracy"])
    return (
        stats["mutual_information_bits"] + shaping - 0.002 * n_ops
    )

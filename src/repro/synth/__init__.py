"""Search-driven attack synthesis (ROADMAP item 1).

The hand-written attack suite (``repro.attacks``) can only confirm time
protection against channels someone already thought of.  This subsystem
turns the attacker into a *search*: a small typed DSL of probe
primitives (:mod:`repro.synth.genome`) compiles to replayable spy
programs, a gym-style guessing game (:mod:`repro.synth.env`) scores them
against a secret-dependent victim, and a seeded evolutionary loop
(:mod:`repro.synth.search`) mutates and selects genomes by the measured
mutual information of the channel they open.  Winning genomes are
promoted to first-class campaign attacks (:mod:`repro.synth.bridge`), so
"TP holds" comes to mean "the search found nothing", not "none of our
five scripts worked".
"""

from .bridge import (
    CampaignEvaluator,
    load_genomes,
    register_discovered,
    register_saved,
    save_genomes,
)
from .env import ChannelGuessEnv, EpisodeEvaluation
from .genome import (
    FAMILIES,
    Genome,
    classify,
    crossover,
    mutate,
    random_genome,
    validate_genome,
)
from .runner import PREFETCH_RESIDUE_GENOME, PRIME_PROBE_GENOME, experiment
from .search import (
    EvolutionSearch,
    FamilyBandit,
    SearchConfig,
    SearchReport,
    fitness_from_stats,
)
from .victims import VICTIMS

__all__ = [
    "CampaignEvaluator",
    "ChannelGuessEnv",
    "EpisodeEvaluation",
    "EvolutionSearch",
    "FAMILIES",
    "FamilyBandit",
    "Genome",
    "PREFETCH_RESIDUE_GENOME",
    "PRIME_PROBE_GENOME",
    "SearchConfig",
    "SearchReport",
    "VICTIMS",
    "classify",
    "crossover",
    "experiment",
    "fitness_from_stats",
    "load_genomes",
    "mutate",
    "random_genome",
    "register_discovered",
    "register_saved",
    "save_genomes",
    "validate_genome",
]

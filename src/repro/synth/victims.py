"""Secret-dependent victim programs the guessing game runs as Hi.

Each victim is a stateless ``ReplayableProgram`` step function (pure in
``(ctx, index)``), so whole episodes -- victim and evolved spy alike --
snapshot and replay under the model checker.  A victim encodes
``ctx.params["symbol"]`` into some microarchitectural state and nothing
else; it never communicates architecturally.  Which state, differs per
victim, giving the search distinct channels to (re)discover:

``set_hammer``      L1 set occupancy (the E2 prime+probe target).
``syscall_user``    kernel-text residency: symbol selects which syscall
                    handler runs (the E4 flush+reload target).
``region_strider``  stride-prefetcher training: symbol sets the stride
                    and last-address of a hot prefetcher stream entry
                    (residual state on hardware without a prefetcher
                    flush -- the novel-channel target).
"""

from __future__ import annotations

from typing import Dict

from ..hardware.isa import Access, Compute, ProgramContext, Syscall

#: Syscall handlers a ``syscall_user`` victim cycles between; each has a
#: distinct kernel-text footprint (see ``kernel.syscalls._OP_COSTS``).
#: The runner creates endpoint 0 so ``send``/``poll`` always resolve.
_SYSCALL_OPS = (
    ("nop", ()),
    ("send", (0, 0)),
    ("poll", (0,)),
    ("sleep", (0,)),
)


def set_hammer_victim(ctx: ProgramContext, index: int, observation):
    """Hammer the L1 set named by the symbol across all data pages."""
    symbol = ctx.params["symbol"]
    lines_per_page = max(1, ctx.page_size // ctx.line_size)
    n_pages = max(1, ctx.data_size // ctx.page_size)
    page = index % n_pages
    return Access(
        ctx.data_base
        + page * ctx.page_size
        + (symbol % lines_per_page) * ctx.line_size,
        write=True,
        value=symbol & 0xFF,
    )


def syscall_user_victim(ctx: ProgramContext, index: int, observation):
    """Alternate computes with the symbol's syscall handler.

    The handler's text lines (and only those) become cache-resident in
    the domain's kernel image -- the footprint flush+reload reads.
    """
    symbol = ctx.params["symbol"]
    if index % 4 == 3:
        return Compute(40)
    op, args = _SYSCALL_OPS[symbol % len(_SYSCALL_OPS)]
    return Syscall(op, args)


def stream_strider_victim(ctx: ProgramContext, index: int, observation):
    """Stream over a multi-page window with a symbol-dependent stride.

    The window (``window_pages`` pages starting at ``base_page``,
    defaults 3 from page 0) holds more lines per L1 set than the cache
    has ways, so *every* access misses L1 and reaches the prefetcher's
    ``observe``.  The stream entry for the window's physical region is
    therefore live the whole slice and hands over ``(last_addr, stride)``
    both determined by the secret -- the residue a spy in the same
    region can convert back into the symbol.
    """
    symbol = ctx.params["symbol"]
    lines_per_page = max(1, ctx.page_size // ctx.line_size)
    n_pages = max(1, ctx.data_size // ctx.page_size)
    base_page = int(ctx.params.get("base_page", 0)) % n_pages
    window_pages = min(
        int(ctx.params.get("window_pages", 3)), n_pages - base_page
    )
    window_lines = max(1, window_pages * lines_per_page)
    strides = tuple(ctx.params.get("strides", (1, 5, 7, 11)))
    stride = strides[symbol % len(strides)]
    line = (index * stride) % window_lines
    return Access(
        ctx.data_base + base_page * ctx.page_size + line * ctx.line_size,
        write=False,
    )


def region_strider_victim(ctx: ProgramContext, index: int, observation):
    """Walk page 0 with a symbol-dependent stride, forever.

    Trains the stride prefetcher's entry for the page's physical region
    to a symbol-dependent ``(last_addr, stride)``.  On hardware with no
    architected prefetcher flush that entry survives the domain switch,
    and the *next* domain's first demand miss in the same 4 KiB region
    triggers prefetches at addresses derived from the victim's
    ``last_addr`` -- cache fills a spy can time.
    """
    symbol = ctx.params["symbol"]
    lines_per_page = max(1, ctx.page_size // ctx.line_size)
    stride_lines = 1 + symbol % max(1, lines_per_page - 1)
    line = (index * stride_lines) % lines_per_page
    return Access(ctx.data_base + line * ctx.line_size, write=False)


VICTIMS: Dict[str, object] = {
    "set_hammer": set_hammer_victim,
    "syscall_user": syscall_user_victim,
    "stream_strider": stream_strider_victim,
    "region_strider": region_strider_victim,
}

#: Default symbol alphabet per victim (small, well-separated).
DEFAULT_SYMBOLS: Dict[str, tuple] = {
    "set_hammer": (1, 3, 5, 7),
    "syscall_user": (0, 1, 2, 3),
    "stream_strider": (0, 1, 2, 3),
    "region_strider": (0, 1, 2, 3),
}

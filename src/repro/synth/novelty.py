"""Per-element counter evidence: *which* hardware state carries a channel.

An evolved genome claiming a "new" channel needs more than nonzero
mutual information -- it needs attribution.  This module runs a program
(evolved genome or hand-written registry attack) once per symbol under
``CountingInstrumentation`` and asks, per ``(domain, element)`` counter,
whether the count observed *in the spy's domain* depends on the secret.
Elements whose spy-side counts vary across symbols are the state the
channel flows through; comparing an evolved genome's sensitive-element
set against every attack in ``repro.attacks`` is what certifies novelty
("this genome modulates ``core0.prefetcher`` through the spy's timing;
no hand-written attack does").
"""

from __future__ import annotations

import inspect
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..campaign.registry import ATTACKS
from ..kernel.timeprotect import TimeProtectionConfig
from .genome import Genome
from .runner import experiment

#: One per-symbol counter profile: (domain, element) -> touch count.
CounterProfile = Dict[Tuple[Optional[str], str], int]


def ablate_prefetcher(machine_factory: Callable) -> Callable:
    """Machine factory with every core's stride prefetcher disabled.

    Setting ``degree = 0`` makes ``observe`` never issue prefetches while
    leaving the element registered, enumerated and flushed exactly as
    before -- so re-running a program on the ablated machine isolates the
    capacity that flows *through* the prefetcher.  Counter sensitivity
    alone cannot attribute a channel to the prefetcher (any program whose
    L1 miss count is secret-dependent perturbs the prefetcher's touch
    count incidentally); an evolved genome claims the prefetcher channel
    iff its capacity drops under ablation while every hand-written
    attack's trace is bit-identical.
    """

    def build():
        machine = machine_factory()
        for core in machine.cores:
            core.prefetcher.degree = 0
        return machine

    return build


def genome_counter_profiles(
    tp: TimeProtectionConfig,
    machine_factory: Callable,
    genome: Union[Genome, dict],
    victim: str,
    symbols: Sequence[int],
    rounds_per_run: int = 4,
    **runner_kwargs,
) -> Dict[int, CounterProfile]:
    """Per-symbol aggregate touch counts for one genome run.

    Extra keyword arguments (``victim_params``, ``data_pages``, ...) are
    forwarded to :func:`repro.synth.runner.experiment` so genomes tuned
    against a specific allocation layout profile under that same layout.
    """
    counting = replace(tp, instrumentation="counting")
    profiles: Dict[int, CounterProfile] = {}

    def run_symbol(symbol: int) -> None:
        captured: List[CounterProfile] = []
        experiment(
            counting,
            machine_factory,
            genome,
            victim=victim,
            symbols=(symbol,),
            rounds_per_run=rounds_per_run,
            on_kernel=lambda kernel: captured.append(
                dict(kernel.machine.instrumentation.touch_counts())
            ),
            **runner_kwargs,
        )
        profiles[symbol] = captured[-1] if captured else {}

    for symbol in symbols:
        run_symbol(symbol)
    return profiles


def attack_counter_profiles(
    tp: TimeProtectionConfig,
    machine_factory: Callable,
    attack: str,
    symbols: Optional[Sequence[int]] = None,
) -> Dict[int, CounterProfile]:
    """Per-symbol touch counts for a hand-written registry attack.

    Attacks whose experiment functions expose no ``on_kernel`` hook are
    profiled from a single all-symbols run instead (one profile shared
    by every symbol: maximally conservative for novelty -- every element
    the attack touches at all is credited to it).
    """
    entry = ATTACKS[attack]
    counting = replace(tp, instrumentation="counting")
    params = dict(entry.defaults)
    accepts = inspect.signature(entry.runner).parameters
    if symbols is not None and "symbols" in accepts:
        params["symbols"] = tuple(symbols)
    sweep_symbols = tuple(params.get("symbols", symbols or ()))

    if "on_kernel" not in accepts:
        return {symbol: {} for symbol in sweep_symbols} if sweep_symbols else {}

    if sweep_symbols and "symbols" in accepts:
        profiles: Dict[int, CounterProfile] = {}
        for symbol in sweep_symbols:
            captured: List[CounterProfile] = []
            per_symbol = dict(params)
            per_symbol["symbols"] = (symbol,)
            per_symbol["on_kernel"] = lambda kernel: captured.append(
                dict(kernel.machine.instrumentation.touch_counts())
            )
            entry.runner(counting, machine_factory, **per_symbol)
            profiles[symbol] = captured[-1] if captured else {}
        return profiles

    captured: List[CounterProfile] = []
    params["on_kernel"] = lambda kernel: captured.append(
        dict(kernel.machine.instrumentation.touch_counts())
    )
    entry.runner(counting, machine_factory, **params)
    profile = captured[-1] if captured else {}
    return {0: profile}


def touched_elements(
    profiles: Dict[int, CounterProfile],
    domain: Optional[str] = None,
) -> Set[str]:
    """Every element with a nonzero count (optionally in one domain)."""
    out: Set[str] = set()
    for profile in profiles.values():
        for (dom, element), count in profile.items():
            if count > 0 and (domain is None or dom == domain):
                out.add(element)
    return out


def sensitive_elements(
    profiles: Dict[int, CounterProfile],
    domain: Optional[str] = "Lo",
) -> Dict[str, Tuple[int, int]]:
    """Elements whose counts in ``domain`` *vary with the secret*.

    Returns ``element -> (min_count, max_count)`` across symbols, for
    elements where the two differ.  A secret-sensitive spy-side count is
    direct counter evidence that victim state modulated the spy's
    execution through that element.
    """
    per_element: Dict[str, List[int]] = {}
    for profile in profiles.values():
        seen: Dict[str, int] = {}
        for (dom, element), count in profile.items():
            if domain is None or dom == domain:
                seen[element] = seen.get(element, 0) + count
        for element in sorted(set(per_element) | set(seen)):
            per_element.setdefault(element, []).append(seen.get(element, 0))
    # Backfill zeros for elements absent from earlier profiles.
    n = len(profiles)
    out: Dict[str, Tuple[int, int]] = {}
    for element, counts in per_element.items():
        counts = counts + [0] * (n - len(counts))
        lo, hi = min(counts), max(counts)
        if lo != hi:
            out[element] = (lo, hi)
    return out


def novel_elements(
    genome_profiles: Dict[int, CounterProfile],
    attack_profiles: Dict[str, Dict[int, CounterProfile]],
    domain: Optional[str] = "Lo",
) -> Dict[str, Tuple[int, int]]:
    """Secret-sensitive spy-side elements no reference attack touches.

    ``attack_profiles`` maps attack name -> its per-symbol profiles; an
    element counts as novel only if *no* reference attack touches it in
    any domain (the conservative criterion from the issue's acceptance
    test).
    """
    claimed: Set[str] = set()
    for profiles in attack_profiles.values():
        claimed |= touched_elements(profiles, domain=None)
    return {
        element: spread
        for element, spread in sensitive_elements(
            genome_profiles, domain=domain
        ).items()
        if element not in claimed
    }
